"""Micro-benchmarks of the simulator itself (not a paper artifact).

Tracks the cost of the hot paths so performance regressions in the
cycle kernel are caught: full-fabric simulation throughput, the MAO
fast path, and the analytical models (which should stay ~instant).
"""

import pytest

from repro import make_fabric
from repro.core.estimator import BandwidthEstimator, EstimateInputs
from repro.fabric.flow import rotation_throughput_gbps
from repro.sim import Engine, SimConfig
from repro.traffic import make_pattern_sources
from repro.types import FabricKind, Pattern

CYCLES = 2_000


def _simulate(kind, pattern):
    fab = make_fabric(kind)
    src = make_pattern_sources(pattern, address_map=fab.address_map)
    return Engine(fab, src, SimConfig(cycles=CYCLES, warmup=500)).run()


@pytest.mark.benchmark(group="simulator")
def test_segmented_fabric_cycle_rate(benchmark):
    rep = benchmark.pedantic(_simulate, args=(FabricKind.XLNX, Pattern.SCS),
                             rounds=2, iterations=1)
    assert rep.completed > 0


@pytest.mark.benchmark(group="simulator")
def test_mao_fabric_cycle_rate(benchmark):
    rep = benchmark.pedantic(_simulate, args=(FabricKind.MAO, Pattern.CCRA),
                             rounds=2, iterations=1)
    assert rep.completed > 0


@pytest.mark.benchmark(group="analytical")
def test_estimator_speed(benchmark):
    est = BandwidthEstimator()
    result = benchmark(est.estimate, EstimateInputs(pattern=Pattern.CCS))
    assert result.total_gbps > 0


@pytest.mark.benchmark(group="analytical")
def test_flow_model_speed(benchmark):
    total = benchmark(rotation_throughput_gbps, 8)
    assert total > 0
