"""Ablation benchmarks for the MAO's three architectural adaptions.

The paper packages three mechanisms into the MAO (Sec. IV-B); these
benchmarks switch each off in isolation and quantify its contribution —
the design-choice ablations DESIGN.md calls out:

1. address interleaving (vs. the MAO network alone on contiguous data),
2. reorder depth (1 independent AXI ID vs. 32) on random traffic,
3. the hierarchical network (vs. the vendor's lateral buses) on the
   rotation pattern that isolates the lateral bottleneck.
"""

import pytest

from repro.core.mao import MaoConfig
from repro.fabric import MaoFabric, SegmentedFabric
from repro.params import DEFAULT_PLATFORM
from repro.sim import Engine, SimConfig
from repro.traffic import (make_pattern_sources, make_rotation_sources)
from repro.types import Pattern

from conftest import BENCH_CYCLES, show


def _run(fabric, sources):
    cfg = SimConfig(cycles=BENCH_CYCLES, warmup=BENCH_CYCLES // 4)
    return Engine(fabric, sources, cfg).run()


@pytest.mark.benchmark(group="ablation")
def test_ablation_interleaving(benchmark):
    """MAO network with vs. without the interleaved address map."""
    def run_pair():
        out = {}
        for enabled in (True, False):
            fab = MaoFabric(DEFAULT_PLATFORM,
                            config=MaoConfig(interleave_enabled=enabled))
            src = make_pattern_sources(Pattern.CCS, DEFAULT_PLATFORM)
            out[enabled] = _run(fab, src).total_gbps
        return out

    result = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    show("Ablation: interleaving",
         f"with interleaving    : {result[True]:7.1f} GB/s\n"
         f"without interleaving : {result[False]:7.1f} GB/s")
    # Without interleaving the hot-spot returns: the network alone is
    # worth nothing for contiguous data.
    assert result[True] > 20 * result[False]
    assert result[False] < 15.0


@pytest.mark.benchmark(group="ablation")
def test_ablation_reorder_depth(benchmark):
    """Reorder buffers: depth 1 vs. depth 32 on CCRA."""
    def run_pair():
        out = {}
        for depth in (1, 32):
            fab = MaoFabric(DEFAULT_PLATFORM,
                            config=MaoConfig(reorder_depth=depth))
            src = make_pattern_sources(Pattern.CCRA, DEFAULT_PLATFORM, seed=3)
            out[depth] = _run(fab, src).total_gbps
        return out

    result = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    show("Ablation: reorder depth",
         f"depth  1 : {result[1]:7.1f} GB/s\n"
         f"depth 32 : {result[32]:7.1f} GB/s")
    assert result[32] > 1.25 * result[1]


@pytest.mark.benchmark(group="ablation")
def test_ablation_hierarchical_network(benchmark):
    """Lateral buses vs. hierarchical network at rotation offset 8.

    The rotation pattern gives every PCH exactly one master, so DRAM
    cannot be the limit — any loss is pure interconnect.  The vendor
    fabric saturates at ~12.5 % of the device; the MAO's hierarchical
    network (here: the same traffic through the MAO with interleaving
    off, which preserves the one-master-per-PCH assignment) restores
    full throughput.
    """
    def run_pair():
        out = {}
        xfab = SegmentedFabric(DEFAULT_PLATFORM)
        out["lateral"] = _run(
            xfab, make_rotation_sources(8, DEFAULT_PLATFORM,
                                        address_map=xfab.address_map)).total_gbps
        mfab = MaoFabric(DEFAULT_PLATFORM,
                         config=MaoConfig(interleave_enabled=False))
        out["hierarchical"] = _run(
            mfab, make_rotation_sources(8, DEFAULT_PLATFORM,
                                        address_map=mfab.address_map)).total_gbps
        return out

    result = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    show("Ablation: network topology (rotation offset 8)",
         f"segmented + laterals : {result['lateral']:7.1f} GB/s\n"
         f"hierarchical (MAO)   : {result['hierarchical']:7.1f} GB/s")
    assert result["lateral"] < 0.20 * 460.8
    assert result["hierarchical"] > 0.80 * 460.8
