"""Benchmark: the extension (what-if) studies beyond the paper."""

import pytest

from repro.experiments import extensions

from conftest import BENCH_CYCLES, show


@pytest.mark.benchmark(group="extensions")
def test_extension_studies(benchmark):
    results = benchmark.pedantic(extensions.run, kwargs={"cycles": BENCH_CYCLES},
                                 rounds=1, iterations=1)
    show("Extensions", extensions.format_table(results))
    # Lateral buses: more buses soften the rotation-8 collapse.
    lat = {r.buses_per_direction: r.rotation8_gbps for r in results["lateral"]}
    assert lat[4] > 1.5 * lat[2]
    assert lat[1] < lat[2]
    # Stack scaling: bandwidth doubles with channel count.
    stacks = {r.stacks: r.measured_gbps for r in results["stacks"]}
    assert stacks[2] == pytest.approx(2 * stacks[1], rel=0.08)
    assert stacks[4] == pytest.approx(2 * stacks[2], rel=0.08)
    # Granularity: one-burst interleaving wins; megabyte chunks hot-spot.
    gran = {r.granularity: r for r in results["granularity"]}
    assert gran[512].ccs_gbps > 20 * gran[1 << 20].ccs_gbps
    # Clock compensation: 2:1 at 300 MHz ≈ unidirectional 450 MHz.
    clock = {(r.accel_mhz, str(r.rw)): r.scs_gbps for r in results["clock"]}
    assert clock[(300, "2:1")] == pytest.approx(clock[(450, "1:0")], rel=0.05)
    # Refresh policy: per-bank refresh recovers most of the 7 % loss.
    refresh = {r.policy: r.scs_gbps for r in results["refresh"]}
    assert refresh["per-bank"] > 1.05 * refresh["all-bank"]
