"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures and (on the
first run of the module) prints the regenerated artifact, so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction run.

``BENCH_CYCLES`` trades precision for wall-clock time; the EXPERIMENTS.md
numbers were produced at the default experiment horizon (12k cycles).
"""

import os

#: Simulation horizon used inside benchmarks.
BENCH_CYCLES = int(os.environ.get("REPRO_BENCH_CYCLES", "6000"))


def show(title: str, text: str) -> None:
    """Print a regenerated artifact once (visible with -s or on failures)."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{text}\n")
