"""Engine-tier wall-clock benchmarks: legacy vs. fast vs. vector.

Three measured points, each asserting bit-identity before timing is even
reported (a fast-but-wrong engine is worthless):

1. ``mao-depth1-ccra`` — the saturated Fig. 6 reorder-depth-1 point.
   The fast path polls every lane-saturated master every cycle; the
   vector tier's extended sleep rules collapse that polling.
2. ``seg-ccs-hot`` — the saturated Fig. 2 hot-spot point on the vendor
   fabric, where per-plane due caching pays on the request/response
   scans.
3. ``starvation-window`` — the hot PCH goes offline with no degrade
   remap and no watchdogs: every credit parks behind the dead channel.
   The fast path's conservative horizon (non-empty MC queues ⇒ next
   event is always the next cycle) grinds the whole window; the vector
   stepper's staged-pop tracking proves no acceptance is possible and
   jumps it.  This is the ≥10× acceptance point.

Results land in ``benchmarks/BENCH_vector.json`` — wall-clock seconds
and stepped-cycle counts per engine per point, plus the speedups — so
the numbers the assertions were calibrated against stay in the repo.
"""

import dataclasses
import json
import os
import time

import pytest

from repro.core.mao import MaoConfig
from repro.fabric import MaoFabric, SegmentedFabric
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.params import DEFAULT_PLATFORM
from repro.sim import Engine, SimConfig
from repro.sim.config import ENGINE_TIERS
from repro.traffic import make_hotspot_sources, make_pattern_sources
from repro.types import Pattern, READ_ONLY, TWO_TO_ONE

from conftest import show

_OUT = os.path.join(os.path.dirname(__file__), "BENCH_vector.json")

#: Module-level accumulator; each benchmark writes its point, the file
#: is rewritten after every update so partial runs still record.
_RESULTS = {}


def _measure(name, build, cycles, warmup, outstanding, faults=None):
    """Time one run per engine tier; assert reports bit-identical."""
    point = {}
    reports = {}
    for engine in ENGINE_TIERS:
        fabric, sources = build()
        cfg = SimConfig(cycles=cycles, warmup=warmup,
                        outstanding=outstanding, engine=engine)
        eng = Engine(fabric, sources, cfg, faults=faults)
        t0 = time.perf_counter()
        reports[engine] = eng.run()
        elapsed = time.perf_counter() - t0
        point[engine] = {"seconds": round(elapsed, 4),
                         "stepped_cycles": eng.stepped_cycles}
    assert reports["fast"] == reports["legacy"], f"{name}: fast != legacy"
    assert reports["vector"] == reports["legacy"], \
        f"{name}: vector != legacy"
    point["speedup_vector_vs_fast"] = round(
        point["fast"]["seconds"] / point["vector"]["seconds"], 2)
    point["speedup_vector_vs_legacy"] = round(
        point["legacy"]["seconds"] / point["vector"]["seconds"], 2)
    point["cycles"] = cycles
    _RESULTS[name] = point
    with open(_OUT, "w") as fh:
        json.dump(_RESULTS, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return point, reports["legacy"]


def _fmt(name, point):
    rows = "\n".join(
        f"{tier:7s}: {point[tier]['seconds']:7.3f}s  "
        f"stepped {point[tier]['stepped_cycles']}"
        for tier in ENGINE_TIERS)
    return (f"{rows}\n"
            f"vector vs fast  : {point['speedup_vector_vs_fast']:.2f}x\n"
            f"vector vs legacy: {point['speedup_vector_vs_legacy']:.2f}x")


@pytest.mark.benchmark(group="engine-tiers")
def test_bench_vector_mao_depth1(benchmark):
    """Saturated reorder-depth-1 random reads (the Fig. 6 floor)."""
    def build():
        fab = MaoFabric(DEFAULT_PLATFORM,
                        MaoConfig(reorder_depth=1, stages=2))
        srcs = make_pattern_sources(Pattern.CCRA, DEFAULT_PLATFORM,
                                    burst_len=16, rw=READ_ONLY, seed=11)
        return fab, srcs

    def run():
        return _measure("mao-depth1-ccra", build, cycles=12_000,
                        warmup=2_000, outstanding=32)

    point, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    show("Engine tiers: MAO depth-1 CCRA (saturated)", _fmt("x", point))
    # Healthy saturated runs are bounded by identical model work in
    # every tier; the win here is polling collapse, not cycle jumps.
    assert point["speedup_vector_vs_fast"] > 1.0


@pytest.mark.benchmark(group="engine-tiers")
def test_bench_vector_seg_hotspot(benchmark):
    """Vendor-fabric hot-spot (the Fig. 2 CCS collapse)."""
    def build():
        fab = SegmentedFabric(DEFAULT_PLATFORM)
        srcs = make_pattern_sources(Pattern.CCS, DEFAULT_PLATFORM,
                                    burst_len=16, rw=TWO_TO_ONE, seed=3)
        return fab, srcs

    def run():
        return _measure("seg-ccs-hot", build, cycles=12_000,
                        warmup=2_000, outstanding=32)

    point, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    show("Engine tiers: segmented CCS hot-spot", _fmt("x", point))
    # Report the number; no speedup floor — the hot-spot's single busy
    # channel keeps every engine stepping almost every cycle.
    assert point["speedup_vector_vs_fast"] > 0.5


@pytest.mark.benchmark(group="engine-tiers")
def test_bench_vector_starvation_window(benchmark):
    """The ≥10x acceptance point: a starved fabric the fast path cannot
    jump (non-empty MC queues pin its horizon to the next cycle) but the
    vector tier's per-component dues prove idle."""
    plan = FaultPlan([FaultEvent(FaultKind.PCH_OFFLINE, at=2000, pch=0)],
                     degrade=False)

    def build():
        fab = MaoFabric(DEFAULT_PLATFORM)
        srcs = make_hotspot_sources(0, DEFAULT_PLATFORM, burst_len=8,
                                    rw=READ_ONLY,
                                    address_map=fab.address_map)
        return fab, srcs

    def run():
        return _measure("starvation-window", build, cycles=60_000,
                        warmup=1_000, outstanding=32, faults=plan)

    point, report = benchmark.pedantic(run, rounds=1, iterations=1)
    show("Engine tiers: starvation window (offline hot PCH, no degrade)",
         _fmt("x", point))
    # The vector tier must jump the dead window, not merely shave it.
    assert point["vector"]["stepped_cycles"] < 10_000
    assert point["speedup_vector_vs_fast"] >= 10.0
