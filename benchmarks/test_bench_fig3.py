"""Benchmark: regenerate Fig. 3 (burst-length sweep per pattern).

The full figure is 4 patterns x 3 directions x 5 burst lengths; each
pattern is one benchmark so timings are comparable, and the paper's shape
claims are asserted per sub-figure.
"""

import pytest

from repro.experiments import fig3_burst_length
from repro.types import Pattern

from conftest import BENCH_CYCLES, show

_rows_cache = {}


def _regen(pattern):
    rows = fig3_burst_length.run(cycles=BENCH_CYCLES, patterns=(pattern,))
    _rows_cache[pattern] = rows
    return rows


@pytest.mark.benchmark(group="fig3")
@pytest.mark.parametrize("pattern", list(Pattern), ids=lambda p: p.name)
def test_fig3_burst_length(benchmark, pattern):
    rows = benchmark.pedantic(_regen, args=(pattern,), rounds=1, iterations=1)
    show(f"Fig. 3 ({pattern.name})", fig3_burst_length.format_table(rows))
    both = fig3_burst_length.series(rows, pattern, "Both")
    # Universal claim: length-one bursts perform significantly worse.
    assert both[1] < 0.75 * both[16]
    if pattern is Pattern.SCS:
        assert both[16] == pytest.approx(416.7, rel=0.03)
        rd = fig3_burst_length.series(rows, pattern, "RD")
        assert rd[2] > 1.3 * rd[1]          # the +50 % step
        assert rd[2] > 0.85 * rd[16]        # BL2 almost maximizes
    if pattern is Pattern.CCS:
        assert both[16] == pytest.approx(13.0, rel=0.06)  # hot-spot
    if pattern is Pattern.CCRA:
        assert both[16] > 5 * 13.0          # memory-level parallelism
