"""Benchmark: regenerate Table V (accelerator overview).

Measures the accelerators' effective bandwidth on both interconnects and
rebuilds the whole scaling table; asserts the paper's speedups and the
feasibility verdicts.
"""

import pytest

from repro.experiments import table5_accelerators
from repro.accelerators.scaling import best_feasible

from conftest import BENCH_CYCLES, show


def _regen():
    return table5_accelerators.run(cycles=BENCH_CYCLES)


@pytest.mark.benchmark(group="table5")
def test_table5_accelerators(benchmark):
    rows, bw = benchmark.pedantic(_regen, rounds=1, iterations=1)
    show("Table V", table5_accelerators.format_table((rows, bw)))
    # Measured bandwidths (paper: 12.55 / 403.75 and 9.59 / ~273-307).
    assert bw.a_xlnx_gbps == pytest.approx(12.55, rel=0.08)
    assert bw.a_mao_gbps == pytest.approx(403.75, rel=0.05)
    assert bw.b_xlnx_gbps == pytest.approx(9.59, rel=0.10)
    assert 260 <= bw.b_mao_gbps <= 320

    def row(name, p):
        return next(r for r in rows
                    if r.accelerator.endswith(name) and r.p == p)

    # Accelerator A speedups over the P=4-no-MAO baseline.
    assert row("A", 8).su_mao == pytest.approx(18.4, rel=0.08)
    assert row("A", 32).su_mao == pytest.approx(248.2, rel=0.08)
    # Feasibility: A tops out at P=8; B's P=32 fits easily.
    assert not row("A", 16).fits_core_mao
    assert row("B", 32).fits_core_mao
    best = best_feasible(rows)
    assert best.accelerator.endswith("A") and best.p == 8
