"""Benchmark: regenerate Fig. 4 (rotation offsets vs. throughput)."""

import pytest

from repro.experiments import fig4_rotation

from conftest import BENCH_CYCLES, show


def _regen():
    # The high-offset congestion equilibrium needs a longer horizon than
    # the throughput benches (queues along multi-hop routes fill slowly).
    return fig4_rotation.run(cycles=max(BENCH_CYCLES, 10_000))


@pytest.mark.benchmark(group="fig4")
def test_fig4_rotation(benchmark):
    rows = benchmark.pedantic(_regen, rounds=1, iterations=1)
    show("Fig. 4", fig4_rotation.format_table(rows))
    by_offset = {r.offset: r for r in rows}
    assert by_offset[0].total_gbps == pytest.approx(416.7, rel=0.03)
    assert by_offset[1].relative_to_rot0 == pytest.approx(1.0, abs=0.03)
    assert by_offset[2].relative_to_rot0 == pytest.approx(0.749, abs=0.06)
    assert by_offset[4].relative_to_rot0 == pytest.approx(0.498, abs=0.07)
    assert by_offset[8].fraction_of_peak == pytest.approx(0.125, abs=0.03)
    # Monotone decrease beyond offset 1 (the paper's "with every
    # additional offset ... the performance further decreased").
    values = [by_offset[i].total_gbps for i in range(1, 9)]
    assert all(b <= a * 1.02 for a, b in zip(values, values[1:]))
