"""Benchmark: regenerate Fig. 5 (stride length vs. throughput with MAO)."""

import pytest

from repro.experiments import fig5_stride

from conftest import BENCH_CYCLES, show

KB = 1024


def _regen():
    return fig5_stride.run(cycles=BENCH_CYCLES)


@pytest.mark.benchmark(group="fig5")
def test_fig5_stride(benchmark):
    rows = benchmark.pedantic(_regen, rounds=1, iterations=1)
    show("Fig. 5", fig5_stride.format_table(rows))
    by_stride = {r.stride: r for r in rows}
    plateau = [r.total_gbps for r in fig5_stride.plateau_rows(rows)]
    # Maximal performance between 16 KB and 256 KB.
    assert min(plateau) > 390
    # Beyond 256 KB every transaction ping-pongs one bank: page misses
    # dominate (tRC-bound).
    assert by_stride[512 * KB].total_gbps < 0.8 * max(plateau)
    assert by_stride[4096 * KB].total_gbps < 0.8 * max(plateau)
