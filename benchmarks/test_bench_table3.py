"""Benchmark: regenerate Table III (MAO implementation results).

Purely analytical (no simulation) — the benchmark documents the cost of
the resource model and asserts exact agreement with the paper.
"""

import pytest

from repro.experiments import table3_resources

from conftest import show


@pytest.mark.benchmark(group="table3")
def test_table3_resources(benchmark):
    rows = benchmark(table3_resources.run)
    show("Table III", table3_resources.format_table(rows))
    for row in rows:
        ref = table3_resources.PAPER_REFERENCE[(row.variant, row.stages)]
        assert row.luts == ref["luts"]
        assert row.ffs == ref["ffs"]
        assert row.bram == ref["bram"]
        assert row.fmax_mhz == ref["fmax"]
        assert row.read_latency == ref["rd"]
        assert row.write_latency == ref["wr"]
