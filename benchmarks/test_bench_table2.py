"""Benchmark: regenerate Table II (latency comparison XLNX vs MAO)."""

import pytest

from repro.experiments import table2_latency
from repro.types import Pattern

from conftest import BENCH_CYCLES, show


def _regen():
    # Latency distributions need a longer horizon than throughput: the
    # vendor fabric's congestion (and hence its variance) builds up over
    # thousands of cycles.
    return table2_latency.run(cycles=max(BENCH_CYCLES, 8_000))


@pytest.mark.benchmark(group="table2")
def test_table2_latency(benchmark):
    rows = benchmark.pedantic(_regen, rounds=1, iterations=1)
    show("Table II", table2_latency.format_table(rows))
    find = table2_latency.find
    # Single traffic: uncontended round trips in the 30-120 cycle range.
    single_x = find(rows, "Single", "xlnx", Pattern.CCS)
    assert 45 <= single_x.read.mean <= 115
    assert 20 <= single_x.write.mean <= 60
    # MAO writes acknowledge deterministically (paper: σ 0.1).
    single_m = find(rows, "Single", "mao", Pattern.CCS)
    assert single_m.write.std < 3.0
    # Burst traffic: the vendor fabric's contention dominates; the MAO
    # caps both the mean and — especially — the variance.
    burst_x = find(rows, "Burst", "xlnx", Pattern.CCS)
    burst_m = find(rows, "Burst", "mao", Pattern.CCS)
    assert burst_x.read.mean > 2 * burst_m.read.mean
    assert burst_x.read.std > 5 * burst_m.read.std
