"""Benchmark: regenerate Fig. 2 (throughput vs. read/write ratio).

Asserts the figure's two headline properties on every run: the curve
peaks at a mixed ratio around 2:1 and unidirectional traffic is
port-limited to ~307 GB/s.
"""

import pytest

from repro.experiments import fig2_rw_ratio
from repro.types import RWRatio

from conftest import BENCH_CYCLES, show

_SHOWN = False


def _regen():
    return fig2_rw_ratio.run(cycles=BENCH_CYCLES)


@pytest.mark.benchmark(group="fig2")
def test_fig2_rw_ratio(benchmark):
    rows = benchmark.pedantic(_regen, rounds=1, iterations=1)
    global _SHOWN
    if not _SHOWN:
        show("Fig. 2", fig2_rw_ratio.format_table(rows))
        _SHOWN = True
    peak = fig2_rw_ratio.peak_row(rows)
    assert peak.ratio in (RWRatio(2, 1), RWRatio(1, 1), RWRatio(1, 2))
    assert peak.total_gbps > 390
    by_ratio = {r.ratio: r for r in rows}
    assert by_ratio[RWRatio(1, 0)].total_gbps == pytest.approx(307, rel=0.05)
    assert by_ratio[RWRatio(0, 1)].total_gbps == pytest.approx(307, rel=0.05)
