"""Benchmark: regenerate Fig. 6 (reorder depth vs. CCRA throughput)."""

import pytest

from repro.experiments import fig6_reorder

from conftest import BENCH_CYCLES, show


def _regen():
    return fig6_reorder.run(cycles=BENCH_CYCLES)


@pytest.mark.benchmark(group="fig6")
def test_fig6_reorder(benchmark):
    rows = benchmark.pedantic(_regen, rounds=1, iterations=1)
    show("Fig. 6", fig6_reorder.format_table(rows))
    by_depth = {r.reorder_depth: r for r in rows}
    # Rising curve: more independent AXI IDs help random access...
    assert by_depth[16].total_gbps > 1.2 * by_depth[1].total_gbps
    # ...and saturate towards the paper's ~266 GB/s plateau.
    assert by_depth[32].total_gbps == pytest.approx(266, rel=0.12)
    assert by_depth[32].total_gbps == pytest.approx(
        by_depth[16].total_gbps, rel=0.05)
