"""Benchmark: regenerate Fig. 7 (Roofline models of accelerators A/B)."""

import pytest

from repro.experiments import fig7_roofline
from repro.roofline import Bound

from conftest import BENCH_CYCLES, show


def _regen():
    return fig7_roofline.run(cycles=BENCH_CYCLES)


@pytest.mark.benchmark(group="fig7")
def test_fig7_roofline(benchmark):
    results = benchmark.pedantic(_regen, rounds=1, iterations=1)
    show("Fig. 7", fig7_roofline.format_table(results))
    a, b = results
    pa = {p.name: p for p in a.points}
    pb = {p.name: p for p in b.points}
    # Without optimized access every configuration is memory bound.
    for p in (4, 8, 16, 32):
        assert pa[f"{p} ports (XLNX)"].bound is Bound.MEMORY
        assert pb[f"{p} ports (XLNX)"].bound is Bound.MEMORY
    # With the MAO, A is compute bound for P < 32, memory bound at P=32.
    assert pa["8 ports (MAO)"].bound is Bound.COMPUTE
    assert pa["16 ports (MAO)"].bound is Bound.COMPUTE
    assert pa["32 ports (MAO)"].bound is Bound.MEMORY
    # B becomes compute bound everywhere with the MAO.
    for p in (4, 8, 16, 32):
        assert pb[f"{p} ports (MAO)"].bound is Bound.COMPUTE
