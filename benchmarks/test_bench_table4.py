"""Benchmark: regenerate Table IV (throughput comparison XLNX vs MAO)."""

import pytest

from repro.experiments import table4_throughput
from repro.types import Pattern

from conftest import BENCH_CYCLES, show


def _regen():
    return table4_throughput.run(cycles=BENCH_CYCLES)


@pytest.mark.benchmark(group="table4")
def test_table4_throughput(benchmark):
    rows = benchmark.pedantic(_regen, rounds=1, iterations=1)
    show("Table IV", table4_throughput.format_table(rows))
    find = table4_throughput.find
    ccs = find(rows, Pattern.CCS, "Both")
    assert ccs.xlnx_gbps == pytest.approx(13.0, rel=0.06)
    assert ccs.mao_gbps == pytest.approx(414, rel=0.03)
    assert ccs.speedup > 25
    rd = find(rows, Pattern.CCS, "RD")
    assert rd.xlnx_gbps == pytest.approx(9.6, rel=0.06)
    assert rd.mao_gbps == pytest.approx(307, rel=0.03)
    ccra = find(rows, Pattern.CCRA, "Both")
    assert ccra.mao_gbps == pytest.approx(266, rel=0.12)
    assert 2.5 <= ccra.speedup <= 4.5  # paper: 3.78x
