"""Metric primitives of the telemetry layer.

Three kinds of instrument cover everything the profiler reports:

* **counters** — monotonically increasing totals that already live on the
  simulated components (beats transferred, flits granted, page hits).
  The telemetry layer never owns a counter; it *reads* the component's
  own diagnostic field through a :class:`Probe`, so the simulation hot
  path pays nothing extra for being observable.
* **gauges** — instantaneous occupancies (queue depths, credits in use,
  reads in flight).  Sampled gauges additionally track their observed
  high-water mark and feed a :class:`Log2Histogram` of their value
  distribution.
* **log2 histograms** — constant-memory distribution sketches matching
  the latency histograms of :mod:`repro.sim.stats`: bucket ``i`` counts
  values in ``[2**(i-1), 2**i)``, bucket 0 the sub-unit residue.

A :class:`Probe` is the binding between a named metric and the component
attribute it reads.  Probes are built once at attach time (see
:meth:`~repro.fabric.base.BaseFabric.telemetry_probes`); reading one is a
bound-callable call, so the sampler's cost is proportional to the number
of probes, not to the simulated cycle count.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

#: Probe kinds.
COUNTER = 0
GAUGE = 1

#: Bucket count of :class:`Log2Histogram` (mirrors stats.HIST_BUCKETS).
HIST_BUCKETS = 24


class Log2Histogram:
    """Constant-memory log2-bucketed histogram of non-negative samples."""

    __slots__ = ("counts", "total")

    def __init__(self) -> None:
        self.counts = [0] * HIST_BUCKETS
        self.total = 0

    def add(self, value: float) -> None:
        b = int(value).bit_length()
        if b >= HIST_BUCKETS:
            b = HIST_BUCKETS - 1
        self.counts[b] += 1
        self.total += 1

    def nonzero(self) -> List[tuple]:
        """``(bucket_lo, bucket_hi, count)`` for the occupied buckets."""
        out = []
        for i, c in enumerate(self.counts):
            if c:
                lo = 0 if i == 0 else 1 << (i - 1)
                out.append((lo, 1 << i, c))
        return out

    def as_dict(self) -> Dict[str, object]:
        return {"total": self.total, "counts": list(self.counts)}


class Probe:
    """One named metric bound to a component attribute.

    Parameters
    ----------
    name:
        Stable, dot-separated metric name (``dram.pch3.page_hits``,
        ``link.lat_req[2]R[0].occupancy_beats``).  Names double as
        Perfetto counter-track names, so they must be unique per run.
    kind:
        :data:`COUNTER` (cumulative; exporters emit per-interval deltas)
        or :data:`GAUGE` (instantaneous; exporters emit raw values and
        the sampler tracks the high-water mark).
    read:
        Zero-argument callable returning the current value.  Must be
        side-effect free: probes are read by a pure observer and must
        never perturb simulated state.
    category:
        Coarse component class used by the bottleneck analysis:
        ``"link"``, ``"dram"``, ``"master"``, or ``"fabric"``.
    """

    __slots__ = ("name", "kind", "read", "category")

    def __init__(self, name: str, kind: int, read: Callable[[], float],
                 category: str) -> None:
        self.name = name
        self.kind = kind
        self.read = read
        self.category = category

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        k = "counter" if self.kind == COUNTER else "gauge"
        return f"Probe({self.name!r} {k} {self.category})"


class ProbeSet:
    """An ordered, name-unique collection of probes."""

    def __init__(self, probes: Optional[List[Probe]] = None) -> None:
        self.probes: List[Probe] = []
        self._names: set = set()
        for p in probes or []:
            self.add(p)

    def add(self, probe: Probe) -> None:
        if probe.name in self._names:
            raise ValueError(f"duplicate probe name {probe.name!r}")
        self._names.add(probe.name)
        self.probes.append(probe)

    def extend(self, probes: List[Probe]) -> None:
        for p in probes:
            self.add(p)

    def __len__(self) -> int:
        return len(self.probes)

    def __iter__(self):
        return iter(self.probes)
