"""Per-run provenance manifest.

One small JSON document answering "what exactly produced this result?":
model version, platform digest, engine path, seeds, config knobs, fault
plan, and cache traffic.  The manifest is what turns a profile artifact
from "a number" into "a number you can re-derive" — pass the same fields
back into the runner and you get a bit-identical run.

Deliberately **no wall-clock timestamp**: runs are deterministic
functions of their inputs (determinism lint rule DL002 bans wall-clock in
simulation code), so two runs of the same point must produce *identical*
manifests — that identity is itself a useful check, and the profile
golden test relies on it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..params import HbmPlatform
from ..sim.cache import MODEL_VERSION, platform_digest
from ..sim.config import SimConfig

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA = 1


def build_manifest(
    experiment: str,
    platform: HbmPlatform,
    cfg: SimConfig,
    seed: Optional[int] = None,
    fault_plan: Optional[Any] = None,
    cache_hits: Optional[int] = None,
    cache_misses: Optional[int] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the provenance record of one run.

    ``fault_plan`` may be a :class:`~repro.faults.plan.FaultPlan` (its
    ``describe()`` summary is embedded) or ``None`` for a healthy run.
    ``extra`` merges caller-specific fields (e.g. the profile point).
    """
    plan_desc: Optional[Any]
    if fault_plan is None:
        plan_desc = None
    elif hasattr(fault_plan, "describe"):
        plan_desc = fault_plan.describe()
    else:
        plan_desc = repr(fault_plan)
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "model_version": MODEL_VERSION,
        "experiment": experiment,
        "platform_digest": platform_digest(platform),
        "platform": {
            "num_pch": platform.num_pch,
            "num_masters": platform.num_masters,
            "fabric_clock_hz": platform.fabric_clock_hz,
            "accel_clock_hz": platform.accel_clock_hz,
        },
        "engine_path": "fast" if cfg.fast_path else "legacy",
        "cycles": cfg.cycles,
        "warmup": cfg.warmup,
        "outstanding": cfg.outstanding,
        "sanitize": cfg.sanitize,
        "telemetry": cfg.telemetry,
        "telemetry_interval": cfg.telemetry_interval,
        "seed": seed,
        "fault_plan": plan_desc,
        "cache": {
            "hits": cache_hits,
            "misses": cache_misses,
        },
    }
    if extra:
        manifest.update(extra)
    return manifest


def service_manifest(
    endpoint: str,
    platform: HbmPlatform,
    *,
    source: str,
    inputs: Optional[Dict[str, Any]] = None,
    entry: Optional[str] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Provenance record attached to every sweep-service response.

    The serving-tier sibling of :func:`build_manifest`: instead of one
    run's ``SimConfig`` it records *where the answer came from* —
    ``source`` is ``store`` / ``simulated`` / ``deduped`` /
    ``interpolated`` / ``analytic`` — plus the normalized query
    ``inputs`` and, for store-backed answers, the content-addressed
    ``entry`` digest (the basename of the pickle in the shared cache
    directory).  Same determinism contract as :func:`build_manifest`:
    **no wall-clock**, so the same query answered from the same entry
    yields a bit-identical manifest.
    """
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "model_version": MODEL_VERSION,
        "endpoint": endpoint,
        "source": source,
        "platform_digest": platform_digest(platform),
        "platform": {
            "num_pch": platform.num_pch,
            "num_masters": platform.num_masters,
            "fabric_clock_hz": platform.fabric_clock_hz,
            "accel_clock_hz": platform.accel_clock_hz,
        },
        "inputs": dict(inputs or {}),
        "entry": entry,
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path: str, manifest: Dict[str, Any]) -> None:
    """Serialize with sorted keys so equal manifests are equal bytes."""
    with open(path, "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
