"""Profile one experiment's representative point under full telemetry.

``repro-hbm profile <experiment>`` answers the question the aggregate
experiment tables cannot: *where inside the machine* did this workload's
bandwidth go.  Each profilable experiment maps to one representative
simulation point (the configuration its figure/table is *about*); the
profiler runs that point once with a :class:`~repro.sim.trace.TraceRecorder`
and an attached :class:`~repro.telemetry.sampler.Telemetry`, then emits

* a deterministic text summary with the ranked bottleneck report,
* optionally a Perfetto/Chrome trace JSON (``--trace-out``),
* optionally a provenance manifest (``--manifest-out``).

The ``chaos`` experiment profiles its refresh-storm scenario under the
fault plan, so the timeline shows the disturbance and the recovery.

This module is intentionally *not* imported from
``repro.telemetry.__init__``: it pulls in the experiment/traffic layers,
which would create an import cycle for fabrics exposing telemetry probes.
The CLI imports it lazily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import ConfigError
from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..sim import Engine, SimConfig, TraceRecorder
from ..sim.cache import DEFAULT_CACHE
from ..sim.stats import SimReport
from ..traffic import make_pattern_sources
from ..types import FabricKind, Pattern, RWRatio
from .. import make_fabric
from .bottleneck import BottleneckAnalysis, analyze, format_report
from .export import chrome_trace, write_chrome_trace
from .manifest import build_manifest
from .sampler import Telemetry


@dataclass(frozen=True)
class ProfilePoint:
    """The representative simulation point of one experiment."""

    fabric: FabricKind
    pattern: Pattern
    burst_len: int = 16
    rw: RWRatio = RWRatio(2, 1)
    #: Chaos scenario key to inject while profiling, or ``None``.
    scenario: Optional[str] = None
    note: str = ""

    def describe(self) -> str:
        s = (f"{self.fabric.value} / {self.pattern.name} "
             f"x{self.burst_len} rw {self.rw.reads}:{self.rw.writes}")
        if self.scenario:
            s += f" + chaos '{self.scenario}'"
        return s


#: Experiment key -> the point its profile runs.  Keys absent here
#: (``table3``) have no simulation to profile.
PROFILE_POINTS: Dict[str, ProfilePoint] = {
    "fig2": ProfilePoint(FabricKind.XLNX, Pattern.SCS,
                         note="partitioned streams at the peak 2:1 ratio"),
    "fig3": ProfilePoint(FabricKind.XLNX, Pattern.CCS,
                         note="cross-channel streams through the switch"),
    "fig4": ProfilePoint(FabricKind.XLNX, Pattern.CCS,
                         note="lateral-link pressure of crossing traffic"),
    "fig5": ProfilePoint(FabricKind.MAO, Pattern.SCRA, burst_len=4,
                         note="short strided random access under MAO"),
    "fig6": ProfilePoint(FabricKind.MAO, Pattern.CCRA, burst_len=4,
                         note="reordered cross-channel random access"),
    "fig7": ProfilePoint(FabricKind.XLNX, Pattern.SCS, rw=RWRatio(1, 0),
                         note="read-only streaming (roofline bandwidth)"),
    "table2": ProfilePoint(FabricKind.XLNX, Pattern.SCS, rw=RWRatio(1, 0),
                           note="latency scenario traffic"),
    "table4": ProfilePoint(FabricKind.MAO, Pattern.CCRA,
                           note="MAO throughput point"),
    "table5": ProfilePoint(FabricKind.XLNX, Pattern.SCS,
                           note="accelerator streaming traffic"),
    "extensions": ProfilePoint(FabricKind.IDEAL, Pattern.CCRA,
                               note="zero-contention reference crossbar"),
    "chaos": ProfilePoint(FabricKind.XLNX, Pattern.SCS,
                          scenario="refresh-storm",
                          note="fault timeline: one channel 3x slow"),
}


@dataclass
class ProfileResult:
    """Everything one profiling run produced."""

    experiment: str
    point: ProfilePoint
    report: SimReport
    telemetry: Telemetry
    recorder: TraceRecorder
    analysis: BottleneckAnalysis
    manifest: Dict[str, Any]
    summary: str


def _default_interval(cycles: int) -> int:
    """~64 samples per run, never denser than every 16 cycles."""
    return max(16, cycles // 64)


def profile_experiment(
    key: str,
    cycles: int = 6000,
    interval: Optional[int] = None,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    seed: int = 0,
    trace_out: Optional[str] = None,
    manifest_out: Optional[str] = None,
) -> ProfileResult:
    """Profile the representative point of ``key`` (see PROFILE_POINTS)."""
    point = PROFILE_POINTS.get(key)
    if point is None:
        have = ", ".join(sorted(PROFILE_POINTS))
        raise ConfigError(
            f"experiment {key!r} has no profilable simulation point; "
            f"choose from {have}")
    if interval is None:
        interval = _default_interval(cycles)

    plan = None
    if point.scenario is not None:
        from ..faults.chaos import SCENARIOS
        plan = SCENARIOS[point.scenario].build(cycles, seed)

    fab = make_fabric(point.fabric, platform)
    sources = make_pattern_sources(
        point.pattern, platform, burst_len=point.burst_len, rw=point.rw,
        address_map=fab.address_map, seed=seed)
    cfg = SimConfig(cycles=cycles, warmup=min(cycles // 4, 3_000),
                    telemetry=True, telemetry_interval=interval)
    rec = TraceRecorder(platform)
    engine = Engine(fab, sources, cfg, observers=[rec], faults=plan)
    # The config's telemetry flag made the engine attach a sampler;
    # keep a handle on it for the analysis below.
    tele = engine.telemetry
    assert tele is not None
    report = engine.run()
    engine.drain()

    analysis = analyze(tele, platform, cfg.cycles, report.total_gbps)
    manifest = build_manifest(
        key, platform, cfg, seed=seed, fault_plan=plan,
        cache_hits=DEFAULT_CACHE.hits, cache_misses=DEFAULT_CACHE.misses,
        extra={"profile_point": point.describe(),
               "samples": tele.num_samples,
               "fast_path_jumps": len(tele.jumps),
               "skipped_cycles": tele.skipped_cycles()})

    summary = format_summary(key, point, cfg, report, tele, rec, analysis)

    if trace_out is not None:
        write_chrome_trace(trace_out, chrome_trace(
            recorder=rec, telemetry=tele, platform=platform))
    if manifest_out is not None:
        from .manifest import write_manifest
        write_manifest(manifest_out, manifest)

    return ProfileResult(
        experiment=key, point=point, report=report, telemetry=tele,
        recorder=rec, analysis=analysis, manifest=manifest, summary=summary)


def format_summary(
    key: str,
    point: ProfilePoint,
    cfg: SimConfig,
    report: SimReport,
    tele: Telemetry,
    rec: TraceRecorder,
    analysis: BottleneckAnalysis,
) -> str:
    """Deterministic profile summary (golden-file tested)."""
    path = "fast path" if cfg.fast_path else "legacy loop"
    lines = [
        f"profile: {key} — {point.describe()}, {cfg.cycles} cycles ({path})",
    ]
    if point.note:
        lines.append(f"  point     : {point.note}")
    lines.append(format_report(analysis))
    lines.append(
        f"  telemetry : {len(tele.probes)} probes, {tele.num_samples} "
        f"samples (interval {tele.interval}), {len(tele.jumps)} fast-path "
        f"jumps skipping {tele.skipped_cycles()} cycles")
    dropped = f" ({rec.dropped} dropped)" if rec.dropped else ""
    lines.append(
        f"  trace     : {len(rec)} transaction attempts recorded{dropped}")
    return "\n".join(lines)
