"""Bottleneck analysis: rank components, attribute lost bandwidth.

Mirrors the decomposition of the paper's Sec. IV-A, which separates the
reachable bandwidth of a design into three loss mechanisms:

* the **segmented switch** — lateral-bus sharing, arbitration dead
  cycles, head-of-line blocking;
* the **DRAM** — page misses, bus turnarounds, refresh, the per-channel
  AXI port clock;
* the **masters** — outstanding-credit exhaustion and accelerator-clock
  issue pacing.

The analysis reads the final telemetry counters of a run, converts each
mechanism's event counts into an estimated cycle cost (turnarounds and
refresh have exact per-event costs from the timing model; arbitration
stalls and credit saturation are counted directly), and normalizes the
three costs into a *lost-bandwidth attribution*.  The attribution is a
ranked diagnosis — "where to look first", exactly how the paper uses its
measurements — not an exact accounting: overlapping stalls are counted
once per mechanism, so shares are relative pressures, not disjoint
cycle budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..params import HbmPlatform, gbps
from .sampler import Telemetry

#: Component utilizations below this are omitted from the ranking table.
UTIL_FLOOR = 0.005

#: A component this utilized is considered saturated.
SATURATION = 0.85


@dataclass(frozen=True)
class ComponentUtil:
    """One ranked row of the utilization table."""

    name: str
    category: str
    utilization: float
    detail: str = ""


@dataclass
class BottleneckAnalysis:
    """Everything :func:`analyze` derived from one run's telemetry."""

    cycles: int
    achieved_gbps: float
    peak_gbps: float
    verdict: str
    #: Lost-bandwidth attribution shares by mechanism, summing to 1.0
    #: (empty when nothing was lost or nothing was attributable).
    attribution: Dict[str, float] = field(default_factory=dict)
    #: Components ranked by utilization, highest first.
    components: List[ComponentUtil] = field(default_factory=list)
    #: Sampled high-water marks worth surfacing (credit saturation).
    high_water: Dict[str, str] = field(default_factory=dict)

    @property
    def fraction_of_peak(self) -> float:
        return self.achieved_gbps / self.peak_gbps if self.peak_gbps else 0.0


def analyze(
    telemetry: Telemetry,
    platform: HbmPlatform,
    cycles: int,
    achieved_gbps: float,
) -> BottleneckAnalysis:
    """Analyze one finished, telemetry-attached run."""
    if telemetry.num_samples == 0:
        raise ValueError("telemetry holds no samples; was the run executed "
                         "with the sampler attached?")
    finals = telemetry.finals()
    t = platform.dram
    peak = gbps(platform.device_peak_bytes_per_s)

    # -- per-PCH DRAM utilization and cycle-costed losses ---------------------
    components: List[ComponentUtil] = []
    dram_lost_cycles = 0.0
    turn_cost = (t.t_turnaround_rd_to_wr + t.t_turnaround_wr_to_rd) / 2.0
    refresh_cost = t.t_rfc_pb if t.per_bank_refresh else t.t_rfc
    for p in range(platform.num_pch):
        beats = finals.get(f"dram.pch{p}.beats", 0.0)
        if beats <= 0.0:
            continue
        hits = finals.get(f"dram.pch{p}.page_hits", 0.0)
        misses = finals.get(f"dram.pch{p}.page_misses", 0.0)
        conflicts = finals.get(f"dram.pch{p}.page_conflicts", 0.0)
        turnarounds = finals.get(f"dram.pch{p}.turnarounds", 0.0)
        refreshes = finals.get(f"dram.pch{p}.refreshes", 0.0)
        stalls = finals.get(f"dram.pch{p}.port_stalls", 0.0)
        miss_gaps = finals.get(f"dram.pch{p}.miss_gaps", 0.0)
        util = min(1.0, beats / cycles) if cycles else 0.0
        total_acc = hits + misses
        hit_pct = 100.0 * hits / total_acc if total_acc else 0.0
        detail = (f"{int(beats)} beats, {hit_pct:.1f}% page hits "
                  f"({int(conflicts)} conflicts), {int(turnarounds)} "
                  f"turnarounds, {int(refreshes)} refreshes")
        if stalls:
            detail += f", {int(stalls)} port stalls"
        components.append(ComponentUtil(
            f"dram.pch{p}.bus", "dram", util, detail))
        dram_lost_cycles += (turnarounds * turn_cost
                             + miss_gaps * t.t_miss_gap
                             + refreshes * refresh_cost)

    # -- interconnect links ---------------------------------------------------
    switch_stall_cycles = 0.0
    for probe in telemetry.probes:
        if probe.category != "link":
            continue
        name = probe.name
        if name.endswith(".occupancy_beats"):
            beats = finals.get(name, 0.0)
            if beats <= 0.0:
                continue
            util = min(1.0, beats / cycles) if cycles else 0.0
            stalls = finals.get(
                name.replace(".occupancy_beats", ".grant_stalls"), 0.0)
            detail = f"{int(beats)} beats"
            if stalls:
                detail += f", {int(stalls)} arbitration-stall cycles"
            components.append(ComponentUtil(
                name[:-len(".occupancy_beats")], "link", util, detail))
        elif name.endswith(".grant_stalls"):
            switch_stall_cycles += finals.get(name, 0.0)

    # -- masters: credit saturation from the sampled gauge distribution -------
    engine = telemetry.engine
    masters = engine.masters if engine is not None else []
    credit_bound = 0
    active = 0
    master_lost_cycles = 0.0
    high_water: Dict[str, str] = {}
    for mp in masters:
        if mp.issued == 0:
            continue
        active += 1
        name = f"master[{mp.index}].credits_in_use"
        try:
            idx = telemetry.index_of(name)
        except KeyError:  # pragma: no cover - masters are always probed
            continue
        hwm = telemetry.high_water[idx]
        limit = mp.outstanding_limit
        if hwm >= limit:
            credit_bound += 1
            high_water[name] = f"{int(hwm)}/{limit} (saturated)"
        hist = telemetry.hists[idx]
        if hist is not None and hist.total:
            at_limit = sum(c for lo, hi, c in hist.nonzero() if lo >= limit)
            master_lost_cycles += cycles * at_limit / hist.total
        util = hwm / limit if limit else 0.0
        components.append(ComponentUtil(
            f"master[{mp.index}].credits", "master", min(1.0, util),
            f"high-water {int(hwm)}/{limit}, {mp.issued} issued"))

    components.sort(key=lambda c: (-c.utilization, c.name))
    components = [c for c in components if c.utilization >= UTIL_FLOOR]

    # -- verdict and attribution ----------------------------------------------
    dram_max = max((c.utilization for c in components if c.category == "dram"),
                   default=0.0)
    link_max = max((c.utilization for c in components if c.category == "link"),
                   default=0.0)
    credit_frac = credit_bound / active if active else 0.0
    if link_max >= SATURATION and link_max >= dram_max:
        verdict = ("switch-limited: a lateral link is saturated "
                   f"({100 * link_max:.0f}% occupied)")
    elif dram_max >= SATURATION:
        verdict = ("DRAM-limited: a pseudo-channel data bus is saturated "
                   f"({100 * dram_max:.0f}% occupied)")
    elif credit_frac >= 0.5:
        verdict = ("master-limited: outstanding credits saturate on "
                   f"{credit_bound}/{active} active masters")
    else:
        verdict = ("below every modeled ceiling (workload-limited or "
                   "latency-bound)")

    attribution: Dict[str, float] = {}
    pressures = {
        "dram": dram_lost_cycles,
        "switch": switch_stall_cycles,
        "master": master_lost_cycles,
    }
    total_pressure = sum(pressures.values())
    if achieved_gbps < peak and total_pressure > 0.0:
        attribution = {k: v / total_pressure for k, v in pressures.items()}

    return BottleneckAnalysis(
        cycles=cycles,
        achieved_gbps=achieved_gbps,
        peak_gbps=peak,
        verdict=verdict,
        attribution=attribution,
        components=components,
        high_water=high_water,
    )


#: Attribution mechanism labels, in report order.
_MECHANISMS: Tuple[Tuple[str, str], ...] = (
    ("switch", "switch (lateral sharing / arbitration)"),
    ("dram", "DRAM (turnaround / page / refresh)"),
    ("master", "master (credits / pacing)"),
)


def format_report(analysis: BottleneckAnalysis, top: int = 8) -> str:
    """Human-readable bottleneck report (deterministic, golden-testable)."""
    a = analysis
    lines = [
        f"  achieved  : {a.achieved_gbps:7.2f} GB/s of "
        f"{a.peak_gbps:.1f} GB/s device peak ({100 * a.fraction_of_peak:.1f}%)",
        f"  verdict   : {a.verdict}",
    ]
    if a.attribution:
        lines.append("  lost-bandwidth attribution (relative pressure, "
                     "cycle-costed):")
        for key, label in _MECHANISMS:
            share = a.attribution.get(key, 0.0)
            lines.append(f"    {label:<42}: {100 * share:5.1f}%")
    lines.append(f"  top components by utilization "
                 f"(of {len(a.components)} active, per category):")
    per_cat = max(1, top // 3)
    for cat in ("dram", "link", "master", "fabric"):
        rows = [c for c in a.components if c.category == cat]
        for c in rows[:per_cat]:
            lines.append(f"    {c.name:<28} {100 * c.utilization:5.1f}%  "
                         f"[{c.category}]  {c.detail}")
        if len(rows) > per_cat:
            lines.append(f"    ... and {len(rows) - per_cat} more "
                         f"[{cat}] components")
    if len(a.high_water) > 6:
        lines.append(f"  credit saturation: {len(a.high_water)} masters hit "
                     f"their outstanding-credit ceiling")
    elif a.high_water:
        lines.append("  saturated credit high-water marks:")
        for name in sorted(a.high_water):
            lines.append(f"    {name}: {a.high_water[name]}")
    return "\n".join(lines)


def bottleneck_report(telemetry: Telemetry, report, platform=None,
                      top: int = 8) -> str:
    """Convenience wrapper: analyze + format from a finished run.

    ``report`` is the run's :class:`~repro.sim.stats.SimReport`;
    ``platform`` defaults to the attached engine's fabric platform.
    """
    if platform is None:
        if telemetry.engine is None:
            raise ValueError("telemetry is unattached; pass platform=")
        platform = telemetry.engine.fabric.platform
    analysis = analyze(telemetry, platform, report.cycles, report.total_gbps)
    return format_report(analysis, top=top)
