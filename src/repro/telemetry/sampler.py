"""Low-overhead time-sliced telemetry sampler.

:class:`Telemetry` attaches to a live :class:`~repro.sim.engine.Engine`
(exactly like the sanitizer: ``engine.telemetry`` is ``None`` when off,
and the engine then pays one ``is None`` test per loop iteration).  While
attached it takes **samples** — one reading of every registered
:class:`~repro.telemetry.metrics.Probe` — at three kinds of moment:

* every ``interval`` simulated cycles (the time-sliced baseline),
* whenever the fast path is about to jump the clock over a quiescent
  stretch (the *event-horizon* hook: the state snapshot right before a
  jump is the last distinct state until the jump target, so sampling
  there loses nothing while keeping the fast path fast — nothing is
  sampled *per skipped cycle*),
* once at the end of the run (so final counter totals are always
  captured even when the horizon outran the sampling interval).

Samples are stored column-major-friendly (one row of floats per sample)
and post-processed by the exporters; the sampler itself never aggregates
beyond gauge high-water marks and per-gauge log2 histograms, both O(1)
per sample.

The sampler is a **pure observer**: probes only read component counters,
so a run with telemetry enabled produces a bit-identical
:class:`~repro.sim.stats.SimReport` (enforced by the differential tests
in ``tests/test_telemetry.py``).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .metrics import COUNTER, GAUGE, Log2Histogram, Probe, ProbeSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Engine


class Telemetry:
    """Structured metrics for one simulation run; attach with :meth:`attach`.

    The engine constructs and attaches one automatically when
    :attr:`~repro.sim.config.SimConfig.telemetry` is set (env
    ``REPRO_TELEMETRY=1``); harnesses that need the object afterwards —
    the profiler, tests — build their own and attach it explicitly::

        tele = Telemetry(interval=200)
        engine = Engine(fabric, sources, cfg)
        tele.attach(engine)
        report = engine.run()
        print(bottleneck_report(tele, report))
    """

    def __init__(self, interval: int = 256) -> None:
        if interval < 1:
            raise ValueError("telemetry interval must be >= 1")
        self.interval = interval
        self.probes = ProbeSet()
        #: Sample times (fabric cycles), strictly increasing.
        self.sample_cycles: List[int] = []
        #: One row of probe readings per entry of :attr:`sample_cycles`.
        self.samples: List[List[float]] = []
        #: Fast-path clock jumps recorded as ``(from_cycle, to_cycle)``.
        self.jumps: List[Tuple[int, int]] = []
        #: Next cycle at which the interval baseline wants a sample.
        self.next_sample = 0
        #: Per-probe high-water mark (gauges; counters track their total).
        self.high_water: List[float] = []
        #: Per-gauge log2 histogram of sampled values (None for counters).
        self.hists: List[Optional[Log2Histogram]] = []
        self.engine: Optional["Engine"] = None
        #: Cycle :meth:`finish` was called at, or ``None`` while running.
        self.finished_cycle: Optional[int] = None

    # -- attach ----------------------------------------------------------------

    def attach(self, engine: "Engine") -> "Telemetry":
        """Bind to ``engine`` and build the probe set.

        Probes come from two places: the engine's masters (credits in
        use, retry-queue depth) and the fabric's own
        :meth:`~repro.fabric.base.BaseFabric.telemetry_probes` (links,
        controllers, pseudo-channels — each fabric knows its observable
        components).
        """
        if self.engine is not None:
            raise RuntimeError("telemetry already attached")
        self.engine = engine
        engine.telemetry = self
        for mp in engine.masters:
            i = mp.index
            self.probes.add(Probe(
                f"master[{i}].credits_in_use", GAUGE,
                lambda mp=mp: mp.outstanding, "master"))
            self.probes.add(Probe(
                f"master[{i}].retry_queue", GAUGE,
                lambda mp=mp: mp.retry_queue_depth, "master"))
            self.probes.add(Probe(
                f"master[{i}].issued", COUNTER,
                lambda mp=mp: mp.issued, "master"))
        self.probes.extend(engine.fabric.telemetry_probes())
        n = len(self.probes)
        self.high_water = [-math.inf] * n
        self.hists = [Log2Histogram() if p.kind == GAUGE else None
                      for p in self.probes]
        return self

    # -- sampling hooks (called by the engine loops) ---------------------------

    def sample(self, cycle: int) -> None:
        """Take one sample at ``cycle`` (idempotent per cycle)."""
        cycles = self.sample_cycles
        if cycles and cycles[-1] == cycle:
            return
        row: List[float] = []
        hw = self.high_water
        hists = self.hists
        for i, p in enumerate(self.probes.probes):
            v = float(p.read())
            row.append(v)
            if v > hw[i]:
                hw[i] = v
            h = hists[i]
            if h is not None:
                h.add(v)
        cycles.append(cycle)
        self.samples.append(row)
        self.next_sample = cycle + self.interval

    def note_jump(self, cycle: int, target: int) -> None:
        """The fast path is about to jump ``cycle`` -> ``target``.

        The pre-jump state is sampled (it persists unchanged until the
        target), and the jump span is recorded so trace exports can mark
        quiescent stretches explicitly instead of leaving counter tracks
        to interpolate through them.
        """
        self.jumps.append((cycle, target))
        self.sample(cycle)

    def finish(self, cycle: int) -> None:
        """Final sample at the end of the run."""
        self.sample(cycle)
        self.finished_cycle = cycle

    # -- views ----------------------------------------------------------------

    @property
    def num_samples(self) -> int:
        return len(self.sample_cycles)

    def index_of(self, name: str) -> int:
        for i, p in enumerate(self.probes.probes):
            if p.name == name:
                return i
        raise KeyError(name)

    def series(self, name: str) -> List[Tuple[int, float]]:
        """``(cycle, value)`` samples of one probe."""
        i = self.index_of(name)
        return [(c, row[i]) for c, row in zip(self.sample_cycles, self.samples)]

    def final_value(self, name: str) -> float:
        """Last sampled value of one probe (counters: the run total)."""
        if not self.samples:
            raise RuntimeError("no samples taken")
        return self.samples[-1][self.index_of(name)]

    def finals(self) -> Dict[str, float]:
        """Final sampled value of every probe, by name."""
        if not self.samples:
            return {}
        last = self.samples[-1]
        return {p.name: last[i] for i, p in enumerate(self.probes.probes)}

    def high_water_marks(self) -> Dict[str, float]:
        """Observed high-water mark per *gauge* probe.

        Sampled, so a spike strictly between two sample points can be
        missed; with event-horizon sampling every quiescence boundary is
        captured, which in practice bounds the error to intra-burst
        jitter.  Documented as a lower bound.
        """
        return {p.name: self.high_water[i]
                for i, p in enumerate(self.probes.probes)
                if p.kind == GAUGE
                and self.high_water[i] != -math.inf}  # det-lint: allow (exact never-sampled sentinel)

    def histogram(self, name: str) -> Log2Histogram:
        i = self.index_of(name)
        h = self.hists[i]
        if h is None:
            raise KeyError(f"probe {name!r} is a counter, not a gauge")
        return h

    def skipped_cycles(self) -> int:
        """Total cycles the fast path jumped over while attached."""
        return sum(t - c - 1 for c, t in self.jumps)
