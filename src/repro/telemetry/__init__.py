"""Structured telemetry: per-component metrics, sampling, and profiling.

The observability layer of the reproduction (ROADMAP north-star item):
probes read the counters the simulated components already keep, a
time-sliced sampler snapshots them without slowing the fast path, and
the exporters turn one run into a Perfetto timeline plus a ranked
bottleneck report attributing lost bandwidth to the switch, the DRAM, or
the masters — the paper's Sec. IV-A decomposition, automated.

Layering: this package sits *above* the simulation core.  ``repro.sim``
and the fabrics never import it at module level (fabrics build their
probe lists lazily inside ``telemetry_probes()``), and the profiler
(:mod:`repro.telemetry.profile`) is deliberately not re-exported here
because it imports the experiment layer; the CLI loads it lazily.
"""

from .metrics import COUNTER, GAUGE, HIST_BUCKETS, Log2Histogram, Probe, ProbeSet
from .sampler import Telemetry
from .export import (chrome_trace, validate_chrome_trace,
                     write_chrome_trace)
from .bottleneck import (BottleneckAnalysis, ComponentUtil, analyze,
                         bottleneck_report, format_report)
from .manifest import (MANIFEST_SCHEMA, build_manifest, service_manifest,
                       write_manifest)

__all__ = [
    "COUNTER",
    "GAUGE",
    "HIST_BUCKETS",
    "Log2Histogram",
    "Probe",
    "ProbeSet",
    "Telemetry",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "BottleneckAnalysis",
    "ComponentUtil",
    "analyze",
    "bottleneck_report",
    "format_report",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "service_manifest",
    "write_manifest",
]
