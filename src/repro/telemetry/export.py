"""Chrome trace-event / Perfetto JSON export.

Builds the `Trace Event Format <https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
JSON object both ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_
load directly:

* one **slice** (``ph: "X"``) per completed transaction attempt from the
  :class:`~repro.sim.trace.TraceRecorder`, grouped into one track (tid)
  per master under a "bus masters" process — issue-to-completion spans,
  with uid/pch/burst/status/attempt in ``args``;
* one **counter track** (``ph: "C"``) per telemetry probe with activity,
  under a "telemetry" process — gauges emit their sampled value,
  counters their per-interval delta (activity per slice, which is what
  you want to *see*; run totals live in the bottleneck report);
* **fast-path jump** slices on an "engine" process marking the quiescent
  stretches the clock skipped, so a gap in the counter tracks reads as
  "provably idle", not "sampler missed it".

Timestamps are microseconds of simulated time (fabric cycles divided by
the fabric clock), so the Perfetto timeline is real device time.

:func:`validate_chrome_trace` is the schema check used by the tests and
the CI smoke job; it validates structure, not values.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..sim.trace import FIELDS, TraceRecorder
from .metrics import COUNTER
from .sampler import Telemetry

#: Process ids of the exported track groups.
PID_MASTERS = 1
PID_TELEMETRY = 2
PID_ENGINE = 3

#: Completion-status names for slice args (mirrors axi.transaction).
_STATUS = {0: "ok", 1: "nack", 2: "poisoned"}


def _us(cycle: float, platform: HbmPlatform) -> float:
    return cycle / platform.fabric_clock_hz * 1e6


def chrome_trace(
    recorder: Optional[TraceRecorder] = None,
    telemetry: Optional[Telemetry] = None,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    max_slices: Optional[int] = None,
) -> Dict[str, Any]:
    """Build the trace-event JSON object (a plain dict).

    Either source may be omitted: a recorder alone gives transaction
    slices, telemetry alone gives counter tracks.  ``max_slices`` caps
    the number of transaction slices (counter tracks are never capped);
    when the cap truncates, the metadata notes how many were dropped.
    """
    events: List[Dict[str, Any]] = []
    meta: Dict[str, Any] = {"cycles_per_us": platform.fabric_clock_hz / 1e6}

    def process(pid: int, name: str) -> None:
        events.append({"ph": "M", "pid": pid, "tid": 0,
                       "name": "process_name", "args": {"name": name}})

    if recorder is not None and len(recorder):
        process(PID_MASTERS, "bus masters")
        arr = recorder.as_array()
        rows = arr if max_slices is None else arr[:max_slices]
        dropped = len(arr) - len(rows) + recorder.dropped
        if dropped:
            meta["slices_dropped"] = int(dropped)
        i_master = FIELDS.index("master")
        i_pch = FIELDS.index("pch")
        i_read = FIELDS.index("is_read")
        i_burst = FIELDS.index("burst_len")
        i_issue = FIELDS.index("issue")
        i_complete = FIELDS.index("complete")
        i_uid = FIELDS.index("uid")
        i_status = FIELDS.index("status")
        i_attempt = FIELDS.index("attempt")
        seen_masters = set()
        for row in rows:
            master = int(row[i_master])
            seen_masters.add(master)
            status = int(row[i_status])
            name = (f"{'RD' if row[i_read] else 'WR'} "
                    f"pch{int(row[i_pch])} x{int(row[i_burst])}")
            if status:
                name += f" [{_STATUS.get(status, status)}]"
            events.append({
                "ph": "X", "pid": PID_MASTERS, "tid": master,
                "cat": "txn", "name": name,
                "ts": _us(float(row[i_issue]), platform),
                "dur": _us(float(row[i_complete] - row[i_issue]), platform),
                "args": {"uid": int(row[i_uid]),
                         "attempt": int(row[i_attempt]),
                         "status": _STATUS.get(status, str(status))},
            })
        for m in sorted(seen_masters):
            events.append({"ph": "M", "pid": PID_MASTERS, "tid": m,
                           "name": "thread_name",
                           "args": {"name": f"master {m}"}})

    if telemetry is not None and telemetry.num_samples:
        process(PID_TELEMETRY, "telemetry")
        cycles = telemetry.sample_cycles
        samples = telemetry.samples
        for i, probe in enumerate(telemetry.probes):
            first = samples[0][i]
            if (all(row[i] == first for row in samples)
                    and first == 0.0):  # det-lint: allow (exact 0 sentinel)
                continue  # never active: don't clutter the timeline
            is_counter = probe.kind == COUNTER
            prev = first if is_counter else None
            for c, row in zip(cycles, samples):
                v = row[i]
                if is_counter:
                    v, prev = v - prev, v  # type: ignore[operator]
                events.append({
                    "ph": "C", "pid": PID_TELEMETRY, "tid": 0,
                    "name": probe.name, "ts": _us(float(c), platform),
                    "args": {"value": v},
                })
        if telemetry.jumps:
            process(PID_ENGINE, "engine")
            for start, target in telemetry.jumps:
                events.append({
                    "ph": "X", "pid": PID_ENGINE, "tid": 0,
                    "cat": "engine", "name": "fast-path jump",
                    "ts": _us(float(start), platform),
                    "dur": _us(float(target - start), platform),
                    "args": {"skipped_cycles": target - start - 1},
                })
        meta["samples"] = telemetry.num_samples
        meta["sample_interval_cycles"] = telemetry.interval

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": meta,
    }


def write_chrome_trace(path: str, trace: Dict[str, Any]) -> None:
    """Serialize a trace object to ``path`` (compact separators: traces
    get large, and Perfetto does not care about whitespace)."""
    with open(path, "w") as fh:
        json.dump(trace, fh, separators=(",", ":"))


def validate_chrome_trace(obj: Any) -> List[str]:
    """Structural validation; returns a list of problems (empty = valid).

    Checks what the Perfetto importer actually requires: a
    ``traceEvents`` list whose entries carry ``ph``/``name``/``pid`` and,
    per phase, sane ``ts``/``dur``/``args`` fields.
    """
    problems: List[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "C", "M"):
            problems.append(f"{where}: unsupported phase {ph!r}")
            continue
        for key in ("name", "pid"):
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        if ph in ("X", "C"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or "value" not in args:
                problems.append(f"{where}: counter without args.value")
        if ph == "M" and not isinstance(ev.get("args"), dict):
            problems.append(f"{where}: metadata without args")
    return problems
