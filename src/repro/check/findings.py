"""Shared finding type of the ``repro.check`` passes.

Both the static analyzer (:mod:`repro.check.static`) and the determinism
lint (:mod:`repro.check.lint`) report :class:`Finding` records so the CLI
(``repro-hbm check``) can render and gate on them uniformly.  Severities:

* ``error``   — the configuration/code *will* produce wrong or
  non-deterministic results; the check command exits non-zero.
* ``warning`` — legal but suspicious (e.g. credit sizing that starves a
  master below its configured outstanding limit).
* ``info``    — notes worth surfacing (e.g. a check that was skipped
  because the experiment runs no simulation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One analyzer/lint result."""

    severity: str
    code: str
    message: str
    location: str = ""
    """Where the finding anchors: an experiment key, a config field, or
    ``path:line`` for lint findings."""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def __str__(self) -> str:
        loc = f" ({self.location})" if self.location else ""
        return f"[{self.severity.upper():7s}] {self.code}: {self.message}{loc}"


@dataclass
class Report:
    """Aggregated findings of one ``check`` invocation."""

    findings: List[Finding] = field(default_factory=list)

    def extend(self, more: Sequence[Finding]) -> None:
        self.findings.extend(more)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors


def _ordered(findings: Sequence[Finding]) -> List[Finding]:
    rank = {s: i for i, s in enumerate(SEVERITIES)}
    return sorted(findings, key=lambda f: (rank[f.severity], f.code,
                                           f.location, f.message))


def render(findings: Sequence[Finding]) -> str:
    """Deterministic text rendering (sorted by severity, code, location)."""
    return "\n".join(str(f) for f in _ordered(findings))


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable rendering (same ordering as :func:`render`);
    the CI mutation-self-test leg uploads this as a build artifact."""
    import json
    return json.dumps(
        [{"severity": f.severity, "code": f.code, "message": f.message,
          "location": f.location} for f in _ordered(findings)],
        indent=2, sort_keys=True)
