"""AST-based determinism lint over the simulator sources.

The reproduction's central claim — same config, same seed, same report,
on either engine loop — only holds if nothing on the simulation path
consults ambient nondeterminism.  This lint walks ``src/`` and forbids
the four ways that property has historically been lost:

* **DL001 — unseeded randomness**: bare ``random.*`` module calls,
  ``numpy.random.default_rng()`` without a seed, ``uuid.uuid4``,
  ``os.urandom``, ``secrets.*``.  Seeded generators
  (``default_rng(seed)``, ``random.Random(seed)``) are fine.
* **DL002 — wall-clock reads**: ``time.time``/``perf_counter``/
  ``monotonic``/``datetime.now`` and friends.  Timing *display* around a
  run is legitimate — annotate the line with ``# det-lint: allow`` to
  acknowledge it.
* **DL003 — iteration-order leaks**: iterating a set literal/``set()``
  call directly (``for x in {...}``) or joining one — set order is
  hash-randomized across runs for str elements.
* **DL004 — mutable default arguments**: ``def f(x=[])`` aliases state
  across calls; sim-state classes have silently shared queues this way.
* **DL005 — float equality**: ``==``/``!=`` against a float literal,
  ``float()`` call, or ``math.inf``/``math.nan`` — cycle math must stay
  integral, and exact float comparison is how drift between the scalar
  and vector engine tiers hides.  Deliberate exact tests (sentinel
  probes, rate == 1.0 fast paths) carry the pragma.

Attribute chains are flattened by :func:`repro.check.astutil.dotted`,
which sees through calls — ``random.Random().random()`` is still an
unseeded-RNG chain even though an ``ast.Call`` sits mid-chain.

Run via ``repro-hbm check --lint`` or the pytest gate
(``tests/test_check_lint.py``); CI runs both.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional

from .astutil import default_src_root, dotted as _dotted, pragma_lines
from .findings import Finding

__all__ = ["PRAGMA", "default_src_root", "lint_paths", "lint_source",
           "lint_tree"]

#: Per-line suppression marker.
PRAGMA = "det-lint: allow"

_RANDOM_FUNCS = {
    "random", "randint", "randrange", "shuffle", "choice", "choices",
    "sample", "uniform", "gauss", "normalvariate", "betavariate", "seed",
    "getrandbits",
}
_WALL_CLOCK = {
    ("time", "time"), ("time", "time_ns"), ("time", "monotonic"),
    ("time", "monotonic_ns"), ("time", "perf_counter"),
    ("time", "perf_counter_ns"), ("time", "process_time"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}
_ENTROPY = {("uuid", "uuid4"), ("uuid", "uuid1"), ("os", "urandom")}

#: Float sentinels whose ``==``/``!=`` comparison DL005 flags.
_FLOAT_SENTINELS = {("math", "inf"), ("math", "nan")}


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, allowed_lines: set) -> None:
        self.path = path
        self.allowed = allowed_lines
        self.findings: List[Finding] = []

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if line in self.allowed:
            return
        self.findings.append(Finding(
            "error", code, message, f"{self.path}:{line}"))

    # -- DL001 / DL002: calls ------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        chain = _dotted(node.func)
        if len(chain) >= 2:
            head, tail = chain[0], chain[-1]
            pair = (chain[-2], tail)
            if head == "random" and tail in _RANDOM_FUNCS:
                self._report(node, "DL001",
                             f"unseeded stateful RNG: random.{tail}()")
            elif head == "secrets":
                self._report(node, "DL001",
                             f"entropy source: secrets.{tail}()")
            elif pair in _ENTROPY:
                self._report(node, "DL001",
                             f"entropy source: {'.'.join(pair)}()")
            elif tail == "default_rng" and not node.args and not node.keywords:
                self._report(node, "DL001",
                             "numpy default_rng() without a seed")
            elif pair in _WALL_CLOCK:
                self._report(node, "DL002",
                             f"wall-clock read: {'.'.join(pair)}()")
        elif chain == ("default_rng",) and not node.args and not node.keywords:
            self._report(node, "DL001", "default_rng() without a seed")
        self.generic_visit(node)

    # -- DL003: set iteration order ------------------------------------------

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, ast.Set):
            return True
        return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))

    def _check_iter(self, node: ast.AST, it: ast.AST) -> None:
        if self._is_set_expr(it):
            self._report(node, "DL003",
                         "iteration over a set: order is hash-randomized; "
                         "wrap in sorted()")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node, node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node, node.iter)
        self.generic_visit(node)

    # -- DL004: mutable default args -----------------------------------------

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for d in defaults:
            mutable = isinstance(d, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(d, ast.Call) and isinstance(d.func, ast.Name)
                and d.func.id in ("list", "dict", "set"))
            if mutable:
                self._report(d, "DL004",
                             f"mutable default argument in {node.name}()")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- DL005: float equality -----------------------------------------------

    @classmethod
    def _is_floaty(cls, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.UnaryOp):
            return cls._is_floaty(node.operand)
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "float"):
            return True
        return _dotted(node)[-2:] in _FLOAT_SENTINELS

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                    self._is_floaty(left) or self._is_floaty(right)):
                self._report(node, "DL005",
                             "float equality comparison: cycle math must "
                             "stay integral (restructure, or acknowledge a "
                             f"deliberate exact test with '# {PRAGMA}')")
                break
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one module's source text."""
    allowed = pragma_lines(source, PRAGMA)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding("error", "DL000", f"syntax error: {exc.msg}",
                        f"{path}:{exc.lineno or 0}")]
    visitor = _Visitor(path, allowed)
    visitor.visit(tree)
    return visitor.findings


def lint_paths(paths: Iterable[Path],
               root: Optional[Path] = None) -> List[Finding]:
    """Lint a set of files; locations are reported relative to ``root``."""
    findings: List[Finding] = []
    for p in sorted(paths):
        rel = str(p.relative_to(root)) if root else str(p)
        findings.extend(lint_source(p.read_text(), rel))
    return findings


def lint_tree(root: Path) -> List[Finding]:
    """Lint every ``*.py`` under ``root`` (the ``src/`` gate)."""
    return lint_paths(root.rglob("*.py"), root=root.parent)
