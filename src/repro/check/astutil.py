"""Shared AST utilities for the static-analysis passes.

Extracted from :mod:`repro.check.lint` so the determinism lint and the
state-coverage analyzer (:mod:`repro.check.statecheck`) agree on how
attribute chains flatten, how per-line pragmas are honoured, and how the
``src/repro`` tree is loaded for whole-program analysis.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Set, Tuple


def dotted(node: ast.AST) -> Tuple[str, ...]:
    """Flatten an attribute chain to name parts (best effort).

    Sees through :class:`ast.Call` nodes inside the chain, so
    ``random.Random().random`` flattens to
    ``("random", "Random", "random")`` rather than being truncated at
    the intervening call — chains the determinism lint must not lose.
    Unresolvable bases (subscripts, literals) terminate the chain.
    """
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            break
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


def pragma_lines(source: str, pragma: str) -> Set[int]:
    """1-based line numbers of ``source`` carrying ``pragma``."""
    return {i for i, line in enumerate(source.splitlines(), start=1)
            if pragma in line}


def default_src_root() -> Path:
    """The installed package's source root (``src/repro``)."""
    return Path(__file__).resolve().parent.parent


def module_name(path: Path, src_root: Path) -> str:
    """Dotted module name of ``path`` relative to ``src_root``'s parent
    (``src_root / 'dram/soa.py'`` -> ``'repro.dram.soa'``)."""
    rel = path.relative_to(src_root)
    parts = (src_root.name,) + rel.with_suffix("").parts
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def load_sources(root: Optional[Path] = None) -> Dict[str, str]:
    """Read every ``*.py`` under ``root`` (default: the installed
    ``src/repro``), keyed by dotted module name.

    The result is the unit the whole-program analyses operate on —
    tests substitute mutated copies of individual modules to prove the
    analyzer flags seeded drift.
    """
    src_root = root if root is not None else default_src_root()
    sources: Dict[str, str] = {}
    for path in sorted(src_root.rglob("*.py")):
        sources[module_name(path, src_root)] = path.read_text()
    return sources


def parse_sources(sources: Mapping[str, str],
                  ) -> Tuple[Dict[str, ast.Module], Dict[str, str]]:
    """Parse every module; returns ``(trees, syntax_errors)``.

    Unparsable modules land in the error map (module -> message) so the
    caller can surface them instead of silently analyzing less code.
    """
    trees: Dict[str, ast.Module] = {}
    errors: Dict[str, str] = {}
    for name in sorted(sources):
        try:
            trees[name] = ast.parse(sources[name], filename=name)
        except SyntaxError as exc:
            errors[name] = f"line {exc.lineno or 0}: {exc.msg}"
    return trees, errors
