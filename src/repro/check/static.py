"""Static analysis of simulation configs, topologies, and fault plans.

Everything here runs *without simulating*: the analyzer inspects a
:class:`~repro.sim.config.SimConfig`, a constructed fabric (its address
map, credit sizing, and resource wait-graph), and any
:class:`~repro.faults.plan.FaultPlan` — and reports
:class:`~repro.check.findings.Finding` records.  The CLI front end is
``repro-hbm check <experiment ...>`` (or ``--all``); the experiment
runner calls :func:`quick_check` before every simulation so registry
experiments are pre-validated.

The four analyses:

* **Address-map bijection** (:func:`check_address_map`) — samples the
  global↔(pch, local) mapping at channel boundaries, interleave-
  granularity edges, and a deterministic LCG probe set, verifying the
  round trip and range invariants.  A non-bijective map silently
  aliases traffic onto too few channels — the classic source of
  plausible-but-wrong bandwidth numbers.
* **Credit sizing** (:func:`check_credits`) — flags configurations that
  wedge or starve under the configured burst/outstanding limits, e.g. a
  MAO reorder depth whose read slots (``depth * READS_PER_LANE``) cannot
  cover the outstanding credit.
* **Deadlock-capable cycles** (:func:`build_wait_graph` /
  :class:`WaitGraph`) — builds the holds-while-waiting graph of the
  fabric's bounded resources and reports strongly connected components
  that contain no always-draining node.  The segmented fabric's shared
  request/response lateral buses form the textbook cycle; the model
  drains it by metering the bus (reported as info), but the same graph
  immediately exposes a topology where the drain is removed.
* **Fault-plan liveness** (:func:`check_fault_plan`) — events that can
  never fire (scheduled past the horizon, duplicate offline targets),
  out-of-range targets, and degradation plans with no survivors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ConfigError, ReproError
from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..sim.config import SimConfig
from .findings import Finding

#: Deterministic LCG (splitmix-style constants) for address probes.
_LCG_MUL = 6364136223846793005
_LCG_INC = 1442695040888963407
_NUM_PROBES = 256


# -- address-map bijection ----------------------------------------------------


def _probe_addresses(platform: HbmPlatform, granularity: int) -> List[int]:
    cap = platform.total_capacity
    probes: Set[int] = set()
    for p in range(platform.num_pch):
        base = p * platform.pch_capacity
        for off in (0, 32, platform.pch_capacity - 32):
            probes.add(base + off)
    for edge in range(0, min(cap, 16 * granularity), granularity):
        probes.add(edge)
        if edge >= 32:
            probes.add(edge - 32)
    x = 0x9E3779B97F4A7C15
    for _ in range(_NUM_PROBES):
        x = (x * _LCG_MUL + _LCG_INC) % (1 << 64)
        probes.add((x % cap) // 32 * 32)
    return sorted(a for a in probes if 0 <= a < cap)


def check_address_map(address_map, platform: HbmPlatform,
                      location: str = "") -> List[Finding]:
    """Sample the map for bijectivity and range violations."""
    findings: List[Finding] = []
    granularity = getattr(address_map, "granularity", platform.pch_capacity)
    seen: Dict[Tuple[int, int], int] = {}
    for addr in _probe_addresses(platform, granularity):
        try:
            pch = address_map.pch_of(addr)
            local = address_map.local_of(addr)
            back = address_map.global_of(pch, local)
        except ReproError as exc:
            findings.append(Finding(
                "error", "ADDR_BIJECTION",
                f"map raised on in-range address {addr:#x}: {exc}", location))
            continue
        if not 0 <= pch < platform.num_pch:
            findings.append(Finding(
                "error", "ADDR_BIJECTION",
                f"address {addr:#x} maps to out-of-range pch {pch}",
                location))
        elif not 0 <= local < platform.pch_capacity:
            findings.append(Finding(
                "error", "ADDR_BIJECTION",
                f"address {addr:#x} maps to out-of-range local {local:#x}",
                location))
        elif back != addr:
            findings.append(Finding(
                "error", "ADDR_BIJECTION",
                f"round trip {addr:#x} -> (pch {pch}, {local:#x}) -> "
                f"{back:#x} is not the identity", location))
        else:
            prev = seen.get((pch, local))
            if prev is not None and prev != addr:
                findings.append(Finding(
                    "error", "ADDR_BIJECTION",
                    f"(pch {pch}, {local:#x}) aliases both {prev:#x} and "
                    f"{addr:#x}", location))
            seen[(pch, local)] = addr
        if len(findings) >= 5:
            findings.append(Finding(
                "info", "ADDR_BIJECTION",
                "further bijection probes suppressed", location))
            break
    return findings


# -- credit / timeout sizing --------------------------------------------------


def check_credits(fabric, cfg: SimConfig, location: str = "") -> List[Finding]:
    """Credit sizing that can wedge or starve under ``cfg``."""
    findings: List[Finding] = []
    platform = fabric.platform
    reorder = getattr(fabric, "reorder", None)
    if reorder is not None:
        from ..fabric.mao_fabric import READS_PER_LANE
        depth = fabric.config.reorder_depth
        slots = max(1, depth) * READS_PER_LANE
        if slots < cfg.outstanding:
            findings.append(Finding(
                "warning", "CREDIT_STARVE",
                f"reorder depth {depth} offers {slots} read slots "
                f"({READS_PER_LANE}/lane) but outstanding={cfg.outstanding}: "
                f"read issue saturates below the configured credit",
                location))
        if depth < cfg.outstanding:
            findings.append(Finding(
                "info", "ORDERING_RELAXED",
                f"reorder depth {depth} < outstanding {cfg.outstanding}: "
                f"same-lane reads may be concurrently in flight, so the "
                f"analytical release rule does not guarantee same-ID issue "
                f"order (the sanitizer counts, not raises, there)",
                location))
    sched = fabric.sched
    per_mc_sources = max(1, platform.num_masters // max(1, len(fabric.mcs)))
    demand = cfg.outstanding * per_mc_sources
    capacity = (sched.queue_capacity
                + sched.request_fifo_capacity * platform.pch_per_mc)
    if capacity < min(demand, cfg.outstanding):
        findings.append(Finding(
            "warning", "CREDIT_WEDGE",
            f"controller buffering ({capacity} requests) below a single "
            f"master's outstanding credit ({cfg.outstanding}): sustained "
            f"ingress backpressure will serialize issue", location))
    return findings


def check_config(cfg: SimConfig, platform: HbmPlatform = DEFAULT_PLATFORM,
                 location: str = "") -> List[Finding]:
    """Cross-field timeout/retry sizing checks beyond hard validation."""
    findings: List[Finding] = []
    if cfg.txn_timeout_cycles is not None:
        # Hard validation already rejects cap >= timeout; warn when the
        # remaining window cannot absorb a single worst-case backoff plus
        # a round trip.
        if cfg.txn_timeout_cycles < 2 * cfg.retry_backoff_cap:
            findings.append(Finding(
                "warning", "TIMEOUT_LADDER",
                f"txn_timeout_cycles={cfg.txn_timeout_cycles} leaves less "
                f"than one retry round trip above the backoff cap "
                f"({cfg.retry_backoff_cap}): late retries will be reported "
                f"as timeouts", location))
    if cfg.progress_timeout_cycles is not None:
        t_rfc = platform.dram.t_rfc
        if cfg.progress_timeout_cycles <= t_rfc:
            findings.append(Finding(
                "warning", "WATCHDOG_REFRESH",
                f"progress_timeout_cycles={cfg.progress_timeout_cycles} is "
                f"within one refresh stall (t_rfc={t_rfc}): a healthy "
                f"refresh can trip the deadlock watchdog", location))
    return findings


# -- wait-graph / deadlock analysis -------------------------------------------


class WaitGraph:
    """Holds-while-waiting graph over bounded fabric resources.

    An edge ``a -> b`` means a transaction can occupy resource ``a``
    while waiting for space in ``b``.  A cycle of bounded resources is
    *deadlock-capable* unless at least one node on it always drains
    (a rate meter or an unconditional sink).
    """

    def __init__(self) -> None:
        self.edges: Dict[str, Set[str]] = {}
        self.drains: Set[str] = set()

    def add_edge(self, src: str, dst: str) -> None:
        self.edges.setdefault(src, set()).add(dst)
        self.edges.setdefault(dst, set())

    def mark_drains(self, node: str) -> None:
        """Mark ``node`` as always-draining (meter/sink semantics)."""
        self.edges.setdefault(node, set())
        self.drains.add(node)

    def cycles(self) -> List[List[str]]:
        """Strongly connected components that contain a cycle (sorted)."""
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        def strongconnect(v: str) -> None:
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            for w in sorted(self.edges.get(v, ())):
                if w not in index:
                    strongconnect(w)
                    low[v] = min(low[v], low[w])
                elif w in on_stack:
                    low[v] = min(low[v], index[w])
            if low[v] == index[v]:
                comp: List[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                if len(comp) > 1 or v in self.edges.get(v, ()):
                    sccs.append(sorted(comp))

        for v in sorted(self.edges):
            if v not in index:
                strongconnect(v)
        return sorted(sccs)

    def deadlock_cycles(self) -> List[List[str]]:
        """Cycles with no always-draining node: genuinely deadlock-capable."""
        return [c for c in self.cycles()
                if not any(n in self.drains for n in c)]


def build_wait_graph(fabric) -> WaitGraph:
    """Construct the wait graph of a fabric model's bounded resources."""
    g = WaitGraph()
    platform = fabric.platform
    name = getattr(fabric, "name", "fabric")
    if name == "xlnx":
        # Chain: switch request port -> lateral buses -> MC queue -> PCH
        # -> lateral buses (the *same* physical buses) -> master egress.
        buses = platform.lateral_buses
        for s in range(platform.num_switches):
            for parity in range(buses):
                bus = f"bus{s % max(1, platform.num_switches - 1)}p{parity}"
                g.add_edge(f"sw{s}.req", bus)
                g.add_edge(bus, f"mc{s * platform.mcs_per_switch}")
                g.add_edge(f"pch{s * platform.pch_per_mc}", bus)
                # The model meters each shared bus (SharedBus): it always
                # accepts and drains by rate, cutting the req/resp cycle.
                g.mark_drains(bus)
            mc = f"mc{s * platform.mcs_per_switch}"
            pch = f"pch{s * platform.pch_per_mc}"
            g.add_edge(mc, pch)
            g.add_edge(pch, f"sw{s}.resp")
            g.mark_drains(f"sw{s}.resp")  # master egress: unconditional sink
    elif name == "mao":
        # Hierarchical network: per-PCH accept meters and per-master
        # egress meters, plus reorder lanes between PCH and master.
        for p in range(platform.num_pch):
            g.add_edge(f"accept{p}", f"mc{p // platform.pch_per_mc}")
            g.add_edge(f"mc{p // platform.pch_per_mc}", f"pch{p}")
            g.mark_drains(f"accept{p}")
        for m in range(platform.num_masters):
            g.add_edge(f"pch{m % platform.num_pch}", f"lane{m}")
            g.add_edge(f"lane{m}", f"egress{m}")
            g.mark_drains(f"egress{m}")
            g.mark_drains(f"lane{m}")  # release rule is pure timing
    else:
        for p in range(platform.num_pch):
            g.add_edge(f"mc{p // platform.pch_per_mc}", f"pch{p}")
            g.add_edge(f"pch{p}", "egress")
        g.mark_drains("egress")
    return g


def check_topology(fabric, location: str = "") -> List[Finding]:
    """Deadlock analysis of the fabric's wait graph."""
    findings: List[Finding] = []
    g = build_wait_graph(fabric)
    dead = g.deadlock_cycles()
    for cyc in dead:
        findings.append(Finding(
            "error", "DEADLOCK_CYCLE",
            f"deadlock-capable resource cycle: {' -> '.join(cyc)}",
            location))
    if not dead:
        cycles = g.cycles()
        for cyc in cycles:
            drained = sorted(n for n in cyc if n in g.drains)
            findings.append(Finding(
                "info", "DRAINED_CYCLE",
                f"resource cycle {' -> '.join(cyc)} is cut by draining "
                f"node(s) {', '.join(drained)}", location))
    return findings


# -- fault-plan liveness ------------------------------------------------------


def check_fault_plan(plan, cycles: int,
                     platform: HbmPlatform = DEFAULT_PLATFORM,
                     location: str = "") -> List[Finding]:
    """Events that cannot fire or target nonexistent resources."""
    from ..faults.plan import FaultKind
    findings: List[Finding] = []
    offline_seen: Set[int] = set()
    for i, ev in enumerate(plan.events):
        where = f"{location}#event{i}" if location else f"event{i}"
        if ev.at >= cycles:
            findings.append(Finding(
                "warning", "FAULT_NEVER_FIRES",
                f"{ev.kind.value} scheduled at cycle {ev.at}, past the "
                f"{cycles}-cycle horizon", where))
        if ev.pch is not None and not 0 <= ev.pch < platform.num_pch:
            findings.append(Finding(
                "error", "FAULT_TARGET_RANGE",
                f"{ev.kind.value} targets pch {ev.pch}, device has "
                f"{platform.num_pch}", where))
        if (ev.kind is FaultKind.LINK_STALL and ev.cut is not None
                and not 0 <= ev.cut < platform.num_switches - 1):
            findings.append(Finding(
                "error", "FAULT_TARGET_RANGE",
                f"link-stall targets cut {ev.cut}, topology has "
                f"{platform.num_switches - 1}", where))
        if ev.kind is FaultKind.PCH_OFFLINE and ev.pch is not None:
            if ev.pch in offline_seen:
                findings.append(Finding(
                    "warning", "FAULT_NEVER_FIRES",
                    f"pch {ev.pch} taken offline twice; the second event "
                    f"is a no-op", where))
            offline_seen.add(ev.pch)
    if plan.degrade and len(offline_seen) >= platform.num_pch:
        findings.append(Finding(
            "error", "FAULT_NO_SURVIVORS",
            "degradation plan takes every pseudo-channel offline: no "
            "survivor to remap onto", location))
    return findings


# -- experiment pre-validation ------------------------------------------------


def check_fabric_kind(kind, cfg: SimConfig,
                      platform: HbmPlatform = DEFAULT_PLATFORM,
                      location: str = "") -> List[Finding]:
    """Full static pass over one fabric kind under ``cfg``."""
    from .. import make_fabric
    findings: List[Finding] = []
    try:
        fabric = make_fabric(kind, platform)
    except ConfigError as exc:
        return [Finding("error", "CONFIG", str(exc), location)]
    findings.extend(check_address_map(fabric.address_map, platform, location))
    findings.extend(check_credits(fabric, cfg, location))
    findings.extend(check_topology(fabric, location))
    findings.extend(check_config(cfg, platform, location))
    return findings


def check_experiment(key: str, cycles: Optional[int] = None) -> List[Finding]:
    """Pre-validate one registry experiment without running it."""
    from ..types import FabricKind
    from ..experiments.registry import get_experiment
    spec = get_experiment(key)
    if not spec.uses_simulation:
        return [Finding("info", "NO_SIM",
                        "analytical experiment; no simulation to validate",
                        key)]
    findings: List[Finding] = []
    if key == "chaos":
        from ..faults.chaos import SCENARIOS
        horizon = cycles or 6000
        for name in sorted(SCENARIOS):
            plan = SCENARIOS[name].build(horizon, 0)
            findings.extend(check_fault_plan(
                plan, horizon, DEFAULT_PLATFORM, f"{key}:{name}"))
        return findings
    from ..experiments._common import DEFAULT_CYCLES
    horizon = cycles or DEFAULT_CYCLES
    cfg = SimConfig(cycles=horizon, warmup=min(horizon // 4, 3_000))
    for kind in sorted(FabricKind, key=lambda k: k.value):
        findings.extend(check_fabric_kind(
            kind, cfg, DEFAULT_PLATFORM, f"{key}:{kind.value}"))
    return findings


def check_all(cycles: Optional[int] = None) -> Dict[str, List[Finding]]:
    """Pre-validate every registry experiment (CLI ``check --all``)."""
    from ..experiments.registry import EXPERIMENTS
    return {key: check_experiment(key, cycles) for key in sorted(EXPERIMENTS)}


def quick_check(fabric, cfg: SimConfig) -> None:
    """O(1) pre-flight used by the experiment runner before simulating.

    Raises :class:`~repro.errors.ConfigError` on error-severity findings;
    warnings are intentionally silent here (sweeps legitimately explore
    starved configurations, e.g. the Fig. 6 reorder sweep).
    """
    errors = [f for f in (check_credits(fabric, cfg)
                          + check_config(cfg, fabric.platform))
              if f.severity == "error"]
    if errors:
        raise ConfigError("; ".join(f.message for f in errors))


def render_experiment_report(
    results: Dict[str, List[Finding]],
) -> Tuple[str, bool]:
    """Render ``check_all``-style results; returns (text, ok)."""
    from .findings import render
    lines: List[str] = []
    total_err = total_warn = 0
    for key in sorted(results):
        findings = results[key]
        errs = sum(1 for f in findings if f.severity == "error")
        warns = sum(1 for f in findings if f.severity == "warning")
        total_err += errs
        total_warn += warns
        status = "FAIL" if errs else "ok"
        lines.append(f"{key:<12} {status}  ({errs} errors, {warns} warnings)")
        shown = [f for f in findings if f.severity != "info"]
        if shown:
            lines.append("\n".join("  " + ln
                                   for ln in render(shown).splitlines()))
    lines.append(f"{len(results)} experiment(s) checked: "
                 f"{total_err} errors, {total_warn} warnings")
    return "\n".join(lines), total_err == 0
