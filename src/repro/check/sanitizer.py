"""Runtime invariant sanitizer for the cycle simulation.

The :class:`Sanitizer` attaches to a live :class:`~repro.sim.engine.Engine`
and validates, on every transaction attempt, the invariants a silent
modeling bug would break first (Sec. IV-A/B of the paper — exactly the
machinery the reproduced figures rest on):

* **AXI same-ID response ordering** — on fabrics that guarantee it (the
  MAO's reorder-buffer lanes), read responses on one ``(master, AXI ID)``
  lane must be delivered in issue order.  The MAO timing model preserves
  this whenever the reorder depth covers the outstanding credit
  (``reorder_depth >= outstanding``: same-lane reads are then never
  concurrently in flight).  Below that the analytical release rule is a
  documented approximation — inversions are *counted*
  (:attr:`Sanitizer.relaxed_inversions`) and only raise under
  ``strict_ordering``.
* **Transaction conservation** — every completion matches exactly one
  in-flight issue, and at the end of the run each master's ledger
  balances: ``issued == completed + unrecoverable + queued retries +
  in flight`` (per transaction) and ``issued + retries == completed +
  nacks + in flight`` (per attempt).
* **Credit / reorder-slot leaks** — outstanding credits stay within
  ``[0, limit]``, the MAO's per-master read slots within
  ``[0, reorder_depth * READS_PER_LANE]``, and after a successful drain
  every credit and slot is back home.
* **Monotonic timestamps** — delivery cycles never move backwards and
  ``issue <= accept <= complete`` per attempt.
* **DRAM bank-state legality** — each pseudo-channel's
  :class:`~repro.dram.bank.BankSet` is wrapped in a shadow
  :class:`CheckedBankSet` proxy that verifies every access: a claimed
  row hit must target the open row, a miss must open the row it
  activates, and the per-bank activate bound never moves backwards.
* **Watchdog/retry consistency** — a completion's attempt ordinal
  matches its issue and re-issues bump the ordinal by exactly one.

Violations raise typed :class:`~repro.errors.SanitizerError` subclasses
carrying a minimal repro context (fabric, config, fault plan, cycle,
transaction).  When the sanitizer is *off* (the default) the engine pays
a single ``is None`` test per completion batch — the near-zero-overhead
contract benchmarked in the fast-path tests.

The sanitizer is a pure observer: it never changes timing, so a run with
the sanitizer enabled produces a bit-identical
:class:`~repro.sim.stats.SimReport`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, Optional, Tuple

from ..axi.transaction import (AxiTransaction, STATUS_NAMES, STATUS_OK,
                               check_burst_legal)
from ..errors import (AxiProtocolError, BankStateViolation,
                      ConservationViolation, CreditLeak, OrderingViolation,
                      RetryConsistencyViolation, SanitizerError,
                      TimestampViolation)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Engine


class CheckedBankSet:
    """Shadow proxy validating every :class:`~repro.dram.bank.BankSet` op.

    Delegates everything to the wrapped bank set (timing is untouched, so
    reports stay bit-identical) while cross-checking each ``access``
    against the pre-call row state: the legality invariant is that a
    column access may only claim a hit on the currently open row, and a
    miss must activate — never earlier than the bank's ``next_act``
    bound.
    """

    def __init__(self, inner, sanitizer: "Sanitizer", pch_index: int) -> None:
        self._inner = inner
        self._san = sanitizer
        self._pch = pch_index

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def access(self, local_addr: int, earliest: float) -> Tuple[float, bool]:
        inner = self._inner
        t = inner.timing
        row = local_addr // t.row_bytes
        bank = row % t.num_banks
        predicted_hit = inner.open_row[bank] == row
        act_bound = inner.next_act[bank]
        ready, hit = inner.access(local_addr, earliest)
        san = self._san
        san.checks_run += 1
        where = f"pch {self._pch} bank {bank} row {row}"
        if hit != predicted_hit:
            raise BankStateViolation(
                f"column access to {where} reported "
                f"{'hit' if hit else 'miss'} but row "
                f"{inner.open_row[bank] if predicted_hit else 'closed/other'}"
                f" state implies {'hit' if predicted_hit else 'miss'}",
                san._ctx())
        if ready < earliest:
            raise BankStateViolation(
                f"{where}: column-ready {ready} before request time "
                f"{earliest}", san._ctx())
        if inner.open_row[bank] != row:
            raise BankStateViolation(
                f"{where}: access left bank open at row "
                f"{inner.open_row[bank]} instead of {row}", san._ctx())
        if not hit and inner.next_act[bank] < act_bound:
            raise BankStateViolation(
                f"{where}: activate bound moved backwards "
                f"({act_bound} -> {inner.next_act[bank]})", san._ctx())
        return ready, hit


class Sanitizer:
    """Runtime invariant checker; attach with :meth:`attach`.

    The engine constructs and attaches one automatically when
    :attr:`~repro.sim.config.SimConfig.sanitize` is set (CLI
    ``--sanitize``, env ``REPRO_SANITIZE=1``).  Tests may attach their
    own instance — e.g. with ``strict_ordering=True`` — to an engine
    built with sanitizing off.
    """

    def __init__(self, strict_ordering: bool = False) -> None:
        self.strict_ordering = strict_ordering
        self.engine: Optional["Engine"] = None
        #: uid -> (txn, issue cycle, attempt ordinal) of in-flight attempts.
        self._inflight: Dict[int, Tuple[AxiTransaction, int, int]] = {}
        #: (master, axi_id) -> issue-ordered uids of in-flight reads.
        self._lanes: Dict[Tuple[int, int], Deque[int]] = {}
        #: uid -> attempt ordinal of the last *failed* completion.
        self._last_attempt: Dict[int, int] = {}
        self._last_cycle = -1
        self.attempts_issued = 0
        self.attempts_finished = 0
        #: Total individual invariant checks performed (diagnostics).
        self.checks_run = 0
        #: Same-lane delivery inversions observed while the ordering check
        #: was *relaxed* (reorder_depth < outstanding: the analytical
        #: release rule does not guarantee issue order there).
        self.relaxed_inversions = 0
        self._track_lanes = False
        self._ordering_armed = False

    # -- wiring --------------------------------------------------------------

    def attach(self, engine: "Engine") -> None:
        """Hook into ``engine``: issue hooks, observer list, bank proxies."""
        if self.engine is not None:
            raise SanitizerError("sanitizer already attached")
        self.engine = engine
        fabric = engine.fabric
        for mp in engine.masters:
            mp.on_issue = self._chain(mp.on_issue)
        engine.observers.append(self)
        engine.sanitizer = self
        for i, pch in enumerate(fabric.pchs):
            pch.banks = CheckedBankSet(pch.banks, self, i)
        self._track_lanes = bool(getattr(fabric, "same_id_ordering", False))
        if self._track_lanes:
            depth = fabric.config.reorder_depth
            outstanding = max((mp.outstanding_limit for mp in engine.masters),
                              default=0)
            self._ordering_armed = (self.strict_ordering
                                    or depth >= outstanding)

    def _chain(
        self, prev: Optional[Callable[[AxiTransaction, int], None]],
    ) -> Callable[[AxiTransaction, int], None]:
        """Compose with an existing issue hook (the transaction watchdog)."""

        def hook(txn: AxiTransaction, cycle: int) -> None:
            if prev is not None:
                prev(txn, cycle)
            self.on_issue(txn, cycle)

        return hook

    def _ctx(self, cycle: Optional[int] = None,
             txn: Optional[AxiTransaction] = None) -> dict:
        """Minimal repro recipe attached to every violation."""
        ctx: dict = {}
        eng = self.engine
        if eng is not None:
            ctx["fabric"] = eng.fabric.name
            cfg = eng.config
            ctx["config"] = (f"cycles={cfg.cycles} warmup={cfg.warmup} "
                             f"outstanding={cfg.outstanding} "
                             f"fast_path={cfg.fast_path}")
            if eng.faults is not None and eng.faults:
                ctx["faults"] = eng.faults.describe()
            if cycle is None:
                cycle = eng.cycle
        if cycle is not None:
            ctx["cycle"] = cycle
        if txn is not None:
            ctx["txn"] = (f"#{txn.uid} {'RD' if txn.is_read else 'WR'} "
                          f"m{txn.master}->pch{txn.pch} bl{txn.burst_len} "
                          f"attempt {txn.retries}")
        return ctx

    # -- per-attempt hooks ---------------------------------------------------

    def on_issue(self, txn: AxiTransaction, cycle: int) -> None:
        """Called (chained after the watchdog) on every issue/re-issue."""
        self.checks_run += 1
        self.attempts_issued += 1
        uid = txn.uid
        if uid in self._inflight:
            raise ConservationViolation(
                "transaction issued while already in flight",
                self._ctx(cycle, txn))
        last = self._last_attempt.get(uid)
        if last is None:
            if txn.retries != 0:
                raise RetryConsistencyViolation(
                    f"first issue carries attempt ordinal {txn.retries}",
                    self._ctx(cycle, txn))
        elif txn.retries != last + 1:
            raise RetryConsistencyViolation(
                f"re-issue attempt ordinal {txn.retries} after failed "
                f"attempt {last}", self._ctx(cycle, txn))
        if txn.issue_cycle != cycle:
            raise TimestampViolation(
                f"issue stamped {txn.issue_cycle}, hook called at {cycle}",
                self._ctx(cycle, txn))
        try:
            check_burst_legal(txn.address, txn.burst_len)
        except AxiProtocolError as exc:
            raise SanitizerError(f"illegal burst issued: {exc}",
                                 self._ctx(cycle, txn)) from exc
        eng = self.engine
        if eng is not None:
            platform = eng.fabric.platform
            if not 0 <= txn.pch < platform.num_pch:
                raise SanitizerError(
                    f"resolved pseudo-channel {txn.pch} out of range",
                    self._ctx(cycle, txn))
            if not 0 <= txn.local < platform.pch_capacity:
                raise SanitizerError(
                    f"local address {txn.local:#x} outside channel capacity",
                    self._ctx(cycle, txn))
        self._inflight[uid] = (txn, cycle, txn.retries)
        if self._track_lanes and txn.is_read:
            self._lanes.setdefault((txn.master, txn.axi_id),
                                   deque()).append(uid)

    def on_complete(self, txn: AxiTransaction, cycle: int) -> None:
        """Observer hook: every attempt's completion (OK, NACK, poisoned)."""
        self.checks_run += 1
        self.attempts_finished += 1
        uid = txn.uid
        entry = self._inflight.pop(uid, None)
        if entry is None:
            raise ConservationViolation(
                "completion for a transaction that is not in flight "
                "(spurious or duplicated)", self._ctx(cycle, txn))
        _, issue_cycle, attempt = entry
        if txn.retries != attempt:
            raise RetryConsistencyViolation(
                f"completed attempt ordinal {txn.retries} does not match "
                f"issue-time ordinal {attempt}", self._ctx(cycle, txn))
        if cycle < self._last_cycle:
            raise TimestampViolation(
                f"completion batch at cycle {cycle} after cycle "
                f"{self._last_cycle}", self._ctx(cycle, txn))
        self._last_cycle = cycle
        if txn.status not in STATUS_NAMES:
            raise SanitizerError(f"unknown completion status {txn.status}",
                                 self._ctx(cycle, txn))
        if txn.complete_cycle > cycle:
            raise TimestampViolation(
                f"completion stamped {txn.complete_cycle}, delivered at "
                f"{cycle}", self._ctx(cycle, txn))
        if txn.issue_cycle > txn.complete_cycle:
            raise TimestampViolation(
                f"completion stamp {txn.complete_cycle} before issue stamp "
                f"{txn.issue_cycle}", self._ctx(cycle, txn))
        if (txn.retries == 0 and txn.accept_cycle >= 0
                and not txn.issue_cycle <= txn.accept_cycle
                <= txn.complete_cycle):
            raise TimestampViolation(
                f"accept stamp {txn.accept_cycle} outside "
                f"[{txn.issue_cycle}, {txn.complete_cycle}]",
                self._ctx(cycle, txn))
        if self._track_lanes and txn.is_read:
            self._check_lane_order(txn, cycle)
        if txn.status == STATUS_OK:
            self._last_attempt.pop(uid, None)
        else:
            self._last_attempt[uid] = txn.retries

    def _check_lane_order(self, txn: AxiTransaction, cycle: int) -> None:
        key = (txn.master, txn.axi_id)
        lane = self._lanes.get(key)
        if lane is None or txn.uid not in lane:
            raise ConservationViolation(
                "read completion not tracked on its AXI ID lane",
                self._ctx(cycle, txn))
        # Successful data responses must leave the lane head-first; NACKs
        # bypass the reorder release path, so they only vacate their slot.
        if txn.status == STATUS_OK and lane[0] != txn.uid:
            if self._ordering_armed:
                raise OrderingViolation(
                    f"same-ID response overtook transaction #{lane[0]} on "
                    f"lane (master {txn.master}, id {txn.axi_id})",
                    self._ctx(cycle, txn))
            self.relaxed_inversions += 1
        lane.remove(txn.uid)
        if not lane:
            del self._lanes[key]

    # -- batch / end-of-run checks -------------------------------------------

    def after_batch(self, cycle: int) -> None:
        """Credit and conservation checks after one completion batch."""
        self.checks_run += 1
        eng = self.engine
        if eng is None:
            return
        total_out = 0
        for mp in eng.masters:
            if not 0 <= mp.outstanding <= mp.outstanding_limit:
                raise CreditLeak(
                    f"master {mp.index} outstanding credit {mp.outstanding} "
                    f"outside [0, {mp.outstanding_limit}]", self._ctx(cycle))
            total_out += mp.outstanding
        if total_out != len(self._inflight):
            raise ConservationViolation(
                f"{total_out} credits claimed but {len(self._inflight)} "
                f"attempts in flight", self._ctx(cycle))
        reads = getattr(eng.fabric, "_reads_in_flight", None)
        if reads is not None:
            bound = eng.fabric._max_reads
            for m, n in enumerate(reads):
                if not 0 <= n <= bound:
                    raise CreditLeak(
                        f"master {m} reorder read slots {n} outside "
                        f"[0, {bound}]", self._ctx(cycle))

    def finish(self) -> None:
        """End-of-run ledger checks (engine calls this before reporting)."""
        eng = self.engine
        if eng is None:
            return
        for mp in eng.masters:
            self.checks_run += 2
            attempts = mp.issued + mp.retries
            finished = mp.completed + mp.nacks
            if attempts != finished + mp.outstanding:
                raise ConservationViolation(
                    f"master {mp.index} attempt ledger: {attempts} issued "
                    f"!= {finished} finished + {mp.outstanding} in flight",
                    self._ctx())
            queued = len(mp._retry)
            if mp.issued != (mp.completed + mp.unrecoverable + queued
                             + mp.outstanding):
                raise ConservationViolation(
                    f"master {mp.index} transaction ledger: {mp.issued} "
                    f"issued != {mp.completed} completed + "
                    f"{mp.unrecoverable} unrecoverable + {queued} queued "
                    f"retries + {mp.outstanding} in flight", self._ctx())
        if self.attempts_issued != self.attempts_finished + len(self._inflight):
            raise ConservationViolation(
                f"sanitizer ledger: {self.attempts_issued} tracked issues != "
                f"{self.attempts_finished} completions + "
                f"{len(self._inflight)} in flight", self._ctx())
        for (m, lane), uids in self._lanes.items():
            for uid in uids:
                if uid not in self._inflight:
                    raise CreditLeak(
                        f"lane (master {m}, id {lane}) still holds finished "
                        f"transaction #{uid}", self._ctx())

    def check_drained(self) -> None:
        """After a successful drain every credit and slot must be home."""
        eng = self.engine
        if eng is None:
            return
        self.checks_run += 1
        if self._inflight:
            raise ConservationViolation(
                f"{len(self._inflight)} attempts still tracked in flight "
                f"after a successful drain", self._ctx())
        if self._lanes:
            raise CreditLeak(
                f"{len(self._lanes)} AXI ID lanes still occupied after a "
                f"successful drain", self._ctx())
        reads = getattr(eng.fabric, "_reads_in_flight", None)
        if reads is not None:
            for m, n in enumerate(reads):
                if n != 0:
                    raise CreditLeak(
                        f"master {m} leaked {n} reorder read slots through "
                        f"the drain", self._ctx())
