"""Whole-program state-coverage & observer-purity static analysis.

The three engine tiers (fast / legacy / vector) are only bit-identical
if two structural properties hold that no dynamic oracle checks until a
fuzz campaign happens to reach the broken configuration:

* the struct-of-arrays adapters (:mod:`repro.dram.soa`,
  :mod:`repro.fabric.soa`) must mirror **every** mutable field of the
  components they capture/refresh/restore, and fold them into the
  ``soa_digest`` fingerprint the interleaving tests compare;
* the observer layers (:mod:`repro.check.sanitizer`,
  :mod:`repro.telemetry.sampler`, :mod:`repro.conformance.reference`)
  must never write simulation state;
* every externally callable enqueue into a due-plane-tracked structure
  must re-arm the vector tier's waker hooks, or an event horizon sleeps
  through the arrival.

This module proves all three statically, over AST copies of the real
sources (``repro-hbm check --state``; wired into run pre-validation):

**SC001 — uncovered-state-field.**  The field inventory infers each
component's mutable-state set: attributes assigned or container-mutated
on ``self`` outside ``__init__``, plus attributes other modules write
onto component instances (fault injector, engine drain, waker wiring).
A field is *sim-state* unless every mutating line carries the
``# statecheck: derived`` pragma (recomputed state, e.g.
``MasterPort.exhausted``) or the field has an :data:`ALLOWLIST` entry
with a reason.  Every sim-state field must be read by its SoA adapter's
``refresh`` (``capture`` delegates to it) — directly, through a
one-level alias, or through a ``getattr`` loop over a resolvable name
tuple — and the adapter's ``arrays()`` must iterate ``__slots__`` so
the digest covers it.

**SC002 — stale-allowlist-entry.**  An :data:`ALLOWLIST` entry whose
(class, field) no longer names a mutable field is reported, so the
table can only shrink back in step with the code.

**SC003 — observer-writes-sim-state.**  An interprocedural write-set
analysis over the call graph: starting from each observer entry point
(sanitizer hooks, telemetry sampling hooks, the conformance reference
model), taint flows from simulation objects (hook parameters, the
observer's ``engine``/``_inner`` attributes) through aliases, attribute
and subscript reads, and resolved calls; any attribute/subscript store
on a tainted base, ``setattr`` on a tainted object, or mutating method
call on a tainted receiver is a finding.  Known-intentional delegations
(the :class:`~repro.check.sanitizer.CheckedBankSet` pass-through) are
allowlisted in :data:`PURITY_ALLOW`.  Calls the analysis cannot resolve
(first-class probe lambdas) are assumed pure — the documented limit of
the proof.

**SC004 — unwoken-mutation.**  Each :data:`WAKER_RULES` entry pins an
enqueue path (``Fifo.append``, ``MemoryController.try_accept``, the MAO
read-slot release) to a lexical waker invocation in the same method,
and a whole-program bypass scan flags direct mutations of the
due-tracked structures (``Fifo.items``, ``pending_in``,
``MemoryController.queues``, ``_reads_in_flight``) from anywhere else.

The analyses run on a ``{module: source}`` mapping so the seeded
mutation self-tests (``tests/test_check_statecheck.py``) can inject a
synthetic field, a hidden observer write, or a waker-less push into
copies of the real sources and assert the right SC00x fires.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (Dict, FrozenSet, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple)

from .astutil import dotted, load_sources, parse_sources, pragma_lines
from .findings import Finding

__all__ = [
    "ALLOWLIST",
    "COMPONENTS",
    "DERIVED_PRAGMA",
    "OBSERVERS",
    "PURITY_ALLOW",
    "StateStats",
    "WAKER_RULES",
    "check_observer_purity",
    "check_state",
    "check_state_coverage",
    "check_waker_audit",
    "component_inventory",
    "render_state_report",
    "state_stats",
]

#: Marks every mutation line of a field that is *derived* (recomputable)
#: rather than sim-state the SoA image must carry.
DERIVED_PRAGMA = "statecheck: derived"

#: Container methods that mutate their receiver in place.
_MUTATOR_NAMES = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert", "add",
    "update", "pop", "popleft", "popitem", "push", "clear", "remove",
    "discard", "setdefault", "sort", "reverse", "rotate",
})

#: ``heapq`` functions that mutate their first argument.
_HEAP_MUTATORS = frozenset({"heappush", "heappop", "heapreplace",
                            "heappushpop"})

#: Builtins whose call result is a plain scalar (never a sim object).
_SCALAR_BUILTINS = frozenset({
    "len", "int", "float", "str", "bool", "abs", "round", "repr",
    "format", "hash", "id", "isinstance", "issubclass", "any", "all",
    "sum", "divmod", "ord", "chr",
})

#: Modules whose attribute writes are the capture/restore mechanism
#: itself and therefore never count as state mutation or waker bypass.
_ADAPTER_MODULES = frozenset({"repro.dram.soa", "repro.fabric.soa"})


# ---------------------------------------------------------------------------
# component / adapter / observer tables
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ComponentSpec:
    """One simulated component class and the SoA adapter covering it."""

    module: str
    cls: str
    adapter_module: Optional[str] = None
    adapter_cls: Optional[str] = None
    #: For nested components: the attribute of the adapter's item that
    #: holds this object (``PseudoChannel.banks`` -> :class:`BankSet`).
    via: Optional[str] = None


COMPONENTS: Tuple[ComponentSpec, ...] = (
    ComponentSpec("repro.dram.pch", "PseudoChannel",
                  "repro.dram.soa", "DramStateSoA"),
    ComponentSpec("repro.dram.bank", "BankSet",
                  "repro.dram.soa", "DramStateSoA", via="banks"),
    ComponentSpec("repro.dram.pch", "PchCounters",
                  "repro.dram.soa", "DramStateSoA", via="counters"),
    ComponentSpec("repro.dram.controller", "MemoryController",
                  "repro.fabric.soa", "McStateSoA"),
    ComponentSpec("repro.fabric.links", "ArbOutput",
                  "repro.fabric.soa", "ArbStateSoA"),
    ComponentSpec("repro.fabric.links", "Fifo"),
    ComponentSpec("repro.fabric.links", "SharedBus"),
    ComponentSpec("repro.axi.master", "MasterPort",
                  "repro.fabric.soa", "MasterStateSoA"),
)

#: Mutable fields deliberately outside the SoA image, with the reason.
#: SC002 reports entries that stop naming a mutable field.
ALLOWLIST: Dict[Tuple[str, str], str] = {
    ("Fifo", "items"):
        "occupancy is a live due signal (pending_in / fifo lengths); the "
        "flit queue itself is scalar-only between event horizons",
    ("Fifo", "waker"):
        "vector-tier wiring, installed/detached around each run",
    ("ArbOutput", "in_flight"):
        "fingerprinted via the inflight_len/inflight_head projections; "
        "the deque itself stays scalar",
    ("ArbOutput", "waker"):
        "vector-tier wiring, installed/detached around each run",
    ("SharedBus", "busy_until"):
        "lateral bus meter: shared-bus stalls keep an every-cycle due, "
        "so the scalar is always fresh when captured",
    ("MemoryController", "queues"):
        "fingerprinted via the queue_len projection; contents stay "
        "scalar between event horizons",
    ("MemoryController", "_pending"):
        "fingerprinted via the pending_len/pending_head projections",
    ("MemoryController", "_seq"):
        "heap tiebreaker, strictly derived from accept order",
    ("MemoryController", "degrade_offline"):
        "fault plane: fault events force a vector-tier resync",
    ("MemoryController", "waker"):
        "vector-tier wiring, installed/detached around each run",
    ("MasterPort", "_staged"):
        "fingerprinted via the staged projection; the staged txn object "
        "is re-submitted scalar-side",
    ("MasterPort", "_retry"):
        "fingerprinted via the retry_len/retry_head projections",
    ("MasterPort", "_retry_seq"):
        "heap tiebreaker, strictly derived from NACK order",
    ("MasterPort", "draining"):
        "engine drain-phase flag, toggled outside the stepped region",
    ("MasterPort", "on_issue"):
        "observer/watchdog wiring, not simulation state",
    ("PseudoChannel", "fault"):
        "fault plane: fault events force a vector-tier resync",
    ("PseudoChannel", "banks"):
        "rebound only by sanitizer attach (CheckedBankSet proxy); the "
        "bank state behind it is captured field by field",
}


@dataclass(frozen=True)
class ObserverSpec:
    """One observer layer whose reachable code must be write-free."""

    module: str
    cls: Optional[str]
    entries: Tuple[str, ...]
    #: Attributes of the observer that point INTO the simulation.
    sim_attrs: FrozenSet[str] = frozenset()


OBSERVERS: Tuple[ObserverSpec, ...] = (
    ObserverSpec("repro.check.sanitizer", "Sanitizer",
                 ("on_issue", "on_complete", "after_batch", "finish",
                  "check_drained"),
                 frozenset({"engine"})),
    ObserverSpec("repro.check.sanitizer", "CheckedBankSet",
                 ("access",), frozenset({"_inner"})),
    ObserverSpec("repro.telemetry.sampler", "Telemetry",
                 ("sample", "note_jump", "finish"),
                 frozenset({"engine"})),
    ObserverSpec("repro.conformance.reference", None, ("predict", "check")),
)

#: (module, enclosing qualname, called method) -> reason.  Call sites the
#: purity analysis must accept although the receiver is simulation state.
PURITY_ALLOW: Dict[Tuple[str, str, str], str] = {
    ("repro.check.sanitizer", "CheckedBankSet.access", "access"):
        "checked pass-through: the proxy performs the engine's own bank "
        "access on its behalf, then validates the resulting row state",
}


@dataclass(frozen=True)
class WakerRule:
    """An enqueue method that must lexically invoke its waker."""

    module: str
    cls: str
    method: str
    waker: str


WAKER_RULES: Tuple[WakerRule, ...] = (
    WakerRule("repro.fabric.links", "Fifo", "append", "waker"),
    WakerRule("repro.dram.controller", "MemoryController", "try_accept",
              "waker"),
    WakerRule("repro.fabric.mao_fabric", "MaoFabric", "_on_read_data",
              "read_slot_waker"),
    WakerRule("repro.fabric.mao_fabric", "MaoFabric", "_on_nack",
              "read_slot_waker"),
)

#: Due-plane-tracked structures and the classes allowed to mutate them.
_DUE_STRUCTURES: Dict[str, FrozenSet[Tuple[str, str]]] = {
    "items": frozenset({("repro.fabric.links", "Fifo")}),
    "pending_in": frozenset({("repro.fabric.links", "Fifo"),
                             ("repro.fabric.links", "ArbOutput")}),
    "queues": frozenset({("repro.dram.controller", "MemoryController")}),
    "_reads_in_flight": frozenset({("repro.fabric.mao_fabric",
                                    "MaoFabric")}),
}

#: Mutators that ADD work to a structure (dequeues need no wake).
_ENQUEUE_NAMES = frozenset({"append", "appendleft", "extend", "insert"})


# ---------------------------------------------------------------------------
# module index
# ---------------------------------------------------------------------------

class _ModuleInfo:
    """Parsed module plus the lookup tables every analysis shares."""

    def __init__(self, name: str, source: str, tree: ast.Module) -> None:
        self.name = name
        self.tree = tree
        self.derived_lines = pragma_lines(source, DERIVED_PRAGMA)
        self.classes: Dict[str, ast.ClassDef] = {}
        self.functions: Dict[str, ast.FunctionDef] = {}
        self.methods: Dict[Tuple[str, str], ast.FunctionDef] = {}
        self.imports: Dict[str, Tuple[str, str]] = {}
        self.consts: Dict[str, Tuple[str, ...]] = _str_tuple_consts(tree.body)
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
                for sub in node.body:
                    if isinstance(sub, ast.FunctionDef):
                        self.methods[(node.name, sub.name)] = sub
            elif isinstance(node, ast.FunctionDef):
                self.functions[node.name] = node
            elif isinstance(node, ast.ImportFrom):
                target = _resolve_import(name, node)
                if target is not None:
                    for alias in node.names:
                        local = alias.asname or alias.name
                        self.imports[local] = (target, alias.name)


def _resolve_import(module: str, node: ast.ImportFrom) -> Optional[str]:
    """Absolute module an ``ImportFrom`` pulls from (best effort)."""
    if node.level == 0:
        return node.module
    parts = module.split(".")
    if node.level > len(parts):
        return None
    base = parts[:len(parts) - node.level]
    if node.module:
        base.append(node.module)
    return ".".join(base) if base else None


def _str_tuple_consts(body: Sequence[ast.stmt]) -> Dict[str, Tuple[str, ...]]:
    """``NAME = ("a", "b", ...)`` constants in a class/module body."""
    consts: Dict[str, Tuple[str, ...]] = {}
    for node in body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if (isinstance(target, ast.Name) and isinstance(value, ast.Tuple)
                and all(isinstance(e, ast.Constant)
                        and isinstance(e.value, str) for e in value.elts)):
            consts[target.id] = tuple(e.value for e in value.elts)
    return consts


def _module_path(name: str, all_names: Iterable[str]) -> str:
    """Pseudo source path of a module (``repro.dram.soa`` ->
    ``repro/dram/soa.py``; packages map to their ``__init__.py``)."""
    prefix = name + "."
    base = name.replace(".", "/")
    if any(other.startswith(prefix) for other in all_names):
        return base + "/__init__.py"
    return base + ".py"


def _index(sources: Mapping[str, str],
           ) -> Tuple[Dict[str, _ModuleInfo], List[Finding]]:
    trees, errors = parse_sources(sources)
    findings = [Finding("error", "SC000", f"unparsable module: {msg}",
                        _module_path(mod, sources))
                for mod, msg in sorted(errors.items())]
    index = {name: _ModuleInfo(name, sources[name], tree)
             for name, tree in trees.items()}
    return index, findings


# ---------------------------------------------------------------------------
# helpers shared by the field / waker analyses
# ---------------------------------------------------------------------------

def _self_root_field(node: ast.expr) -> Optional[str]:
    """The ``self`` field a store target lands in: ``self.f`` or
    ``self.f[k]...[j]`` root in ``f``.  ``self.f.g`` does NOT — that
    mutates the *referenced* object, which the external-write scan
    attributes to the owning class by field name."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _target_field(node: ast.expr) -> Optional[Tuple[str, bool]]:
    """(field, base_is_self) of an attribute-store target, peeling
    subscripts: ``x.f[k] = v`` mutates ``f`` of ``x``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if not isinstance(node, ast.Attribute):
        return None
    base = node.value
    is_self = isinstance(base, ast.Name) and base.id == "self"
    return node.attr, is_self


def _assign_targets(node: ast.stmt) -> List[ast.expr]:
    if isinstance(node, ast.Assign):
        out: List[ast.expr] = []
        for t in node.targets:
            out.extend(t.elts if isinstance(t, (ast.Tuple, ast.List))
                       else [t])
        return out
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []


def _local_field_aliases(func: ast.FunctionDef,
                         fields: Optional[Set[str]] = None,
                         ) -> Dict[str, str]:
    """Locals bound from an *item* of a ``self`` container field
    (``q = self.queues[li]``): one-level alias resolution for
    container-mutation attribution.  Plain ``x = self.f`` aliases are
    deliberately excluded — mutating through them touches the referenced
    object (``dest = self.dest; dest.append(...)`` fills a Fifo, not an
    ArbOutput field), which the referenced class's own inventory owns."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(func):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Subscript)):
            continue
        root = _self_root_field(node.value)
        if root is not None and (fields is None or root in fields):
            aliases[node.targets[0].id] = root
    return aliases


# ---------------------------------------------------------------------------
# SC001 / SC002 — field inventory -> SoA coverage
# ---------------------------------------------------------------------------

@dataclass
class FieldInfo:
    """Inventory record of one mutable component field."""

    mutated_at: List[Tuple[str, int]] = field(default_factory=list)
    derived: bool = True  # every mutation line carries the pragma
    external: bool = False

    def note(self, module: str, line: int, pragma: bool) -> None:
        self.mutated_at.append((module, line))
        if not pragma:
            self.derived = False


def _candidate_fields(cls: ast.ClassDef) -> Set[str]:
    """Attributes a class can hold: ``__slots__``, dataclass
    annotations, and every ``self.x`` assignment."""
    fields: Set[str] = set()
    for node in cls.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "__slots__"
                and isinstance(node.value, (ast.Tuple, ast.List))):
            fields.update(e.value for e in node.value.elts
                          if isinstance(e, ast.Constant)
                          and isinstance(e.value, str))
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target,
                                                            ast.Name):
            fields.add(node.target.id)
    for node in ast.walk(cls):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            for target in _assign_targets(node):
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    fields.add(target.attr)
    return fields


def _class_mutations(info: _ModuleInfo, cls: ast.ClassDef,
                     ) -> Dict[str, FieldInfo]:
    """Fields a class mutates on ``self`` outside ``__init__``."""
    mutated: Dict[str, FieldInfo] = {}

    def note(name: str, line: int) -> None:
        mutated.setdefault(name, FieldInfo()).note(
            info.name, line, line in info.derived_lines)

    for method in (n for n in cls.body
                   if isinstance(n, ast.FunctionDef)
                   and n.name != "__init__"):
        aliases = _local_field_aliases(method)
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                for target in _assign_targets(node):
                    root = _self_root_field(target)
                    if root is not None and not isinstance(target, ast.Name):
                        note(root, node.lineno)
                    elif isinstance(target, ast.Subscript):
                        base = target.value
                        while isinstance(base, ast.Subscript):
                            base = base.value
                        if (isinstance(base, ast.Name)
                                and base.id in aliases):
                            note(aliases[base.id], node.lineno)
            elif isinstance(node, ast.Call):
                chain = dotted(node.func)
                if len(chain) >= 3 and chain[0] == "self" \
                        and chain[-1] in _MUTATOR_NAMES:
                    note(chain[1], node.lineno)
                elif (len(chain) == 2 and chain[0] in aliases
                      and chain[-1] in _MUTATOR_NAMES):
                    note(aliases[chain[0]], node.lineno)
                elif chain and chain[-1] in _HEAP_MUTATORS and node.args:
                    root = _self_root_field(node.args[0])
                    if root is not None:
                        note(root, node.lineno)
                    elif (isinstance(node.args[0], ast.Name)
                          and node.args[0].id in aliases):
                        note(aliases[node.args[0].id], node.lineno)
    return mutated


def _external_writes(index: Mapping[str, _ModuleInfo],
                     ) -> Dict[str, List[Tuple[str, int]]]:
    """Attribute stores on non-``self`` bases, across the whole tree
    (engine drain flags, waker wiring, fault injection)."""
    writes: Dict[str, List[Tuple[str, int]]] = {}
    for name, info in sorted(index.items()):
        if name in _ADAPTER_MODULES:
            continue
        for node in ast.walk(info.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                for target in _assign_targets(node):
                    hit = _target_field(target)
                    if hit is not None and not hit[1]:
                        writes.setdefault(hit[0], []).append(
                            (name, node.lineno))
    return writes


def _adapter_coverage(info: _ModuleInfo, adapter: ast.ClassDef,
                      ) -> Dict[str, Set[str]]:
    """Fields ``refresh`` reads, keyed by path: ``""`` for the item
    itself, an attribute name for one-level nested objects."""
    refresh = next((n for n in adapter.body
                    if isinstance(n, ast.FunctionDef)
                    and n.name == "refresh"), None)
    coverage: Dict[str, Set[str]] = {"": set()}
    if refresh is None:
        return coverage
    class_consts = _str_tuple_consts(adapter.body)

    # The item variable: second target of `for i, item in enumerate(seq)`
    # or the target of a plain `for item in seq` over the parameter.
    params = {a.arg for a in refresh.args.args} - {"self"}
    items: Set[str] = set()
    name_loops: Dict[str, Tuple[str, ...]] = {}

    def const_of(expr: ast.expr) -> Optional[Tuple[str, ...]]:
        if isinstance(expr, ast.Name):
            return info.consts.get(expr.id) or class_consts.get(expr.id)
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"):
            return class_consts.get(expr.attr) or info.consts.get(expr.attr)
        return None

    for node in ast.walk(refresh):
        if not isinstance(node, ast.For):
            continue
        it = node.iter
        target = node.target
        if (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                and it.func.id == "enumerate" and it.args):
            it = it.args[0]
            if isinstance(target, ast.Tuple) and len(target.elts) == 2:
                target = target.elts[1]
        if isinstance(target, ast.Name):
            if isinstance(it, ast.Name) and it.id in params:
                items.add(target.id)
            else:
                const = const_of(it)
                if const is not None:
                    name_loops[target.id] = const

    aliases: Dict[str, str] = {}  # local -> attr of the item it aliases
    for node in ast.walk(refresh):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Attribute)
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id in items):
            aliases[node.targets[0].id] = node.value.attr

    def bucket_of(base: ast.expr) -> Optional[str]:
        if not isinstance(base, ast.Name):
            return None
        if base.id in items:
            return ""
        return aliases.get(base.id)

    for node in ast.walk(refresh):
        if isinstance(node, ast.Attribute):
            bucket = bucket_of(node.value)
            if bucket is not None:
                coverage.setdefault(bucket, set()).add(node.attr)
        elif (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
              and node.func.id == "getattr" and len(node.args) >= 2):
            bucket = bucket_of(node.args[0])
            if bucket is None:
                continue
            arg = node.args[1]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                coverage.setdefault(bucket, set()).add(arg.value)
            elif isinstance(arg, ast.Name) and arg.id in name_loops:
                coverage.setdefault(bucket, set()).update(name_loops[arg.id])
    for attr in aliases.values():
        coverage.setdefault("", set()).add(attr)
    return coverage


def _arrays_folds_slots(adapter: ast.ClassDef) -> bool:
    """True when ``arrays()`` iterates ``__slots__`` (so everything
    ``refresh`` writes lands in ``soa_digest``)."""
    arrays = next((n for n in adapter.body
                   if isinstance(n, ast.FunctionDef) and n.name == "arrays"),
                  None)
    if arrays is None:
        return False
    return any(isinstance(n, ast.Attribute) and n.attr == "__slots__"
               for n in ast.walk(arrays))


def component_inventory(sources: Optional[Mapping[str, str]] = None,
                        ) -> Dict[str, Dict[str, FieldInfo]]:
    """Mutable-field inventory per component class (exposed for tests
    and the DESIGN walkthrough)."""
    if sources is None:
        sources = load_sources()
    index, _ = _index(sources)
    external = _external_writes(index)
    inventory: Dict[str, Dict[str, FieldInfo]] = {}
    for spec in COMPONENTS:
        info = index.get(spec.module)
        cls = info.classes.get(spec.cls) if info is not None else None
        if info is None or cls is None:
            inventory[spec.cls] = {}
            continue
        mutated = _class_mutations(info, cls)
        candidates = _candidate_fields(cls)
        for fname in candidates & external.keys():
            rec = mutated.setdefault(fname, FieldInfo())
            rec.external = True
            rec.derived = False
            for mod, line in external[fname]:
                rec.mutated_at.append((mod, line))
        inventory[spec.cls] = mutated
    return inventory


def check_state_coverage(
        sources: Optional[Mapping[str, str]] = None, *,
        allowlist: Optional[Mapping[Tuple[str, str], str]] = None,
        ) -> List[Finding]:
    """SC001/SC002: every sim-state field is SoA-covered and digested."""
    if sources is None:
        sources = load_sources()
    if allowlist is None:
        allowlist = ALLOWLIST
    index, findings = _index(sources)
    external = _external_writes(index)
    mutable_by_cls: Dict[str, Set[str]] = {}
    coverage_cache: Dict[Tuple[str, str], Dict[str, Set[str]]] = {}
    checked_adapters: Set[Tuple[str, str]] = set()

    for spec in COMPONENTS:
        info = index.get(spec.module)
        cls = info.classes.get(spec.cls) if info is not None else None
        if info is None or cls is None:
            findings.append(Finding(
                "error", "SC001",
                f"component {spec.cls} not found in {spec.module}; the "
                f"COMPONENTS table is stale", _module_path(spec.module,
                                                           sources)))
            continue
        mutated = _class_mutations(info, cls)
        candidates = _candidate_fields(cls)
        for fname in candidates & external.keys():
            rec = mutated.setdefault(fname, FieldInfo())
            rec.external = True
            rec.derived = False
            for mod, line in external[fname]:
                rec.mutated_at.append((mod, line))
        mutable_by_cls[spec.cls] = set(mutated)

        covered: Set[str] = set()
        if spec.adapter_module is not None:
            key = (spec.adapter_module, spec.adapter_cls or "")
            if key not in coverage_cache:
                ainfo = index.get(spec.adapter_module)
                anode = (ainfo.classes.get(spec.adapter_cls or "")
                         if ainfo is not None else None)
                if ainfo is None or anode is None:
                    findings.append(Finding(
                        "error", "SC001",
                        f"SoA adapter {spec.adapter_cls} not found in "
                        f"{spec.adapter_module}",
                        _module_path(spec.adapter_module, sources)))
                    coverage_cache[key] = {"": set()}
                else:
                    coverage_cache[key] = _adapter_coverage(ainfo, anode)
                    if key not in checked_adapters:
                        checked_adapters.add(key)
                        if not _arrays_folds_slots(anode):
                            findings.append(Finding(
                                "error", "SC001",
                                f"{spec.adapter_cls}.arrays() does not "
                                f"iterate __slots__: refreshed state can "
                                f"escape soa_digest",
                                _module_path(spec.adapter_module, sources)))
            covered = coverage_cache[key].get(spec.via or "", set())

        for fname in sorted(mutated):
            rec = mutated[fname]
            if rec.derived or fname in covered:
                continue
            if (spec.cls, fname) in allowlist:
                continue
            where = sorted(set(rec.mutated_at))[0]
            adapter = (f"{spec.adapter_cls}.refresh"
                       if spec.adapter_cls else "any SoA adapter")
            findings.append(Finding(
                "error", "SC001",
                f"sim-state field {spec.cls}.{fname} is mutated but not "
                f"captured by {adapter}: the vector tier will drift "
                f"silently; cover it, mark every mutation "
                f"'# {DERIVED_PRAGMA}', or allowlist it with a reason",
                f"{_module_path(where[0], sources)}:{where[1]}"))

    for (cls_name, fname), _reason in sorted(allowlist.items()):
        if fname not in mutable_by_cls.get(cls_name, set()):
            findings.append(Finding(
                "error", "SC002",
                f"stale allowlist entry {cls_name}.{fname}: no such "
                f"mutable field — remove the entry so the table tracks "
                f"the code", f"{cls_name}.{fname}"))
    return findings


# ---------------------------------------------------------------------------
# SC003 — observer purity
# ---------------------------------------------------------------------------

class _PurityContext:
    """Lexical position of the statement being analyzed."""

    __slots__ = ("info", "cls", "func", "entry", "sim_attrs")

    def __init__(self, info: _ModuleInfo, cls: Optional[str], func: str,
                 entry: str, sim_attrs: FrozenSet[str]) -> None:
        self.info = info
        self.cls = cls
        self.func = func
        self.entry = entry
        self.sim_attrs = sim_attrs

    @property
    def qualname(self) -> str:
        return f"{self.cls}.{self.func}" if self.cls else self.func


class _PurityAnalyzer:
    """Taint-based interprocedural write-set analysis (see module doc)."""

    _MAX_DEPTH = 10

    def __init__(self, index: Mapping[str, _ModuleInfo],
                 all_modules: Iterable[str]) -> None:
        self.index = index
        self.all_modules = list(all_modules)
        self.findings: List[Finding] = []
        self.traced: Set[Tuple[str, str, FrozenSet[str], str]] = set()
        # method name -> defining (module, class) pairs, for resolving
        # calls on tainted receivers.
        self.methods_by_name: Dict[str, List[Tuple[_ModuleInfo, str,
                                                   ast.FunctionDef]]] = {}
        for info in index.values():
            for (cls, mname), node in info.methods.items():
                if mname.startswith("__"):
                    continue
                self.methods_by_name.setdefault(mname, []).append(
                    (info, cls, node))

    # -- entry ----------------------------------------------------------------

    def run_entry(self, spec: ObserverSpec) -> Optional[str]:
        """Analyze one observer; returns an error message when an entry
        point is missing (the OBSERVERS table went stale)."""
        info = self.index.get(spec.module)
        if info is None:
            return f"module {spec.module} not found"
        missing = []
        for entry in spec.entries:
            node = (info.methods.get((spec.cls, entry)) if spec.cls
                    else info.functions.get(entry))
            if node is None:
                missing.append(entry)
                continue
            env: Dict[str, str] = {}
            params = [a.arg for a in node.args.args]
            if spec.cls and params and params[0] == "self":
                env["self"] = "observer"
                params = params[1:]
            for p in params:
                env[p] = "t"
            ctx = _PurityContext(info, spec.cls, entry,
                                 (f"{spec.cls}.{entry}" if spec.cls
                                  else entry), spec.sim_attrs)
            self._walk(node.body, env, ctx, depth=0)
        if missing:
            where = spec.cls or spec.module
            return f"entry point(s) {', '.join(missing)} missing on {where}"
        return None

    # -- taint ----------------------------------------------------------------

    def _tainted(self, node: ast.expr, env: Dict[str, str],
                 ctx: _PurityContext) -> bool:
        if isinstance(node, ast.Name):
            return env.get(node.id) == "t"
        if isinstance(node, ast.Attribute):
            base = node.value
            if (isinstance(base, ast.Name) and base.id == "self"
                    and env.get("self") == "observer"):
                return node.attr in ctx.sim_attrs
            return self._tainted(base, env, ctx)
        if isinstance(node, ast.Subscript):
            return self._tainted(node.value, env, ctx)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id == "getattr" and node.args:
                    return self._tainted(node.args[0], env, ctx)
                if func.id in _SCALAR_BUILTINS:
                    return False
            if isinstance(func, ast.Attribute):
                # Method-call results inherit the *receiver's* taint
                # only: a lookup into an owned container keyed by a
                # tainted scalar (`self._lanes.get((txn.master, ...))`)
                # returns an owned value.
                return self._tainted(func.value, env, ctx)
            parts: List[ast.expr] = list(node.args)
            parts.extend(kw.value for kw in node.keywords)
            return any(self._tainted(p, env, ctx) for p in parts)
        if isinstance(node, (ast.BoolOp,)):
            return any(self._tainted(v, env, ctx) for v in node.values)
        if isinstance(node, ast.IfExp):
            return (self._tainted(node.body, env, ctx)
                    or self._tainted(node.orelse, env, ctx))
        if isinstance(node, ast.BinOp):
            return (self._tainted(node.left, env, ctx)
                    or self._tainted(node.right, env, ctx))
        if isinstance(node, ast.UnaryOp):
            return self._tainted(node.operand, env, ctx)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self._tainted(e, env, ctx) for e in node.elts)
        if isinstance(node, ast.Dict):
            return any(self._tainted(v, env, ctx)
                       for v in node.values if v is not None)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return any(self._tainted(g.iter, env, ctx)
                       for g in node.generators)
        if isinstance(node, ast.Starred):
            return self._tainted(node.value, env, ctx)
        if isinstance(node, ast.NamedExpr):
            return self._tainted(node.value, env, ctx)
        return False

    # -- findings -------------------------------------------------------------

    def _violation(self, node: ast.AST, ctx: _PurityContext,
                   desc: str) -> None:
        line = getattr(node, "lineno", 0)
        self.findings.append(Finding(
            "error", "SC003",
            f"observer-reachable write to simulation state: {desc} "
            f"(reached from {ctx.entry}; observers must be pure)",
            f"{_module_path(ctx.info.name, self.all_modules)}:{line}"))

    # -- statement walk -------------------------------------------------------

    def _walk(self, body: Sequence[ast.stmt], env: Dict[str, str],
              ctx: _PurityContext, depth: int) -> None:
        for stmt in body:
            for expr in _stmt_exprs(stmt):
                for call in ast.walk(expr):
                    if isinstance(call, ast.Call):
                        self._handle_call(call, env, ctx, depth)
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = stmt.value
                taint = (value is not None
                         and self._tainted(value, env, ctx))
                for target in _assign_targets(stmt):
                    self._bind_target(stmt, target, taint, env, ctx)
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)) \
                            and self._tainted(target.value, env, ctx):
                        self._violation(
                            stmt, ctx,
                            f"del on a simulation object in {ctx.qualname}")
            elif isinstance(stmt, ast.For):
                t = self._tainted(stmt.iter, env, ctx)
                for target in (stmt.target.elts
                               if isinstance(stmt.target,
                                             (ast.Tuple, ast.List))
                               else [stmt.target]):
                    if isinstance(target, ast.Name):
                        env[target.id] = "t" if t else ""
                self._walk(stmt.body, env, ctx, depth)
                self._walk(stmt.orelse, env, ctx, depth)
            elif isinstance(stmt, (ast.If, ast.While)):
                self._walk(stmt.body, env, ctx, depth)
                self._walk(stmt.orelse, env, ctx, depth)
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    if isinstance(item.optional_vars, ast.Name):
                        env[item.optional_vars.id] = (
                            "t" if self._tainted(item.context_expr, env, ctx)
                            else "")
                self._walk(stmt.body, env, ctx, depth)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body, env, ctx, depth)
                for handler in stmt.handlers:
                    if handler.name:
                        env[handler.name] = ""
                    self._walk(handler.body, env, ctx, depth)
                self._walk(stmt.orelse, env, ctx, depth)
                self._walk(stmt.finalbody, env, ctx, depth)

    def _bind_target(self, stmt: ast.stmt, target: ast.expr, taint: bool,
                     env: Dict[str, str], ctx: _PurityContext) -> None:
        if isinstance(target, ast.Name):
            if isinstance(stmt, ast.Assign) or (
                    isinstance(stmt, ast.AnnAssign)
                    and stmt.value is not None):
                env[target.id] = "t" if taint else ""
            return
        if isinstance(target, ast.Attribute):
            if self._tainted(target.value, env, ctx):
                self._violation(
                    stmt, ctx,
                    f"attribute store '.{target.attr} = ...' on a "
                    f"simulation object in {ctx.qualname}")
            return
        if isinstance(target, ast.Subscript):
            base = target.value
            while isinstance(base, ast.Subscript):
                base = base.value
            if self._tainted(base, env, ctx):
                self._violation(
                    stmt, ctx,
                    f"subscript store into a simulation container in "
                    f"{ctx.qualname}")

    # -- calls ----------------------------------------------------------------

    def _handle_call(self, call: ast.Call, env: Dict[str, str],
                     ctx: _PurityContext, depth: int) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in ("setattr", "delattr") and call.args \
                    and self._tainted(call.args[0], env, ctx):
                self._violation(call, ctx,
                                f"{name}() on a simulation object in "
                                f"{ctx.qualname}")
                return
            if name in _HEAP_MUTATORS and call.args \
                    and self._tainted(call.args[0], env, ctx):
                self._violation(call, ctx,
                                f"{name}() into a simulation heap in "
                                f"{ctx.qualname}")
                return
            self._recurse_named(name, call, env, ctx, depth)
            return
        if not isinstance(func, ast.Attribute):
            return
        recv, mname = func.value, func.attr
        if (isinstance(recv, ast.Name) and recv.id == "self"
                and env.get("self") == "observer" and ctx.cls is not None):
            target = ctx.info.methods.get((ctx.cls, mname))
            if target is not None:
                self._recurse(ctx.info, ctx.cls, target, call, env, ctx,
                              depth, self_binding="observer")
                return
        chain = dotted(func)
        if len(chain) == 2 and chain[0] == "heapq" \
                and chain[1] in _HEAP_MUTATORS and call.args \
                and self._tainted(call.args[0], env, ctx):
            self._violation(call, ctx,
                            f"heapq.{chain[1]}() into a simulation heap "
                            f"in {ctx.qualname}")
            return
        if not self._tainted(recv, env, ctx):
            return
        allow_key = (ctx.info.name, ctx.qualname, mname)
        if allow_key in PURITY_ALLOW:
            return
        candidates = self.methods_by_name.get(mname, ())
        if candidates:
            for cinfo, ccls, cnode in candidates:
                self._recurse(cinfo, ccls, cnode, call, env, ctx, depth,
                              self_binding="t")
        elif mname in _MUTATOR_NAMES:
            self._violation(call, ctx,
                            f".{mname}() on a simulation container in "
                            f"{ctx.qualname}")

    def _recurse_named(self, name: str, call: ast.Call,
                       env: Dict[str, str], ctx: _PurityContext,
                       depth: int) -> None:
        """Follow a plain-name call to a same-module or imported
        function (classes — fresh instances — are skipped)."""
        info, node = ctx.info, ctx.info.functions.get(name)
        if node is None:
            imported = ctx.info.imports.get(name)
            if imported is None:
                return
            target_info = self.index.get(imported[0])
            if target_info is None or imported[1] in target_info.classes:
                return
            node = target_info.functions.get(imported[1])
            if node is None:
                return
            info = target_info
        self._recurse(info, None, node, call, env, ctx, depth,
                      self_binding=None)

    def _recurse(self, info: _ModuleInfo, cls: Optional[str],
                 node: ast.FunctionDef, call: ast.Call,
                 env: Dict[str, str], ctx: _PurityContext, depth: int,
                 self_binding: Optional[str]) -> None:
        if depth >= self._MAX_DEPTH:
            return
        params = [a.arg for a in node.args.args]
        new_env: Dict[str, str] = {}
        if self_binding is not None and params and params[0] == "self":
            new_env["self"] = self_binding
            params = params[1:]
        for i, p in enumerate(params):
            if i < len(call.args):
                if self._tainted(call.args[i], env, ctx):
                    new_env[p] = "t"
        for kw in call.keywords:
            if kw.arg in params and self._tainted(kw.value, env, ctx):
                new_env[kw.arg] = "t"
        key = (info.name, f"{cls}.{node.name}" if cls else node.name,
               frozenset(k for k, v in new_env.items() if v in ("t",
                                                                "observer")),
               new_env.get("self", ""))
        if key in self.traced:
            return
        self.traced.add(key)
        sim_attrs = ctx.sim_attrs if new_env.get("self") == "observer" \
            else frozenset()
        sub_ctx = _PurityContext(info, cls, node.name, ctx.entry, sim_attrs)
        self._walk(node.body, new_env, sub_ctx, depth + 1)


def _stmt_exprs(stmt: ast.stmt) -> List[ast.expr]:
    """The expressions evaluated *by* a statement itself (compound
    bodies are walked separately, so calls are scanned exactly once)."""
    out: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        out.append(stmt.value)
        out.extend(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        if stmt.value is not None:
            out.append(stmt.value)
        out.append(stmt.target)
    elif isinstance(stmt, ast.Expr):
        out.append(stmt.value)
    elif isinstance(stmt, ast.Return) and stmt.value is not None:
        out.append(stmt.value)
    elif isinstance(stmt, ast.For):
        out.append(stmt.iter)
    elif isinstance(stmt, (ast.If, ast.While)):
        out.append(stmt.test)
    elif isinstance(stmt, ast.Raise):
        if stmt.exc is not None:
            out.append(stmt.exc)
        if stmt.cause is not None:
            out.append(stmt.cause)
    elif isinstance(stmt, ast.Assert):
        out.append(stmt.test)
        if stmt.msg is not None:
            out.append(stmt.msg)
    elif isinstance(stmt, ast.With):
        out.extend(item.context_expr for item in stmt.items)
    elif isinstance(stmt, ast.Delete):
        out.extend(stmt.targets)
    return out


def check_observer_purity(sources: Optional[Mapping[str, str]] = None,
                          ) -> List[Finding]:
    """SC003: nothing reachable from an observer writes sim state."""
    if sources is None:
        sources = load_sources()
    index, findings = _index(sources)
    analyzer = _PurityAnalyzer(index, sources.keys())
    for spec in OBSERVERS:
        problem = analyzer.run_entry(spec)
        if problem is not None:
            findings.append(Finding(
                "error", "SC003",
                f"observer table is stale: {problem}",
                _module_path(spec.module, sources)))
    seen: Set[Finding] = set()
    for f in analyzer.findings:
        if f not in seen:
            seen.add(f)
            findings.append(f)
    return findings


# ---------------------------------------------------------------------------
# SC004 — waker re-arm audit
# ---------------------------------------------------------------------------

def check_waker_audit(sources: Optional[Mapping[str, str]] = None,
                      ) -> List[Finding]:
    """SC004: every due-plane enqueue is paired with a waker."""
    if sources is None:
        sources = load_sources()
    index, findings = _index(sources)

    for rule in WAKER_RULES:
        info = index.get(rule.module)
        node = (info.methods.get((rule.cls, rule.method))
                if info is not None else None)
        loc = _module_path(rule.module, sources)
        if node is None:
            findings.append(Finding(
                "error", "SC004",
                f"waker rule target {rule.cls}.{rule.method} not found in "
                f"{rule.module}; the WAKER_RULES table is stale", loc))
            continue
        wakes = any(isinstance(n, ast.Call) and dotted(n.func)[-1:]
                    == (rule.waker,) for n in ast.walk(node))
        if not wakes:
            findings.append(Finding(
                "error", "SC004",
                f"due-plane enqueue {rule.cls}.{rule.method} never invokes "
                f"{rule.waker}: the vector tier's event horizon can sleep "
                f"through the arrival", f"{loc}:{node.lineno}"))

    # Bypass scan: direct mutation of a due-tracked structure anywhere
    # outside the class that owns it.
    for mod_name, info in sorted(index.items()):
        if mod_name in _ADAPTER_MODULES:
            continue
        for cls_name, method in _walk_functions(info.tree):
            context = (mod_name, cls_name or "")
            aliases = _local_field_aliases(method,
                                           set(_DUE_STRUCTURES))
            for node in ast.walk(method):
                hit: Optional[Tuple[str, int]] = None
                if isinstance(node, ast.Call):
                    chain = dotted(node.func)
                    if len(chain) >= 2 and chain[-1] in _ENQUEUE_NAMES:
                        owner = chain[-2]
                        if owner in aliases:
                            owner = aliases[owner]
                        if owner in _DUE_STRUCTURES:
                            hit = (owner, node.lineno)
                elif isinstance(node, (ast.Assign, ast.AugAssign,
                                       ast.AnnAssign)):
                    for target in _assign_targets(node):
                        got = _target_field(target)
                        if got is not None and got[0] in _DUE_STRUCTURES:
                            hit = (got[0], node.lineno)
                if hit is None:
                    continue
                structure, line = hit
                sanctioned = _DUE_STRUCTURES[structure]
                if (mod_name, cls_name or "") not in sanctioned \
                        and context not in sanctioned:
                    owner_cls = ", ".join(sorted(c for _, c in sanctioned))
                    findings.append(Finding(
                        "error", "SC004",
                        f"direct mutation of due-tracked '{structure}' in "
                        f"{cls_name + '.' if cls_name else ''}{method.name} "
                        f"bypasses the waker protocol (only {owner_cls} "
                        f"may touch it)",
                        f"{_module_path(mod_name, sources)}:{line}"))
    return findings


def _walk_functions(tree: ast.Module,
                    ) -> List[Tuple[Optional[str], ast.FunctionDef]]:
    """(class name or None, function) pairs, one level of nesting."""
    out: List[Tuple[Optional[str], ast.FunctionDef]] = []
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            out.append((None, node))
        elif isinstance(node, ast.ClassDef):
            out.extend((node.name, sub) for sub in node.body
                       if isinstance(sub, ast.FunctionDef))
    return out


# ---------------------------------------------------------------------------
# combined front end
# ---------------------------------------------------------------------------

@dataclass
class StateStats:
    """Counts the CLI report surfaces (what the analysis covered)."""

    modules: int = 0
    components: int = 0
    sim_state_fields: int = 0
    covered_fields: int = 0
    allowlisted_fields: int = 0
    derived_fields: int = 0
    observer_entries: int = 0
    waker_rules: int = 0


def state_stats(sources: Optional[Mapping[str, str]] = None) -> StateStats:
    """Coverage statistics of one analysis run (for the CLI report)."""
    if sources is None:
        sources = load_sources()
    inventory = component_inventory(sources)
    stats = StateStats(
        modules=len(sources),
        components=len(COMPONENTS),
        observer_entries=sum(len(s.entries) for s in OBSERVERS),
        waker_rules=len(WAKER_RULES),
    )
    for spec in COMPONENTS:
        mutated = inventory.get(spec.cls, {})
        for fname, rec in mutated.items():
            if rec.derived:
                stats.derived_fields += 1
            elif (spec.cls, fname) in ALLOWLIST:
                stats.allowlisted_fields += 1
            else:
                stats.covered_fields += 1
            stats.sim_state_fields += 1
    return stats


def check_state(sources: Optional[Mapping[str, str]] = None,
                ) -> List[Finding]:
    """All three analyses over one source tree (default: ``src/repro``)."""
    if sources is None:
        sources = load_sources()
    return (check_state_coverage(sources)
            + check_observer_purity(sources)
            + check_waker_audit(sources))


def render_state_report(findings: Sequence[Finding],
                        stats: StateStats) -> str:
    """Deterministic text report for ``repro-hbm check --state``."""
    from .findings import render
    lines = [
        f"state analyzer: {stats.modules} modules, "
        f"{stats.components} component classes",
        f"  state coverage: {stats.sim_state_fields} mutable fields "
        f"({stats.covered_fields} SoA-covered, "
        f"{stats.allowlisted_fields} allowlisted, "
        f"{stats.derived_fields} derived)",
        f"  observer purity: {stats.observer_entries} entry points traced "
        f"interprocedurally",
        f"  waker audit: {stats.waker_rules} re-arm rules + whole-tree "
        f"bypass scan",
    ]
    if findings:
        lines.append(render(findings))
        errors = sum(1 for f in findings if f.severity == "error")
        lines.append(f"state check: {len(findings)} finding(s), "
                     f"{errors} error(s)")
    else:
        lines.append("state check: engine tiers cannot silently drift "
                     "(no findings)")
    return "\n".join(lines)
