"""Correctness tooling: runtime sanitizer, static analyzer, determinism lint.

Three cooperating passes guard the reproduction against silent modeling
bugs (see DESIGN.md §7):

* :mod:`repro.check.sanitizer` — runtime invariant checks attached to a
  live engine (``SimConfig(sanitize=True)`` / ``--sanitize`` /
  ``REPRO_SANITIZE=1``); near-zero overhead when off.
* :mod:`repro.check.static` — config/topology/fault-plan analysis
  without simulating (``repro-hbm check``).
* :mod:`repro.check.lint` — AST lint forbidding nondeterminism sources
  in ``src/`` (``repro-hbm check --lint``).
* :mod:`repro.check.statecheck` — whole-program state-coverage /
  observer-purity / waker-audit analysis proving the engine tiers
  cannot silently drift (``repro-hbm check --state``).
"""

from .findings import Finding, Report, render, render_json
from .lint import lint_source, lint_tree
from .sanitizer import CheckedBankSet, Sanitizer
from .statecheck import (check_observer_purity, check_state,
                         check_state_coverage, check_waker_audit,
                         component_inventory, render_state_report,
                         state_stats)
from .static import (WaitGraph, build_wait_graph, check_address_map,
                     check_all, check_config, check_credits,
                     check_experiment, check_fault_plan, check_topology,
                     quick_check)

__all__ = [
    "Finding",
    "Report",
    "render",
    "render_json",
    "check_observer_purity",
    "check_state",
    "check_state_coverage",
    "check_waker_audit",
    "component_inventory",
    "render_state_report",
    "state_stats",
    "lint_source",
    "lint_tree",
    "CheckedBankSet",
    "Sanitizer",
    "WaitGraph",
    "build_wait_graph",
    "check_address_map",
    "check_all",
    "check_config",
    "check_credits",
    "check_experiment",
    "check_fault_plan",
    "check_topology",
    "quick_check",
]
