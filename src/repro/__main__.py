"""``python -m repro`` — alias of the ``repro-hbm`` command line.

Keeps the CLI reachable without an installed entry point::

    python -m repro list
    python -m repro chaos --scenario pch-offline
"""

import sys

from .experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
