"""Low-level interconnect building blocks for the cycle simulation.

The fabrics are built from two primitives:

* :class:`Fifo` — a bounded FIFO of :class:`Flit` objects.  Input queues of
  a switch are FIFOs, which is what produces head-of-line blocking: only
  the head of a queue is eligible for arbitration, so a blocked head stalls
  everything behind it (one of the throughput impediments of Sec. IV-A).
* :class:`ArbOutput` — one output bus of a switch.  Every cycle it
  round-robin arbitrates over its input FIFOs, granting the head flit whose
  route names this output.  A granted flit occupies the bus for
  ``weight / rate`` cycles (a flit's weight is its data-beat count) and
  arrives at the destination FIFO ``latency`` cycles after transmission
  completes.  Changing the granted input inserts ``dead_cycles`` of bus
  turnaround — the "additional dead cycles for bus multiplexing" the paper
  identifies as a contention source.

Backpressure is credit-based: a grant is only issued when the destination
FIFO has a free slot, which the output reserves until delivery.  Every
destination FIFO is fed by exactly one :class:`ArbOutput` (a structural
invariant of the topologies built here), so the reservation count can live
on the output.

These classes are on the simulation's innermost loop; they use
``__slots__``, plain attribute access and early-outs rather than nested
abstractions (see the optimizing-code guide).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Sequence, Tuple

from ..axi.transaction import AxiTransaction
from ..errors import SimulationError

#: Flit phases.
REQUEST = 0
RESPONSE = 1


class Flit:
    """One transaction's traversal of one network phase.

    ``weight`` is the number of data beats the flit occupies on a bus:
    1 for a read request (address only), ``burst_len`` for write requests
    (address + write data) and read responses (read data).
    """

    __slots__ = ("txn", "weight", "phase", "route", "hop")

    def __init__(
        self,
        txn: AxiTransaction,
        weight: int,
        phase: int,
        route: Sequence["ArbOutput"],
    ) -> None:
        self.txn = txn
        self.weight = weight
        self.phase = phase
        self.route = route
        self.hop = 0

    @property
    def next_output(self) -> Optional["ArbOutput"]:
        """The ArbOutput this flit must traverse next, or ``None`` if it has
        arrived at its terminal FIFO."""
        if self.hop >= len(self.route):
            return None
        return self.route[self.hop]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "REQ" if self.phase == REQUEST else "RSP"
        return f"Flit({kind} w={self.weight} hop={self.hop}/{len(self.route)} {self.txn!r})"


class SharedBus:
    """A capacity meter shared by several :class:`ArbOutput` instances.

    A lateral connection of the segmented fabric is one AXI interface: its
    W channel carries write data in the request direction while its R
    channel returns read data for the *same* flows.  The paper's own
    Fig. 4 arithmetic ("two BMs get 100 % ... the contending ones
    effectively only 50 %") treats a lateral connection as a single
    one-PCH-bandwidth resource, so the forward (request) and backward
    (response) ArbOutputs of one lateral bus share this meter.
    """

    __slots__ = ("busy_until",)

    def __init__(self) -> None:
        self.busy_until: float = 0.0


class Fifo:
    """A bounded FIFO of flits."""

    __slots__ = ("items", "capacity", "name", "waker")

    def __init__(self, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError("fifo capacity must be >= 1")
        self.items: Deque[Flit] = deque()
        self.capacity = capacity
        self.name = name
        #: Optional arrival hook (vector engine): called once per append.
        #: Only terminal FIFOs (MC landing / completion queues, whose
        #: arrivals bump no downstream ``pending_in``) get one.
        self.waker: Optional[Callable[[], None]] = None

    def __len__(self) -> int:
        return len(self.items)

    @property
    def full(self) -> bool:
        return len(self.items) >= self.capacity

    @property
    def head(self) -> Optional[Flit]:
        return self.items[0] if self.items else None

    def append(self, flit: Flit) -> None:
        if self.full:
            raise SimulationError(f"overflow on fifo {self.name!r}")
        self.items.append(flit)
        # Book the flit with the output that must grant it next, so idle
        # outputs can skip their arbitration scan entirely.
        if flit.hop < len(flit.route):
            nxt = flit.route[flit.hop]
            nxt.pending_in += 1
            # 0 -> 1 transition: a sleeping output just gained work; the
            # vector engine re-arms its due time through this hook.
            if nxt.pending_in == 1 and nxt.waker is not None:
                nxt.waker(nxt)
        elif self.waker is not None:
            self.waker()

    def popleft(self) -> Flit:
        return self.items.popleft()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Fifo({self.name!r} {len(self.items)}/{self.capacity})"


class ArbOutput:
    """One arbitrated output bus of a switch.

    Parameters
    ----------
    inputs:
        The input FIFOs this output arbitrates over (round-robin).
    dest:
        Destination FIFO flits are delivered into.
    latency:
        Pipeline latency in cycles between the end of transmission and
        arrival at ``dest``.
    rate:
        Beats per cycle the bus can move (1.0 for fabric-clock buses, the
        accelerator/fabric clock ratio for master-adjacent buses).
    dead_cycles:
        Bus-multiplexing dead cycles inserted when the granted input
        differs from the previously granted one.
    """

    __slots__ = ("name", "inputs", "dest", "latency", "rate", "dead_cycles",
                 "busy_until", "last_input", "reserved", "in_flight",
                 "granted_flits", "busy_weight", "shared", "pending_in",
                 "grant_stalls", "waker")

    def __init__(
        self,
        name: str,
        inputs: List[Fifo],
        dest: Fifo,
        latency: int,
        rate: float = 1.0,
        dead_cycles: int = 0,
        shared: Optional[SharedBus] = None,
    ) -> None:
        if rate <= 0:
            raise SimulationError("bus rate must be positive")
        self.name = name
        self.inputs = inputs
        self.dest = dest
        self.latency = latency
        self.rate = rate
        self.dead_cycles = dead_cycles
        self.shared = shared
        self.busy_until: float = 0.0
        self.last_input: int = -1
        self.reserved: int = 0
        #: (arrival_cycle, flit) in non-decreasing arrival order.
        self.in_flight: Deque[Tuple[float, Flit]] = deque()
        #: Total flits granted (diagnostics).
        self.granted_flits: int = 0
        #: Total beat-weight granted (diagnostics / utilization).
        self.busy_weight: float = 0.0
        #: Flits currently buffered in input FIFOs whose next hop is this
        #: output (maintained by :meth:`Fifo.append` and the grant logic).
        #: Zero means an arbitration scan cannot succeed — the fast
        #: early-out of :meth:`step`.
        self.pending_in: int = 0
        #: Cycles a pending flit waited while this bus was *idle* —
        #: the shared lateral bus was held by the partner direction, the
        #: destination FIFO was full, or head-of-line blocking hid every
        #: eligible head.  Transmission cycles are occupancy, not stalls.
        self.grant_stalls: int = 0
        #: Optional 0 -> 1 ``pending_in`` hook (see :meth:`Fifo.append`).
        self.waker: Optional[Callable[["ArbOutput"], None]] = None

    # -- simulation ----------------------------------------------------------

    def step(self, cycle: int) -> None:
        """Advance one cycle: deliver due arrivals, then try to grant."""
        inflight = self.in_flight
        if inflight:
            dest = self.dest
            while inflight and inflight[0][0] <= cycle:
                _, flit = inflight.popleft()
                self.reserved -= 1
                flit.hop += 1
                dest.append(flit)
        if self.pending_in == 0:
            return  # nothing routed here: the scan below cannot grant
        if self.busy_until > cycle:
            return  # transmitting: the bus is occupied, not stalled
        if self.shared is not None and self.shared.busy_until > cycle:
            self.grant_stalls += 1  # partner direction holds the lateral
            return
        if not self._try_grant(cycle):
            self.grant_stalls += 1  # dest backpressure / HOL blocking

    def _try_grant(self, cycle: int) -> bool:
        """Attempt one round-robin grant; returns whether one was issued."""
        inputs = self.inputs
        n = len(inputs)
        if n == 0:
            return False
        if len(self.dest.items) + self.reserved >= self.dest.capacity:
            return False
        idx = self.last_input
        for _ in range(n):
            idx += 1
            if idx >= n:
                idx = 0
            items = inputs[idx].items
            if not items:
                continue
            flit = items[0]
            if flit.route[flit.hop] is not self:
                continue
            # Grant.
            items.popleft()
            self.pending_in -= 1
            start = float(cycle)
            if self.last_input != idx and self.last_input != -1 and self.dead_cycles:
                start += self.dead_cycles
            duration = flit.weight / self.rate
            self.busy_until = start + duration
            if self.shared is not None:
                self.shared.busy_until = start + duration
            self.in_flight.append((start + duration + self.latency, flit))
            self.reserved += 1
            self.last_input = idx
            self.granted_flits += 1
            self.busy_weight += flit.weight
            return True
        return False

    def quiescent(self) -> bool:
        """True when nothing is buffered or in flight on this bus."""
        return not self.in_flight and self.reserved == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ArbOutput({self.name!r} busy_until={self.busy_until:.1f} "
                f"inflight={len(self.in_flight)})")
