"""Struct-of-arrays views of interconnect and master-port state.

Companion of :mod:`repro.dram.soa` for the other two state planes the
vector engine tier tracks in arrays:

* :class:`ArbStateSoA` — the arbitration plane: one entry per
  :class:`~repro.fabric.links.ArbOutput` (bus meters, round-robin
  pointers, booked pending work, stall counters, in-flight heads);
* :class:`McStateSoA` — the controller plane: shared command meters,
  accept counters and queue/pending occupancy per
  :class:`~repro.dram.controller.MemoryController`;
* :class:`MasterStateSoA` — the credit plane: outstanding counts,
  pacing meters and retry/NACK counters per
  :class:`~repro.axi.master.MasterPort`.

Occupancy columns (FIFO/queue/heap lengths, in-flight heads) are
*projections*: they fingerprint container state that cannot be rebuilt
from a scalar, so :meth:`restore` writes back only the scalar fields and
leaves projections untouched.  ``capture`` -> ``restore`` -> ``capture``
is exact on an unchanged model, which is what the hypothesis round-trip
suite pins down; :func:`~repro.dram.soa.soa_digest` over the full image
(projections included) is what the scalar/vector interleaving tests
compare.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from ..axi.master import MasterPort
from ..dram.controller import MemoryController
from .links import ArbOutput


class ArbStateSoA:
    """One row per arbitrated output bus."""

    #: Scalar fields written back by :meth:`restore`.
    SCALARS = ("busy_until", "last_input", "reserved", "pending_in",
               "granted_flits", "busy_weight", "grant_stalls")

    __slots__ = ("busy_until", "last_input", "reserved", "pending_in",
                 "granted_flits", "busy_weight", "grant_stalls",
                 "inflight_len", "inflight_head")

    def __init__(self, n: int) -> None:
        self.busy_until = np.zeros(n, dtype=np.float64)
        self.last_input = np.zeros(n, dtype=np.int64)
        self.reserved = np.zeros(n, dtype=np.int64)
        self.pending_in = np.zeros(n, dtype=np.int64)
        self.granted_flits = np.zeros(n, dtype=np.int64)
        self.busy_weight = np.zeros(n, dtype=np.float64)
        self.grant_stalls = np.zeros(n, dtype=np.int64)
        self.inflight_len = np.zeros(n, dtype=np.int64)
        self.inflight_head = np.zeros(n, dtype=np.float64)

    @classmethod
    def capture(cls, outputs: Sequence[ArbOutput]) -> "ArbStateSoA":
        soa = cls(len(outputs))
        soa.refresh(outputs)
        return soa

    def refresh(self, outputs: Sequence[ArbOutput]) -> None:
        for i, o in enumerate(outputs):
            for name in self.SCALARS:
                getattr(self, name)[i] = getattr(o, name)
            infl = o.in_flight
            self.inflight_len[i] = len(infl)
            self.inflight_head[i] = infl[0][0] if infl else math.inf

    def restore(self, outputs: Sequence[ArbOutput]) -> None:
        if len(outputs) != len(self.busy_until):
            raise ValueError(
                f"image holds {len(self.busy_until)} outputs, "
                f"got {len(outputs)}")
        for i, o in enumerate(outputs):
            o.busy_until = float(self.busy_until[i])
            o.last_input = int(self.last_input[i])
            o.reserved = int(self.reserved[i])
            o.pending_in = int(self.pending_in[i])
            o.granted_flits = int(self.granted_flits[i])
            o.busy_weight = float(self.busy_weight[i])
            o.grant_stalls = int(self.grant_stalls[i])

    def arrays(self) -> List[np.ndarray]:
        return [getattr(self, name) for name in self.__slots__]


class McStateSoA:
    """One row per memory controller."""

    __slots__ = ("cmd_free", "accepts", "queue_len", "pending_len",
                 "pending_head")

    def __init__(self, n_mc: int, pch_per_mc: int) -> None:
        self.cmd_free = np.zeros(n_mc, dtype=np.float64)
        self.accepts = np.zeros(n_mc, dtype=np.int64)
        self.queue_len = np.zeros((n_mc, pch_per_mc), dtype=np.int64)
        self.pending_len = np.zeros(n_mc, dtype=np.int64)
        self.pending_head = np.zeros(n_mc, dtype=np.float64)

    @classmethod
    def capture(cls, mcs: Sequence[MemoryController]) -> "McStateSoA":
        if not mcs:
            raise ValueError("capture needs at least one controller")
        soa = cls(len(mcs), len(mcs[0].pchs))
        soa.refresh(mcs)
        return soa

    def refresh(self, mcs: Sequence[MemoryController]) -> None:
        for i, mc in enumerate(mcs):
            self.cmd_free[i] = mc.cmd_free
            self.accepts[i] = mc.accepts
            self.queue_len[i] = [len(q) for q in mc.queues]
            pend = mc._pending
            self.pending_len[i] = len(pend)
            self.pending_head[i] = pend[0][0] if pend else math.inf

    def restore(self, mcs: Sequence[MemoryController]) -> None:
        if len(mcs) != len(self.cmd_free):
            raise ValueError(
                f"image holds {len(self.cmd_free)} controllers, "
                f"got {len(mcs)}")
        for i, mc in enumerate(mcs):
            mc.cmd_free = float(self.cmd_free[i])
            mc.accepts = int(self.accepts[i])

    def arrays(self) -> List[np.ndarray]:
        return [getattr(self, name) for name in self.__slots__]


class MasterStateSoA:
    """One row per bus-master port."""

    #: Scalar fields written back by :meth:`restore`.
    SCALARS = ("outstanding", "next_issue", "issued", "completed",
               "read_issued", "write_issued", "retries", "nacks",
               "unrecoverable")

    __slots__ = ("outstanding", "next_issue", "issued", "completed",
                 "read_issued", "write_issued", "retries", "nacks",
                 "unrecoverable", "staged", "retry_len", "retry_head")

    def __init__(self, n: int) -> None:
        self.outstanding = np.zeros(n, dtype=np.int64)
        self.next_issue = np.zeros(n, dtype=np.float64)
        self.issued = np.zeros(n, dtype=np.int64)
        self.completed = np.zeros(n, dtype=np.int64)
        self.read_issued = np.zeros(n, dtype=np.int64)
        self.write_issued = np.zeros(n, dtype=np.int64)
        self.retries = np.zeros(n, dtype=np.int64)
        self.nacks = np.zeros(n, dtype=np.int64)
        self.unrecoverable = np.zeros(n, dtype=np.int64)
        self.staged = np.zeros(n, dtype=np.int64)
        self.retry_len = np.zeros(n, dtype=np.int64)
        self.retry_head = np.zeros(n, dtype=np.float64)

    @classmethod
    def capture(cls, masters: Sequence[MasterPort]) -> "MasterStateSoA":
        soa = cls(len(masters))
        soa.refresh(masters)
        return soa

    def refresh(self, masters: Sequence[MasterPort]) -> None:
        for i, mp in enumerate(masters):
            for name in self.SCALARS:
                getattr(self, name)[i] = getattr(mp, name)
            self.staged[i] = mp._staged is not None
            retry = mp._retry
            self.retry_len[i] = len(retry)
            self.retry_head[i] = retry[0][0] if retry else math.inf

    def restore(self, masters: Sequence[MasterPort]) -> None:
        if len(masters) != len(self.outstanding):
            raise ValueError(
                f"image holds {len(self.outstanding)} masters, "
                f"got {len(masters)}")
        for i, mp in enumerate(masters):
            mp.outstanding = int(self.outstanding[i])
            mp.next_issue = float(self.next_issue[i])
            mp.issued = int(self.issued[i])
            mp.completed = int(self.completed[i])
            mp.read_issued = int(self.read_issued[i])
            mp.write_issued = int(self.write_issued[i])
            mp.retries = int(self.retries[i])
            mp.nacks = int(self.nacks[i])
            mp.unrecoverable = int(self.unrecoverable[i])

    def arrays(self) -> List[np.ndarray]:
        return [getattr(self, name) for name in self.__slots__]
