"""Zero-contention reference fabric.

Used for sanity checks and upper-bound comparisons: requests reach their
memory controller after a single cycle, responses return after a single
cycle, and no interconnect resource is ever shared.  DRAM-side effects
(rows, turnaround, refresh, port-rate gates) still apply, so the
ideal fabric exposes the *memory* limits in isolation from the *fabric*
limits — the separation the paper's analysis methodology relies on.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Deque, List, Optional

from ..axi.transaction import AxiTransaction
from ..core.address_map import AddressMap, ContiguousMap
from ..dram.controller import SchedulerConfig
from ..params import HbmPlatform, DEFAULT_PLATFORM
from .base import BaseFabric


class IdealFabric(BaseFabric):
    """Contention-free interconnect with unit latency."""

    name = "ideal"

    def __init__(
        self,
        platform: HbmPlatform = DEFAULT_PLATFORM,
        address_map: Optional[AddressMap] = None,
        sched: Optional[SchedulerConfig] = None,
    ) -> None:
        super().__init__(platform, address_map or ContiguousMap(platform), sched)
        self._in_transit: List[tuple] = []
        self._seq = 0
        self._staged: Deque[AxiTransaction] = deque()
        #: Fault hook: ingress frozen until this cycle (no lateral
        #: structure exists to stall selectively).
        self._stall_until: float = 0.0

    def submit(self, txn: AxiTransaction, cycle: int) -> bool:
        self._resolve(txn)
        txn.issue_cycle = cycle
        self._seq += 1
        heapq.heappush(self._in_transit, (cycle + 1, self._seq, txn))
        return True

    def step(self, cycle: int) -> None:
        if cycle >= self._stall_until:
            transit = self._in_transit
            while transit and transit[0][0] <= cycle:
                _, _, txn = heapq.heappop(transit)
                self._staged.append(txn)
            if self._staged:
                self._staged = self._retry_staged(self._staged, cycle)
        for mc in self.mcs:
            mc.step(cycle)
        self._pop_due_events(cycle)

    def apply_link_stall(self, until: float, cut: Optional[int] = None) -> None:
        if until > self._stall_until:
            self._stall_until = until

    def quiescent(self) -> bool:
        return (not self._in_transit and not self._staged
                and self._mcs_quiescent())

    def next_event(self, cycle: int) -> float:
        nxt = super().next_event(cycle)
        if nxt <= cycle + 1:
            return nxt
        if self._staged:
            return cycle + 1
        if self._in_transit:
            t = math.ceil(self._in_transit[0][0])
            if t < nxt:
                nxt = t
        return nxt if nxt > cycle + 1 else cycle + 1

    def telemetry_probes(self) -> list:
        """Base DRAM/controller probes plus the transit/staging gauges
        (the ideal fabric has no contended interconnect to probe)."""
        from ..telemetry.metrics import GAUGE, Probe
        probes = super().telemetry_probes()
        probes.append(Probe(
            "ideal.in_transit", GAUGE,
            lambda self=self: len(self._in_transit), "fabric"))
        probes.append(Probe(
            "ideal.staged", GAUGE, lambda self=self: len(self._staged),
            "fabric"))
        return probes

    def _on_read_data(self, txn: AxiTransaction, time: float) -> None:
        self._schedule_completion(txn, time + 1)

    def _on_write_accept(self, txn: AxiTransaction, time: float) -> None:
        self._schedule_completion(txn, time + 1)

    def _response_space(self, pch: int) -> bool:
        return True
