"""Analytical max-min flow model of the segmented switch network.

A fast, closed-form cross-check for the cycle simulation: flows (one per
bus master) traverse a set of capacitated resources — their destination
pseudo-channel and every lateral bus on their route — and bandwidth is
allocated max-min fairly, which is what cycle-level round-robin
arbitration converges to.

This reproduces the arithmetic of the paper's own Fig. 4 explanation:
with rotation offset 2, two masters per switch share one lateral bus, so
they each get half of it (75 % total); with offset 4, four masters share
two buses (50 %); and so on.

The model is deliberately simple — no head-of-line blocking, no dead
cycles — so differences against the cycle simulation quantify exactly
those second-order effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence, Tuple

from ..params import HbmPlatform, DEFAULT_PLATFORM, gbps
from ..types import RWRatio, TWO_TO_ONE
from .topology import SegmentedTopology


@dataclass
class Flow:
    """One master's traffic: a demand over a set of weighted resources.

    ``usage`` maps resource key -> coefficient: a flow of rate ``r``
    consumes ``coeff * r`` of that resource.  Coefficients express e.g.
    that only the read share of a flow crosses the response laterals.
    """

    name: str
    demand: float
    usage: Dict[Hashable, float] = field(default_factory=dict)


def max_min_throughput(
    flows: Sequence[Flow],
    capacities: Dict[Hashable, float],
) -> Dict[str, float]:
    """Max-min fair allocation of flow rates under resource capacities.

    Standard water-filling: raise every unfrozen flow's rate uniformly
    until some resource saturates (or a flow reaches its demand), freeze
    the affected flows, and repeat.

    Returns a mapping flow name -> allocated rate.
    """
    rates = {f.name: 0.0 for f in flows}
    active = {f.name: f for f in flows}
    remaining = dict(capacities)

    while active:
        # Max uniform increment before a resource or a demand binds.
        limit = min(f.demand - rates[f.name] for f in active.values())
        load: Dict[Hashable, float] = {}
        for f in active.values():
            for res, coeff in f.usage.items():
                load[res] = load.get(res, 0.0) + coeff
        for res, total_coeff in load.items():
            if total_coeff > 0:
                limit = min(limit, remaining[res] / total_coeff)
        if limit < 0:
            limit = 0.0
        # Apply the increment.
        saturated: set = set()
        for f in active.values():
            rates[f.name] += limit
            for res, coeff in f.usage.items():
                remaining[res] -= coeff * limit
                if remaining[res] <= 1e-12:
                    saturated.add(res)
        # Freeze flows that met demand or touch a saturated resource.
        frozen = [
            name for name, f in active.items()
            if rates[name] >= f.demand - 1e-12
            or any(res in saturated for res in f.usage)
        ]
        if not frozen:
            break  # numerical safety; should not happen
        for name in frozen:
            del active[name]
    return rates


def rotation_flows(
    offset: int,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    rw: RWRatio = TWO_TO_ONE,
    pch_limit_gbps: float = 13.0,
    lateral_limit_gbps: float = 14.4,
) -> Tuple[List[Flow], Dict[Hashable, float]]:
    """Build the Fig. 4 rotation workload for the flow model.

    Master ``m`` accesses PCH ``(m + offset) mod num_pch`` with reads and
    writes in ratio ``rw``.  Write data loads the request laterals, read
    data the response laterals, both load the destination PCH.
    """
    topo = SegmentedTopology(platform)
    n = platform.num_pch
    flows: List[Flow] = []
    caps: Dict[Hashable, float] = {}
    for p in range(n):
        caps[("pch", p)] = pch_limit_gbps
    for m in range(platform.num_masters):
        p = (m + offset) % n
        usage: Dict[Hashable, float] = {("pch", p): 1.0}
        # A lateral connection is one AXI interface: write data travels in
        # the request direction, read data returns on the same bus, so the
        # flow's *whole* traffic loads each lateral bus it crosses.
        req = topo.request_route(m, p)
        for hop in req.laterals:
            key = ("lat", hop)
            caps.setdefault(key, lateral_limit_gbps)
            usage[key] = usage.get(key, 0.0) + 1.0
        flows.append(Flow(f"m{m}", demand=pch_limit_gbps, usage=usage))
    return flows, caps


def rotation_throughput_gbps(
    offset: int,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    rw: RWRatio = TWO_TO_ONE,
) -> float:
    """Total device throughput (GB/s) of the rotation pattern."""
    flows, caps = rotation_flows(offset, platform, rw)
    rates = max_min_throughput(flows, caps)
    return sum(rates.values())
