"""Interconnect fabrics between bus masters and HBM pseudo-channels.

Three fabrics are modeled:

* :class:`~repro.fabric.segmented.SegmentedFabric` — the Xilinx-style
  segmented switch network of Fig. 1: eight 4x4 local crossbar switches,
  two lateral buses per direction, round-robin arbitration with dead
  cycles, and input-queued (head-of-line blocking) FIFOs.
* :class:`~repro.fabric.mao_fabric.MaoFabric` — the paper's Memory Access
  Optimizer: a hierarchical, non-blocking distribution network with
  address interleaving and reorder buffers (Sec. IV-B).
* :class:`~repro.fabric.ideal.IdealFabric` — a zero-contention reference.

:mod:`repro.fabric.flow` additionally provides an *analytical* max-min
flow model of the segmented topology used to cross-validate the cycle
simulation (e.g. the rotation experiment of Fig. 4).
"""

from .links import Fifo, Flit, ArbOutput
from .topology import SegmentedTopology, Route
from .segmented import SegmentedFabric
from .mao_fabric import MaoFabric
from .ideal import IdealFabric
from .flow import max_min_throughput, rotation_flows
from .visualize import render_topology, render_utilization

__all__ = [
    "Fifo",
    "Flit",
    "ArbOutput",
    "SegmentedTopology",
    "Route",
    "SegmentedFabric",
    "MaoFabric",
    "IdealFabric",
    "max_min_throughput",
    "rotation_flows",
    "render_topology",
    "render_utilization",
]
