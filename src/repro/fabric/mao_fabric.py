"""Cycle model of the Memory Access Optimizer fabric (Sec. IV-B).

The MAO replaces the lateral switch chain with a hierarchical distribution
network.  Architecturally that network is *non-blocking*: any master can
reach any pseudo-channel without sharing a bus with unrelated traffic, so
the only remaining contention points are

* each PCH's acceptance port (one 32 B beat per fabric cycle),
* each master's response port (paced at the accelerator clock),
* the DRAM itself (rows, turnarounds, refresh).

The model therefore represents the network as pipeline latency plus
per-port rate meters instead of explicit switches — the defining property
of the architecture, not a simplification of convenience.  Address
interleaving and reorder buffers are the other two MAO adaptions; both
live here (the interleave map is applied at submit, the reorder release
rule on read completion).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Callable, Deque, List, Optional

from ..axi.transaction import AxiTransaction
from ..core.address_map import AddressMap, ContiguousMap, InterleavedMap
from ..core.mao import MaoConfig
from ..core.reorder import ReorderBuffer
from ..dram.controller import SchedulerConfig
from ..params import HbmPlatform, DEFAULT_PLATFORM
from .base import BaseFabric

#: Fixed registering overhead of the MAO ingress/egress, fabric cycles.
MAO_BASE_LATENCY = 6

#: Write-response return latency inside the MAO, fabric cycles.
MAO_B_LATENCY = 3

#: Outstanding read bursts one AXI ID lane sustains before in-order
#: response delivery stalls further issue (Fig. 6 reorder sweep).
READS_PER_LANE = 2


class MaoFabric(BaseFabric):
    """The paper's MAO hierarchical interconnect."""

    name = "mao"

    #: Reads are tagged with reorder-buffer lane IDs and the release rule
    #: keeps each lane's responses in issue order whenever same-lane
    #: reads are never concurrently in flight.  Lane allocation prefers a
    #: *free* lane (like hardware AXI ID tag allocation), so with
    #: reorder_depth >= outstanding no two in-DRAM reads ever share a
    #: lane and the guarantee is unconditional; with fewer lanes than
    #: credits, saturated lanes are shared and same-lane inversions can
    #: occur (the sanitizer counts them instead of raising there).
    same_id_ordering = True

    def __init__(
        self,
        platform: HbmPlatform = DEFAULT_PLATFORM,
        config: Optional[MaoConfig] = None,
        sched: Optional[SchedulerConfig] = None,
    ) -> None:
        self.config = config or MaoConfig()
        if self.config.interleave_enabled:
            address_map: AddressMap = InterleavedMap(
                platform, self.config.interleave_granularity)
        else:
            address_map = ContiguousMap(platform)
        sched = sched or SchedulerConfig()
        # The MAO's reorder depth is the number of independent AXI IDs the
        # memory controllers may reorder across (Fig. 6).
        sched = SchedulerConfig(
            window=sched.window,
            reorder_depth=self.config.reorder_depth,
            queue_capacity=sched.queue_capacity,
            request_fifo_capacity=sched.request_fifo_capacity,
            horizon=sched.horizon,
            hit_bonus=sched.hit_bonus,
            dir_bonus=sched.dir_bonus,
        )
        super().__init__(platform, address_map, sched)
        ft = platform.fabric
        #: One-way pipeline latency of the distribution network.
        self.one_way_latency = (MAO_BASE_LATENCY
                                + self.config.stages * ft.mao_stage_latency)
        #: Per-PCH request acceptance meter (1 beat / fabric cycle).
        self._accept_free = [0.0] * platform.num_pch
        #: Per-master response port meter (accelerator-clock pacing).
        self._egress_free = [0.0] * platform.num_masters
        #: Per-master reorder buffers (release-rule view).
        self.reorder = [ReorderBuffer(self.config.reorder_depth)
                        for _ in range(platform.num_masters)]
        #: In-flight requests: (arrival_cycle, seq, txn).
        self._in_transit: List[tuple] = []
        self._seq = 0
        #: Requests that arrived but found their MC queue full.
        self._staged: Deque[AxiTransaction] = deque()
        #: Reads in flight per master; bounded by the reorder depth (each
        #: AXI ID lane sustains a couple of outstanding bursts before
        #: in-order delivery stalls the stream).
        self._reads_in_flight = [0] * platform.num_masters
        self._max_reads = max(1, self.config.reorder_depth) * READS_PER_LANE
        #: Reads holding each AXI ID lane, per master — occupied from
        #: submit until the data (or NACK) leaves the memory controller.
        #: The release rule only orders a lane correctly when its
        #: ``release_time`` calls arrive in issue order, which holds iff
        #: the lane never has two reads in the DRAM at once.
        self._lane_users = [[0] * self.config.reorder_depth
                            for _ in range(platform.num_masters)]
        #: Optional hook (vector engine): called with the master index
        #: whenever one of its in-flight reads leaves the DRAM (data or
        #: NACK), i.e. whenever a refused-at-lane-saturation submit could
        #: start succeeding again.
        self.read_slot_waker: Optional[Callable[[int], None]] = None

    # -- engine interface --------------------------------------------------------

    def submit(self, txn: AxiTransaction, cycle: int) -> bool:
        if txn.is_read and self._reads_in_flight[txn.master] >= self._max_reads:
            # All ID lanes saturated: a master with few independent AXI
            # IDs cannot keep more reads in flight (Fig. 6).
            return False
        self._resolve(txn)
        txn.issue_cycle = cycle
        if txn.is_read:
            self._reads_in_flight[txn.master] += 1
            txn.axi_id = self._alloc_lane(txn.master)
        weight = txn.burst_len if txn.is_write else 1
        arrival = cycle + self.one_way_latency + weight
        # Serialize at the destination PCH's acceptance port.
        free = self._accept_free[txn.pch]
        if free > arrival:
            arrival = free
        self._accept_free[txn.pch] = arrival + weight
        self._seq += 1
        heapq.heappush(self._in_transit, (arrival, self._seq, txn))
        return True

    def _alloc_lane(self, master: int) -> int:
        """Pick the AXI ID lane of a fresh read.

        The round-robin pointer advances per read (the analytical model's
        allocation order); its lane is used when free.  A busy round-robin
        lane means an older read is still in the DRAM there — handing it
        a second read would let out-of-order DRAM completions invert the
        lane's release chain — so the next free lane is taken instead.
        Only when *every* lane is busy (reorder_depth < outstanding) is
        the lane shared: the documented relaxed regime.
        """
        depth = self.config.reorder_depth
        lane = self.reorder[master].issue() % depth
        users = self._lane_users[master]
        if users[lane]:
            for off in range(1, depth):
                cand = (lane + off) % depth
                if not users[cand]:
                    lane = cand
                    break
        users[lane] += 1
        return lane

    def step(self, cycle: int) -> None:
        transit = self._in_transit
        while transit and transit[0][0] <= cycle:
            _, _, txn = heapq.heappop(transit)
            self._staged.append(txn)
        # Retry staged arrivals in order (per-PCH queues provide the
        # backpressure boundary).
        if self._staged:
            self._staged = self._retry_staged(self._staged, cycle)
        for mc in self.mcs:
            mc.step(cycle)
        self._pop_due_events(cycle)

    def quiescent(self) -> bool:
        return (not self._in_transit and not self._staged
                and self._mcs_quiescent())

    def next_event(self, cycle: int) -> float:
        nxt = super().next_event(cycle)
        if nxt <= cycle + 1:
            return nxt
        if self._staged:
            return cycle + 1
        if self._in_transit:
            t = math.ceil(self._in_transit[0][0])
            if t < nxt:
                nxt = t
        return nxt if nxt > cycle + 1 else cycle + 1

    # -- telemetry ---------------------------------------------------------------

    def telemetry_probes(self) -> list:
        """Base DRAM/controller probes plus the MAO's reorder state.

        The MAO network itself is non-blocking, so there are no link
        probes; what *can* bind is the reorder machinery — per-master
        reads in flight against the AXI ID lane ceiling — and the
        arrival-side staging when MC queues push back.
        """
        from ..telemetry.metrics import GAUGE, Probe
        probes = super().telemetry_probes()
        rif = self._reads_in_flight
        for m in range(self.platform.num_masters):
            probes.append(Probe(
                f"mao.master[{m}].reads_in_flight", GAUGE,
                lambda rif=rif, m=m: rif[m], "fabric"))
        probes.append(Probe(
            "mao.staged", GAUGE, lambda self=self: len(self._staged),
            "fabric"))
        probes.append(Probe(
            "mao.in_transit", GAUGE,
            lambda self=self: len(self._in_transit), "fabric"))
        return probes

    # -- fault hooks ---------------------------------------------------------------

    def apply_link_stall(self, until: float, cut: Optional[int] = None) -> None:
        """Freeze the distribution network's PCH-side acceptance ports.

        The MAO has no lateral cuts; a stalled switch stage means no
        request reaches any pseudo-channel until ``until`` (in-flight
        responses still deliver — they already left the stalled stage).
        """
        acc = self._accept_free
        for p in range(len(acc)):
            if acc[p] < until:
                acc[p] = until

    def _on_nack(self, txn: AxiTransaction, time: float) -> None:
        # The read's resources were claimed at submit: give back its
        # in-flight slot and retire its AXI ID lane turn (the NACK
        # response occupies the slot its data would have), otherwise a
        # flushed channel leaks read credits and the master starves.
        if txn.is_read:
            m = txn.master
            self._reads_in_flight[m] -= 1
            self._lane_users[m][txn.axi_id] -= 1
            self.reorder[m].release_time(txn.axi_id, time + 1.0)
            if self.read_slot_waker is not None:
                self.read_slot_waker(m)
        super()._on_nack(txn, time)

    # -- controller callbacks ------------------------------------------------------

    def _on_read_data(self, txn: AxiTransaction, time: float) -> None:
        m = txn.master
        self._reads_in_flight[m] -= 1
        self._lane_users[m][txn.axi_id] -= 1
        if self.read_slot_waker is not None:
            self.read_slot_waker(m)
        ready = time + self.one_way_latency
        # Pace the master's response port at the accelerator clock.
        free = self._egress_free[m]
        if free > ready:
            ready = free
        done = ready + txn.burst_len / self.platform.clock_ratio
        self._egress_free[m] = done
        # Reorder-buffer release rule: same AXI ID lanes stay in order.
        release = self.reorder[m].release_time(txn.axi_id, done)
        self._schedule_completion(txn, release)

    def _on_write_accept(self, txn: AxiTransaction, time: float) -> None:
        self._schedule_completion(txn, time + MAO_B_LATENCY)

    def _response_space(self, pch: int) -> bool:
        # The reorder buffers accept responses early; the master's
        # outstanding-transaction credits bound the in-flight volume.
        return True
