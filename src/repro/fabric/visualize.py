"""ASCII visualization of the segmented fabric and its utilization.

Two views, both terminal-friendly:

* :func:`render_topology` — the static structure of Fig. 1: switches,
  masters, MCs/PCHs, and the lateral buses.
* :func:`render_utilization` — after a simulation, a per-lateral-bus
  load heatmap built from the ArbOutputs' granted beat counters.  This
  makes the Fig. 4 story visible: at rotation 2 exactly one bus per cut
  glows, at rotation 8 every bus of every cut is saturated.
"""

from __future__ import annotations

from typing import List

from ..params import HbmPlatform
from .segmented import SegmentedFabric
from .topology import LEFT, RIGHT

_SHADES = " .:-=+*#%@"


def _shade(fraction: float) -> str:
    idx = min(len(_SHADES) - 1, max(0, int(fraction * (len(_SHADES) - 1) + 0.5)))
    return _SHADES[idx]


def render_topology(platform: HbmPlatform) -> str:
    """The static switch-chain structure."""
    lines: List[str] = []
    ns = platform.num_switches
    mps = platform.masters_per_switch
    pps = platform.pch_per_switch
    masters = "   ".join(
        f"BM{s * mps:02d}-BM{(s + 1) * mps - 1:02d}" for s in range(ns))
    lines.append("masters:   " + masters)
    chain = (" ==".join(f"[SW{s}]" for s in range(ns))
             .replace("==", "=" * (2 * platform.lateral_buses)))
    lines.append("switches:  " + chain)
    pchs = "   ".join(
        f"PCH{s * pps:02d}-{(s + 1) * pps - 1:02d}" for s in range(ns))
    lines.append("channels:  " + pchs)
    lines.append(f"({platform.lateral_buses} lateral buses per direction "
                 f"between neighbouring switches)")
    return "\n".join(lines)


def render_utilization(fabric: SegmentedFabric, cycles: int) -> str:
    """Per-lateral-bus utilization heatmap after a run.

    Utilization = granted beats / elapsed cycles, combining the request
    and response ArbOutputs that share each physical bus.
    """
    platform = fabric.platform
    ns = platform.num_switches
    lat = platform.lateral_buses
    lines: List[str] = [
        "lateral bus utilization (rows: buses, cols: cuts between switches)",
        "legend: '" + _SHADES + "' = 0 %..100 %",
    ]

    def bus_util(fwd, bwd) -> float:
        weight = 0.0
        for out in (fwd, bwd):
            if out is not None:
                weight += out.busy_weight
        return min(1.0, weight / cycles) if cycles > 0 else 0.0

    header = "            " + " ".join(f"{s}|{s+1}" for s in range(ns - 1))
    lines.append(header)
    for k in range(lat):
        row_r = []
        row_l = []
        for s in range(ns - 1):
            # Rightward AXI bus over cut (s, s+1): requests going right +
            # read data returning left.
            right = bus_util(fabric.lat_req_out[s][RIGHT][k],
                             fabric.lat_resp_out[s + 1][LEFT][k])
            left = bus_util(fabric.lat_req_out[s + 1][LEFT][k],
                            fabric.lat_resp_out[s][RIGHT][k])
            row_r.append(_shade(right) * 3)
            row_l.append(_shade(left) * 3)
        lines.append(f"  right[{k}]  " + " ".join(row_r))
        lines.append(f"  left [{k}]  " + " ".join(row_l))

    # PCH bus utilization as a footer strip.
    pch_row = "".join(_shade(p.utilization(cycles)) for p in fabric.pchs)
    lines.append(f"  PCH data buses: {pch_row}")
    return "\n".join(lines)
