"""Cycle model of the Xilinx-style segmented switch network (Fig. 1).

Eight local crossbar switches are chained by two lateral buses per
direction.  Requests travel master -> (laterals) -> MC; read data travels
back over a mirrored response network; write responses are light-weight
B handshakes delivered point-to-point.  All buses are
:class:`~repro.fabric.links.ArbOutput` instances with round-robin
arbitration, dead cycles on grant changes, and input FIFOs that exhibit
head-of-line blocking — the three contention mechanisms Sec. IV-A
identifies in the vendor fabric.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..axi.transaction import AxiTransaction
from ..core.address_map import AddressMap, ContiguousMap
from ..dram.controller import SchedulerConfig
from ..errors import ConfigError
from ..params import HbmPlatform, DEFAULT_PLATFORM
from .base import BaseFabric
from .links import ArbOutput, Fifo, Flit, SharedBus, REQUEST, RESPONSE
from .topology import LEFT, RIGHT, SegmentedTopology

#: Extra pipeline cycles of the write-response (B channel) return path.
B_RESPONSE_LATENCY = 3

#: Depth of a master's ingress FIFO (the master self-throttles via its
#: outstanding-transaction credits, so this only needs to cover jitter).
INGRESS_CAPACITY = 8

#: Depth of the lateral-bus hop FIFOs.
LATERAL_CAPACITY = 4

#: Depth of each PCH's read-data landing FIFO.
RESPONSE_CAPACITY = 16

#: Landing FIFO in front of each memory controller.
MC_IN_CAPACITY = 16

#: Completion FIFOs are drained every cycle; generous to avoid artificial
#: stalls of the final egress hop.
COMPLETION_CAPACITY = 64


class SegmentedFabric(BaseFabric):
    """The vendor-style segmented switch network ("XLNX" in the paper)."""

    name = "xlnx"

    def __init__(
        self,
        platform: HbmPlatform = DEFAULT_PLATFORM,
        address_map: Optional[AddressMap] = None,
        sched: Optional[SchedulerConfig] = None,
    ) -> None:
        super().__init__(platform, address_map or ContiguousMap(platform), sched)
        self.topology = SegmentedTopology(platform)
        ft = platform.fabric
        ns = platform.num_switches
        mps = platform.masters_per_switch
        lat = platform.lateral_buses
        ratio = platform.clock_ratio

        # --- FIFOs ---
        self.ingress = [Fifo(INGRESS_CAPACITY, f"ingress[{m}]")
                        for m in range(platform.num_masters)]
        self.completion = [Fifo(COMPLETION_CAPACITY, f"completion[{m}]")
                           for m in range(platform.num_masters)]
        # One landing FIFO per PCH: every pseudo-channel is its own AXI
        # port on the memory-controller side.
        self.mc_in = [Fifo(MC_IN_CAPACITY, f"mc_in[{i}]")
                      for i in range(platform.num_pch)]
        self.resp_fifo = [Fifo(RESPONSE_CAPACITY, f"resp[{p}]")
                          for p in range(platform.num_pch)]
        # Lateral hop FIFOs: [switch][side][parity].  ``side`` is the side
        # of *this* switch the bus arrives on: LEFT = from switch s-1.
        self.lat_req_in = [
            [[Fifo(LATERAL_CAPACITY, f"lreq[{s}][{side}][{k}]")
              for k in range(lat)] for side in (LEFT, RIGHT)]
            for s in range(ns)]
        self.lat_resp_in = [
            [[Fifo(LATERAL_CAPACITY, f"lrsp[{s}][{side}][{k}]")
              for k in range(lat)] for side in (LEFT, RIGHT)]
            for s in range(ns)]

        # --- Input groups per switch ---
        req_inputs: List[List[Fifo]] = []
        resp_inputs: List[List[Fifo]] = []
        for s in range(ns):
            masters = [self.ingress[s * mps + i] for i in range(mps)]
            lateral = self.lat_req_in[s][LEFT] + self.lat_req_in[s][RIGHT]
            req_inputs.append(masters + lateral)
            pchs = [self.resp_fifo[s * platform.pch_per_switch + i]
                    for i in range(platform.pch_per_switch)]
            lateral_r = self.lat_resp_in[s][LEFT] + self.lat_resp_in[s][RIGHT]
            resp_inputs.append(pchs + lateral_r)

        dead = ft.dead_cycles
        # One shared-capacity meter per physical lateral AXI bus: the
        # rightward bus over cut (s, s+1) carries rightward requests AND
        # their leftward-returning read data; likewise for leftward buses.
        self._shared_right = [[SharedBus() for _ in range(lat)]
                              for _ in range(ns - 1)]
        self._shared_left = [[SharedBus() for _ in range(lat)]
                             for _ in range(ns - 1)]
        # --- Request outputs ---
        self.mc_req_out: List[List[ArbOutput]] = []
        self.lat_req_out: List[List[List[Optional[ArbOutput]]]] = []
        for s in range(ns):
            mc_outs = []
            # One output bus per local PCH: the 4x4 local crossbar gives
            # every pseudo-channel its own AXI port, so no multiplexing
            # dead cycles apply here (they are a lateral-bus phenomenon,
            # Sec. IV-A).
            for j in range(platform.pch_per_switch):
                pch_index = s * platform.pch_per_switch + j
                mc_outs.append(ArbOutput(
                    f"mc_req[{s}][{j}]", req_inputs[s], self.mc_in[pch_index],
                    latency=ft.switch_latency + ft.mc_latency))
            self.mc_req_out.append(mc_outs)
            sides: List[List[Optional[ArbOutput]]] = [[None] * lat, [None] * lat]
            for k in range(lat):
                if s > 0:  # leftward bus lands on switch s-1's RIGHT side
                    sides[LEFT][k] = ArbOutput(
                        f"lat_req[{s}]L[{k}]", req_inputs[s],
                        self.lat_req_in[s - 1][RIGHT][k],
                        latency=ft.lateral_hop_latency, dead_cycles=dead,
                        shared=self._shared_left[s - 1][k])
                if s < ns - 1:
                    sides[RIGHT][k] = ArbOutput(
                        f"lat_req[{s}]R[{k}]", req_inputs[s],
                        self.lat_req_in[s + 1][LEFT][k],
                        latency=ft.lateral_hop_latency, dead_cycles=dead,
                        shared=self._shared_right[s][k])
            self.lat_req_out.append(sides)

        # --- Response outputs ---
        self.egress_out: List[ArbOutput] = []
        self.lat_resp_out: List[List[List[Optional[ArbOutput]]]] = []
        for s in range(ns):
            sides = [[None] * lat, [None] * lat]
            for k in range(lat):
                if s > 0:
                    # Read data travelling left returns on the *rightward*
                    # AXI bus its request used.
                    sides[LEFT][k] = ArbOutput(
                        f"lat_rsp[{s}]L[{k}]", resp_inputs[s],
                        self.lat_resp_in[s - 1][RIGHT][k],
                        latency=ft.lateral_hop_latency, dead_cycles=dead,
                        shared=self._shared_right[s - 1][k])
                if s < ns - 1:
                    sides[RIGHT][k] = ArbOutput(
                        f"lat_rsp[{s}]R[{k}]", resp_inputs[s],
                        self.lat_resp_in[s + 1][LEFT][k],
                        latency=ft.lateral_hop_latency, dead_cycles=dead,
                        shared=self._shared_left[s][k])
            self.lat_resp_out.append(sides)
        for m in range(platform.num_masters):
            s = platform.switch_of_master(m)
            self.egress_out.append(ArbOutput(
                f"egress[{m}]", resp_inputs[s], self.completion[m],
                latency=ft.switch_latency, rate=ratio))

        #: Memoized hop lists keyed by (master, pch) / (pch, master).
        self._req_routes: dict = {}
        self._resp_routes: dict = {}
        self._request_outputs: List[ArbOutput] = []
        self._response_outputs: List[ArbOutput] = []
        for s in range(ns):
            self._request_outputs.extend(self.mc_req_out[s])
            for side in (LEFT, RIGHT):
                for k in range(lat):
                    out = self.lat_req_out[s][side][k]
                    if out is not None:
                        self._request_outputs.append(out)
                    out = self.lat_resp_out[s][side][k]
                    if out is not None:
                        self._response_outputs.append(out)
        self._response_outputs.extend(self.egress_out)

    # -- route construction ----------------------------------------------------
    #
    # Routes are static per (master, pch) pair, so the hop lists are
    # memoized and shared between flits (flits never mutate their route —
    # only their private ``hop`` index advances).

    def _request_flit(self, txn: AxiTransaction) -> Flit:
        key = (txn.master, txn.pch)
        cached = self._req_routes.get(key)
        if cached is None:
            route = self.topology.request_route(txn.master, txn.pch)
            hops: List[ArbOutput] = []
            for (s, direction, parity) in route.laterals:
                out = self.lat_req_out[s][direction][parity]
                assert out is not None
                hops.append(out)
            local_pch = txn.pch % self.platform.pch_per_switch
            hops.append(self.mc_req_out[route.final_switch][local_pch])
            cached = (tuple(hops), route.num_hops)
            self._req_routes[key] = cached
        hops_t, num_hops = cached
        txn.hops = num_hops
        weight = txn.burst_len if txn.is_write else 1
        return Flit(txn, weight, REQUEST, hops_t)

    def _response_flit(self, txn: AxiTransaction) -> Flit:
        key = (txn.pch, txn.master)
        hops_t = self._resp_routes.get(key)
        if hops_t is None:
            route = self.topology.response_route(txn.pch, txn.master)
            hops: List[ArbOutput] = []
            for (s, direction, parity) in route.laterals:
                out = self.lat_resp_out[s][direction][parity]
                assert out is not None
                hops.append(out)
            hops.append(self.egress_out[txn.master])
            hops_t = tuple(hops)
            self._resp_routes[key] = hops_t
        return Flit(txn, txn.burst_len, RESPONSE, hops_t)

    # -- engine interface --------------------------------------------------------

    def submit(self, txn: AxiTransaction, cycle: int) -> bool:
        fifo = self.ingress[txn.master]
        if fifo.full:
            return False
        self._resolve(txn)
        flit = self._request_flit(txn)
        txn.issue_cycle = cycle
        fifo.append(flit)
        return True

    def step(self, cycle: int) -> None:
        # Stepping an output with no deliveries in flight and no flit
        # routed to it is a no-op; skip the call (the dominant cost of
        # the legacy inner loop was exactly these empty scans).
        for out in self._request_outputs:
            if out.pending_in or out.in_flight:
                out.step(cycle)
        mc_by_pch = self._mc_by_pch
        for pch_index, fifo in enumerate(self.mc_in):
            items = fifo.items
            if not items:
                continue
            mc = mc_by_pch[pch_index]
            while items and mc.try_accept(items[0].txn, cycle):
                fifo.popleft()
        for mc in self.mcs:
            mc.step(cycle)
        for out in self._response_outputs:
            if out.pending_in or out.in_flight:
                out.step(cycle)
        for m, fifo in enumerate(self.completion):
            items = fifo.items
            while items:
                flit = fifo.popleft()
                flit.txn.complete_cycle = cycle
                self.completions.append((flit.txn, float(cycle)))
        self._pop_due_events(cycle)

    def quiescent(self) -> bool:
        if not self._mcs_quiescent():
            return False
        for group in (self.ingress, self.completion, self.mc_in, self.resp_fifo):
            if any(f.items for f in group):
                return False
        for sw in self.lat_req_in + self.lat_resp_in:
            for side in sw:
                if any(f.items for f in side):
                    return False
        return all(o.quiescent() for o in self._request_outputs + self._response_outputs)

    def next_event(self, cycle: int) -> float:
        nxt = super().next_event(cycle)
        if nxt <= cycle + 1:
            return nxt
        # Any buffered flit can be arbitrated next cycle (conservative:
        # whether a grant actually happens depends on bus meters).
        for out in self._request_outputs:
            if out.pending_in:
                return cycle + 1
        for out in self._response_outputs:
            if out.pending_in:
                return cycle + 1
        if any(f.items for f in self.mc_in) or any(
                f.items for f in self.completion):
            return cycle + 1
        # Only pipeline deliveries remain; their arrival times are exact.
        for out in self._request_outputs:
            infl = out.in_flight
            if infl:
                t = math.ceil(infl[0][0])
                if t < nxt:
                    nxt = t
        for out in self._response_outputs:
            infl = out.in_flight
            if infl:
                t = math.ceil(infl[0][0])
                if t < nxt:
                    nxt = t
        return nxt if nxt > cycle + 1 else cycle + 1

    # -- telemetry ---------------------------------------------------------------

    def telemetry_probes(self) -> list:
        """Base DRAM/controller probes plus the switch interconnect.

        Every arbitrated bus exposes its cumulative granted beat-weight
        (``occupancy_beats`` — the numerator of its utilization) and its
        idle-but-blocked cycle count (``grant_stalls``).  Occupancy is
        only emitted for fabric-clock buses (rate 1.0), where "beats /
        elapsed cycles" is directly a utilization; the accelerator-paced
        egress buses report stalls only.  Ingress FIFO depths cover the
        per-master queueing ahead of the switch.
        """
        from ..telemetry.metrics import COUNTER, GAUGE, Probe
        probes = super().telemetry_probes()
        for m, fifo in enumerate(self.ingress):
            probes.append(Probe(
                f"fabric.ingress[{m}].depth", GAUGE,
                lambda f=fifo: len(f.items), "fabric"))
        for out in self._request_outputs + self._response_outputs:
            if out.rate == 1.0:  # det-lint: allow (exact config value)
                probes.append(Probe(
                    f"link.{out.name}.occupancy_beats", COUNTER,
                    lambda o=out: o.busy_weight, "link"))
            probes.append(Probe(
                f"link.{out.name}.grant_stalls", COUNTER,
                lambda o=out: o.grant_stalls, "link"))
        return probes

    # -- fault hooks ---------------------------------------------------------------

    def apply_link_stall(self, until: float, cut: Optional[int] = None) -> None:
        """Freeze the lateral buses over one cut (or every cut).

        The request and response ArbOutputs of a lateral connection share
        one :class:`~repro.fabric.links.SharedBus` meter, so pushing its
        ``busy_until`` forward stalls both directions — traffic crossing
        the cut queues up in the hop FIFOs and drains when the stall ends
        (head-of-line blocking then ripples exactly as in a healthy
        congested fabric).
        """
        num_cuts = self.platform.num_switches - 1
        if cut is None:
            cuts = range(num_cuts)
        else:
            if not 0 <= cut < num_cuts:
                raise ConfigError(
                    f"lateral cut {cut} out of range 0..{num_cuts - 1}")
            cuts = (cut,)
        for c in cuts:
            for bus in self._shared_right[c] + self._shared_left[c]:
                if bus.busy_until < until:
                    bus.busy_until = until

    # -- controller callbacks ------------------------------------------------------

    def _on_read_data(self, txn: AxiTransaction, time: float) -> None:
        self.resp_fifo[txn.pch].append(self._response_flit(txn))

    def _on_write_accept(self, txn: AxiTransaction, time: float) -> None:
        lat = B_RESPONSE_LATENCY + txn.hops * self.platform.fabric.lateral_hop_latency
        self._schedule_completion(txn, time + lat)

    def _response_space(self, pch: int) -> bool:
        mc = self._mc_by_pch[pch]
        fifo = self.resp_fifo[pch]
        return len(fifo) + mc.pending_reads(pch) < fifo.capacity
