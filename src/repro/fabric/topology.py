"""Topology and routing rules of the segmented switch network.

The Xilinx HBM interconnect (Fig. 1 / Fig. 4b of the paper) is a chain of
eight local crossbar switches.  Switch ``s`` fronts masters ``4s..4s+3``
and memory controllers ``2s`` / ``2s+1`` (each fronting two PCHs).  A
transaction whose destination PCH lives under another switch travels hop
by hop over the lateral buses; only **two** lateral buses exist per
direction, and a flow is *statically* assigned to the bus with the parity
of its destination MC (requests) / source MC (responses).  That static
assignment is what forces the two remote masters of each switch onto the
*same* lateral bus at rotation offset 2 (Sec. IV-A: "the static assignment
forced two BMs to use the same lateral connection").

:class:`SegmentedTopology` is pure geometry — it computes hop sequences as
:class:`Route` objects without any simulation state, so it can be unit
tested exhaustively and reused by the analytical flow model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import RoutingError
from ..params import HbmPlatform, DEFAULT_PLATFORM

#: Lateral directions.
LEFT = 0
RIGHT = 1


@dataclass(frozen=True)
class Route:
    """A hop sequence through the segmented network.

    ``laterals`` lists ``(switch, direction, parity)`` for every lateral
    bus traversed, in order; ``final_switch`` is where the terminal (MC or
    master egress) port lives.
    """

    source_switch: int
    final_switch: int
    laterals: Tuple[Tuple[int, int, int], ...]

    @property
    def num_hops(self) -> int:
        return len(self.laterals)


class SegmentedTopology:
    """Routing geometry of the segmented switch chain."""

    def __init__(self, platform: HbmPlatform = DEFAULT_PLATFORM) -> None:
        self.platform = platform

    # -- parity rules ---------------------------------------------------------

    def request_parity(self, pch: int) -> int:
        """Lateral bus index for requests: destination MC index modulo the
        bus count (static assignment)."""
        return (pch // self.platform.pch_per_mc) % self.platform.lateral_buses

    def response_parity(self, pch: int) -> int:
        """Lateral bus index for responses: source MC index (response
        buses are statically assigned per MC)."""
        return (pch // self.platform.pch_per_mc) % self.platform.lateral_buses

    # -- routes ---------------------------------------------------------------

    def _walk(self, src: int, dst: int, parity: int) -> Tuple[Tuple[int, int, int], ...]:
        if not 0 <= src < self.platform.num_switches:
            raise RoutingError(f"switch {src} out of range")
        if not 0 <= dst < self.platform.num_switches:
            raise RoutingError(f"switch {dst} out of range")
        hops: List[Tuple[int, int, int]] = []
        s = src
        step = 1 if dst > src else -1
        direction = RIGHT if dst > src else LEFT
        while s != dst:
            hops.append((s, direction, parity))
            s += step
        return tuple(hops)

    def request_route(self, master: int, pch: int) -> Route:
        """Hop sequence of a request from ``master`` to ``pch``."""
        src = self.platform.switch_of_master(master)
        dst = self.platform.switch_of_pch(pch)
        return Route(src, dst, self._walk(src, dst, self.request_parity(pch)))

    def response_route(self, pch: int, master: int) -> Route:
        """Hop sequence of a response from ``pch`` back to ``master``."""
        src = self.platform.switch_of_pch(pch)
        dst = self.platform.switch_of_master(master)
        return Route(src, dst, self._walk(src, dst, self.response_parity(pch)))

    # -- convenience for analysis ---------------------------------------------

    def hop_count(self, master: int, pch: int) -> int:
        """Lateral hops between a master and a PCH (0 when co-located)."""
        return abs(self.platform.switch_of_master(master)
                   - self.platform.switch_of_pch(pch))

    def is_local(self, master: int, pch: int) -> bool:
        return self.hop_count(master, pch) == 0
