"""Common scaffolding shared by all fabric models.

A *fabric* owns everything between the bus-master ports and the DRAM:
landing FIFOs, switches/links, memory controllers, and pseudo-channels.
The engine drives it through a narrow interface:

* :meth:`BaseFabric.submit` — a master offers a transaction (returns
  ``False`` on backpressure),
* :meth:`BaseFabric.step` — advance one fabric cycle,
* :attr:`BaseFabric.completions` — transactions that finished this cycle
  (drained by the engine),
* :meth:`BaseFabric.quiescent` — drain check for end-of-simulation.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from ..axi.transaction import AxiTransaction
from ..core.address_map import AddressMap
from ..dram.controller import MemoryController, SchedulerConfig
from ..dram.pch import PseudoChannel
from ..params import HbmPlatform


class BaseFabric:
    """Shared construction and completion plumbing for fabric models."""

    name = "base"

    def __init__(
        self,
        platform: HbmPlatform,
        address_map: AddressMap,
        sched: Optional[SchedulerConfig] = None,
    ) -> None:
        self.platform = platform
        self.address_map = address_map
        self.sched = sched or SchedulerConfig()
        #: Transactions completed this cycle: (txn, completion_cycle).
        self.completions: List[Tuple[AxiTransaction, float]] = []
        #: Directly scheduled completion events (write acks, etc.).
        self._events: List[tuple] = []
        self._event_seq = 0
        # Refresh phases are staggered across PCHs.
        t = platform.dram
        phase_step = t.t_refi // max(1, platform.num_pch)
        self.pchs = [
            PseudoChannel(i, t, refresh_phase=i * phase_step,
                          port_ratio=platform.clock_ratio)
            for i in range(platform.num_pch)
        ]
        self.num_mcs = platform.num_pch // platform.pch_per_mc
        self.mcs: List[MemoryController] = []
        for m in range(self.num_mcs):
            group = self.pchs[m * platform.pch_per_mc:(m + 1) * platform.pch_per_mc]
            self.mcs.append(MemoryController(
                m, group, t, self.sched,
                on_read_data=self._on_read_data,
                on_write_accept=self._on_write_accept,
                response_space=self._response_space,
                mc_latency=platform.fabric.mc_latency,
            ))

    # -- interface the engine uses --------------------------------------------

    def submit(self, txn: AxiTransaction, cycle: int) -> bool:
        raise NotImplementedError

    def step(self, cycle: int) -> None:
        raise NotImplementedError

    def quiescent(self) -> bool:
        raise NotImplementedError

    def drain_completions(self) -> List[Tuple[AxiTransaction, float]]:
        done = self.completions
        self.completions = []
        return done

    # -- hooks the subclasses implement ----------------------------------------

    def _on_read_data(self, txn: AxiTransaction, time: float) -> None:
        raise NotImplementedError

    def _on_write_accept(self, txn: AxiTransaction, time: float) -> None:
        raise NotImplementedError

    def _response_space(self, pch: int) -> bool:
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------------

    def _resolve(self, txn: AxiTransaction) -> None:
        """Fill in destination PCH and local offset from the address map."""
        txn.pch = self.address_map.pch_of(txn.address)
        txn.local = self.address_map.local_of(txn.address)

    def _schedule_completion(self, txn: AxiTransaction, time: float) -> None:
        self._event_seq += 1
        heapq.heappush(self._events, (time, self._event_seq, txn))

    def _pop_due_events(self, cycle: int) -> None:
        ev = self._events
        while ev and ev[0][0] <= cycle:
            time, _, txn = heapq.heappop(ev)
            txn.complete_cycle = cycle
            self.completions.append((txn, time))

    def _mcs_quiescent(self) -> bool:
        return all(mc.in_flight() == 0 for mc in self.mcs) and not self._events

    # -- reporting ----------------------------------------------------------------

    def dram_counters(self):
        """Aggregate PCH counters (diagnostics)."""
        from ..dram.pch import PchCounters
        total = PchCounters()
        for p in self.pchs:
            total.merge(p.counters)
        return total
