"""Common scaffolding shared by all fabric models.

A *fabric* owns everything between the bus-master ports and the DRAM:
landing FIFOs, switches/links, memory controllers, and pseudo-channels.
The engine drives it through a narrow interface:

* :meth:`BaseFabric.submit` — a master offers a transaction (returns
  ``False`` on backpressure),
* :meth:`BaseFabric.step` — advance one fabric cycle,
* :attr:`BaseFabric.completions` — transactions that finished this cycle
  (drained by the engine),
* :meth:`BaseFabric.quiescent` — drain check for end-of-simulation,
* :meth:`BaseFabric.next_event` — the fabric's *event horizon*: the
  earliest future cycle at which stepping it (absent new submissions)
  could change observable state.  The engine's fast path uses it to jump
  the clock over provably empty cycles; a conservative answer of
  ``cycle + 1`` is always correct and merely disables skipping.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import List, Optional, Tuple

from ..axi.transaction import AxiTransaction, STATUS_NACK
from ..core.address_map import AddressMap
from ..dram.controller import MemoryController, SchedulerConfig
from ..dram.pch import PseudoChannel
from ..params import HbmPlatform


class BaseFabric:
    """Shared construction and completion plumbing for fabric models."""

    name = "base"

    #: Whether the model assigns meaningful AXI IDs and guarantees
    #: same-ID read responses deliver in issue order (the MAO's
    #: reorder-buffer lanes).  The runtime sanitizer only arms its
    #: same-ID ordering check on fabrics that declare this.
    same_id_ordering = False

    def __init__(
        self,
        platform: HbmPlatform,
        address_map: AddressMap,
        sched: Optional[SchedulerConfig] = None,
    ) -> None:
        self.platform = platform
        self.address_map = address_map
        self.sched = sched or SchedulerConfig()
        #: Transactions completed this cycle: (txn, completion_cycle).
        self.completions: List[Tuple[AxiTransaction, float]] = []
        #: Degradation remap (PCH -> surviving PCH), or ``None`` while the
        #: device is healthy.  Installed by the fault injector when a PCH
        #: goes offline under a degradation policy; applied in
        #: :meth:`_resolve` so retried *and* new traffic lands on
        #: survivors.
        self.fault_remap: Optional[List[int]] = None
        #: Directly scheduled completion events (write acks, etc.).
        self._events: List[tuple] = []
        self._event_seq = 0
        # Refresh phases are staggered across PCHs.
        t = platform.dram
        phase_step = t.t_refi // max(1, platform.num_pch)
        self.pchs = [
            PseudoChannel(i, t, refresh_phase=i * phase_step,
                          port_ratio=platform.clock_ratio)
            for i in range(platform.num_pch)
        ]
        self.num_mcs = platform.num_pch // platform.pch_per_mc
        self.mcs: List[MemoryController] = []
        for m in range(self.num_mcs):
            group = self.pchs[m * platform.pch_per_mc:(m + 1) * platform.pch_per_mc]
            self.mcs.append(MemoryController(
                m, group, t, self.sched,
                on_read_data=self._on_read_data,
                on_write_accept=self._on_write_accept,
                response_space=self._response_space,
                mc_latency=platform.fabric.mc_latency,
                on_nack=self._on_nack,
            ))
        #: Hot-path lookup: PCH index -> its memory controller.
        self._mc_by_pch: List[MemoryController] = [
            self.mcs[p // platform.pch_per_mc] for p in range(platform.num_pch)]

    # -- interface the engine uses --------------------------------------------

    def submit(self, txn: AxiTransaction, cycle: int) -> bool:
        raise NotImplementedError

    def step(self, cycle: int) -> None:
        raise NotImplementedError

    def quiescent(self) -> bool:
        raise NotImplementedError

    def next_event(self, cycle: int) -> float:
        """Earliest future cycle at which :meth:`step` could have an
        observable effect, assuming no new submissions arrive.

        Returns ``math.inf`` when the fabric is provably quiescent.  The
        base implementation covers the shared model state (scheduled
        completion events and the memory controllers); subclasses extend
        it with their interconnect state and must stay *conservative*:
        answering ``cycle + 1`` whenever in doubt is always correct.
        """
        nxt = math.inf
        ev = self._events
        if ev:
            nxt = math.ceil(ev[0][0])
        for mc in self.mcs:
            t = mc.next_event(cycle)
            if t < nxt:
                nxt = t
                if nxt <= cycle + 1:
                    break
        return nxt if nxt > cycle + 1 else cycle + 1

    def drain_completions(self) -> List[Tuple[AxiTransaction, float]]:
        done = self.completions
        self.completions = []
        return done

    # -- hooks the subclasses implement ----------------------------------------

    def _on_read_data(self, txn: AxiTransaction, time: float) -> None:
        raise NotImplementedError

    def _on_write_accept(self, txn: AxiTransaction, time: float) -> None:
        raise NotImplementedError

    def _response_space(self, pch: int) -> bool:
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------------

    def _resolve(self, txn: AxiTransaction) -> None:
        """Fill in destination PCH and local offset from the address map.

        Under an active degradation remap the nominal PCH is redirected to
        its survivor; the local offset is unchanged (survivors mirror the
        dead channel's address window, trading capacity for liveness).
        """
        pch = self.address_map.pch_of(txn.address)
        remap = self.fault_remap
        if remap is not None:
            pch = remap[pch]
        txn.pch = pch
        txn.local = self.address_map.local_of(txn.address)

    def _on_nack(self, txn: AxiTransaction, time: float) -> None:
        """Bounce ``txn`` back to its master as a NACK completion.

        The response travels the ordinary completion path (one cycle of
        response latency) so the engine and observers see every attempt;
        the master's retry logic decides whether to re-issue.
        """
        txn.status = STATUS_NACK
        self._schedule_completion(txn, time + 1.0)

    def apply_link_stall(self, until: float, cut: Optional[int] = None) -> None:
        """Freeze part of the interconnect until cycle ``until``.

        ``cut`` selects a lateral boundary where the fabric topology has
        one (the segmented crossbar's shared buses, the MAO's switch
        stage); fabrics without lateral structure stall their ingress.
        The base class has no interconnect of its own, so this is a
        no-op hook; each fabric overrides it with its own notion of a
        stalled link.
        """

    def _schedule_completion(self, txn: AxiTransaction, time: float) -> None:
        self._event_seq += 1
        heapq.heappush(self._events, (time, self._event_seq, txn))

    def _pop_due_events(self, cycle: int) -> None:
        ev = self._events
        while ev and ev[0][0] <= cycle:
            time, _, txn = heapq.heappop(ev)
            txn.complete_cycle = cycle
            self.completions.append((txn, time))

    def _mcs_quiescent(self) -> bool:
        return all(mc.in_flight() == 0 for mc in self.mcs) and not self._events

    def _retry_staged(self, staged, cycle: int):
        """Offer staged arrivals to their controllers, in order.

        Returns the (possibly new) deque of still-refused transactions.
        Queue occupancy only grows within one sweep, so a queue that
        refused once stays full for the rest of it — later transactions
        bound for it skip the call.  When nothing is accepted the input
        deque is returned untouched.  Both shortcuts are order-preserving
        and bit-identical to the plain try-everything sweep.
        """
        full: set = set()
        accepted: Optional[set] = None
        mc_by_pch = self._mc_by_pch
        for i, txn in enumerate(staged):
            pch = txn.pch
            if pch in full:
                continue
            if mc_by_pch[pch].try_accept(txn, cycle):
                if accepted is None:
                    accepted = set()
                accepted.add(i)
            else:
                full.add(pch)
        if accepted is None:
            return staged
        return deque(txn for i, txn in enumerate(staged) if i not in accepted)

    # -- reporting ----------------------------------------------------------------

    def telemetry_probes(self) -> list:
        """Probes over this fabric's observable components.

        The base set covers what every fabric shares — per-PCH DRAM
        counters and bank page state, plus the controllers' scheduler
        queue depths.  Subclasses extend it with their interconnect
        (links, reorder buffers).  The telemetry package is imported
        lazily: it sits *above* the simulation core in the layering, so
        fabrics must not import it at module level.
        """
        from ..telemetry.metrics import COUNTER, GAUGE, Probe
        probes = []
        for p in self.pchs:
            i = p.index
            c = p.counters
            b = p.banks
            probes += [
                Probe(f"dram.pch{i}.beats", COUNTER,
                      lambda c=c: c.beats_transferred, "dram"),
                Probe(f"dram.pch{i}.page_hits", COUNTER,
                      lambda b=b: b.row_hits, "dram"),
                Probe(f"dram.pch{i}.page_misses", COUNTER,
                      lambda b=b: b.activates, "dram"),
                Probe(f"dram.pch{i}.page_conflicts", COUNTER,
                      lambda b=b: b.conflicts, "dram"),
                Probe(f"dram.pch{i}.turnarounds", COUNTER,
                      lambda c=c: c.turnarounds, "dram"),
                Probe(f"dram.pch{i}.refreshes", COUNTER,
                      lambda c=c: c.refreshes, "dram"),
                Probe(f"dram.pch{i}.port_stalls", COUNTER,
                      lambda c=c: c.port_stalls, "dram"),
                Probe(f"dram.pch{i}.miss_gaps", COUNTER,
                      lambda c=c: c.miss_gaps, "dram"),
            ]
        for mc in self.mcs:
            for p in mc.pchs:
                probes.append(Probe(
                    f"mc{mc.index}.pch{p.index}.queue", GAUGE,
                    lambda mc=mc, i=p.index: mc.queued(i), "fabric"))
        return probes

    def dram_counters(self):
        """Aggregate PCH counters (diagnostics)."""
        from ..dram.pch import PchCounters
        total = PchCounters()
        for p in self.pchs:
            total.merge(p.counters)
        return total
