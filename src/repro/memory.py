"""Functional (data-holding) model of the HBM device.

The cycle simulation deals in timing only; this module provides the
*contents* view: a byte-addressable 8 GB space physically stored as 32
per-PCH arrays, accessed through any
:class:`~repro.core.address_map.AddressMap`.  It backs the data-integrity
property tests (whatever is written through one map is read back
identically, and the interleaved map really scatters bytes across
channels) and the functional examples.

Memory is allocated lazily per PCH in 1 MiB slabs so instantiating the
8 GB device costs nothing until data is touched.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from .core.address_map import AddressMap, ContiguousMap
from .errors import AddressError
from .params import HbmPlatform, DEFAULT_PLATFORM

_SLAB_BYTES = 1 << 20


class HbmMemory:
    """Byte-addressable HBM contents behind an address map."""

    def __init__(
        self,
        address_map: Optional[AddressMap] = None,
        platform: HbmPlatform = DEFAULT_PLATFORM,
        fill: int = 0,
    ) -> None:
        self.platform = platform
        self.address_map = address_map or ContiguousMap(platform)
        if not 0 <= fill <= 0xFF:
            raise AddressError("fill byte must be 0..255")
        self._fill = fill
        #: (pch, slab_index) -> slab array.  Lazy allocation.
        self._slabs: Dict[tuple, np.ndarray] = {}
        self.bytes_written = 0
        self.bytes_read = 0

    # -- slab plumbing -----------------------------------------------------------

    def _slab(self, pch: int, local: int) -> tuple:
        idx, offset = divmod(local, _SLAB_BYTES)
        key = (pch, idx)
        slab = self._slabs.get(key)
        if slab is None:
            slab = np.full(_SLAB_BYTES, self._fill, dtype=np.uint8)
            self._slabs[key] = slab
        return slab, offset

    @property
    def resident_bytes(self) -> int:
        """Physical memory actually allocated by the model."""
        return len(self._slabs) * _SLAB_BYTES

    def touched_pchs(self) -> set:
        """Pseudo-channels holding any written data."""
        return {pch for (pch, _idx) in self._slabs}

    # -- byte access ---------------------------------------------------------------

    def write(self, address: int, data: bytes | np.ndarray) -> None:
        """Write ``data`` at the global ``address`` through the map."""
        buf = np.frombuffer(bytes(data), dtype=np.uint8) \
            if not isinstance(data, np.ndarray) else data.astype(np.uint8, copy=False)
        n = len(buf)
        if n == 0:
            return
        if address < 0 or address + n > self.address_map.capacity:
            raise AddressError(
                f"write [{address:#x}, {address + n:#x}) out of range")
        pos = 0
        while pos < n:
            a = address + pos
            pch = self.address_map.pch_of(a)
            local = self.address_map.local_of(a)
            slab, offset = self._slab(pch, local)
            # Stay within this map chunk, slab, and the data.
            span = min(n - pos, _SLAB_BYTES - offset,
                       self._contiguous_span(a))
            slab[offset:offset + span] = buf[pos:pos + span]
            pos += span
        self.bytes_written += n

    def read(self, address: int, length: int) -> np.ndarray:
        """Read ``length`` bytes from the global ``address``."""
        if length < 0:
            raise AddressError("negative read length")
        if address < 0 or address + length > self.address_map.capacity:
            raise AddressError(
                f"read [{address:#x}, {address + length:#x}) out of range")
        out = np.empty(length, dtype=np.uint8)
        pos = 0
        while pos < length:
            a = address + pos
            pch = self.address_map.pch_of(a)
            local = self.address_map.local_of(a)
            slab, offset = self._slab(pch, local)
            span = min(length - pos, _SLAB_BYTES - offset,
                       self._contiguous_span(a))
            out[pos:pos + span] = slab[offset:offset + span]
            pos += span
        self.bytes_read += length
        return out

    def _contiguous_span(self, address: int) -> int:
        """Bytes from ``address`` that stay physically contiguous under
        the map (one interleave chunk, or unbounded for contiguous maps)."""
        gran = getattr(self.address_map, "granularity", None)
        if gran is None:
            return self.address_map.capacity - address
        return gran - address % gran

    def flip_bits(self, address: int, bit_positions: Iterable[int]) -> int:
        """Flip bits at the given offsets (in bits) relative to ``address``.

        The data-side counterpart of the timing model's ``DATA_CORRUPT``
        fault: a single flip inside a 32 B beat is what SECDED corrects
        transparently, two flips are what a poisoned read carries.  Used
        by the fault tests to demonstrate corruption against stored
        contents.  Returns the number of bits flipped.
        """
        count = 0
        for pos in bit_positions:
            if pos < 0:
                raise AddressError(f"negative bit position {pos}")
            byte = self.read(address + (pos >> 3), 1)
            byte[0] ^= 1 << (pos & 7)
            self.write(address + (pos >> 3), byte)
            count += 1
        return count

    # -- convenience ------------------------------------------------------------------

    def write_array(self, address: int, array: np.ndarray) -> None:
        """Write any numpy array's raw bytes."""
        self.write(address, np.ascontiguousarray(array).view(np.uint8).ravel())

    def read_array(self, address: int, shape, dtype) -> np.ndarray:
        """Read back an array written with :meth:`write_array`."""
        dt = np.dtype(dtype)
        count = int(np.prod(shape)) * dt.itemsize
        raw = self.read(address, count)
        return raw.view(dt).reshape(shape)
