"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the reproduction with a single ``except``
clause while still distinguishing configuration mistakes from protocol
violations detected inside the simulation.

Hierarchy::

    ReproError
    ├── ConfigError            invalid user-supplied configuration
    ├── AxiProtocolError       AXI3 protocol violation in a transaction
    ├── AddressError           address outside capacity / misaligned
    ├── RoutingError           interconnect cannot route a transaction
    ├── SimulationError        internal simulator invariant violated (a bug)
    │   ├── ObserverError      an observer hook raised during completion
    │   └── SanitizerError     runtime sanitizer caught an invariant break
    │       ├── OrderingViolation        same-ID responses out of issue order
    │       ├── ConservationViolation    issued/completed accounting broken
    │       ├── CreditLeak               credit or reorder-slot leak
    │       ├── TimestampViolation       non-monotonic transaction timestamps
    │       ├── BankStateViolation       column access to a closed/wrong row
    │       └── RetryConsistencyViolation  retry/watchdog bookkeeping broken
    ├── ResourceError          design exceeds FPGA resource capacity
    ├── SweepError             supervised sweep finished with holes/interrupt
    └── FaultError             *modelled* hardware misbehaving (repro.faults)
        ├── TransactionTimeout a watched transaction exceeded its deadline
        ├── DeadlockError      global progress watchdog: no forward progress
        └── UnrecoverableDataError  uncorrectable data corruption (SECDED)

The split between :class:`SimulationError` and :class:`FaultError` is
deliberate: the former always indicates a *simulator* bug (a beat retired
twice, conservation accounting broken), while the latter reports modelled
*hardware* failure behaviour injected through a
:class:`~repro.faults.FaultPlan` — a dead pseudo-channel, a stalled link,
corrupted data.  Resilience experiments catch ``FaultError`` and keep
going; nothing should ever catch ``SimulationError`` and keep going.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class AxiProtocolError(ReproError):
    """An AXI transaction violates the AXI3 protocol rules.

    Raised for illegal burst lengths (``> 16`` for AXI3 INCR), transactions
    crossing a 4 KB address boundary, zero-length bursts, or misaligned
    addresses.
    """


class AddressError(ReproError):
    """An address is outside the device's HBM capacity or misaligned."""


class RoutingError(ReproError):
    """The interconnect cannot route a transaction to its destination."""


class SimulationError(ReproError):
    """Internal invariant of the cycle simulation was violated.

    This indicates a bug in the simulator (e.g. a beat retired twice or a
    conservation check failing), never a user error and never modelled
    hardware misbehaviour (that is :class:`FaultError`).
    """


class ObserverError(SimulationError):
    """An observer's ``on_complete`` hook raised.

    The engine finishes the conservation accounting for the whole
    completion batch before raising this, so the failure of an
    *observer* (a trace recorder, a live plot) can never corrupt the
    simulation's own bookkeeping.  The original exception is attached as
    ``__cause__``.
    """


class SanitizerError(SimulationError):
    """The runtime sanitizer (:mod:`repro.check.sanitizer`) caught an
    invariant violation.

    Every subclass carries a ``context`` dict with the minimal repro
    recipe — fabric name, the :class:`~repro.sim.config.SimConfig`, the
    fault plan (if any), the cycle, and the offending transaction — so a
    failure in a long sweep can be reproduced as a single run.  The
    engine's observer isolation deliberately does *not* wrap these in
    :class:`ObserverError`: a sanitizer finding is a simulator bug, not
    an observer crash.
    """

    def __init__(self, message: str, context: dict | None = None) -> None:
        self.context = dict(context or {})
        if self.context:
            detail = "; ".join(f"{k}={v}" for k, v in self.context.items())
            message = f"{message} [{detail}]"
        super().__init__(message)


class OrderingViolation(SanitizerError):
    """Same-AXI-ID read responses were delivered out of issue order on a
    fabric/configuration that guarantees in-order same-ID delivery."""


class ConservationViolation(SanitizerError):
    """Transaction conservation broke: a completion arrived for a
    transaction that was never issued (or already finished), or the
    issued/completed/retired/in-flight ledger does not balance."""


class CreditLeak(SanitizerError):
    """Outstanding-transaction credits or reorder-buffer read slots
    leaked (went negative, exceeded their bound, or remained claimed
    after a successful drain)."""


class TimestampViolation(SanitizerError):
    """Transaction timestamps are non-monotonic (completion before
    issue, or delivery cycles moving backwards)."""


class BankStateViolation(SanitizerError):
    """The DRAM bank model performed an illegal row operation — a column
    access claimed a row hit on a closed or different row, or an
    activate violated the bank's earliest-activate bound."""


class RetryConsistencyViolation(SanitizerError):
    """Retry/watchdog bookkeeping is inconsistent — a completion's
    attempt ordinal does not match its issue, or a NACKed transaction
    was neither retried nor counted unrecoverable."""


class ResourceError(ReproError):
    """A design does not fit the FPGA's resource capacity."""


class SweepError(ReproError):
    """A supervised sweep (:mod:`repro.runtime`) did not complete cleanly.

    Raised by strict callers when a :class:`~repro.runtime.SweepOutcome`
    carries task failures (poisoned/timed-out/crashed points) or was
    interrupted before every point ran.  The outcome — including every
    result that *did* complete — is attached as ``outcome``, so nothing
    already computed is lost to the raise.
    """

    def __init__(self, message: str, outcome=None) -> None:
        self.outcome = outcome
        super().__init__(message)


class FaultError(ReproError):
    """Modelled hardware misbehaved (base class of the fault model).

    Raised (or collected) by the :mod:`repro.faults` subsystem when an
    injected fault manifests: this is *simulated hardware failing as
    instructed*, not a simulator bug.
    """


class TransactionTimeout(FaultError):
    """A watched transaction exceeded ``txn_timeout_cycles``.

    The per-transaction watchdog turns silently-lost transactions (for
    example requests queued behind a pseudo-channel that went offline
    without a degradation policy) into a typed, diagnosable error instead
    of an apparent hang.
    """


class DeadlockError(FaultError):
    """The global progress watchdog saw in-flight work but no completions
    for ``progress_timeout_cycles`` — a deadlock, as opposed to the long
    (but provably empty) quiescent stretches the fast path skips."""


class UnrecoverableDataError(FaultError):
    """Data corruption exceeded the SECDED code's correction capability
    and retries were exhausted (or disabled)."""
