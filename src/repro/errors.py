"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the reproduction with a single ``except``
clause while still distinguishing configuration mistakes from protocol
violations detected inside the simulation.

Hierarchy::

    ReproError
    ├── ConfigError            invalid user-supplied configuration
    ├── AxiProtocolError       AXI3 protocol violation in a transaction
    ├── AddressError           address outside capacity / misaligned
    ├── RoutingError           interconnect cannot route a transaction
    ├── SimulationError        internal simulator invariant violated (a bug)
    │   └── ObserverError      an observer hook raised during completion
    ├── ResourceError          design exceeds FPGA resource capacity
    └── FaultError             *modelled* hardware misbehaving (repro.faults)
        ├── TransactionTimeout a watched transaction exceeded its deadline
        ├── DeadlockError      global progress watchdog: no forward progress
        └── UnrecoverableDataError  uncorrectable data corruption (SECDED)

The split between :class:`SimulationError` and :class:`FaultError` is
deliberate: the former always indicates a *simulator* bug (a beat retired
twice, conservation accounting broken), while the latter reports modelled
*hardware* failure behaviour injected through a
:class:`~repro.faults.FaultPlan` — a dead pseudo-channel, a stalled link,
corrupted data.  Resilience experiments catch ``FaultError`` and keep
going; nothing should ever catch ``SimulationError`` and keep going.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class AxiProtocolError(ReproError):
    """An AXI transaction violates the AXI3 protocol rules.

    Raised for illegal burst lengths (``> 16`` for AXI3 INCR), transactions
    crossing a 4 KB address boundary, zero-length bursts, or misaligned
    addresses.
    """


class AddressError(ReproError):
    """An address is outside the device's HBM capacity or misaligned."""


class RoutingError(ReproError):
    """The interconnect cannot route a transaction to its destination."""


class SimulationError(ReproError):
    """Internal invariant of the cycle simulation was violated.

    This indicates a bug in the simulator (e.g. a beat retired twice or a
    conservation check failing), never a user error and never modelled
    hardware misbehaviour (that is :class:`FaultError`).
    """


class ObserverError(SimulationError):
    """An observer's ``on_complete`` hook raised.

    The engine finishes the conservation accounting for the whole
    completion batch before raising this, so the failure of an
    *observer* (a trace recorder, a live plot) can never corrupt the
    simulation's own bookkeeping.  The original exception is attached as
    ``__cause__``.
    """


class ResourceError(ReproError):
    """A design does not fit the FPGA's resource capacity."""


class FaultError(ReproError):
    """Modelled hardware misbehaved (base class of the fault model).

    Raised (or collected) by the :mod:`repro.faults` subsystem when an
    injected fault manifests: this is *simulated hardware failing as
    instructed*, not a simulator bug.
    """


class TransactionTimeout(FaultError):
    """A watched transaction exceeded ``txn_timeout_cycles``.

    The per-transaction watchdog turns silently-lost transactions (for
    example requests queued behind a pseudo-channel that went offline
    without a degradation policy) into a typed, diagnosable error instead
    of an apparent hang.
    """


class DeadlockError(FaultError):
    """The global progress watchdog saw in-flight work but no completions
    for ``progress_timeout_cycles`` — a deadlock, as opposed to the long
    (but provably empty) quiescent stretches the fast path skips."""


class UnrecoverableDataError(FaultError):
    """Data corruption exceeded the SECDED code's correction capability
    and retries were exhausted (or disabled)."""
