"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the reproduction with a single ``except``
clause while still distinguishing configuration mistakes from protocol
violations detected inside the simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class AxiProtocolError(ReproError):
    """An AXI transaction violates the AXI3 protocol rules.

    Raised for illegal burst lengths (``> 16`` for AXI3 INCR), transactions
    crossing a 4 KB address boundary, zero-length bursts, or misaligned
    addresses.
    """


class AddressError(ReproError):
    """An address is outside the device's HBM capacity or misaligned."""


class RoutingError(ReproError):
    """The interconnect cannot route a transaction to its destination."""


class SimulationError(ReproError):
    """Internal invariant of the cycle simulation was violated.

    This indicates a bug in the simulator (e.g. a beat retired twice or a
    conservation check failing), never a user error.
    """


class ResourceError(ReproError):
    """A design does not fit the FPGA's resource capacity."""
