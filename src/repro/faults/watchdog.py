"""Watchdogs: turning silent loss into typed errors.

Two detectors guard a run (both off by default, enabled through
:class:`~repro.sim.config.SimConfig`):

* :class:`TransactionWatchdog` — every issued transaction must complete
  (or be NACKed for retry) within ``txn_timeout_cycles``.  A channel that
  silently swallows requests — e.g. a PCH taken offline without a
  degradation policy — therefore surfaces as a typed
  :class:`~repro.errors.TransactionTimeout` naming the stuck transaction,
  instead of a run that merely reports missing bandwidth or a drain that
  spins to its deadline.
* :class:`ProgressWatchdog` — the global deadlock detector: in-flight
  work with no completion for ``progress_timeout_cycles`` raises
  :class:`~repro.errors.DeadlockError`.  This deliberately distinguishes
  *deadlock* (work stuck) from *quiescence* (no work), which matters on
  the engine's fast path where long quiescent stretches are legitimately
  skipped in one jump.

Both watchdogs are cycle-deterministic: they trip at an exact cycle
derived from issue/completion times, and the fast path clamps its clock
jumps to the next deadline, so fast and legacy loops raise identically.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Tuple

from ..axi.transaction import AxiTransaction
from ..errors import DeadlockError, TransactionTimeout


class TransactionWatchdog:
    """Per-transaction deadline tracker (lazy-deletion heap)."""

    __slots__ = ("timeout", "_heap", "_alive")

    def __init__(self, timeout: int) -> None:
        self.timeout = timeout
        #: (deadline, uid) min-heap; stale entries are dropped lazily.
        self._heap: List[Tuple[int, int]] = []
        #: uid -> (txn, armed deadline).  The deadline disambiguates a
        #: *re-armed* uid (retry resubmit) from its stale heap entries:
        #: matching on uid alone would resurrect the old, earlier deadline
        #: and time a retried transaction out against its first attempt.
        self._alive: Dict[int, Tuple[AxiTransaction, int]] = {}

    def note_issue(self, txn: AxiTransaction, cycle: int) -> None:
        """Arm (or re-arm, for a retry) the deadline of one transaction."""
        deadline = cycle + self.timeout
        self._alive[txn.uid] = (txn, deadline)
        heapq.heappush(self._heap, (deadline, txn.uid))

    def note_done(self, txn: AxiTransaction) -> None:
        """Disarm on completion or NACK (a retry re-arms at resubmit)."""
        self._alive.pop(txn.uid, None)

    def next_deadline(self) -> float:
        """Earliest armed deadline, ``inf`` when nothing is watched."""
        heap = self._heap
        alive = self._alive
        while heap:
            deadline, uid = heap[0]
            entry = alive.get(uid)
            if entry is not None and entry[1] == deadline:
                return deadline
            heapq.heappop(heap)
        return math.inf

    def check(self, cycle: int) -> None:
        """Raise :class:`TransactionTimeout` when a deadline has passed."""
        deadline = self.next_deadline()
        if deadline <= cycle:
            uid = self._heap[0][1]
            txn = self._alive[uid][0]
            raise TransactionTimeout(
                f"transaction {txn!r} saw no completion within "
                f"{self.timeout} cycles (issued {txn.issue_cycle}, "
                f"now {cycle}); pch {txn.pch} unresponsive?")

    @property
    def watched(self) -> int:
        return len(self._alive)


class ProgressWatchdog:
    """Global forward-progress detector."""

    __slots__ = ("timeout", "last_progress")

    def __init__(self, timeout: int) -> None:
        self.timeout = timeout
        self.last_progress = 0

    def note_progress(self, cycle: int) -> None:
        self.last_progress = cycle

    def deadline(self) -> int:
        return self.last_progress + self.timeout

    def check(self, cycle: int, in_flight: int) -> None:
        """Raise :class:`DeadlockError` on stalled in-flight work.

        ``in_flight`` is the number of transactions currently owed a
        completion; zero in-flight work is quiescence, never deadlock.
        """
        if in_flight > 0 and cycle >= self.deadline():
            raise DeadlockError(
                f"{in_flight} transactions in flight but no completion "
                f"for {self.timeout} cycles (last progress at "
                f"{self.last_progress}, now {cycle})")
