"""Deterministic fault injection, detection, and recovery.

The resilience subsystem has four layers, each its own module:

* :mod:`repro.faults.plan` — declarative, seedable fault schedules
  (:class:`FaultPlan` / :class:`FaultEvent`): *what* goes wrong, *when*.
* :mod:`repro.faults.inject` — :class:`FaultInjector`, the engine-side
  binding that applies events to a live fabric at exact cycles.
* :mod:`repro.faults.ecc` / :mod:`repro.faults.watchdog` /
  :mod:`repro.faults.degrade` — the models: SECDED beat classification,
  timeout/deadlock detection, and dead-channel remapping.
* :mod:`repro.faults.chaos` — the experiment harness sweeping fault
  scenarios and reporting bandwidth retained, latency inflation, retries,
  and unrecoverable losses.

Everything is deterministic given ``(FaultPlan, seed)``: events fire at
fixed cycles and the only probabilistic element (beat corruption) is a
counter-based hash, so the engine's fast path and legacy loop observe
bit-identical fault behaviour.
"""

from .degrade import DegradedMap, build_remap
from .ecc import (BEAT_CLEAN, BEAT_CORRECTED, BEAT_UNCORRECTABLE,
                  SecdedModel)
from .inject import FaultInjector
from .plan import FaultEvent, FaultKind, FaultPlan
from .watchdog import ProgressWatchdog, TransactionWatchdog

__all__ = [
    "BEAT_CLEAN",
    "BEAT_CORRECTED",
    "BEAT_UNCORRECTABLE",
    "DegradedMap",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "ProgressWatchdog",
    "SecdedModel",
    "TransactionWatchdog",
    "build_remap",
]
