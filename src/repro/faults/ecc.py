"""SECDED error model for DRAM data beats.

HBM2 stacks carry SECDED ECC side-band bits: a single flipped bit per
32 B beat is corrected transparently, a double flip is detected but
uncorrectable (the AXI read returns poisoned data / SLVERR).  The model
here decides, for every data beat a pseudo-channel transfers while a
``DATA_CORRUPT`` fault window is active, whether the beat is clean,
corrected, or uncorrectable.

Determinism is the whole design: the decision is a pure function of
``(seed, pch, beat_index)`` through a splitmix64-style integer hash, so

* repeated runs with the same :class:`~repro.faults.FaultPlan` flip the
  same beats,
* the engine's fast path and the legacy per-cycle loop — which service
  exactly the same beats in the same order, just with different amounts
  of idle scanning in between — observe bit-identical fault behaviour,
* no ``random`` / ``numpy`` stream state needs to be threaded through
  the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

_M64 = (1 << 64) - 1

#: Outcome codes of :meth:`SecdedModel.classify_beat`.
BEAT_CLEAN = 0
BEAT_CORRECTED = 1
BEAT_UNCORRECTABLE = 2


def _splitmix64(x: int) -> int:
    """One round of the splitmix64 mixer (public-domain constants)."""
    x = (x + 0x9E3779B97F4A7C15) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


@dataclass
class SecdedModel:
    """Counter-hash SECDED classifier.

    Parameters
    ----------
    seed:
        Folded into every hash; comes from the fault plan.
    dbit_fraction:
        Fraction of corrupted beats that flip two bits (uncorrectable)
        instead of one (corrected).
    """

    seed: int = 0
    dbit_fraction: float = 0.1

    def classify_beat(self, pch: int, beat_index: int, rate: float) -> int:
        """Classify one transferred beat under corruption rate ``rate``.

        ``beat_index`` must be unique and monotone per channel (the
        channel's cumulative transferred-beat counter serves); the result
        is one of :data:`BEAT_CLEAN`, :data:`BEAT_CORRECTED`,
        :data:`BEAT_UNCORRECTABLE`.
        """
        h = _splitmix64((self.seed << 32) ^ (pch << 24) ^ beat_index)
        if (h & 0xFFFFFFFF) / 4294967296.0 >= rate:
            return BEAT_CLEAN
        if ((h >> 32) & 0xFFFFFFFF) / 4294967296.0 < self.dbit_fraction:
            return BEAT_UNCORRECTABLE
        return BEAT_CORRECTED

    def classify_burst(self, pch: int, first_beat: int, burst_len: int,
                       rate: float) -> tuple[int, int]:
        """Classify a burst of beats; returns ``(corrected, uncorrectable)``
        counts."""
        corrected = uncorrectable = 0
        for b in range(burst_len):
            outcome = self.classify_beat(pch, first_beat + b, rate)
            if outcome == BEAT_CORRECTED:
                corrected += 1
            elif outcome == BEAT_UNCORRECTABLE:
                uncorrectable += 1
        return corrected, uncorrectable
