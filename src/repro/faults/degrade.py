"""Graceful degradation: masking dead pseudo-channels.

When a PCH goes offline the system has two choices: hang (and let the
watchdog diagnose the hang) or *degrade* — mask the dead channel and keep
serving traffic at reduced bandwidth.  Degradation has two halves:

* **Remapping** (this module): a deterministic table sending each dead
  channel's traffic to a survivor.  The fabric consults the table when it
  resolves a transaction's destination, so retried and newly issued
  requests land on live channels; :class:`DegradedMap` exposes the same
  table as an :class:`~repro.core.address_map.AddressMap` wrapper for
  functional (data-holding) models.
* **Bouncing** (:mod:`repro.faults.inject`): requests already queued for
  or in flight towards the dead channel are NACKed back to their masters,
  whose capped-exponential-backoff retry re-resolves them through the
  remap table.

The remap spreads dead channels round-robin over the survivors so a
single failure does not double-load one neighbour more than necessary.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..core.address_map import AddressMap
from ..errors import ConfigError


def build_remap(num_pch: int, dead: Iterable[int]) -> List[int]:
    """Remap table: ``table[pch]`` is the channel that now serves ``pch``.

    Live channels map to themselves; dead channels are assigned survivors
    round-robin in index order.  Raises :class:`ConfigError` when no
    survivor remains.
    """
    dead_set = set(dead)
    for p in dead_set:
        if not 0 <= p < num_pch:
            raise ConfigError(f"dead pch {p} out of range 0..{num_pch - 1}")
    survivors = [p for p in range(num_pch) if p not in dead_set]
    if not survivors:
        raise ConfigError("cannot degrade: every pseudo-channel is dead")
    table = list(range(num_pch))
    for i, p in enumerate(sorted(dead_set)):
        table[p] = survivors[i % len(survivors)]
    return table


class DegradedMap(AddressMap):
    """An address map with dead channels masked onto survivors.

    Wraps any base map: ``pch_of`` goes through the remap table while the
    local offset is preserved (the survivor serves the dead channel's
    local address space alongside its own — a timing-model view; the
    capacity aliasing is deliberate and documented in DESIGN.md).  The
    wrapper is *not* a bijection once a channel is dead — ``global_of``
    answers for live channels only.
    """

    def __init__(self, base: AddressMap, dead: Sequence[int]) -> None:
        super().__init__(base.platform)
        self.base = base
        self.dead = tuple(sorted(set(dead)))
        self.table = build_remap(base.platform.num_pch, self.dead)

    def pch_of(self, address: int) -> int:
        return self.table[self.base.pch_of(address)]

    def local_of(self, address: int) -> int:
        return self.base.local_of(address)

    def global_of(self, pch: int, local: int) -> int:
        if pch in self.dead:
            raise ConfigError(f"pch {pch} is offline")
        return self.base.global_of(pch, local)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DegradedMap({self.base!r}, dead={list(self.dead)})"
