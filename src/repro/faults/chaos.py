"""Chaos harness: sweep fault scenarios, report resilience.

Each named scenario builds a :class:`~repro.faults.plan.FaultPlan` scaled
to the run length, then the harness simulates the *same* traffic twice —
once fault-free, once under the plan with both watchdogs armed — and
summarizes what survived:

* bandwidth retained (faulted vs. baseline steady-state GB/s),
* read p99 latency inflation (successful attempts only, so NACKed
  attempts don't pollute the distribution),
* recovery effort (retries, NACKs, ECC corrections) and losses
  (uncorrectable beats, transactions abandoned past ``max_retries``),
* channels left dead at the end of the run.

Everything is deterministic given (scenario, fabric, pattern, cycles,
seed), and bit-identical between the engine's fast path and legacy loop,
so the report can be golden-file tested and diffed across engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError, FaultError
from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..sim import Engine, SimConfig, TraceRecorder
from ..sim.stats import SimReport
from ..sim.trace import FIELDS
from ..traffic import make_pattern_sources
from ..types import FabricKind, Pattern
from .plan import FaultEvent, FaultKind, FaultPlan

#: (cycles, seed) -> FaultPlan
PlanBuilder = Callable[[int, int], FaultPlan]


@dataclass(frozen=True)
class ChaosScenario:
    """A named, run-length-scaled fault schedule."""

    key: str
    title: str
    build: PlanBuilder


def _onset(cycles: int) -> int:
    """Faults manifest a third of the way in: past warmup, with enough
    tail left for recovery to show up in the measurement window."""
    return max(1, cycles // 3)


def _pch_offline(cycles: int, seed: int) -> FaultPlan:
    return FaultPlan([FaultEvent(FaultKind.PCH_OFFLINE, at=_onset(cycles),
                                 pch=2)],
                     seed=seed, degrade=True)


def _pch_offline_strict(cycles: int, seed: int) -> FaultPlan:
    return FaultPlan([FaultEvent(FaultKind.PCH_OFFLINE, at=_onset(cycles),
                                 pch=2)],
                     seed=seed, degrade=False)


def _refresh_storm(cycles: int, seed: int) -> FaultPlan:
    return FaultPlan([FaultEvent(FaultKind.PCH_SLOW, at=_onset(cycles),
                                 pch=1, duration=max(1, cycles // 4),
                                 factor=3.0)],
                     seed=seed)


def _link_stall(cycles: int, seed: int) -> FaultPlan:
    return FaultPlan([FaultEvent(FaultKind.LINK_STALL, at=_onset(cycles),
                                 cut=None, duration=max(1, cycles // 4))],
                     seed=seed)


def _ecc_storm(cycles: int, seed: int) -> FaultPlan:
    return FaultPlan([FaultEvent(FaultKind.DATA_CORRUPT, at=_onset(cycles),
                                 pch=None, duration=max(1, cycles // 4),
                                 rate=0.02)],
                     seed=seed, dbit_fraction=0.05)


#: The scenario library, keyed by CLI name.
SCENARIOS: Dict[str, ChaosScenario] = {
    s.key: s for s in (
        ChaosScenario(
            "pch-offline",
            "hard channel failure, degradation masks + remaps",
            _pch_offline),
        ChaosScenario(
            "pch-offline-strict",
            "hard channel failure, no degradation: watchdog must trip",
            _pch_offline_strict),
        ChaosScenario(
            "refresh-storm",
            "one channel 3x slow for a quarter of the run",
            _refresh_storm),
        ChaosScenario(
            "link-stall",
            "every lateral cut / distribution stage frozen briefly",
            _link_stall),
        ChaosScenario(
            "ecc-storm",
            "2% of read beats corrupted; SECDED corrects or poisons",
            _ecc_storm),
    )
}


@dataclass(frozen=True)
class ChaosResult:
    """Resilience summary of one scenario: baseline vs. faulted run."""

    scenario: str
    fabric: str
    pattern: str
    cycles: int
    seed: int
    plan_text: str
    #: Whether the plan's degradation policy was enabled.
    degraded: bool
    #: "completed", or the FaultError subclass that aborted the run.
    outcome: str
    baseline_gbps: float
    faulted_gbps: float
    baseline_read_p99: float
    faulted_read_p99: float
    retries: int
    nacks: int
    ecc_corrected: int
    ecc_uncorrectable: int
    unrecoverable: int
    dead_pchs: Tuple[int, ...]

    @property
    def completed(self) -> bool:
        return self.outcome == "completed"

    @property
    def retained(self) -> float:
        """Fraction of baseline bandwidth the faulted run delivered."""
        if self.baseline_gbps <= 0.0:
            return 0.0
        return self.faulted_gbps / self.baseline_gbps

    @property
    def p99_inflation(self) -> float:
        """Faulted / baseline read p99 ratio (1.0 = unchanged)."""
        if self.baseline_read_p99 <= 0.0:
            return 0.0
        return self.faulted_read_p99 / self.baseline_read_p99


def _read_p99(rec: TraceRecorder) -> float:
    """p99 round-trip latency (accel cycles) of *successful* read
    attempts — NACK bounces are recovery traffic, not service latency."""
    arr = rec.as_array()
    if arr.size == 0:
        return 0.0
    ok = arr[(arr[:, FIELDS.index("status")] == 0)
             & (arr[:, FIELDS.index("is_read")] == 1)]
    if ok.size == 0:
        return 0.0
    lat = (ok[:, FIELDS.index("complete")]
           - ok[:, FIELDS.index("issue")]).astype(np.float64)
    return float(np.percentile(lat * rec.platform.clock_ratio, 99))


def _worst_latency(rec: TraceRecorder) -> int:
    """Max round-trip latency (engine cycles) over successful attempts."""
    arr = rec.as_array()
    if arr.size == 0:
        return 0
    ok = arr[arr[:, FIELDS.index("status")] == 0]
    if ok.size == 0:
        return 0
    return int((ok[:, FIELDS.index("complete")]
                - ok[:, FIELDS.index("issue")]).max())


def _one_run(
    fabric_kind: FabricKind,
    pattern: Pattern,
    cfg: SimConfig,
    platform: HbmPlatform,
    seed: int,
    faults: Optional[FaultPlan],
    telemetry=None,
) -> Tuple[Optional[SimReport], TraceRecorder, str]:
    """Simulate once; a watchdog abort yields (None, trace, error name)."""
    from .. import make_fabric

    fab = make_fabric(fabric_kind, platform)
    sources = make_pattern_sources(pattern, platform,
                                   address_map=fab.address_map, seed=seed)
    rec = TraceRecorder(platform)
    engine = Engine(fab, sources, cfg, observers=[rec], faults=faults)
    if telemetry is not None:
        telemetry.attach(engine)
    try:
        report = engine.run()
        engine.drain()
    except FaultError as exc:
        # Detection worked: the run aborted with a typed error instead of
        # hanging.  Report the class, not the message — messages carry
        # process-global transaction uids.
        return None, rec, type(exc).__name__
    return report, rec, "completed"


def run_scenario(
    scenario: str,
    fabric: FabricKind = FabricKind.XLNX,
    pattern: Pattern = Pattern.SCS,
    cycles: int = 6000,
    seed: int = 0,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    telemetry=None,
) -> ChaosResult:
    """Run one scenario and its fault-free baseline; summarize.

    ``telemetry`` (an unattached
    :class:`~repro.telemetry.sampler.Telemetry`) is attached to the
    *faulted* run, so its samples cover the disturbance and recovery the
    scenario is about; the baseline stays unobserved.
    """
    spec = SCENARIOS.get(scenario)
    if spec is None:
        raise ConfigError(
            f"unknown chaos scenario {scenario!r}; "
            f"choose from {sorted(SCENARIOS)}")
    if cycles < 30:
        raise ConfigError("chaos runs need at least 30 cycles")
    plan = spec.build(cycles, seed)

    # The baseline is fault-free by construction, so it runs with no
    # watchdogs armed — and then *calibrates* the guard for the faulted
    # run.  Worst healthy latency is a property of the exact (fabric,
    # pattern, horizon) point only the run itself knows: saturated
    # crossing patterns legitimately queue for several multiples of the
    # horizon, strided ones finish in hundreds of cycles.  4x the worst
    # healthy round trip clears every recoverable disturbance the
    # scenario library injects (a 3x-slowed channel, retry backoff) while
    # a genuinely dead channel still trips it.  Healthy runs are
    # bit-identical with and without watchdogs, so disarming the baseline
    # changes no numbers.
    base_cfg = SimConfig(cycles=cycles, warmup=cycles // 5)
    base_rep, base_rec, base_outcome = _one_run(
        fabric, pattern, base_cfg, platform, seed, None)
    assert base_rep is not None, f"fault-free baseline {base_outcome}"
    guard = max(2000, 2 * cycles, 4 * _worst_latency(base_rec))
    cfg = SimConfig(cycles=cycles, warmup=cycles // 5,
                    txn_timeout_cycles=guard,
                    progress_timeout_cycles=guard)
    flt_rep, flt_rec, outcome = _one_run(
        fabric, pattern, cfg, platform, seed, plan, telemetry=telemetry)

    return ChaosResult(
        scenario=scenario,
        fabric=fabric.value,
        pattern=pattern.name,
        cycles=cycles,
        seed=seed,
        plan_text=plan.describe(),
        degraded=plan.degrade,
        outcome=outcome,
        baseline_gbps=base_rep.total_gbps,
        faulted_gbps=flt_rep.total_gbps if flt_rep else 0.0,
        baseline_read_p99=_read_p99(base_rec),
        faulted_read_p99=_read_p99(flt_rec),
        retries=flt_rep.retries if flt_rep else 0,
        nacks=flt_rep.nacks if flt_rep else 0,
        ecc_corrected=flt_rep.ecc_corrected if flt_rep else 0,
        ecc_uncorrectable=flt_rep.ecc_uncorrectable if flt_rep else 0,
        unrecoverable=flt_rep.unrecoverable if flt_rep else 0,
        dead_pchs=tuple(flt_rep.dead_pchs) if flt_rep else (),
    )


def _suite_point(args: tuple) -> ChaosResult:
    """One suite scenario (module-level so it is process-pool picklable)."""
    key, fabric, pattern, cycles, seed, platform = args
    return run_scenario(key, fabric=fabric, pattern=pattern, cycles=cycles,
                        seed=seed, platform=platform)


def run_suite(
    scenarios: Optional[Sequence[str]] = None,
    fabric: FabricKind = FabricKind.XLNX,
    pattern: Pattern = Pattern.SCS,
    cycles: int = 6000,
    seed: int = 0,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    workers: int = 1,
) -> List[ChaosResult]:
    """Run several scenarios (default: the whole library, sorted).

    Runs on the supervised sweep runtime: with ``workers > 1`` the
    scenarios fan out over a crash-supervised process pool (each
    scenario is two simulations, so the suite parallelizes well), and a
    scenario that crashes its worker surfaces as a structured
    :class:`~repro.errors.SweepError` instead of a bare
    ``BrokenProcessPool``.  Results are deterministic and identical at
    any worker count.
    """
    keys = sorted(SCENARIOS) if scenarios is None else list(scenarios)
    # Pre-validate inputs here so a typo'd scenario still raises a plain
    # ConfigError, not a sweep failure wrapping one.
    for key in keys:
        if key not in SCENARIOS:
            raise ConfigError(
                f"unknown chaos scenario {key!r}; "
                f"choose from {sorted(SCENARIOS)}")
    if cycles < 30:
        raise ConfigError("chaos runs need at least 30 cycles")
    from ..experiments.parallel import parallel_sweep
    points = [(k, fabric, pattern, cycles, seed, platform) for k in keys]
    return parallel_sweep(_suite_point, points, workers)


def format_result(r: ChaosResult) -> str:
    """Human-readable resilience report for one scenario."""
    plan = r.plan_text.replace("\n", "\n" + " " * 24)
    lines = [
        f"chaos scenario '{r.scenario}'  "
        f"[{r.fabric} / {r.pattern}, {r.cycles} cycles, seed {r.seed}]",
        f"  fault plan          : {plan}",
        f"  outcome             : {r.outcome}",
    ]
    if r.completed:
        lines += [
            f"  bandwidth           : {r.baseline_gbps:7.2f} -> "
            f"{r.faulted_gbps:7.2f} GB/s  ({100.0 * r.retained:5.1f}% "
            f"retained)",
            f"  read p99 latency    : {r.baseline_read_p99:7.1f} -> "
            f"{r.faulted_read_p99:7.1f} accel cycles  "
            f"(x{r.p99_inflation:.2f})",
            f"  retries / nacks     : {r.retries} / {r.nacks}",
            f"  ecc corrected       : {r.ecc_corrected}   "
            f"uncorrectable: {r.ecc_uncorrectable}",
            f"  unrecoverable loss  : {r.unrecoverable}",
            f"  dead channels       : {list(r.dead_pchs)}",
        ]
    elif r.degraded:
        lines += [
            "  (run aborted by watchdog despite degradation — the "
            "horizon left no room to recover; raise --cycles)",
        ]
    else:
        lines += [
            "  (run aborted by watchdog — fault detected, no silent "
            "loss; enable degradation to recover instead)",
        ]
    return "\n".join(lines)


def format_report(results: Sequence[ChaosResult]) -> str:
    """Join per-scenario reports into one document."""
    return "\n\n".join(format_result(r) for r in results)
