"""Declarative fault schedules.

A :class:`FaultPlan` is a list of :class:`FaultEvent` occurrences plus the
policy knobs that govern recovery (degradation on PCH loss, the SECDED
double-bit fraction).  Plans are *data*: building one performs no side
effect, and the same ``(FaultPlan, seed)`` pair always produces the same
simulated outcome — scheduled events fire at fixed cycles, and the only
probabilistic element (per-beat data corruption) is driven by a counter-
based hash (:mod:`repro.faults.ecc`) rather than by stateful RNG, so the
fast-path and legacy engine loops observe identical fault behaviour.

Event kinds
-----------

``PCH_OFFLINE``
    The pseudo-channel stops servicing at ``at`` (hard failure).  With
    ``plan.degrade`` the fabric masks the dead channel: queued and
    in-flight requests are NACKed back to their masters and the address
    map remaps the dead channel's traffic onto survivors.

``PCH_SLOW``
    Refresh storm / thermal throttle: the channel's service time is
    multiplied by ``factor`` for ``duration`` cycles and its banks are
    parked (no activates) for the first ``duration / factor`` cycles.

``LINK_STALL``
    A lateral-bus cut (segmented fabric) or distribution-network stage
    (MAO/ideal) transmits nothing for ``duration`` cycles.

``DATA_CORRUPT``
    Read data beats leaving the channel flip bits with probability
    ``rate`` per beat for ``duration`` cycles; a SECDED model classifies
    each corrupted beat as corrected (single bit) or uncorrectable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigError


class FaultKind(enum.Enum):
    """The modelled failure modes."""

    PCH_OFFLINE = "pch-offline"
    PCH_SLOW = "pch-slow"
    LINK_STALL = "link-stall"
    DATA_CORRUPT = "data-corrupt"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault occurrence.

    Parameters
    ----------
    kind:
        The failure mode.
    at:
        Fabric cycle the fault manifests.
    pch:
        Target pseudo-channel (``PCH_OFFLINE`` / ``PCH_SLOW`` /
        ``DATA_CORRUPT``); ``None`` means *all* channels for
        ``DATA_CORRUPT`` and is invalid for the other PCH kinds.
    cut:
        Target lateral cut index for ``LINK_STALL`` (the bus pair between
        switches ``cut`` and ``cut + 1``); ``None`` stalls every cut.
    duration:
        Cycles the fault persists (ignored for ``PCH_OFFLINE``, which is
        permanent).
    factor:
        Timing multiplier for ``PCH_SLOW`` (2.0 = every access takes
        twice as long).
    rate:
        Per-beat corruption probability for ``DATA_CORRUPT``.
    """

    kind: FaultKind
    at: int
    pch: Optional[int] = None
    cut: Optional[int] = None
    duration: int = 0
    factor: float = 2.0
    rate: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigError(f"fault cycle must be >= 0, got {self.at}")
        if self.kind in (FaultKind.PCH_OFFLINE, FaultKind.PCH_SLOW) \
                and self.pch is None:
            raise ConfigError(f"{self.kind.value} requires a target pch")
        if self.kind in (FaultKind.PCH_SLOW, FaultKind.LINK_STALL,
                         FaultKind.DATA_CORRUPT) and self.duration <= 0:
            raise ConfigError(f"{self.kind.value} requires duration > 0")
        if self.kind is FaultKind.PCH_SLOW and self.factor <= 1.0:
            raise ConfigError("slow-down factor must be > 1.0")
        if self.kind is FaultKind.DATA_CORRUPT \
                and not 0.0 < self.rate <= 1.0:
            raise ConfigError("corruption rate must be in (0, 1]")

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict; round-trips bit-exactly through
        :meth:`from_dict` (enforced by the hypothesis property tests —
        the fuzz corpus depends on it)."""
        return {
            "kind": self.kind.value,
            "at": self.at,
            "pch": self.pch,
            "cut": self.cut,
            "duration": self.duration,
            "factor": self.factor,
            "rate": self.rate,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultEvent":
        try:
            kind = FaultKind(data["kind"])
        except (KeyError, ValueError) as exc:
            raise ConfigError(f"bad fault event dict: {exc}") from exc
        return cls(
            kind=kind,
            at=int(data["at"]),
            pch=None if data.get("pch") is None else int(data["pch"]),
            cut=None if data.get("cut") is None else int(data["cut"]),
            duration=int(data.get("duration", 0)),
            factor=float(data.get("factor", 2.0)),
            rate=float(data.get("rate", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seedable schedule of fault events.

    ``seed`` drives the counter-hash behind the ECC corruption model;
    ``degrade`` selects the recovery policy when a PCH goes offline
    (mask + remap vs. let the watchdog catch the loss);
    ``dbit_fraction`` is the fraction of corrupted beats that flip two
    bits (uncorrectable under SECDED) instead of one.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0
    degrade: bool = True
    dbit_fraction: float = 0.1

    def __init__(self, events: Sequence[FaultEvent] = (), seed: int = 0,
                 degrade: bool = True, dbit_fraction: float = 0.1) -> None:
        # Frozen dataclass with a list-friendly constructor: normalize the
        # event sequence to a time-sorted tuple so plans hash/compare by
        # value and the injector can rely on firing order.
        if not 0.0 <= dbit_fraction <= 1.0:
            raise ConfigError("dbit_fraction must be in [0, 1]")
        object.__setattr__(self, "events",
                           tuple(sorted(events, key=lambda e: e.at)))
        object.__setattr__(self, "seed", int(seed))
        object.__setattr__(self, "degrade", bool(degrade))
        object.__setattr__(self, "dbit_fraction", float(dbit_fraction))

    def __bool__(self) -> bool:
        return bool(self.events)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict; ``FaultPlan.from_dict(plan.to_dict()) ==
        plan`` holds bit-exactly (events re-sort stably by cycle, and the
        constructor already normalized the order)."""
        return {
            "events": [e.to_dict() for e in self.events],
            "seed": self.seed,
            "degrade": self.degrade,
            "dbit_fraction": self.dbit_fraction,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            events=[FaultEvent.from_dict(e) for e in data.get("events", ())],
            seed=int(data.get("seed", 0)),
            degrade=bool(data.get("degrade", True)),
            dbit_fraction=float(data.get("dbit_fraction", 0.1)),
        )

    @property
    def offline_pchs(self) -> List[int]:
        """PCHs this plan takes offline, in event order."""
        return [e.pch for e in self.events
                if e.kind is FaultKind.PCH_OFFLINE]

    def describe(self) -> str:
        """One line per event, for reports and logs."""
        lines = []
        for e in self.events:
            tgt = f"pch {e.pch}" if e.pch is not None else (
                f"cut {e.cut}" if e.cut is not None else "all")
            extra = ""
            if e.kind is FaultKind.PCH_SLOW:
                extra = f" x{e.factor:g} for {e.duration}"
            elif e.kind is FaultKind.LINK_STALL:
                extra = f" for {e.duration}"
            elif e.kind is FaultKind.DATA_CORRUPT:
                extra = f" rate {e.rate:g} for {e.duration}"
            lines.append(f"@{e.at}: {e.kind.value} {tgt}{extra}")
        return "\n".join(lines) if lines else "(no faults)"
