"""Binding a :class:`~repro.faults.plan.FaultPlan` to a live fabric.

The :class:`FaultInjector` is the engine-side half of the fault model: it
walks the plan's time-sorted events and mutates fabric state at exactly
the scheduled cycles.  The engine calls :meth:`FaultInjector.fire_due` at
the top of every simulated cycle and clamps its fast-path clock jumps to
:meth:`FaultInjector.next_fire`, so the legacy per-cycle loop and the
batched fast path apply every fault at the same cycle — a precondition
for the bit-identical-reports invariant the differential tests enforce.

Effects per event kind:

* ``PCH_OFFLINE`` — mark the channel's fault state offline (the memory
  controller stops scheduling its queue).  Under the plan's degradation
  policy, additionally install the survivor remap table on the fabric,
  switch the channel's controller to NACK-on-arrival, and bounce the
  already-queued requests back to their masters for retry.
* ``PCH_SLOW`` — open a timing window in which the channel's transfers
  take ``factor`` times longer, and park its banks (rows closed, no
  activates) at the onset — the refresh-storm signature.
* ``LINK_STALL`` — freeze part of the interconnect via the fabric's
  ``apply_link_stall`` hook (lateral cut, switch stage, or ingress,
  depending on the topology).
* ``DATA_CORRUPT`` — open a corruption window on the target channel(s);
  the channel classifies every read beat through the shared
  :class:`~repro.faults.ecc.SecdedModel` while the window is active.
"""

from __future__ import annotations

import math
from typing import List

from ..dram.pch import PchFaultState
from .degrade import build_remap
from .ecc import SecdedModel
from .plan import FaultEvent, FaultKind, FaultPlan


class FaultInjector:
    """Applies a fault plan's events to a fabric as simulation time passes."""

    def __init__(self, plan: FaultPlan, fabric) -> None:
        self.plan = plan
        self.fabric = fabric
        self._events = plan.events  # time-sorted by FaultPlan
        self._next = 0
        #: Shared SECDED classifier (one per run; seeded by the plan).
        self.ecc = SecdedModel(seed=plan.seed,
                               dbit_fraction=plan.dbit_fraction)
        #: PCH indices taken offline so far, in failure order.
        self.dead: List[int] = []

    # -- engine interface ----------------------------------------------------

    def next_fire(self, cycle: int) -> float:
        """Cycle of the next unapplied event, ``inf`` when exhausted.

        The fast path clamps its clock jumps here so fault cycles are
        always visited (never jumped over).
        """
        i = self._next
        return float(self._events[i].at) if i < len(self._events) else math.inf

    def fire_due(self, cycle: int) -> None:
        """Apply every event scheduled at or before ``cycle``."""
        events = self._events
        n = len(events)
        i = self._next
        while i < n and events[i].at <= cycle:
            self._apply(events[i], cycle)
            i += 1
        self._next = i

    # -- event application ---------------------------------------------------

    def _fault_state(self, pch_index: int) -> PchFaultState:
        pch = self.fabric.pchs[pch_index]
        if pch.fault is None:
            pch.fault = PchFaultState()
        return pch.fault

    def _apply(self, ev: FaultEvent, cycle: int) -> None:
        kind = ev.kind
        if kind is FaultKind.PCH_OFFLINE:
            self._take_offline(ev.pch, cycle)
        elif kind is FaultKind.PCH_SLOW:
            state = self._fault_state(ev.pch)
            until = float(cycle + ev.duration)
            if until > state.slow_until:
                state.slow_until = until
                state.slow_factor = ev.factor
            # Refresh storm onset: rows close and activates block briefly,
            # so the first accesses into the window pay cold-bank misses.
            self.fabric.pchs[ev.pch].banks.park(float(cycle))
        elif kind is FaultKind.LINK_STALL:
            self.fabric.apply_link_stall(float(cycle + ev.duration), ev.cut)
        elif kind is FaultKind.DATA_CORRUPT:
            targets = ([ev.pch] if ev.pch is not None
                       else range(self.fabric.platform.num_pch))
            until = float(cycle + ev.duration)
            for p in targets:
                state = self._fault_state(p)
                if until > state.corrupt_until:
                    state.corrupt_until = until
                state.corrupt_rate = ev.rate
                state.ecc = self.ecc

    def _take_offline(self, pch_index: int, cycle: int) -> None:
        state = self._fault_state(pch_index)
        if state.offline:
            return
        state.offline = True
        self.dead.append(pch_index)
        fabric = self.fabric
        if not self.plan.degrade:
            # No recovery policy: requests keep queueing for the dead
            # channel and the watchdogs diagnose the loss.
            return
        fabric.fault_remap = build_remap(fabric.platform.num_pch, self.dead)
        mc = fabric._mc_by_pch[pch_index]
        mc.degrade_offline = True
        # Bounce the channel's queued reads back to their masters; their
        # retries re-resolve through the remap table onto survivors.
        # Queued writes are *not* bounced: their posted B response was
        # already generated at accept time, so the master considers them
        # complete — the classic acknowledged-but-lost bufferable-write
        # hazard, which only the data-side model could surface.
        for txn in mc.flush_offline(pch_index, cycle):
            if txn.is_read:
                fabric._on_nack(txn, float(cycle))
