"""DMA engine: host-side buffer movement into and out of HBM.

Sec. II's third drawback of the vendor address map is host interaction:
"if this data is simply copied to HBM with such an address layout, it
will be placed in the same PCH until its maximum capacity is reached".
This module provides the copy machinery a real deployment needs and makes
that effect measurable:

* :class:`DmaEngine` — functional copies between numpy buffers and a
  :class:`~repro.memory.HbmMemory`, sliced into AXI3-legal bursts by the
  splitter (so every copy is exactly the transaction stream the hardware
  would see);
* :class:`DescriptorSource` — replays a DMA descriptor list as a finite
  traffic source for the cycle simulator, so the *time* a copy takes on a
  given interconnect can be measured (`simulate_copy`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .axi.splitter import split_request
from .axi.transaction import AxiTransaction
from .errors import ConfigError
from .memory import HbmMemory
from .params import BYTES_PER_BEAT, HbmPlatform, DEFAULT_PLATFORM
from .sim import Engine, SimConfig
from .types import Direction, FabricKind
from . import make_fabric


@dataclass(frozen=True)
class Descriptor:
    """One DMA transfer: ``num_bytes`` at ``address``, read or write."""

    address: int
    num_bytes: int
    direction: Direction

    def __post_init__(self) -> None:
        if self.num_bytes <= 0:
            raise ConfigError("descriptor must move at least one byte")
        if self.address < 0:
            raise ConfigError("negative descriptor address")


class DmaEngine:
    """Functional DMA between host numpy buffers and HBM contents."""

    def __init__(self, memory: HbmMemory,
                 platform: HbmPlatform = DEFAULT_PLATFORM) -> None:
        self.memory = memory
        self.platform = platform
        #: Descriptors of every transfer performed (replayable in the
        #: cycle simulator).
        self.log: List[Descriptor] = []
        self.bursts_issued = 0

    # -- functional copies -------------------------------------------------------

    def host_to_hbm(self, address: int, data: np.ndarray) -> int:
        """Copy a host buffer into HBM; returns the burst count."""
        buf = np.ascontiguousarray(data).view(np.uint8).ravel()
        chunk = getattr(self.memory.address_map, "granularity", None)
        bursts = split_request(address, len(buf), chunk=chunk)
        self.memory.write(address, buf)
        self.bursts_issued += len(bursts)
        self.log.append(Descriptor(address, len(buf), Direction.WRITE))
        return len(bursts)

    def hbm_to_host(self, address: int, num_bytes: int) -> np.ndarray:
        """Copy HBM contents back to the host."""
        chunk = getattr(self.memory.address_map, "granularity", None)
        bursts = split_request(address, num_bytes, chunk=chunk)
        self.bursts_issued += len(bursts)
        self.log.append(Descriptor(address, num_bytes, Direction.READ))
        return self.memory.read(address, num_bytes)

    def hbm_to_hbm(self, src: int, dst: int, num_bytes: int) -> None:
        """Device-local copy (read descriptor + write descriptor)."""
        data = self.hbm_to_host(src, num_bytes)
        self.host_to_hbm(dst, data)


class DescriptorSource:
    """Replays DMA descriptors as a finite traffic source.

    The descriptor list is split into legal bursts and dealt round-robin
    over ``num_channels`` engine ports (real DMA engines stripe large
    copies over several AXI masters).
    """

    def __init__(
        self,
        master: int,
        descriptors: Sequence[Descriptor],
        num_engines: int,
        platform: HbmPlatform = DEFAULT_PLATFORM,
        chunk: Optional[int] = 512,
    ) -> None:
        self.master = master
        self._queue: List[AxiTransaction] = []
        for i, desc in enumerate(descriptors):
            for j, (addr, bl) in enumerate(
                    split_request(desc.address, desc.num_bytes, chunk=chunk)):
                if (j % num_engines) == (master % num_engines):
                    self._queue.append(AxiTransaction(
                        master, desc.direction, addr, bl, validate=False))
        self._queue.reverse()  # pop from the end

    def __len__(self) -> int:
        return len(self._queue)

    def next_txn(self, cycle: int) -> Optional[AxiTransaction]:
        return self._queue.pop() if self._queue else None


@dataclass(frozen=True)
class CopyTiming:
    """Result of a simulated DMA copy."""

    num_bytes: int
    cycles: int
    seconds: float
    gbps: float
    bursts: int


def simulate_copy(
    num_bytes: int,
    fabric_kind: FabricKind,
    *,
    address: int = 0,
    direction: Direction = Direction.WRITE,
    num_engines: int = 8,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    max_cycles: int = 2_000_000,
) -> CopyTiming:
    """Measure how long a ``num_bytes`` host copy takes on a fabric.

    Runs the descriptor stream to completion (finite workload) and
    returns wall-clock and bandwidth.  This is the Sec. II effect in one
    number: the same copy is ~30x faster through the MAO because the
    vendor map serializes it onto one pseudo-channel after another.
    """
    desc = [Descriptor(address, num_bytes, direction)]
    fabric = make_fabric(fabric_kind, platform)
    chunk = getattr(fabric.address_map, "granularity", 512)
    sources = [DescriptorSource(m, desc, num_engines, platform, chunk=chunk)
               for m in range(min(num_engines, platform.num_masters))]
    total_bursts = sum(len(s) for s in sources)
    cfg = SimConfig(cycles=max_cycles, warmup=0, outstanding=32)
    engine = Engine(fabric, sources, cfg)
    # Run until every master is exhausted and idle.
    fabric_ref = engine.fabric
    for cycle in range(max_cycles):
        engine.cycle = cycle
        for mp in engine.masters:
            mp.step(cycle, fabric_ref)
        fabric_ref.step(cycle)
        done = fabric_ref.completions
        if done:
            fabric_ref.completions = []
            for txn, _t in done:
                next(m for m in engine.masters
                     if m.index == txn.master).on_complete(txn, cycle)
        if all(mp.exhausted and mp.idle for mp in engine.masters):
            break
    else:
        raise ConfigError("copy did not finish within max_cycles")
    elapsed = cycle + 1
    seconds = elapsed / platform.fabric_clock_hz
    return CopyTiming(
        num_bytes=num_bytes,
        cycles=elapsed,
        seconds=seconds,
        gbps=num_bytes / seconds / 1e9,
        bursts=total_bursts,
    )
