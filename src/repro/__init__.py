"""Reproduction of *Fast HBM Access with FPGAs: Analysis, Architectures,
and Applications* (Holzinger, Reiser, Hahn, Reichenbach — IPDPSW 2021).

The package models a Xilinx Virtex UltraScale+ HBM FPGA platform at cycle
level, implements the paper's Memory Access Optimizer (MAO) IP core, and
provides the Roofline-based estimation methodology plus the experiment
harness that regenerates every table and figure of the paper's evaluation.

Layering (bottom up):

* :mod:`repro.params`, :mod:`repro.types` — platform description.
* :mod:`repro.dram`, :mod:`repro.axi` — memory and protocol substrates.
* :mod:`repro.fabric` — segmented (vendor), MAO, and ideal interconnects.
* :mod:`repro.traffic` — the paper's access patterns.
* :mod:`repro.sim` — the cycle engine and statistics.
* :mod:`repro.core` — MAO configuration, address interleaving, reorder
  buffers, analytical estimator, design guidelines (the contribution).
* :mod:`repro.roofline`, :mod:`repro.accelerators`, :mod:`repro.resources`
  — the evaluation methodology of Sec. V.
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import quick_measure
    from repro.types import Pattern, FabricKind

    report = quick_measure(Pattern.CCS, FabricKind.MAO)
    print(report.summary())
"""

from __future__ import annotations

from typing import Optional

from .params import HbmPlatform, DEFAULT_PLATFORM, DramTiming, FabricTiming, gbps
from .types import Direction, FabricKind, Pattern, RWRatio, TWO_TO_ONE
from .errors import (
    ReproError, ConfigError, AxiProtocolError, AddressError,
    RoutingError, SimulationError, ResourceError, ObserverError,
    FaultError, TransactionTimeout, DeadlockError, UnrecoverableDataError,
)

__version__ = "1.0.0"

__all__ = [
    "HbmPlatform", "DEFAULT_PLATFORM", "DramTiming", "FabricTiming", "gbps",
    "Direction", "FabricKind", "Pattern", "RWRatio", "TWO_TO_ONE",
    "ReproError", "ConfigError", "AxiProtocolError", "AddressError",
    "RoutingError", "SimulationError", "ResourceError", "ObserverError",
    "FaultError", "TransactionTimeout", "DeadlockError",
    "UnrecoverableDataError",
    "make_fabric", "quick_measure", "__version__",
]


def make_fabric(kind: FabricKind,
                platform: HbmPlatform = DEFAULT_PLATFORM,
                **kwargs):
    """Construct a fabric model by kind.

    ``kwargs`` are forwarded to the fabric constructor (e.g. ``config=``
    for a custom :class:`~repro.core.mao.MaoConfig`).
    """
    from .fabric import SegmentedFabric, MaoFabric, IdealFabric
    if kind is FabricKind.XLNX:
        return SegmentedFabric(platform, **kwargs)
    if kind is FabricKind.MAO:
        return MaoFabric(platform, **kwargs)
    if kind is FabricKind.IDEAL:
        return IdealFabric(platform, **kwargs)
    raise ConfigError(f"unknown fabric kind {kind!r}")


def quick_measure(
    pattern: Pattern,
    fabric_kind: FabricKind = FabricKind.XLNX,
    *,
    burst_len: int = 16,
    rw: RWRatio = TWO_TO_ONE,
    cycles: int = 12_000,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    outstanding: int = 32,
    seed: int = 0,
):
    """Measure one Table I pattern on one fabric — the 30-second API.

    Returns a :class:`~repro.sim.stats.SimReport`.
    """
    from .sim import Engine, SimConfig
    from .traffic import make_pattern_sources
    fabric = make_fabric(fabric_kind, platform)
    sources = make_pattern_sources(
        pattern, platform, burst_len=burst_len, rw=rw,
        address_map=fabric.address_map, seed=seed)
    cfg = SimConfig(cycles=cycles, warmup=min(cycles // 4, 3000),
                    outstanding=outstanding)
    return Engine(fabric, sources, cfg).run()
