"""Async simulation job queue with request deduplication.

The serving tier's slow path: a query the store and the precomputed
surface cannot answer becomes a *job*.  The queue's contract, in order
of importance:

1. **Dedup by content address.**  Two concurrent requests for the same
   :class:`~repro.experiments.surface.PatternPoint` share one in-flight
   simulation — the second ``submit`` awaits the first's future instead
   of enqueueing.  The identity is the store digest, i.e. the same
   content address as the cache entry, so "in flight" and "already
   stored" can never disagree about what a point *is*.
2. **Structured failure.**  Jobs run through
   :func:`~repro.experiments.parallel.supervised_sweep` (optionally on a
   one-worker :class:`~repro.runtime.SupervisedPool` for crash
   isolation), so a crashing or hanging simulation surfaces as a typed
   :class:`JobFailure` carrying the
   :class:`~repro.runtime.TaskFailure` kind/detail — never a dead
   server or a silently dropped request.
3. **Store write-through.**  The sweep layer writes each result to the
   shared :class:`~repro.service.store.ResultStore` the moment it lands
   (same streaming-checkpoint path batch sweeps use), so a result
   computed for one client is a store hit for every later one.
4. **Graceful drain.**  ``close(drain=True)`` stops intake, lets queued
   and in-flight jobs finish, and only then cancels the workers — a
   server shutdown never strands a waiting client.

Priorities are smaller-first; ties preserve submission order.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..errors import ReproError
from ..experiments.parallel import supervised_sweep
from ..experiments.surface import PatternPoint, simulate_point, simulate_point_key
from .store import ResultStore


class JobFailure(ReproError):
    """A queued simulation failed; carries the supervised-sweep detail."""

    def __init__(self, digest: str, kind: str, detail: str) -> None:
        self.digest = digest
        self.kind = kind
        self.detail = detail
        super().__init__(f"job {digest[:12]} failed ({kind}): {detail}")


class QueueClosed(ReproError):
    """``submit`` was called on a queue that is draining or closed."""


@dataclass
class QueueCounters:
    """Observable accounting of everything the queue did.

    ``submitted`` counts every ``submit`` call; each one resolves as
    exactly one of ``store_hits`` (answered from the shared store),
    ``deduped`` (attached to an identical in-flight job), ``simulated``
    (ran a fresh simulation) or ``failed``.
    """

    submitted: int = 0
    store_hits: int = 0
    deduped: int = 0
    simulated: int = 0
    failed: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"submitted": self.submitted, "store_hits": self.store_hits,
                "deduped": self.deduped, "simulated": self.simulated,
                "failed": self.failed}


@dataclass(frozen=True)
class JobResult:
    """One resolved submission: the report plus how it was satisfied."""

    report: Any
    source: str  #: ``store`` | ``simulated`` | ``deduped``
    digest: str


@dataclass(order=True)
class _Job:
    priority: int
    seq: int
    digest: str = field(compare=False)
    point: PatternPoint = field(compare=False)
    future: asyncio.Future = field(compare=False)


class JobQueue:
    """Deduplicating asyncio job queue over the supervised sweep runtime.

    ``workers`` asyncio worker tasks pull jobs in priority order and run
    each simulation in a thread (the simulation itself is synchronous
    CPU work).  ``isolate=True`` additionally runs every simulation in a
    one-worker supervised *process* pool, so a segfaulting point cannot
    take the server down; the default inline mode still reports
    exceptions as structured failures but shares the server process.

    ``task_timeout`` bounds each job in seconds.  Under ``isolate`` the
    pool enforces it preemptively (the worker process is killed); inline
    it bounds only the await — the orphaned thread finishes in the
    background and its result still reaches the store.
    """

    def __init__(self, store: ResultStore, *, workers: int = 1,
                 task_timeout: Optional[float] = None,
                 isolate: bool = False) -> None:
        self.store = store
        self.counters = QueueCounters()
        self.task_timeout = task_timeout
        self.isolate = isolate
        self._workers = max(1, workers)
        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._inflight: Dict[str, asyncio.Future] = {}
        self._tasks: list = []
        self._seq = itertools.count()
        self._closing = False

    async def start(self) -> None:
        """Spawn the worker tasks (idempotent)."""
        while len(self._tasks) < self._workers:
            self._tasks.append(asyncio.ensure_future(self._worker()))

    def _run_point(self, point: PatternPoint) -> Any:
        """Synchronous job body (runs in a thread off the event loop).

        One-point supervised sweep against the shared store: a prior
        result short-circuits, a fresh one is written through, and any
        failure comes back as a structured outcome instead of a raise.
        """
        outcome = supervised_sweep(
            simulate_point, [(point, self.store.platform)],
            workers=2 if self.isolate else 1,
            force_pool=self.isolate,
            cache=self.store.cache, key_fn=simulate_point_key,
            task_timeout=self.task_timeout if self.isolate else None,
            journal=None, resume_state=None)
        if outcome.failures:
            f = outcome.failures[0]
            raise JobFailure(self.store.digest_for(point), f.kind, f.detail)
        return outcome.results[0]

    async def _worker(self) -> None:
        while True:
            job: _Job = await self._queue.get()
            try:
                coro = asyncio.to_thread(self._run_point, job.point)
                if self.task_timeout is not None and not self.isolate:
                    coro = asyncio.wait_for(coro, self.task_timeout)
                report = await coro
            except asyncio.CancelledError:
                if not job.future.done():
                    job.future.set_exception(QueueClosed(
                        "server shut down before the job ran"))
                raise
            except asyncio.TimeoutError:
                self.counters.failed += 1
                if not job.future.done():
                    job.future.set_exception(JobFailure(
                        job.digest, "timeout",
                        f"job exceeded {self.task_timeout}s"))
            except Exception as exc:  # noqa: BLE001 — forwarded, not hidden
                self.counters.failed += 1
                if not job.future.done():
                    job.future.set_exception(exc)
            else:
                self.counters.simulated += 1
                if not job.future.done():
                    job.future.set_result(report)
            finally:
                self._inflight.pop(job.digest, None)
                self._queue.task_done()

    async def submit(self, point: PatternPoint, *,
                     priority: int = 0) -> JobResult:
        """Resolve ``point``: store hit, shared in-flight job, or a new
        simulation — awaiting until the report is available."""
        if self._closing:
            raise QueueClosed("queue is draining; no new jobs accepted")
        self.counters.submitted += 1
        hit = self.store.get(point)
        digest = self.store.digest_for(point)
        if hit is not None:
            self.counters.store_hits += 1
            return JobResult(report=hit, source="store", digest=digest)
        existing = self._inflight.get(digest)
        if existing is not None:
            self.counters.deduped += 1
            report = await asyncio.shield(existing)
            return JobResult(report=report, source="deduped", digest=digest)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[digest] = future
        await self._queue.put(_Job(priority=priority, seq=next(self._seq),
                                   digest=digest, point=point, future=future))
        report = await asyncio.shield(future)
        return JobResult(report=report, source="simulated", digest=digest)

    def enqueue_nowait(self, point: PatternPoint, *,
                       priority: int = 10) -> str:
        """Fire-and-forget warm-up: enqueue unless stored or in flight.

        The cold-path ``wait=0`` HTTP answer uses this — the client gets
        an immediate "pending" and the result lands in the store for the
        next query.  Returns the point's digest either way.
        """
        if self._closing:
            raise QueueClosed("queue is draining; no new jobs accepted")
        digest = self.store.digest_for(point)
        if digest in self._inflight or self.store.contains(point):
            return digest
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        # A fire-and-forget future has no awaiter; swallow its outcome so
        # a failed warm-up never surfaces as an "exception was never
        # retrieved" noise line.
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None)
        self._inflight[digest] = future
        self._queue.put_nowait(_Job(priority=priority, seq=next(self._seq),
                                    digest=digest, point=point,
                                    future=future))
        return digest

    def pending(self) -> int:
        """Jobs queued or running (dedup'd submissions count once)."""
        return len(self._inflight)

    async def close(self, *, drain: bool = True) -> None:
        """Stop intake; optionally finish all accepted jobs first."""
        self._closing = True
        if drain and self._tasks:
            await self._queue.join()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._tasks.clear()
