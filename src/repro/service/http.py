"""Minimal asyncio HTTP front end of the sweep service.

Stdlib only (``asyncio.start_server`` + hand-rolled HTTP/1.1 GET
parsing): the service must run inside the reproduction's existing
environment, so no web framework.  Endpoints:

``GET /healthz``
    Liveness probe.
``GET /v1/estimate?pattern=CCS&fabric=xlnx&rw=2:1&burst=16&outstanding=32``
    Closed-form analytic bandwidth estimate
    (:class:`~repro.core.estimator.BandwidthEstimator`) — pure
    arithmetic, sub-millisecond by construction.
``GET /v1/advise?...``
    Design-guideline findings
    (:func:`~repro.core.guidelines.evaluate_guidelines`).
``GET /v1/sweep?...&cycles=3000&wait=1``
    *Measured* bandwidth.  Fast paths, in order: the shared result
    store, the precomputed surface (exact grid point), log2-linear
    burst interpolation between grid points.  A cold point falls back to
    the job queue: ``wait=1`` blocks until the simulation finishes,
    ``wait=0`` returns ``202 Accepted`` with the job digest and warms
    the store in the background.
``GET /v1/stats``
    Queue counters, in-flight depth, and store footprint.

Every 200/202 response carries a ``manifest``
(:func:`~repro.telemetry.manifest.service_manifest`) naming the answer's
source and — for store-backed answers — the content-addressed entry it
came from, plus a ``latency_ms`` field measured at the handler boundary.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
import urllib.parse
from typing import Any, Dict, Optional, Tuple

from ..core.estimator import BandwidthEstimator, EstimateInputs
from ..core.guidelines import (DesignDescription, evaluate_guidelines,
                               worst_severity)
from ..errors import ConfigError, ReproError
from ..experiments._common import DEFAULT_CYCLES
from ..experiments.surface import (PatternPoint, SweepSurface,
                                   sample_from_report)
from ..telemetry.manifest import service_manifest
from ..types import FabricKind, Pattern, RWRatio
from .queue import JobFailure, JobQueue, QueueClosed
from .store import ResultStore

#: Service protocol version (the ``/v1/`` path segment).
SERVICE_API_VERSION = 1


class BadRequest(ReproError):
    """Malformed query string; becomes a 400 with the detail."""


def _parse_rw(text: str) -> RWRatio:
    try:
        r, w = text.split(":")
        return RWRatio(int(r), int(w))
    except (ValueError, TypeError) as exc:
        raise BadRequest(
            f"rw must be READS:WRITES (e.g. 2:1), got {text!r}") from exc


def _parse_int(params: Dict[str, str], name: str, default: int) -> int:
    raw = params.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError as exc:
        raise BadRequest(f"{name} must be an integer, got {raw!r}") from exc


def _parse_point(params: Dict[str, str], *,
                 default_cycles: int) -> PatternPoint:
    """Normalize a query string into a :class:`PatternPoint`."""
    pattern_name = params.get("pattern", "CCS").upper()
    try:
        pattern = Pattern[pattern_name]
    except KeyError as exc:
        raise BadRequest(
            f"unknown pattern {pattern_name!r}; expected one of "
            f"{', '.join(p.name for p in Pattern)}") from exc
    fabric_name = params.get("fabric", "xlnx").lower()
    try:
        fabric = FabricKind(fabric_name)
    except ValueError as exc:
        raise BadRequest(
            f"unknown fabric {fabric_name!r}; expected one of "
            f"{', '.join(f.value for f in FabricKind)}") from exc
    try:
        return PatternPoint(
            fabric=fabric,
            pattern=pattern,
            burst_len=_parse_int(params, "burst", 16),
            rw=_parse_rw(params.get("rw", "2:1")),
            cycles=_parse_int(params, "cycles", default_cycles),
            outstanding=_parse_int(params, "outstanding", 32),
        )
    except ValueError as exc:  # RWRatio validation
        raise BadRequest(str(exc)) from exc


def _point_inputs(point: PatternPoint) -> Dict[str, Any]:
    """The normalized query echoed into the response manifest."""
    return {"fabric": point.fabric.value, "pattern": point.pattern.name,
            "burst_len": point.burst_len, "rw": str(point.rw),
            "cycles": point.cycles, "outstanding": point.outstanding}


class SweepService:
    """The handler tier: query -> JSON body + status, no socket code.

    Split from the socket loop so tests can drive handlers directly
    (awaiting :meth:`handle`) and the HTTP framing stays a dumb shell.
    """

    def __init__(self, store: ResultStore, queue: JobQueue, *,
                 surface: Optional[SweepSurface] = None,
                 default_cycles: int = DEFAULT_CYCLES) -> None:
        self.store = store
        self.queue = queue
        self.surface = surface
        self.default_cycles = default_cycles
        self.estimator = BandwidthEstimator(store.platform)

    # -- endpoint handlers -------------------------------------------------

    def _healthz(self, params: Dict[str, str]) -> Tuple[int, Dict]:
        return 200, {"ok": True, "api_version": SERVICE_API_VERSION}

    def _estimate(self, params: Dict[str, str]) -> Tuple[int, Dict]:
        point = _parse_point(params, default_cycles=self.default_cycles)
        try:
            est = self.estimator.estimate(EstimateInputs(
                fabric=point.fabric, pattern=point.pattern, rw=point.rw,
                burst_len=point.burst_len, outstanding=point.outstanding))
        except ConfigError as exc:
            raise BadRequest(str(exc)) from exc
        return 200, {
            "result": {
                "total_gbps": est.total_gbps,
                "read_gbps": est.read_gbps,
                "write_gbps": est.write_gbps,
                "bottleneck": est.bottleneck,
                "nch_eff": est.nch_eff,
                "notes": list(est.notes),
            },
            "source": "analytic",
            "manifest": service_manifest(
                "estimate", self.store.platform, source="analytic",
                inputs=_point_inputs(point)),
        }

    def _advise(self, params: Dict[str, str]) -> Tuple[int, Dict]:
        point = _parse_point(params, default_cycles=self.default_cycles)
        findings = evaluate_guidelines(
            DesignDescription(rw=point.rw, burst_len=point.burst_len,
                              outstanding=point.outstanding,
                              pattern=point.pattern, fabric=point.fabric),
            self.store.platform)
        return 200, {
            "result": {
                "findings": [{"rule": g.rule, "severity": g.severity.value,
                              "message": g.message} for g in findings],
                "worst_severity": worst_severity(findings).value,
            },
            "source": "analytic",
            "manifest": service_manifest(
                "advise", self.store.platform, source="analytic",
                inputs=_point_inputs(point)),
        }

    def _report_body(self, point: PatternPoint, report) -> Dict[str, Any]:
        sample = sample_from_report(point, report, self.store.platform)
        return {"total_gbps": sample.total_gbps,
                "read_gbps": sample.read_gbps,
                "write_gbps": sample.write_gbps,
                "fraction_of_peak": sample.fraction_of_peak}

    async def _sweep(self, params: Dict[str, str]) -> Tuple[int, Dict]:
        point = _parse_point(params, default_cycles=self.default_cycles)
        wait = params.get("wait", "1") not in ("0", "false", "no")
        inputs = _point_inputs(point)
        digest = self.store.digest_for(point)

        # Fast path 1: the shared result store.
        report = self.store.get(point)
        if report is not None:
            return 200, {
                "result": self._report_body(point, report),
                "source": "store",
                "manifest": service_manifest(
                    "sweep", self.store.platform, source="store",
                    inputs=inputs, entry=digest),
            }
        # Fast path 2: the precomputed surface (exact or interpolated).
        if self.surface is not None:
            value = self.surface.lookup(point)
            if value is not None and value.interpolated:
                return 200, {
                    "result": {"total_gbps": value.total_gbps},
                    "source": "interpolated",
                    "interpolation": {
                        "axis": "burst_len",
                        "scale": "log2",
                        "lower_burst_len": value.lower.point.burst_len,
                        "lower_gbps": value.lower.total_gbps,
                        "upper_burst_len": value.upper.point.burst_len,
                        "upper_gbps": value.upper.total_gbps,
                    },
                    "manifest": service_manifest(
                        "sweep", self.store.platform, source="interpolated",
                        inputs=inputs),
                }
            if value is not None:
                return 200, {
                    "result": {"total_gbps": value.total_gbps},
                    "source": "surface",
                    "manifest": service_manifest(
                        "sweep", self.store.platform, source="surface",
                        inputs=inputs),
                }
        # Slow path: a real simulation through the dedup'ing queue.
        if not wait:
            self.queue.enqueue_nowait(point)
            return 202, {
                "status": "pending",
                "entry": digest,
                "manifest": service_manifest(
                    "sweep", self.store.platform, source="pending",
                    inputs=inputs, entry=digest),
            }
        job = await self.queue.submit(point)
        return 200, {
            "result": self._report_body(point, job.report),
            "source": job.source,
            "manifest": service_manifest(
                "sweep", self.store.platform, source=job.source,
                inputs=inputs, entry=job.digest),
        }

    def _stats(self, params: Dict[str, str]) -> Tuple[int, Dict]:
        stats = self.store.stats()
        return 200, {
            "queue": self.queue.counters.as_dict(),
            "inflight": self.queue.pending(),
            "store": {
                "directory": stats.directory,
                "entries": stats.entries,
                "total_bytes": stats.total_bytes,
                "orphan_tmp_files": stats.orphan_tmp_files,
                "memory_entries": self.store.cache.memory_entries(),
                "max_memory_entries": self.store.cache.max_memory_entries,
                "hits": self.store.cache.hits,
                "misses": self.store.cache.misses,
            },
            "surface_samples": len(self.surface) if self.surface else 0,
            "manifest": service_manifest(
                "stats", self.store.platform, source="analytic"),
        }

    # -- dispatch ----------------------------------------------------------

    async def handle(self, method: str, path: str) -> Tuple[int, Dict]:
        """Route one request; always returns (status, JSON-able body)."""
        start = time.perf_counter()  # det-lint: allow (latency display)
        parsed = urllib.parse.urlsplit(path)
        params = dict(urllib.parse.parse_qsl(parsed.query))
        route = parsed.path.rstrip("/") or "/"
        try:
            if method != "GET":
                return 405, {"error": f"method {method} not allowed"}
            if route == "/healthz":
                status, body = self._healthz(params)
            elif route == "/v1/estimate":
                status, body = self._estimate(params)
            elif route == "/v1/advise":
                status, body = self._advise(params)
            elif route == "/v1/sweep":
                status, body = await self._sweep(params)
            elif route == "/v1/stats":
                status, body = self._stats(params)
            else:
                return 404, {"error": f"no such endpoint: {route}"}
        except BadRequest as exc:
            return 400, {"error": str(exc)}
        except QueueClosed as exc:
            return 503, {"error": str(exc)}
        except JobFailure as exc:
            return 500, {"error": str(exc),
                         "failure": {"kind": exc.kind, "detail": exc.detail,
                                     "entry": exc.digest}}
        elapsed_ms = (time.perf_counter() - start) * 1e3  # det-lint: allow
        body["latency_ms"] = round(elapsed_ms, 3)
        return status, body


_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error",
            503: "Service Unavailable"}


class ServiceServer:
    """The socket shell: framing, lifecycle, graceful drain."""

    def __init__(self, service: SweepService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port  #: actual bound port after :meth:`start`
        self._server: Optional[asyncio.AbstractServer] = None

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), 30.0)
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, path = parts[0], parts[1]
            # Drain headers (ignored: GET-only, no bodies).
            while True:
                line = await asyncio.wait_for(reader.readline(), 30.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            status, body = await self.service.handle(method, path)
            payload = json.dumps(body, sort_keys=True).encode()
            head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"Connection: close\r\n\r\n").encode("latin-1")
            writer.write(head + payload)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def start(self) -> None:
        """Bind the socket and start the queue workers."""
        await self.service.queue.start()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain the queue, close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.queue.close(drain=True)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()


def run_server(host: str = "127.0.0.1", port: int = 8321, *,
               store: Optional[ResultStore] = None,
               surface: Optional[SweepSurface] = None,
               workers: int = 1, default_cycles: int = DEFAULT_CYCLES,
               task_timeout: Optional[float] = None,
               isolate: bool = False,
               ready: Optional[Any] = None) -> None:
    """Blocking entry point used by ``repro-hbm serve``.

    Runs until SIGINT/SIGTERM, then drains the queue before returning.
    Signal handlers are installed explicitly on the event loop: a server
    backgrounded from a non-interactive shell inherits SIGINT as ignored
    (POSIX job-control rules), and Python leaves ignored signals ignored
    — so relying on KeyboardInterrupt alone would make ``kill -INT``
    (the CI stop step, systemd's default-with-SIGINT units) a no-op.
    ``ready`` (a ``threading.Event``-like object with a ``set()``
    method) is signalled once the socket is bound — the CI smoke test
    and the background-thread test harness key off it.
    """
    store = store if store is not None else ResultStore()
    queue = JobQueue(store, workers=workers, task_timeout=task_timeout,
                     isolate=isolate)
    service = SweepService(store, queue, surface=surface,
                           default_cycles=default_cycles)
    server = ServiceServer(service, host, port)

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        shutdown = asyncio.Event()
        hooked = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, shutdown.set)
                hooked.append(sig)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without loop signals
        await server.start()
        print(f"repro-hbm service listening on "
              f"http://{server.host}:{server.port}", flush=True)
        if ready is not None:
            ready.set()
        serving = asyncio.ensure_future(server.serve_forever())
        stopping = asyncio.ensure_future(shutdown.wait())
        try:
            await asyncio.wait({serving, stopping},
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            for task in (serving, stopping):
                task.cancel()
            for sig in hooked:
                loop.remove_signal_handler(sig)
            await server.stop()
            print("repro-hbm service stopped gracefully", flush=True)

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass  # fallback when loop signal handlers were unavailable
