"""Small synchronous HTTP client for the sweep service.

Stdlib ``urllib`` only — this is the helper the tests, the CI smoke job
and scripted consumers use; it adds no behaviour beyond URL building,
JSON decoding, and typed errors.  Each method mirrors one endpoint of
:mod:`repro.service.http` and returns the decoded JSON body verbatim
(the ``manifest`` key included), so callers see exactly what the wire
carries.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Dict, Optional

from ..errors import ReproError


class ServiceClientError(ReproError):
    """Non-2xx response; carries the status and the decoded error body."""

    def __init__(self, status: int, body: Dict[str, Any]) -> None:
        self.status = status
        self.body = body
        super().__init__(
            f"service returned {status}: {body.get('error', body)}")


class ServiceClient:
    """Client for one service base URL (e.g. ``http://127.0.0.1:8321``)."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _get(self, path: str,
             params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        url = self.base_url + path
        if params:
            url += "?" + urllib.parse.urlencode(
                {k: v for k, v in params.items() if v is not None})
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode())
            except (ValueError, OSError):
                body = {"error": str(exc)}
            raise ServiceClientError(exc.code, body) from exc

    def healthz(self) -> Dict[str, Any]:
        """Liveness probe; raises on any non-2xx."""
        return self._get("/healthz")

    def estimate(self, *, pattern: str = "CCS", fabric: str = "xlnx",
                 rw: str = "2:1", burst: int = 16,
                 outstanding: int = 32) -> Dict[str, Any]:
        """Closed-form analytic bandwidth estimate for a design point."""
        return self._get("/v1/estimate", {
            "pattern": pattern, "fabric": fabric, "rw": rw,
            "burst": burst, "outstanding": outstanding})

    def advise(self, *, pattern: str = "CCS", fabric: str = "xlnx",
               rw: str = "2:1", burst: int = 16,
               outstanding: int = 32) -> Dict[str, Any]:
        """Design-guideline findings for a design point."""
        return self._get("/v1/advise", {
            "pattern": pattern, "fabric": fabric, "rw": rw,
            "burst": burst, "outstanding": outstanding})

    def sweep(self, *, pattern: str = "CCS", fabric: str = "xlnx",
              rw: str = "2:1", burst: int = 16, outstanding: int = 32,
              cycles: Optional[int] = None,
              wait: bool = True) -> Dict[str, Any]:
        """Measured bandwidth: store/surface fast path or a simulation.

        ``wait=False`` turns a cold point into a 202-"pending" warm-up
        enqueue instead of blocking on the simulation; the raised
        :class:`ServiceClientError` is *not* used for 202 (it is a
        success), so callers just check ``body.get("status")``.
        """
        return self._get("/v1/sweep", {
            "pattern": pattern, "fabric": fabric, "rw": rw,
            "burst": burst, "outstanding": outstanding,
            "cycles": cycles, "wait": 1 if wait else 0})

    def stats(self) -> Dict[str, Any]:
        """Queue counters, in-flight depth, and store footprint."""
        return self._get("/v1/stats")
