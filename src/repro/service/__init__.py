"""Long-lived sweep service: shared result store, dedup'ing job queue,
and an HTTP serving tier for estimate / advise / sweep queries.

The batch experiments regenerate the paper's figures; this package
serves the same numbers *on demand*.  Three layers, each usable alone:

* :class:`~repro.service.store.ResultStore` — a content-addressed,
  point-typed view of the :class:`~repro.sim.cache.SimCache`, shareable
  across processes through one spill directory,
* :class:`~repro.service.queue.JobQueue` — an asyncio queue that
  deduplicates concurrent identical requests into one supervised
  simulation and writes every result through to the store,
* :class:`~repro.service.http.SweepService` /
  :class:`~repro.service.http.ServiceServer` — a stdlib HTTP front end
  answering warm queries in sub-millisecond time from the store or the
  precomputed :class:`~repro.experiments.surface.SweepSurface`, and
  falling back to the queue for cold points.

Start one with ``repro-hbm serve``; talk to it with
:class:`~repro.service.client.ServiceClient`.
"""

from .store import ResultStore, entry_digest
from .queue import JobFailure, JobQueue, JobResult, QueueClosed, QueueCounters
from .http import (SERVICE_API_VERSION, BadRequest, ServiceServer,
                   SweepService, run_server)
from .client import ServiceClient, ServiceClientError

__all__ = [
    "ResultStore",
    "entry_digest",
    "JobFailure",
    "JobQueue",
    "JobResult",
    "QueueClosed",
    "QueueCounters",
    "SERVICE_API_VERSION",
    "BadRequest",
    "ServiceServer",
    "SweepService",
    "run_server",
    "ServiceClient",
    "ServiceClientError",
]
