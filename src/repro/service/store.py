"""Content-addressed result store shared by sweeps and the service.

A thin, point-typed layer over :class:`~repro.sim.cache.SimCache`: the
cache speaks raw key tuples; the store speaks
:class:`~repro.experiments.surface.PatternPoint` and gives every entry a
stable **content address** — the SHA-1 of the full measure-level key,
which is also the basename of the entry's on-disk pickle.  Two processes
pointed at the same directory (``REPRO_SIM_CACHE_DIR`` or an explicit
path) therefore share results through nothing but the cache's atomic
tmp-then-rename spill: an experiment sweep warms the service, a service
simulation warms the next batch run, and the digest is the dedup/journal
identity throughout.
"""

from __future__ import annotations

import hashlib
from typing import Any, Optional, Tuple

from ..experiments.surface import PatternPoint, point_cache_key
from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..sim.cache import MISS, SimCache


def entry_digest(key: Tuple) -> str:
    """Stable content address of a full cache key.

    Matches the cache's on-disk naming (``<sha1(repr(key))>.pkl``) so an
    entry id printed by the service can be located in the spill
    directory directly.
    """
    return hashlib.sha1(repr(key).encode()).hexdigest()


class ResultStore:
    """Point-addressed view of a (possibly shared) :class:`SimCache`.

    The store owns no storage of its own: ``get``/``put``/``contains``
    translate points into full measure-level keys and delegate, so every
    consumer of the underlying cache — experiment sweeps, the service
    queue, a second server process on the same directory — sees the same
    entries.
    """

    def __init__(self, cache: Optional[SimCache] = None,
                 directory: Optional[str] = None,
                 max_memory_entries: Optional[int] = None,
                 platform: HbmPlatform = DEFAULT_PLATFORM) -> None:
        self.platform = platform
        self.cache = cache if cache is not None else SimCache(
            directory, max_memory_entries=max_memory_entries)

    @property
    def directory(self) -> Optional[str]:
        """Disk directory shared between processes (may be ``None``)."""
        return self.cache.directory

    def key_for(self, point: PatternPoint) -> Tuple:
        """Full measure-level cache key of ``point`` on this platform."""
        return point_cache_key(point, self.platform)

    def digest_for(self, point: PatternPoint) -> str:
        """Stable content address of ``point`` — the dedup identity."""
        return entry_digest(self.key_for(point))

    def get(self, point: PatternPoint) -> Optional[Any]:
        """The stored ``SimReport`` for ``point``, or ``None``."""
        value = self.cache.lookup(self.key_for(point))
        return None if value is MISS else value

    def contains(self, point: PatternPoint) -> bool:
        """Membership probe; never perturbs the hit/miss counters."""
        return self.key_for(point) in self.cache

    def put(self, point: PatternPoint, report: Any) -> str:
        """Store ``report`` under the point's key; returns the digest."""
        key = self.key_for(point)
        self.cache.put(key, report)
        return entry_digest(key)

    def stats(self):
        """Disk footprint of the shared directory (see ``SimCache.stats``)."""
        return self.cache.stats()
