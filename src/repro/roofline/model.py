"""The Roofline model proper.

``attainable(OpI) = min(Ccomp, OpI x BW_eff)`` [Williams et al., CACM'09],
with the effective-bandwidth refinement of the paper: the memory ceiling
is pattern- and fabric-specific.  The model also exposes the *ridge point*
(OpI where a design transitions from memory- to compute-bound) and the
speedup bookkeeping used for Table V.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..errors import ConfigError
from .ceilings import Ceiling, CeilingKind


class Bound(enum.Enum):
    """Which ceiling limits a design point."""

    COMPUTE = "compute"
    MEMORY = "memory"
    BALANCED = "balanced"


@dataclass(frozen=True)
class RooflinePoint:
    """One design point placed in the roofline plane."""

    name: str
    opi: float
    """Operational intensity in OPS/byte."""

    performance_gops: float
    """Attainable (or measured) performance."""

    bound: Bound

    compute_ceiling_gops: float
    memory_ceiling_gbps: float

    @property
    def memory_limited_gops(self) -> float:
        return self.opi * self.memory_ceiling_gbps

    @property
    def headroom(self) -> float:
        """Fraction of the binding ceiling still unused (0 = at ceiling)."""
        limit = min(self.compute_ceiling_gops, self.memory_limited_gops)
        return 1.0 - self.performance_gops / limit if limit > 0 else 0.0


class RooflineModel:
    """A set of ceilings plus placement/classification helpers."""

    #: Relative tolerance inside which a point counts as *balanced*.
    BALANCE_TOLERANCE = 0.02

    def __init__(self, ceilings: Sequence[Ceiling]) -> None:
        self.memory_ceilings = [c for c in ceilings if c.kind is CeilingKind.MEMORY]
        self.compute_ceilings = [c for c in ceilings if c.kind is CeilingKind.COMPUTE]
        if not self.memory_ceilings:
            raise ConfigError("a roofline needs at least one memory ceiling")
        if not self.compute_ceilings:
            raise ConfigError("a roofline needs at least one compute ceiling")

    # -- lookups -------------------------------------------------------------

    def memory_ceiling(self, name: Optional[str] = None) -> Ceiling:
        return self._find(self.memory_ceilings, name)

    def compute_ceiling(self, name: Optional[str] = None) -> Ceiling:
        return self._find(self.compute_ceilings, name)

    @staticmethod
    def _find(pool: List[Ceiling], name: Optional[str]) -> Ceiling:
        if name is None:
            return max(pool, key=lambda c: c.value)
        for c in pool:
            if c.name == name:
                return c
        raise ConfigError(f"no ceiling named {name!r}")

    # -- model ------------------------------------------------------------------

    def attainable_gops(
        self,
        opi: float,
        compute: Optional[str] = None,
        memory: Optional[str] = None,
    ) -> float:
        """``min(Ccomp, OpI x BW)`` for the selected ceilings."""
        if opi <= 0:
            raise ConfigError("operational intensity must be positive")
        c = self.compute_ceiling(compute).value
        m = self.memory_ceiling(memory).value * opi
        return c if c < m else m

    def ridge_point(self, compute: Optional[str] = None,
                    memory: Optional[str] = None) -> float:
        """OpI at which the design becomes compute-bound."""
        return (self.compute_ceiling(compute).value
                / self.memory_ceiling(memory).value)

    def classify(self, opi: float, compute: Optional[str] = None,
                 memory: Optional[str] = None) -> Bound:
        c = self.compute_ceiling(compute).value
        m = self.memory_ceiling(memory).value * opi
        if abs(c - m) <= self.BALANCE_TOLERANCE * max(c, m):
            return Bound.BALANCED
        return Bound.COMPUTE if c < m else Bound.MEMORY

    def place(
        self,
        name: str,
        opi: float,
        compute: Optional[str] = None,
        memory: Optional[str] = None,
        measured_gops: Optional[float] = None,
    ) -> RooflinePoint:
        """Place a design point; uses ``measured_gops`` when supplied,
        the model's attainable value otherwise."""
        perf = (measured_gops if measured_gops is not None
                else self.attainable_gops(opi, compute, memory))
        return RooflinePoint(
            name=name,
            opi=opi,
            performance_gops=perf,
            bound=self.classify(opi, compute, memory),
            compute_ceiling_gops=self.compute_ceiling(compute).value,
            memory_ceiling_gbps=self.memory_ceiling(memory).value,
        )

    @staticmethod
    def speedup(points: Iterable[RooflinePoint],
                baseline: RooflinePoint) -> dict:
        """Speedups of every point relative to ``baseline`` (Table V's SU)."""
        base = baseline.performance_gops
        if base <= 0:
            raise ConfigError("baseline performance must be positive")
        return {p.name: p.performance_gops / base for p in points}
