"""Roofline performance model (Sec. V of the paper).

The paper's methodological contribution: a Roofline model whose *memory
ceilings* are the measured/estimated effective bandwidth of the concrete
access pattern and interconnect (not the theoretical device peak).
Attainable performance is ``min(Ccomp, OpI x BW_eff)``; the module also
classifies designs as compute- or memory-bound and renders ASCII
rooflines for the terminal.
"""

from .model import RooflineModel, RooflinePoint, Bound
from .ceilings import Ceiling, CeilingKind, memory_ceiling_from_report
from .report import render_roofline, format_points_table

__all__ = [
    "RooflineModel",
    "RooflinePoint",
    "Bound",
    "Ceiling",
    "CeilingKind",
    "memory_ceiling_from_report",
    "render_roofline",
    "format_points_table",
]
