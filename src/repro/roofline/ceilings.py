"""Roofline ceilings.

Two kinds: *memory* ceilings in GB/s (slanted lines in the log-log plot)
and *compute* ceilings in GOPS (horizontal lines).  The paper's insight is
that the memory ceiling must be the **effective** bandwidth of the actual
pattern/fabric combination — Fig. 7 draws one ceiling for the plain Xilinx
fabric (12.55 GB/s for accelerator A's contiguous allocation) and one for
the MAO (403.75 GB/s).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigError


class CeilingKind(enum.Enum):
    """Kind of a roofline ceiling: slanted (memory) or flat (compute)."""

    MEMORY = "memory"
    COMPUTE = "compute"


@dataclass(frozen=True)
class Ceiling:
    """One roofline ceiling.

    ``value`` is GB/s for memory ceilings and GOPS for compute ceilings.
    """

    name: str
    kind: CeilingKind
    value: float

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ConfigError(f"ceiling {self.name!r} must be positive")

    def attainable(self, opi: float) -> float:
        """GOPS this ceiling allows at operational intensity ``opi``."""
        if self.kind is CeilingKind.COMPUTE:
            return self.value
        return self.value * opi


def memory_ceiling_from_report(name: str, report) -> Ceiling:
    """Build a memory ceiling from a simulation report (measured BW)."""
    return Ceiling(name, CeilingKind.MEMORY, report.total_gbps)
