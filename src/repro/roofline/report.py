"""Terminal rendering of rooflines and point tables.

The benchmark harness prints these instead of matplotlib figures: a
log-log ASCII roofline (Fig. 7-style) and aligned tables of design
points.  Rendering is deliberately dependency-free so it works in CI.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .ceilings import Ceiling, CeilingKind
from .model import RooflineModel, RooflinePoint


def _log_pos(value: float, lo: float, hi: float, width: int) -> int:
    """Map ``value`` onto 0..width-1 on a log scale."""
    if value <= lo:
        return 0
    if value >= hi:
        return width - 1
    frac = (math.log10(value) - math.log10(lo)) / (math.log10(hi) - math.log10(lo))
    return int(round(frac * (width - 1)))


def render_roofline(
    model: RooflineModel,
    points: Sequence[RooflinePoint],
    *,
    width: int = 72,
    height: int = 20,
    opi_range: tuple = (1.0, 1000.0),
) -> str:
    """ASCII log-log roofline: ceilings as lines, points as ``*``.

    The x axis is operational intensity (OPS/B), the y axis GOPS.
    """
    perf_values = [p.performance_gops for p in points]
    for c in model.compute_ceilings:
        perf_values.append(c.value)
    for m in model.memory_ceilings:
        perf_values.append(m.value * opi_range[1])
        perf_values.append(m.value * opi_range[0])
    lo_y = max(min(perf_values) / 2.0, 1e-3)
    hi_y = max(perf_values) * 2.0

    grid = [[" "] * width for _ in range(height)]

    # Memory ceilings: slanted lines performance = BW * OpI.
    for m in model.memory_ceilings:
        for col in range(width):
            frac = col / (width - 1)
            opi = 10 ** (math.log10(opi_range[0])
                         + frac * (math.log10(opi_range[1]) - math.log10(opi_range[0])))
            perf = min(m.value * opi, hi_y)
            row = height - 1 - _log_pos(perf, lo_y, hi_y, height)
            if grid[row][col] == " ":
                grid[row][col] = "/"
    # Compute ceilings: horizontal lines.
    for c in model.compute_ceilings:
        row = height - 1 - _log_pos(c.value, lo_y, hi_y, height)
        for col in range(width):
            if grid[row][col] == " ":
                grid[row][col] = "-"
    # Points.
    for p in points:
        col = _log_pos(p.opi, opi_range[0], opi_range[1], width)
        row = height - 1 - _log_pos(p.performance_gops, lo_y, hi_y, height)
        grid[row][col] = "*"

    lines = ["".join(r) for r in grid]
    header = (f"Roofline  (x: OpI {opi_range[0]:g}..{opi_range[1]:g} OPS/B, "
              f"y: {lo_y:.3g}..{hi_y:.3g} GOPS, log-log)")
    legend = []
    for c in model.compute_ceilings:
        legend.append(f"  - {c.name}: {c.value:,.0f} GOPS")
    for m in model.memory_ceilings:
        legend.append(f"  / {m.name}: {m.value:,.1f} GB/s")
    for p in points:
        legend.append(f"  * {p.name}: OpI {p.opi:.1f}, "
                      f"{p.performance_gops:,.0f} GOPS ({p.bound.value}-bound)")
    return "\n".join([header] + lines + legend)


def format_points_table(points: Sequence[RooflinePoint],
                        speedups: dict | None = None) -> str:
    """Aligned table of roofline points (Table V style)."""
    rows: List[str] = []
    head = (f"{'design':<18} {'OpI':>8} {'GOPS':>12} {'bound':>9} "
            f"{'mem ceiling':>12}")
    if speedups:
        head += f" {'SU':>8}"
    rows.append(head)
    rows.append("-" * len(head))
    for p in points:
        line = (f"{p.name:<18} {p.opi:>8.1f} {p.performance_gops:>12,.0f} "
                f"{p.bound.value:>9} {p.memory_ceiling_gbps:>10.1f} GB")
        if speedups:
            su = speedups.get(p.name)
            line += f" {su:>7.1f}x" if su is not None else f" {'—':>8}"
        rows.append(line)
    return "\n".join(rows)
