"""Accelerator B: adder-tree matrix multiplication (Sec. V).

P adder trees, each consuming one 256-bit HBM word (32 int8 values) per
cycle.  Rows of the first matrix and the partial sums live in local
buffers; the second matrix is streamed ("it keeps parts of one input
matrix as well as partial sums in local memory. This saves memory
bandwidth as only one matrix has to be reloaded and only final results
need to be written back").

* operations: 2 MACs per streamed value, so the peak is
  ``P x (2 x 32 - 1) x f_acc x eta`` with a pipeline-refill efficiency
  ``eta = 0.9`` — the paper's 68 / 137 / 274 / 547 GOPS,
* traffic: the streamed matrix is read once per resident row block, so
  for one-row blocks the total traffic approaches ``N³`` bytes and
  ``OpI = 2`` regardless of P (the paper: "OpI only depends on the matrix
  size therefore does not change with P"),
* reads dominate writes by ``Mh : 1`` (one output row written per full
  matrix streamed).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ConfigError
from ..resources.fpga import ResourceVector
from ..types import RWRatio
from .base import AcceleratorConfig, AcceleratorModel
from .matmul_a import DataflowStats

#: Values consumed per adder tree per cycle (one 256-bit word of int8).
TREE_WIDTH = 32

#: Pipeline-refill efficiency between dot-product rows.
TREE_EFFICIENCY = 0.9

#: Calibrated LUTs per adder tree incl. buffers (core utilization 3 % at
#: P=4 on the XCVU37P, Table V).
LUTS_PER_TREE = 9_778

#: FFs per adder tree.
FFS_PER_TREE = 14_000


class AcceleratorB(AcceleratorModel):
    """Analytical model of the adder-tree accelerator."""

    name = "accelerator-B"

    @property
    def num_trees(self) -> int:
        return self.config.p

    @property
    def operational_intensity(self) -> float:
        # 2 N³ ops over ~N³ streamed bytes; the exact value with the
        # resident-row and output traffic included:
        n = self.config.matrix_n
        ops = 2.0 * n ** 3
        traffic = float(n) ** 3 + 2.0 * n * n  # stream + A rows + C out
        return ops / traffic

    @property
    def compute_ceiling_gops(self) -> float:
        ops_per_cycle = self.num_trees * (2 * TREE_WIDTH - 1) * TREE_EFFICIENCY
        return ops_per_cycle * self.config.accel_clock_hz / 1e9

    @property
    def rw_ratio(self) -> RWRatio:
        # Mh : 1 with Mh >> 2 — one output row per streamed matrix.
        return RWRatio(min(self.config.matrix_n, 64), 1)

    @property
    def core_resources(self) -> ResourceVector:
        return ResourceVector(
            luts=LUTS_PER_TREE * self.num_trees,
            ffs=FFS_PER_TREE * self.num_trees,
            bram36=12 * self.num_trees,
        )

    def cycle_estimate(self, bandwidth_gbps: float) -> float:
        """Cycles for one full N x N matmul at a memory bandwidth."""
        if bandwidth_gbps <= 0:
            raise ConfigError("bandwidth must be positive")
        n = self.config.matrix_n
        total_values = float(n) ** 3  # streamed int8 values
        compute_cycles = total_values / (self.num_trees * TREE_WIDTH
                                         * TREE_EFFICIENCY)
        mem_cycles = (total_values * self.config.accel_clock_hz
                      / (bandwidth_gbps * 1e9))
        return max(compute_cycles, mem_cycles)


def adder_tree_matmul(
    a: np.ndarray,
    b: np.ndarray,
    tree_width: int = TREE_WIDTH,
) -> Tuple[np.ndarray, DataflowStats]:
    """Functional simulation of accelerator B's dataflow.

    Computes ``a @ b`` row by row: each row of ``a`` is resident while the
    whole of ``b`` streams through the adder trees in
    ``tree_width``-value chunks, reduced by explicit binary trees (not a
    numpy dot), with int32 accumulation.
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ConfigError("incompatible matrix shapes")
    n_i, n_k = a.shape
    n_j = b.shape[1]
    if n_k % tree_width:
        raise ConfigError("inner dimension must be a multiple of tree width")
    a32 = a.astype(np.int32)
    b32 = b.astype(np.int32)
    c = np.zeros((n_i, n_j), dtype=np.int32)
    stats = DataflowStats()
    for i in range(n_i):
        row = a32[i]
        stats.bytes_read += n_k  # resident row load (int8)
        # Stream B fully; each tree reduces one chunk per "cycle".
        for k0 in range(0, n_k, tree_width):
            products = row[k0:k0 + tree_width, None] * b32[k0:k0 + tree_width, :]
            stats.bytes_read += tree_width * n_j
            stats.macs += tree_width * n_j
            # Explicit binary-tree reduction (what the adder tree does).
            width = tree_width
            level = products
            while width > 1:
                half = width // 2
                level = level[:half] + level[half:half * 2] if width % 2 == 0 \
                    else np.concatenate([level[:half] + level[half:2 * half],
                                         level[2 * half:]], axis=0)
                width = level.shape[0]
            c[i] += level[0]
        stats.bytes_written += n_j  # final row write-back
    return c, stats
