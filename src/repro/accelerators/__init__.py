"""The two matrix-multiplication accelerators of Sec. V.

* **Accelerator A** (:mod:`repro.accelerators.matmul_a`) — a systolic
  PE array of dimension 16P x 16P that keeps one input tile resident and
  streams the other input and the output (read/write ratio 2:1).
* **Accelerator B** (:mod:`repro.accelerators.matmul_b`) — P adder trees
  with local buffers for partial sums; only one matrix is re-streamed and
  only final results are written (ratio Mh:1, effectively read-only).

Both come with

* a **functional dataflow simulation** validated against numpy (int8
  matrices, int32 accumulation),
* an **analytical model** reproducing the paper's OpI / Ccomp / Util
  formulas (Table V),
* a **memory-traffic source** so the cycle simulator can *measure* the
  accelerator's achievable bandwidth on any fabric — the measured points
  of Fig. 7.
"""

from .base import AcceleratorModel, AcceleratorConfig
from .matmul_a import AcceleratorA, systolic_matmul
from .matmul_a_linear import AcceleratorALinear, broadcast_systolic_matmul
from .matmul_b import AcceleratorB, adder_tree_matmul
from .scaling import TableVRow, build_table_v, ACCEL_A_PS, ACCEL_B_PS
from .spmv import (SpmvAccelerator, SpmvTrafficSource, csr_spmv,
                   make_spmv_sources, synthetic_csr)
from .stencil import StencilAccelerator, stencil_sweep, stencil_reference
from .traffic import AcceleratorTrafficSource, make_accelerator_sources

__all__ = [
    "AcceleratorModel",
    "AcceleratorConfig",
    "AcceleratorA",
    "AcceleratorALinear",
    "broadcast_systolic_matmul",
    "AcceleratorB",
    "StencilAccelerator",
    "SpmvAccelerator",
    "SpmvTrafficSource",
    "csr_spmv",
    "make_spmv_sources",
    "synthetic_csr",
    "stencil_sweep",
    "stencil_reference",
    "systolic_matmul",
    "adder_tree_matmul",
    "TableVRow",
    "build_table_v",
    "ACCEL_A_PS",
    "ACCEL_B_PS",
    "AcceleratorTrafficSource",
    "make_accelerator_sources",
]
