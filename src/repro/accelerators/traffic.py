"""Memory-traffic sources for the accelerators.

Sec. V measures the accelerators' achievable bandwidth by running their
actual memory access pattern against the HBM subsystem: both cores
"immediately request as much data as possible" in long bursts, with every
matrix "contiguously stored in memory without gaps" — a CCS pattern with
the accelerator's read/write ratio, issued from its P active ports.

These sources reproduce exactly that, so the cycle simulator delivers the
"measured" bandwidth points of Fig. 7 (12.55 / 403.75 GB/s for A,
9.59 / 273 GB/s for B in the paper's hardware runs).
"""

from __future__ import annotations

from typing import List

from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..traffic.patterns import CcsSource
from .base import AcceleratorModel


class AcceleratorTrafficSource(CcsSource):
    """CCS traffic with an accelerator's read/write ratio across P ports."""

    def __init__(
        self,
        master: int,
        model: AcceleratorModel,
        platform: HbmPlatform = DEFAULT_PLATFORM,
        burst_len: int = 16,
    ) -> None:
        super().__init__(
            master,
            platform,
            burst_len=burst_len,
            rw=model.rw_ratio,
            num_masters=model.config.p,
        )
        self.model = model


def make_accelerator_sources(
    model: AcceleratorModel,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    burst_len: int = 16,
) -> List[AcceleratorTrafficSource]:
    """One source per active port (masters ``0 .. P-1``)."""
    return [AcceleratorTrafficSource(m, model, platform, burst_len)
            for m in range(min(model.config.p, platform.num_masters))]
