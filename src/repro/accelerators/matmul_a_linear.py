"""Accelerator A-linear: the paper's future-work variant.

Sec. V closes with: "For Accelerator A the design could be optimized to
better exploit the available throughput with a smaller design, for
example by applying a local buffer structure to redistribute values and
scale the PE array linearly."  This module implements that suggestion:

* the PE array is ``P`` slices of a fixed ``SLICE_DIM x SLICE_DIM`` tile
  stacked vertically (total ``64 P x 64`` PEs — resources grow
  **linearly** with P instead of quadratically),
* a local broadcast buffer distributes each streamed column of the
  second input to *all* slices, so the stream is fetched once regardless
  of P ("redistribute values"),
* compute: ``Ccomp = 2 x 4096 P x f_acc`` — the same 2,458 GOPS baseline
  at P=4 as accelerator A, at a quarter of the area growth.

The trade-off the model exposes: operational intensity saturates at
``~2 x SLICE_DIM = 128`` OPS/B as P grows (the A-tile and C-stream
traffic now scale with P), so the variant tops out against the memory
ceiling — but it gets much further up the roofline per LUT, which is
exactly why the paper suggests it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ConfigError
from ..resources.fpga import ResourceVector
from ..types import RWRatio
from .base import AcceleratorModel
from .matmul_a import DataflowStats, LUTS_PER_PE, FFS_PER_PE

#: Side length of one PE slice (a P=4 instance matches accelerator A).
SLICE_DIM = 64


class AcceleratorALinear(AcceleratorModel):
    """Linearly scaled systolic accelerator with broadcast buffers."""

    name = "accelerator-A-linear"

    @property
    def rows(self) -> int:
        """PE rows: P slices of SLICE_DIM stacked vertically."""
        return SLICE_DIM * self.config.p // 4

    @property
    def cols(self) -> int:
        return SLICE_DIM

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    @property
    def operational_intensity(self) -> float:
        """Per pass over N columns: ops = 2 * rows * cols * N; traffic =
        rows*cols (A tile) + cols*N (B stream, broadcast once) +
        2*rows*N (C read+write)."""
        r, c, n = self.rows, self.cols, self.config.matrix_n
        ops = 2.0 * r * c * n
        traffic = r * c + c * n + 2.0 * r * n
        return ops / traffic

    @property
    def compute_ceiling_gops(self) -> float:
        return 2.0 * self.num_pes * self.config.accel_clock_hz / 1e9

    @property
    def rw_ratio(self) -> RWRatio:
        # B stream + C read : C write — still read-heavy, roughly 2:1
        # once rows >> cols/N ratios settle.
        return RWRatio(2, 1)

    @property
    def core_resources(self) -> ResourceVector:
        return ResourceVector(
            luts=int(round(LUTS_PER_PE * self.num_pes)),
            ffs=int(round(FFS_PER_PE * self.num_pes)),
            # The redistribution buffers are the price of linear scaling:
            # one B-column buffer per slice.
            bram36=8 * self.config.p + 2 * (self.rows // SLICE_DIM),
        )

    def cycle_estimate(self, bandwidth_gbps: float) -> float:
        if bandwidth_gbps <= 0:
            raise ConfigError("bandwidth must be positive")
        r, c, n = self.rows, self.cols, self.config.matrix_n
        passes = (n / r) * (n / c)
        bytes_per_pass = r * c + c * n + 2.0 * r * n
        mem_cycles = (bytes_per_pass * self.config.accel_clock_hz
                      / (bandwidth_gbps * 1e9))
        return passes * max(float(n), mem_cycles)


def broadcast_systolic_matmul(
    a: np.ndarray,
    b: np.ndarray,
    slice_dim: int = 16,
    slices: int = 4,
) -> Tuple[np.ndarray, DataflowStats]:
    """Functional simulation of the linear variant's dataflow.

    The resident tile is ``(slice_dim * slices) x slice_dim`` of ``a``;
    each streamed ``b`` column is broadcast through the local buffers to
    every slice, so it is counted once.  Int8 inputs, int32 accumulation.
    """
    rows_t = slice_dim * slices
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ConfigError("incompatible matrix shapes")
    if a.shape[0] % rows_t or a.shape[1] % slice_dim or b.shape[1] % slice_dim:
        raise ConfigError("matrix dimensions must match the tile geometry")
    n_i, n_k = a.shape
    n_j = b.shape[1]
    a32 = a.astype(np.int32)
    b32 = b.astype(np.int32)
    c = np.zeros((n_i, n_j), dtype=np.int32)
    stats = DataflowStats()
    for i0 in range(0, n_i, rows_t):
        for k0 in range(0, n_k, slice_dim):
            a_tile = a32[i0:i0 + rows_t, k0:k0 + slice_dim]
            stats.bytes_read += rows_t * slice_dim       # A tile (int8)
            b_strip = b32[k0:k0 + slice_dim, :]
            stats.bytes_read += slice_dim * n_j          # B broadcast once
            stats.bytes_read += rows_t * n_j             # C partial read
            # The broadcast buffer hands the same b_strip to every slice.
            for s in range(slices):
                rows = slice(s * slice_dim, (s + 1) * slice_dim)
                c[i0:i0 + rows_t, :][rows] += a_tile[rows] @ b_strip
                stats.macs += slice_dim * slice_dim * n_j
            stats.bytes_written += rows_t * n_j          # C partial write
    return c, stats
