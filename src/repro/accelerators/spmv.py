"""Sparse matrix-vector multiplication (SpMV) on HBM.

The paper's Table I spans two extremes — perfectly strided (S) and fully
random (RA) access.  Real irregular workloads live in between: an SpMV
gathers ``x[col]`` at the column indices of the sparse matrix, so its
randomness is set by the matrix's *bandwidth* (how far columns stray from
the diagonal).  This module makes that interpolation concrete:

* :func:`csr_spmv` — functional CSR SpMV with explicit gathers, counting
  external traffic (validated against ``A @ x``),
* :func:`synthetic_csr` — banded random matrices whose ``locality``
  parameter sweeps the gather footprint from one row buffer to the whole
  device,
* :class:`SpmvAccelerator` — the analytical model (OpI ≈ 0.15 OPS/B:
  even more bandwidth-hungry than the stencil),
* :class:`SpmvTrafficSource` — *index-driven* traffic: the gather
  addresses replayed into the cycle simulator come from an actual
  synthetic matrix, so the measured bandwidth responds to the matrix
  structure exactly as the estimator's S/RA extremes predict.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..axi.transaction import AxiTransaction
from ..errors import ConfigError
from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..resources.fpga import ResourceVector
from ..types import Direction, RWRatio
from .base import AcceleratorModel
from .matmul_a import DataflowStats

#: MAC lanes per HBM port.
LANES_PER_PORT = 8

#: Calibrated resources per lane (float32 MAC + gather bookkeeping).
LUTS_PER_LANE = 3_800
FFS_PER_LANE = 5_600
BRAM_PER_LANE = 2
DSP_PER_LANE = 5


def synthetic_csr(
    n: int,
    nnz_per_row: int = 16,
    locality: float = 0.01,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A banded random CSR matrix.

    ``locality`` is the band half-width as a fraction of ``n``: 0.001
    keeps gathers inside a few rows of the diagonal (strided-ish), 1.0
    scatters them over the whole vector (the CCRA extreme).
    """
    if n < 1 or nnz_per_row < 1:
        raise ConfigError("matrix must have at least one row and nonzero")
    if not 0.0 < locality <= 1.0:
        raise ConfigError("locality must be in (0, 1]")
    rng = np.random.default_rng(seed)
    half = max(1, int(locality * n))
    rows = np.repeat(np.arange(n), nnz_per_row)
    offsets = rng.integers(-half, half + 1, size=rows.size)
    cols = np.clip(rows + offsets, 0, n - 1)
    # CSR wants sorted unique columns per row; duplicates are fine for the
    # traffic model but the functional kernel sums them, so keep them.
    indptr = np.arange(0, rows.size + 1, nnz_per_row, dtype=np.int64)
    data = rng.normal(size=rows.size).astype(np.float32)
    return indptr, cols.astype(np.int64), data


def csr_spmv(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    x: np.ndarray,
) -> Tuple[np.ndarray, DataflowStats]:
    """Functional CSR SpMV with per-element gathers and traffic counts."""
    n = len(indptr) - 1
    if len(x) < indices.max(initial=-1) + 1:
        raise ConfigError("vector shorter than the widest column index")
    y = np.zeros(n, dtype=np.float32)
    stats = DataflowStats()
    x32 = x.astype(np.float32)
    d32 = data.astype(np.float32)
    for i in range(n):
        lo, hi = int(indptr[i]), int(indptr[i + 1])
        cols = indices[lo:hi]
        gathered = x32[cols]                     # the gather
        y[i] = np.dot(d32[lo:hi], gathered)
        stats.macs += hi - lo
        stats.bytes_read += (hi - lo) * 8        # value + index stream
        stats.bytes_read += (hi - lo) * 4        # gathered x elements
    stats.bytes_read += (n + 1) * 8              # row pointers
    stats.bytes_written += n * 4                 # y
    return y, stats


class SpmvAccelerator(AcceleratorModel):
    """Analytical model of a gather-based SpMV engine."""

    name = "spmv"

    @property
    def num_lanes(self) -> int:
        return LANES_PER_PORT * self.config.p

    @property
    def operational_intensity(self) -> float:
        # 2 flops per nonzero over 12 streamed bytes plus amortized
        # pointers/outputs — the gather makes every byte count.
        return 2.0 / 12.0

    @property
    def compute_ceiling_gops(self) -> float:
        return 2.0 * self.num_lanes * self.config.accel_clock_hz / 1e9

    @property
    def rw_ratio(self) -> RWRatio:
        return RWRatio(8, 1)

    @property
    def core_resources(self) -> ResourceVector:
        n = self.num_lanes
        return ResourceVector(
            luts=LUTS_PER_LANE * n,
            ffs=FFS_PER_LANE * n,
            bram36=BRAM_PER_LANE * n,
            dsp=DSP_PER_LANE * n,
        )

    def cycle_estimate(self, bandwidth_gbps: float) -> float:
        if bandwidth_gbps <= 0:
            raise ConfigError("bandwidth must be positive")
        nnz = float(self.config.matrix_n) * 16  # default density
        compute_cycles = nnz / self.num_lanes
        traffic = nnz * 12.0
        mem_cycles = traffic * self.config.accel_clock_hz / (bandwidth_gbps * 1e9)
        return max(compute_cycles, mem_cycles)


class SpmvTrafficSource:
    """Index-driven SpMV memory traffic for the cycle simulator.

    Per master: an 8:1 mix of streamed reads (values/indices, sequential)
    and gather reads whose addresses come from a synthetic matrix's
    column indices — so matrix ``locality`` directly controls how
    channel-parallel the gathers are under a given address map.
    """

    #: One gather beat-read per this many streamed bursts, approximating
    #: the byte mix (16-beat value/index bursts vs 32 B gathers).
    GATHERS_PER_STREAM = 4

    def __init__(
        self,
        master: int,
        indices: np.ndarray,
        platform: HbmPlatform = DEFAULT_PLATFORM,
        x_base: Optional[int] = None,
        burst_len: int = 16,
    ) -> None:
        self.master = master
        self.platform = platform
        self.burst_len = burst_len
        #: The dense vector sits in the second half of the device.
        self.x_base = (platform.total_capacity // 2 if x_base is None
                       else x_base)
        # Row-block partitioning: each master owns a contiguous slice of
        # rows (the standard SpMV decomposition), so with a banded matrix
        # each master's gathers stay in its own region of the vector.
        n_masters = platform.num_masters
        chunk = max(1, len(indices) // n_masters)
        lo = master * chunk
        hi = len(indices) if master == n_masters - 1 else lo + chunk
        self._indices = indices[lo:hi]
        if len(self._indices) == 0:
            raise ConfigError("no indices for this master")
        self._gather_ptr = 0
        self._stream_ptr = 0
        self._phase = 0
        self._stream_base = master * (platform.total_capacity
                                      // (2 * n_masters))
        self._write_ptr = 0
        self.generated = 0

    def next_txn(self, cycle: int) -> Optional[AxiTransaction]:
        self.generated += 1
        phase = self._phase
        self._phase = (phase + 1) % (self.GATHERS_PER_STREAM + 2)
        if phase < self.GATHERS_PER_STREAM:
            # Gather: one beat at x_base + 4 * col, beat-aligned.
            col = int(self._indices[self._gather_ptr])
            self._gather_ptr = (self._gather_ptr + 1) % len(self._indices)
            addr = self.x_base + 4 * col
            addr -= addr % 32
            return AxiTransaction(self.master, Direction.READ, addr, 1,
                                  validate=False)
        if phase == self.GATHERS_PER_STREAM:
            # Stream burst: values + indices, sequential.
            addr = self._stream_base + self._stream_ptr
            self._stream_ptr = (self._stream_ptr + self.burst_len * 32) \
                % (self.platform.total_capacity // (2 * self.platform.num_masters))
            return AxiTransaction(self.master, Direction.READ, addr,
                                  self.burst_len, validate=False)
        # Output write-back (rare).
        addr = self._stream_base + self._write_ptr
        self._write_ptr = (self._write_ptr + 32) % (1 << 20)
        return AxiTransaction(self.master, Direction.WRITE, addr, 1,
                              validate=False)


def make_spmv_sources(
    locality: float,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    n: int = 1 << 20,
    nnz_per_row: int = 16,
    seed: int = 0,
):
    """Sources for all masters, driven by one synthetic matrix.

    ``n`` defaults to 2^20 rows so the gathered vector (4 MB) spans many
    interleave periods; ``locality`` then dials the gather footprint.
    """
    _indptr, indices, _data = synthetic_csr(n, nnz_per_row, locality, seed)
    return [SpmvTrafficSource(m, indices, platform)
            for m in range(platform.num_masters)]
