"""Table V: the accelerator scaling overview.

For P in {4, 8, 16, 32} and both accelerators, compute OpI, Ccomp, the
FPGA utilization with and without the MAO, and the Roofline speedups over
the P=4-without-MAO baseline — given the measured (or estimated)
effective bandwidths of the two interconnects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Type

from ..core.mao import MaoConfig, MaoVariant
from ..resources.fpga import XCVU37P, FpgaDevice
from ..resources.mao_resources import MaoResourceModel
from ..types import RWRatio
from .base import AcceleratorConfig, AcceleratorModel
from .matmul_a import AcceleratorA
from .matmul_b import AcceleratorB

#: The port counts Table V evaluates.
ACCEL_A_PS = (4, 8, 16, 32)
ACCEL_B_PS = (4, 8, 16, 32)


@dataclass(frozen=True)
class TableVRow:
    """One column of the paper's Table V (one accelerator configuration)."""

    accelerator: str
    p: int
    opi: float
    ccomp_gops: float
    rw_ratio: RWRatio
    util_core: float
    util_core_mao: float
    fits_core_mao: bool
    perf_hbm_gops: float
    perf_mao_gops: float
    su_hbm: float
    su_mao: float

    def formatted(self) -> str:
        fits = "" if self.fits_core_mao else "  [exceeds device]"
        return (f"{self.accelerator} P={self.p:<3} OpI {self.opi:>6.1f}  "
                f"Ccomp {self.ccomp_gops:>9,.0f} GOPS  "
                f"Util {self.util_core:>5.0%}/{self.util_core_mao:>5.0%}  "
                f"SU {self.su_hbm:>5.1f}x/{self.su_mao:>6.1f}x{fits}")


def build_table_v(
    bw_xlnx_gbps_a: float,
    bw_mao_gbps_a: float,
    bw_xlnx_gbps_b: float,
    bw_mao_gbps_b: float,
    *,
    matrix_n: int = 4096,
    device: FpgaDevice = XCVU37P,
    mao_config: Optional[MaoConfig] = None,
) -> List[TableVRow]:
    """Compute every Table V row from the four measured bandwidths.

    The speedup baseline is each accelerator's P=4 configuration on the
    plain (XLNX) interconnect, exactly as in the paper.
    """
    # The paper's Table V "Core+MAO" utilization uses the Full variant
    # (21.9 % LUTs on top of the core).
    mao_res = MaoResourceModel(device).estimate(
        mao_config or MaoConfig(variant=MaoVariant.FULL, stages=1))
    rows: List[TableVRow] = []
    for cls, ps, bw_x, bw_m in (
        (AcceleratorA, ACCEL_A_PS, bw_xlnx_gbps_a, bw_mao_gbps_a),
        (AcceleratorB, ACCEL_B_PS, bw_xlnx_gbps_b, bw_mao_gbps_b),
    ):
        baseline = cls(AcceleratorConfig(p=ps[0], matrix_n=matrix_n))
        base_perf = baseline.attainable_gops(bw_x)
        for p in ps:
            model = cls(AcceleratorConfig(p=p, matrix_n=matrix_n))
            core = model.core_resources
            util_core = device.utilization(core)["luts"]
            with_mao = core + mao_res.resources
            util_mao = device.utilization(with_mao)["luts"]
            perf_x = model.attainable_gops(bw_x)
            perf_m = model.attainable_gops(bw_m)
            rows.append(TableVRow(
                accelerator=model.name,
                p=p,
                opi=model.operational_intensity,
                ccomp_gops=model.compute_ceiling_gops,
                rw_ratio=model.rw_ratio,
                util_core=util_core,
                util_core_mao=util_mao,
                fits_core_mao=device.fits(with_mao),
                perf_hbm_gops=perf_x,
                perf_mao_gops=perf_m,
                su_hbm=perf_x / base_perf,
                su_mao=perf_m / base_perf,
            ))
    return rows


def best_feasible(rows: List[TableVRow]) -> TableVRow:
    """Highest-performing configuration that fits the device (the paper's
    design-selection step: A's P=8 and B's P=32)."""
    feasible = [r for r in rows if r.fits_core_mao]
    return max(feasible, key=lambda r: r.perf_mao_gops)
