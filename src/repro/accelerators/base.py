"""Common interface of the accelerator models."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import ConfigError
from ..params import ACCEL_CLOCK_HZ
from ..resources.fpga import ResourceVector
from ..types import RWRatio


@dataclass(frozen=True)
class AcceleratorConfig:
    """Scaling configuration of one accelerator instance.

    ``p`` is the number of HBM bus-master ports, which the paper uses as
    the degree of compute parallelization ("P directly corresponds to the
    degree of compute parallelization").
    """

    p: int = 4
    accel_clock_hz: int = ACCEL_CLOCK_HZ
    matrix_n: int = 4096
    """Problem size N (square N x N int8 matrices)."""

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ConfigError("P must be >= 1")
        if self.matrix_n < 1:
            raise ConfigError("matrix_n must be >= 1")


class AcceleratorModel(ABC):
    """Analytical model of one accelerator (Table V columns)."""

    name: str = "accelerator"

    def __init__(self, config: AcceleratorConfig) -> None:
        self.config = config

    # -- Table V quantities --------------------------------------------------

    @property
    @abstractmethod
    def operational_intensity(self) -> float:
        """OpI in OPS per byte of external traffic."""

    @property
    @abstractmethod
    def compute_ceiling_gops(self) -> float:
        """Ccomp: peak operations per second of the datapath."""

    @property
    @abstractmethod
    def rw_ratio(self) -> RWRatio:
        """Concurrent read:write transaction ratio of the dataflow."""

    @property
    @abstractmethod
    def core_resources(self) -> ResourceVector:
        """FPGA resources of the core (without interconnect)."""

    # -- derived ------------------------------------------------------------------

    def attainable_gops(self, bandwidth_gbps: float) -> float:
        """Roofline-attainable performance at a memory bandwidth."""
        memory_bound = self.operational_intensity * bandwidth_gbps
        ceiling = self.compute_ceiling_gops
        return ceiling if ceiling < memory_bound else memory_bound

    def is_memory_bound(self, bandwidth_gbps: float) -> bool:
        return (self.operational_intensity * bandwidth_gbps
                < self.compute_ceiling_gops)

    def describe(self) -> str:
        return (f"{self.name} (P={self.config.p}): OpI "
                f"{self.operational_intensity:.1f} OPS/B, Ccomp "
                f"{self.compute_ceiling_gops:,.0f} GOPS, RW {self.rw_ratio}")
