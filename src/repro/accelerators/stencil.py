"""Stencil accelerator: the NERO-style weather-modeling workload.

The paper motivates HBM with application accelerators; its related work
highlights NERO [Singh et al., FPL'20], a near-HBM stencil accelerator
for weather prediction.  This module applies the paper's methodology to
that workload class:

* :func:`stencil_sweep` — functional 5-point horizontal-diffusion stencil
  (float32), validated against a straightforward numpy reference,
* :class:`StencilAccelerator` — the analytical model: ``P`` streaming
  pipelines with line buffers, so each grid point is read once and
  written once per sweep.  Ten flops over eight bytes gives
  ``OpI = 1.25`` — far below even accelerator B, which is why stencils
  are the paper's canonical "needs every GB/s" application,
* a 1:1 read/write ratio, exercising the estimator on a third ratio
  besides A's 2:1 and B's read-only.

Roofline placement makes the point of the whole paper in one line: at
device scale the stencil is memory bound on *every* interconnect, so its
performance is simply ``1.25 x BW_eff`` — ~16 GFLOPS behind the vendor
hot-spot, ~500 GFLOPS behind the MAO.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ConfigError
from ..resources.fpga import ResourceVector
from ..types import RWRatio
from .base import AcceleratorModel
from .matmul_a import DataflowStats

#: Flops per output point: 5 multiplies + 4 adds, plus the accumulate.
FLOPS_PER_POINT = 10

#: Grid points processed per pipeline per cycle.
POINTS_PER_PIPE = 1

#: Calibrated resources per stencil pipeline incl. line buffers (float32
#: FMA chains map onto DSP cascades with modest LUT glue).
LUTS_PER_PIPE = 4_500
FFS_PER_PIPE = 6_800
BRAM_PER_PIPE = 4  # two line buffers per pipeline
DSP_PER_PIPE = 10


class StencilAccelerator(AcceleratorModel):
    """Analytical model of a line-buffered 5-point stencil core."""

    name = "stencil"

    @property
    def num_pipes(self) -> int:
        #: Eight pipelines per HBM port — deep spatial parallelism is what
        #: makes the stencil core outrun any memory system (NERO-style).
        return 8 * self.config.p

    @property
    def operational_intensity(self) -> float:
        # Line buffers make each float32 read and written exactly once.
        return FLOPS_PER_POINT / 8.0

    @property
    def compute_ceiling_gops(self) -> float:
        return (self.num_pipes * POINTS_PER_PIPE * FLOPS_PER_POINT
                * self.config.accel_clock_hz / 1e9)

    @property
    def rw_ratio(self) -> RWRatio:
        return RWRatio(1, 1)

    @property
    def core_resources(self) -> ResourceVector:
        n = self.num_pipes
        return ResourceVector(
            luts=LUTS_PER_PIPE * n,
            ffs=FFS_PER_PIPE * n,
            bram36=BRAM_PER_PIPE * n,
            dsp=DSP_PER_PIPE * n,
        )

    def cycle_estimate(self, bandwidth_gbps: float) -> float:
        """Cycles for one sweep over an N x N float32 grid."""
        if bandwidth_gbps <= 0:
            raise ConfigError("bandwidth must be positive")
        n = self.config.matrix_n
        points = float(n) * n
        compute_cycles = points / (self.num_pipes * POINTS_PER_PIPE)
        traffic = points * 8.0
        mem_cycles = traffic * self.config.accel_clock_hz / (bandwidth_gbps * 1e9)
        return max(compute_cycles, mem_cycles)


def stencil_reference(grid: np.ndarray, coeffs) -> np.ndarray:
    """Plain numpy 5-point stencil (interior points; edges copied)."""
    c, n, s, w, e = coeffs
    out = grid.astype(np.float32).copy()
    out[1:-1, 1:-1] = (c * grid[1:-1, 1:-1]
                       + n * grid[:-2, 1:-1] + s * grid[2:, 1:-1]
                       + w * grid[1:-1, :-2] + e * grid[1:-1, 2:])
    return out


def stencil_sweep(
    grid: np.ndarray,
    coeffs=(0.6, 0.1, 0.1, 0.1, 0.1),
    iterations: int = 1,
) -> Tuple[np.ndarray, DataflowStats]:
    """Functional simulation of the line-buffered stencil dataflow.

    Processes the grid row by row with an explicit three-row working set
    (what the hardware's line buffers hold), counting external traffic.
    Each sweep reads every point once and writes every point once.
    """
    if grid.ndim != 2 or min(grid.shape) < 3:
        raise ConfigError("grid must be 2-D and at least 3x3")
    if len(coeffs) != 5:
        raise ConfigError("five stencil coefficients required")
    if iterations < 1:
        raise ConfigError("at least one iteration")
    c, cn, cs, cw, ce = [np.float32(x) for x in coeffs]
    cur = grid.astype(np.float32)
    rows, cols = cur.shape
    stats = DataflowStats()
    for _ in range(iterations):
        out = np.empty_like(cur)
        out[0] = cur[0]
        out[-1] = cur[-1]
        # Line-buffer walk: rows enter one at a time; the three-row
        # window computes one output row.
        window = [cur[0], cur[1]]
        stats.bytes_read += 2 * cols * 4
        for r in range(1, rows - 1):
            window.append(cur[r + 1])
            stats.bytes_read += cols * 4
            top, mid, bot = window[-3], window[-2], window[-1]
            row_out = out[r]
            row_out[0] = mid[0]
            row_out[-1] = mid[-1]
            row_out[1:-1] = (c * mid[1:-1] + cn * top[1:-1] + cs * bot[1:-1]
                             + cw * mid[:-2] + ce * mid[2:])
            stats.macs += (cols - 2) * FLOPS_PER_POINT // 2
            if len(window) > 3:
                window.pop(0)
        stats.bytes_written += rows * cols * 4
        cur = out
    return cur, stats
