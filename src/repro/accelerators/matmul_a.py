"""Accelerator A: systolic PE-array matrix multiplication (Sec. V).

A 16P x 16P array of int8 MAC processing elements.  One D x D tile of the
first input matrix is loaded into the PEs' local registers; the second
input and the output matrix are then streamed continuously (paper:
"initially loads data from one input matrix into local memory inside its
PEs. Afterwards it continuously streams data from the second input and
output matrices and back to memory").

Per tile pass over matrices of size N x N (D = 16P):

* operations: ``2 D² N`` (D² MACs per streamed column, N columns),
* external traffic: ``D²`` (load tile) + ``D N`` (stream second input)
  + ``2 D N`` (read + write the output partials) bytes of int8 data,
* read:write ratio 2:1 (two streamed reads per write).

Hence ``OpI = 2 D² N / (D² + 3 D N)`` — which evaluates to the paper's
Table V values 42 / 84 / 167 / 328 for P = 4 / 8 / 16 / 32 at N = 4096 —
and ``Ccomp = 2 D² f_acc``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import ConfigError
from ..resources.fpga import ResourceVector
from ..types import RWRatio
from .base import AcceleratorConfig, AcceleratorModel

#: PEs per port-count unit, per side: the array is (16 P) x (16 P).
PE_SIDE_PER_P = 16

#: Calibrated LUTs per int8 MAC PE (core utilization 14 % at P=4 on the
#: XCVU37P, Table V).
LUTS_PER_PE = 44.56

#: FFs per PE (pipeline registers, weight register).
FFS_PER_PE = 64.0


@dataclass
class DataflowStats:
    """Traffic/operation counts of one functional dataflow run."""

    macs: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def operational_intensity(self) -> float:
        return 2.0 * self.macs / self.total_bytes if self.total_bytes else 0.0


class AcceleratorA(AcceleratorModel):
    """Analytical model of the systolic-array accelerator."""

    name = "accelerator-A"

    @property
    def array_dim(self) -> int:
        return PE_SIDE_PER_P * self.config.p

    @property
    def operational_intensity(self) -> float:
        d = self.array_dim
        n = self.config.matrix_n
        return 2.0 * d * d * n / (d * d + 3.0 * d * n)

    @property
    def compute_ceiling_gops(self) -> float:
        d = self.array_dim
        return 2.0 * d * d * self.config.accel_clock_hz / 1e9

    @property
    def rw_ratio(self) -> RWRatio:
        return RWRatio(2, 1)

    @property
    def core_resources(self) -> ResourceVector:
        pes = self.array_dim ** 2
        return ResourceVector(
            luts=int(round(LUTS_PER_PE * pes)),
            ffs=int(round(FFS_PER_PE * pes)),
            bram36=8 * self.config.p,
        )

    def cycle_estimate(self, bandwidth_gbps: float) -> float:
        """Cycles for one full N x N matmul at a memory bandwidth.

        Each tile pass needs ``N`` compute cycles and moves
        ``D² + 3 D N`` bytes; passes execute back to back, with the slower
        of compute and memory dominating.
        """
        if bandwidth_gbps <= 0:
            raise ConfigError("bandwidth must be positive")
        d = self.array_dim
        n = self.config.matrix_n
        passes = (n / d) ** 2
        bytes_per_pass = d * d + 3.0 * d * n
        mem_cycles = (bytes_per_pass * self.config.accel_clock_hz
                      / (bandwidth_gbps * 1e9))
        return passes * max(float(n), mem_cycles)


def systolic_matmul(
    a: np.ndarray,
    b: np.ndarray,
    tile: int,
) -> Tuple[np.ndarray, DataflowStats]:
    """Functional simulation of accelerator A's dataflow.

    Computes ``a @ b`` for int8 inputs with int32 accumulation using the
    exact tiling/residency scheme of the accelerator, counting external
    traffic.  The returned stats let tests verify the analytical OpI
    formula against counted bytes.
    """
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ConfigError("incompatible matrix shapes")
    if a.shape[0] % tile or a.shape[1] % tile or b.shape[1] % tile:
        raise ConfigError("matrix dimensions must be multiples of the tile")
    n_i, n_k = a.shape
    n_j = b.shape[1]
    a32 = a.astype(np.int32)
    b32 = b.astype(np.int32)
    c = np.zeros((n_i, n_j), dtype=np.int32)
    stats = DataflowStats()
    for i0 in range(0, n_i, tile):
        for k0 in range(0, n_k, tile):
            # Load the A tile into the PE array (resident weights).
            a_tile = a32[i0:i0 + tile, k0:k0 + tile]
            stats.bytes_read += tile * tile  # int8 elements
            # Stream B rows and the C partials.
            b_strip = b32[k0:k0 + tile, :]
            stats.bytes_read += tile * n_j          # B stream (int8)
            stats.bytes_read += tile * n_j          # C partial read-back
            c[i0:i0 + tile, :] += a_tile @ b_strip
            stats.bytes_written += tile * n_j       # C partial write
            stats.macs += tile * tile * n_j
    return c, stats
