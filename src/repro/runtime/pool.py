"""Supervised process-pool execution with crash recovery.

``concurrent.futures.ProcessPoolExecutor`` is all-or-nothing: one
OOM-killed worker raises :class:`BrokenProcessPool` out of ``pool.map``
and every other in-flight and queued task — hours of sweep work — is
gone.  :class:`SupervisedPool` replaces that with a dispatch loop built
on ``submit`` + bounded in-flight windows that

* enforces a per-task wall-clock **timeout** (a hung simulation cannot
  stall the whole sweep; the pool is rebuilt and the stuck task
  accounted),
* survives **worker death** (``BrokenProcessPool`` or a timeout kill):
  the pool is rebuilt with capped-exponential backoff and the tasks
  that were in flight are retried,
* quarantines **poison tasks**: a task in flight for ``max_crash_retries
  + 1`` pool deaths is retried once in an isolated single-task
  subprocess (so a crashy neighbour cannot defeat it) and, if it still
  fails, reported as a structured :class:`TaskFailure` instead of
  aborting the sweep — partial results with explicit holes, mirroring
  the NACK-and-degrade philosophy of :mod:`repro.faults`,
* supports **graceful interruption** via a ``should_stop`` predicate
  (wired to SIGINT/SIGTERM by :class:`repro.runtime.signals
  .GracefulShutdown`): dispatch stops, in-flight tasks drain against a
  deadline, and the never-started remainder is reported as ``pending``
  so a journaled run can resume exactly.

Everything lands in a :class:`SweepOutcome`: ordered results, the set of
holes, and the supervision accounting (retries, pool rebuilds,
quarantines).  Since simulations are deterministic, an *ordinary*
exception from the task function is reported immediately as a
``TaskFailure(kind="error")`` without retries — re-running a
deterministic failure buys nothing; retry is reserved for tasks lost to
worker death, which says nothing about the task itself.

Ordinary wall-clock reads below are supervision plumbing (timeouts,
backoff), not simulated behaviour — simulation results stay a pure
function of their configuration regardless of scheduling.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (Any, Callable, Deque, Dict, List, Optional, Sequence,
                    Set, Tuple)

from ..errors import SweepError

#: Environment marker set inside quarantine workers, so a task (or a
#: test) can tell it is running in the isolated retry.
ISOLATED_ENV = "REPRO_ISOLATED_TASK"


def _describe(item: Any, limit: int = 120) -> str:
    text = repr(item)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _mark_isolated() -> None:
    """Initializer of the quarantine pool (module-level: picklable)."""
    os.environ[ISOLATED_ENV] = "1"


@dataclass(frozen=True)
class TaskFailure:
    """One sweep point that permanently failed under supervision."""

    index: int
    """Position of the task in the submitted item sequence."""

    task: str
    """``repr`` of the item (truncated) — enough to re-run it by hand."""

    kind: str
    """``error`` (task function raised), ``timeout`` (exceeded the
    per-task wall-clock budget), ``crash`` (killed its worker), or
    ``poison`` (kept killing workers and failed the isolated retry)."""

    detail: str
    attempts: int = 1

    def __str__(self) -> str:
        return (f"task[{self.index}] {self.kind} after {self.attempts} "
                f"attempt(s): {self.detail} ({self.task})")


@dataclass
class SweepOutcome:
    """Everything a supervised sweep produced, holes included."""

    total: int
    results: List[Any] = field(default_factory=list)
    """Input-ordered; slots of failed/pending tasks hold ``None``.
    Check :attr:`failures`/:attr:`pending` before trusting a ``None``."""

    completed: List[int] = field(default_factory=list)
    failures: List[TaskFailure] = field(default_factory=list)
    pending: List[int] = field(default_factory=list)
    """Indices never (or not terminally) run — non-empty only when the
    sweep was interrupted; a resumed run re-executes exactly these."""

    retries: int = 0
    rebuilds: int = 0
    quarantined: int = 0
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures and not self.interrupted

    @property
    def holes(self) -> List[int]:
        return sorted(f.index for f in self.failures)

    def summary(self) -> str:
        bits = [f"{len(self.completed)}/{self.total} completed"]
        if self.failures:
            bits.append(f"{len(self.failures)} failed "
                        f"({', '.join(sorted({f.kind for f in self.failures}))})")
        if self.pending:
            bits.append(f"{len(self.pending)} pending")
        if self.retries:
            bits.append(f"{self.retries} retries")
        if self.rebuilds:
            bits.append(f"{self.rebuilds} pool rebuilds")
        if self.quarantined:
            bits.append(f"{self.quarantined} quarantined")
        if self.interrupted:
            bits.append("interrupted")
        return ", ".join(bits)

    def require_complete(self) -> "SweepOutcome":
        """Raise :class:`~repro.errors.SweepError` unless every task
        completed; the outcome rides on the exception so completed work
        is never lost to the raise."""
        if self.ok:
            return self
        lines = [f"sweep incomplete: {self.summary()}"]
        lines += [f"  {f}" for f in self.failures]
        raise SweepError("\n".join(lines), outcome=self)


class SupervisedPool:
    """Crash-supervised process-pool mapper (see module docstring).

    ``workers`` fixes both the pool size and the in-flight window: at
    most ``workers`` tasks are submitted at a time, so the per-task
    timeout clock starts ticking approximately when the task starts
    executing, and an interrupt never strands a deep submit queue.
    """

    def __init__(self, workers: int, *,
                 task_timeout: Optional[float] = None,
                 max_crash_retries: int = 2,
                 backoff_base: float = 0.1,
                 backoff_cap: float = 2.0,
                 quarantine: bool = True,
                 poll_interval: float = 0.05) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_crash_retries < 0:
            raise ValueError("max_crash_retries must be >= 0")
        self.workers = workers
        self.task_timeout = task_timeout
        self.max_crash_retries = max_crash_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.quarantine = quarantine
        self.poll_interval = poll_interval

    # -- pool lifecycle ------------------------------------------------------

    def _kill_pool(self, pool: Optional[ProcessPoolExecutor]) -> None:
        """Hard-stop a pool: terminate workers, discard the executor."""
        if pool is None:
            return
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.terminate()
            except OSError:  # pragma: no cover — already dead
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover — broken pools may raise
            pass

    def _run_isolated(self, fn: Callable[[Any], Any], item: Any,
                      ) -> Tuple[bool, Any]:
        """One isolated retry in a dedicated single-task pool.

        Returns ``(True, value)`` on success, ``(False, detail)`` on any
        failure (crash, timeout, or exception)."""
        pool = ProcessPoolExecutor(max_workers=1, initializer=_mark_isolated)
        try:
            future = pool.submit(fn, item)
            try:
                value = future.result(timeout=self.task_timeout)
            except BrokenProcessPool:
                return False, "crashed again in isolation"
            except FuturesTimeoutError:
                return False, (f"timed out again in isolation "
                               f"(> {self.task_timeout}s)")
            except Exception as exc:  # noqa: BLE001 — reported, not raised
                return False, f"raised in isolation: " \
                              f"{type(exc).__name__}: {exc}"
            return True, value
        finally:
            self._kill_pool(pool)

    # -- the supervised map --------------------------------------------------

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any], *,
            indices: Optional[Sequence[int]] = None,
            results: Optional[List[Any]] = None,
            on_dispatch: Optional[Callable[[int], None]] = None,
            on_result: Optional[Callable[[int, Any], None]] = None,
            on_failure: Optional[Callable[[TaskFailure], None]] = None,
            should_stop: Optional[Callable[[], bool]] = None,
            drain_timeout: float = 30.0) -> SweepOutcome:
        """Map ``fn`` over ``items`` under supervision.

        ``indices`` restricts execution to a subset of positions (the
        cache/journal layers skip already-satisfied points); ``results``
        seeds the outcome's result list (must have ``len(items)`` slots).
        ``on_dispatch(index)`` fires on first dispatch of each task (the
        journal's ``start`` hook); ``on_result(index, value)`` fires the
        moment each task completes — the streaming-checkpoint hook
        (``cache.put``, journal append) — and ``on_failure(failure)``
        when a task is given up on.
        ``should_stop()`` polled between dispatches requests a graceful
        stop: no new dispatch, in-flight drained for ``drain_timeout``
        seconds, remainder reported as ``pending``.
        """
        items = list(items)
        todo = list(range(len(items))) if indices is None else list(indices)
        outcome = SweepOutcome(
            total=len(todo),
            results=(list(results) if results is not None
                     else [None] * len(items)))
        if len(outcome.results) != len(items):
            raise ValueError("results seed must have one slot per item")

        queue: Deque[int] = deque(todo)
        dispatched: Set[int] = set()
        crashes: Dict[int, int] = {}     # index -> pool-fatal attempts
        fail_kind: Dict[int, str] = {}   # index -> "crash" | "timeout"
        pool: Optional[ProcessPoolExecutor] = None
        inflight: Dict[Any, int] = {}    # Future -> index
        deadlines: Dict[Any, float] = {}  # Future -> monotonic deadline
        stopping = False

        def record_result(i: int, value: Any) -> None:
            outcome.results[i] = value
            outcome.completed.append(i)
            if on_result is not None:
                on_result(i, value)

        def record_failure(i: int, kind: str, detail: str,
                           attempts: int) -> None:
            failure = TaskFailure(
                index=i, task=_describe(items[i]), kind=kind,
                detail=detail, attempts=attempts)
            outcome.failures.append(failure)
            if on_failure is not None:
                on_failure(failure)

        def handle_suspect(i: int) -> None:
            """A task whose crash budget is exhausted: isolate or fail."""
            attempts = crashes.get(i, 0)
            kind = fail_kind.get(i, "crash")
            history = (f"lost to {attempts} worker death(s)"
                       if kind == "crash"
                       else f"exceeded the {self.task_timeout}s task "
                            f"timeout {attempts} time(s)")
            if self.quarantine:
                outcome.quarantined += 1
                outcome.retries += 1
                ok, payload = self._run_isolated(fn, items[i])
                if ok:
                    record_result(i, payload)
                    return
                record_failure(i, "poison", f"{history}; {payload}",
                               attempts=attempts + 1)
            else:
                record_failure(i, kind, history, attempts=attempts)

        def recover_lost(offenders: Sequence[int]) -> None:
            """Pool died (crash or timeout kill): requeue every in-flight
            task, charging the crash budget of the ``offenders``."""
            nonlocal pool
            lost = sorted(inflight.values())
            inflight.clear()
            deadlines.clear()
            self._kill_pool(pool)
            pool = None
            outcome.rebuilds += 1
            for i in offenders:
                crashes[i] = crashes.get(i, 0) + 1
            outcome.retries += len(lost)
            # Requeue at the front so recovery precedes fresh dispatch;
            # suspects whose budget is exhausted are intercepted at
            # dispatch time by handle_suspect().
            for i in reversed(lost):
                queue.appendleft(i)
            backoff = min(self.backoff_cap,
                          self.backoff_base * (2 ** (outcome.rebuilds - 1)))
            if backoff > 0:
                time.sleep(backoff)

        drain_deadline: Optional[float] = None
        try:
            while queue or inflight:
                if (should_stop is not None and should_stop()
                        and not stopping):
                    stopping = True
                    outcome.interrupted = True
                    drain_deadline = (time.monotonic()  # det-lint: allow
                                      + drain_timeout)
                # -- dispatch ------------------------------------------------
                while (queue and len(inflight) < self.workers
                       and not stopping):
                    i = queue.popleft()
                    if crashes.get(i, 0) > self.max_crash_retries:
                        handle_suspect(i)
                        continue
                    if pool is None:
                        pool = ProcessPoolExecutor(max_workers=self.workers)
                    if on_dispatch is not None and i not in dispatched:
                        dispatched.add(i)
                        on_dispatch(i)
                    future = pool.submit(fn, items[i])
                    inflight[future] = i
                    if self.task_timeout is not None:
                        deadlines[future] = (
                            time.monotonic()  # det-lint: allow
                            + self.task_timeout)
                if not inflight:
                    if stopping:
                        break
                    continue
                # -- wait ----------------------------------------------------
                now = time.monotonic()  # det-lint: allow
                timeout = self.poll_interval
                if deadlines:
                    timeout = min(timeout,
                                  max(0.0, min(deadlines.values()) - now))
                if drain_deadline is not None:
                    timeout = min(timeout,
                                  max(0.0, drain_deadline - now))
                done, _ = wait(set(inflight), timeout=timeout,
                               return_when=FIRST_COMPLETED)
                # -- completions ---------------------------------------------
                crashed: List[int] = []
                for future in done:
                    i = inflight.pop(future)
                    deadlines.pop(future, None)
                    try:
                        value = future.result()
                    except BrokenProcessPool:
                        crashed.append(i)
                    except Exception as exc:  # noqa: BLE001 — a finding
                        record_failure(
                            i, "error", f"{type(exc).__name__}: {exc}",
                            attempts=crashes.get(i, 0) + 1)
                    else:
                        record_result(i, value)
                if crashed:
                    # Worker death takes every in-flight task with it;
                    # all of them were at the scene, all are suspects.
                    suspects = sorted(crashed) + sorted(inflight.values())
                    for i in suspects:
                        fail_kind.setdefault(i, "crash")
                    for i in reversed(sorted(crashed)):
                        queue.appendleft(i)
                    recover_lost(suspects)
                    outcome.retries += len(crashed)
                    continue
                # -- timeouts ------------------------------------------------
                now = time.monotonic()  # det-lint: allow
                expired = [f for f, dl in deadlines.items() if dl <= now]
                if expired:
                    offenders = sorted(inflight[f] for f in expired)
                    for i in offenders:
                        fail_kind[i] = "timeout"
                    for i in reversed(offenders):
                        queue.appendleft(i)
                    for f in expired:
                        inflight.pop(f, None)
                        deadlines.pop(f, None)
                    recover_lost(offenders)
                    outcome.retries += len(offenders)
                    continue
                # -- drain deadline ------------------------------------------
                if (drain_deadline is not None
                        and time.monotonic() > drain_deadline):  # det-lint: allow
                    break
            # Anything still queued or in flight after an interrupt is
            # pending work for a resumed run, not a failure.
            if stopping:
                leftovers = sorted(set(queue) | set(inflight.values()))
                outcome.pending = [i for i in leftovers
                                   if i not in outcome.completed]
        finally:
            self._kill_pool(pool)
        outcome.pending.extend(
            i for i in todo
            if i not in outcome.completed
            and i not in {f.index for f in outcome.failures}
            and i not in outcome.pending)
        outcome.pending.sort()
        return outcome
