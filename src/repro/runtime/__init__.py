"""Crash-safe execution runtime for long-running harness work.

The simulator itself became fault-tolerant in :mod:`repro.faults`; this
package makes the *harness that runs it* fault-tolerant:

* :mod:`repro.runtime.pool` — :class:`SupervisedPool`, a process pool
  with per-task timeouts, ``BrokenProcessPool`` recovery, retry with
  capped exponential backoff, poison-task quarantine, and structured
  :class:`TaskFailure`/:class:`SweepOutcome` reporting,
* :mod:`repro.runtime.journal` — :class:`RunJournal`, a durable
  append-only JSONL progress record enabling exact resume of
  interrupted sweeps and fuzz campaigns,
* :mod:`repro.runtime.signals` — :class:`GracefulShutdown`, two-stage
  SIGINT/SIGTERM handling for clean checkpoint-and-exit.

The experiment sweeps (:func:`repro.experiments.parallel
.parallel_sweep`), the chaos suite, and ``repro-hbm fuzz`` all run on
this substrate.

An *active journal* can be installed process-wide (the CLI does this
for ``--journal``/``--resume`` on sweep commands) so deeply nested
sweep helpers inherit journaling without threading a parameter through
every experiment module.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .journal import JOURNAL_VERSION, JournalState, RunJournal, load_journal
from .pool import ISOLATED_ENV, SupervisedPool, SweepOutcome, TaskFailure
from .signals import GracefulShutdown

__all__ = [
    "JOURNAL_VERSION", "JournalState", "RunJournal", "load_journal",
    "ISOLATED_ENV", "SupervisedPool", "SweepOutcome", "TaskFailure",
    "GracefulShutdown",
    "set_active_journal", "get_active_journal", "clear_active_journal",
    "set_active_shutdown", "get_active_shutdown",
]

#: (journal, prior state) installed by the CLI for sweep commands.
_ACTIVE_JOURNAL: Optional[RunJournal] = None
_ACTIVE_STATE: Optional[JournalState] = None


def set_active_journal(journal: Optional[RunJournal],
                       state: Optional[JournalState] = None) -> None:
    """Install a process-wide journal that journal-aware helpers (the
    sweep layer) pick up when no explicit journal is passed."""
    global _ACTIVE_JOURNAL, _ACTIVE_STATE
    _ACTIVE_JOURNAL = journal
    _ACTIVE_STATE = state


def get_active_journal() -> Tuple[Optional[RunJournal],
                                  Optional[JournalState]]:
    """The installed ``(journal, prior state)`` pair, or ``(None, None)``."""
    return _ACTIVE_JOURNAL, _ACTIVE_STATE


def clear_active_journal() -> None:
    """Uninstall the process-wide journal (idempotent)."""
    set_active_journal(None, None)


#: Process-wide shutdown flag (a GracefulShutdown installed by the CLI)
#: that journal-aware sweep helpers poll when no explicit ``should_stop``
#: predicate is passed.
_ACTIVE_SHUTDOWN: Optional[GracefulShutdown] = None


def set_active_shutdown(shutdown: Optional[GracefulShutdown]) -> None:
    """Install (or with ``None`` uninstall) the process-wide stop flag."""
    global _ACTIVE_SHUTDOWN
    _ACTIVE_SHUTDOWN = shutdown


def get_active_shutdown() -> Optional[GracefulShutdown]:
    """The installed stop flag, or ``None`` when not under the CLI."""
    return _ACTIVE_SHUTDOWN
