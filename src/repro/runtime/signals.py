"""Graceful-shutdown plumbing for long-running harness commands.

:class:`GracefulShutdown` is a context manager that converts the first
SIGINT/SIGTERM into a *request* — a flag the supervised pool and the
fuzz campaign loop poll between units of work — instead of an immediate
``KeyboardInterrupt`` mid-simulation.  The run then stops dispatching,
drains what is in flight, flushes its journal, and the CLI prints the
exact resume command.  A second SIGINT means "no really, now": the
original handler (normally ``KeyboardInterrupt``) is re-raised so an
operator is never trapped behind a stuck drain.

Signal handlers can only be installed from the main thread; elsewhere
(test runners, embedded use) the context degrades to a pure flag that
:meth:`GracefulShutdown.request` can still set programmatically.
"""

from __future__ import annotations

import signal
from types import FrameType
from typing import Any, Callable, Dict, Optional, Tuple


class GracefulShutdown:
    """Two-stage SIGINT/SIGTERM handler (see module docstring)."""

    def __init__(self,
                 signals: Tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
                 on_request: Optional[Callable[[], None]] = None) -> None:
        self._signals = signals
        self._on_request = on_request
        self._requested = False
        self._previous: Dict[int, Any] = {}
        self._installed = False

    # -- flag interface (what the work loops see) ----------------------------

    @property
    def requested(self) -> bool:
        return self._requested

    def __call__(self) -> bool:
        """Usable directly as a ``should_stop`` predicate."""
        return self._requested

    def request(self) -> None:
        """Programmatic shutdown request (tests, deadline logic)."""
        self._requested = True
        if self._on_request is not None:
            self._on_request()

    # -- signal plumbing -----------------------------------------------------

    def _handle(self, signum: int, frame: Optional[FrameType]) -> None:
        if self._requested:
            # Second signal: restore and re-deliver so the default
            # behaviour (KeyboardInterrupt / termination) wins.
            self._restore()
            signal.raise_signal(signum)
            return
        self.request()

    def _restore(self) -> None:
        if not self._installed:
            return
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._previous.clear()
        self._installed = False

    def __enter__(self) -> "GracefulShutdown":
        try:
            for signum in self._signals:
                self._previous[signum] = signal.signal(signum, self._handle)
            self._installed = True
        except ValueError:
            # Not the main thread: run as a plain programmatic flag.
            self._previous.clear()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._restore()
