"""Durable, append-only run journal (crash-safe progress record).

A :class:`RunJournal` is a JSONL file with one self-contained record per
line.  Long-running harnesses (the supervised sweeps of
:mod:`repro.runtime.pool`, the conformance fuzz campaigns of
:mod:`repro.conformance.driver`) append a record as each unit of work
starts and finishes; after a crash, an OOM kill, or an operator SIGINT,
:func:`load_journal` recovers exactly which tasks completed (and their
recorded payloads) so a resumed run re-executes only the unfinished
remainder.

Durability contract
-------------------
Every record is written as one complete line, flushed, and ``fsync``'d
before :meth:`RunJournal.record` returns: a task is either durably
journaled or not journaled at all.  A crash mid-write can leave at most
one torn trailing line, which :func:`load_journal` detects and drops (a
torn *non*-trailing line would indicate external corruption and raises).

Schema versioning
-----------------
The first line of every journal is a header record carrying
:data:`JOURNAL_VERSION` plus caller-supplied ``meta`` (campaign seed,
budget, :data:`~repro.sim.cache.MODEL_VERSION`, ...).  Like
``MODEL_VERSION`` for cached simulation results, ``JOURNAL_VERSION`` is
bumped on any incompatible change to the record format so a resume can
never silently misread an old journal.  Callers should additionally
fold their own compatibility keys into ``meta`` and validate them on
resume (the fuzz driver checks campaign seed and model version).

Record kinds (the ``type`` field):

``journal``   header; first line, carries ``version`` + ``meta``
``resume``    appended every time an existing journal is reopened
``start``     task dispatched (``task`` id)
``finish``    task completed (``task`` id, optional ``payload`` object)
``failure``   task failed permanently (``task`` id, ``failure`` object)

Task ids are caller-chosen strings; the harnesses use content-addressed
digests (:func:`~repro.sim.cache.sweep_key` digests for sweep points,
:func:`~repro.conformance.driver.case_digest` for fuzz cases) so an id
names the *work*, not its position in some mutable list.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Optional, Set

from ..errors import ConfigError

#: Journal file-format version; bump on incompatible record changes
#: (the resume path refuses to read a journal from a different version).
JOURNAL_VERSION = 1


@dataclass
class JournalState:
    """Everything :func:`load_journal` recovered from one journal file."""

    path: str
    version: int = JOURNAL_VERSION
    meta: Dict[str, Any] = field(default_factory=dict)
    #: task id -> the ``payload`` object its ``finish`` record carried.
    finished: Dict[str, Any] = field(default_factory=dict)
    #: task id -> the ``failure`` object of a permanent failure record.
    failed: Dict[str, Any] = field(default_factory=dict)
    #: ids with a ``start`` but no terminal record — in flight at the
    #: moment the journaled run died; a resume re-executes them.
    started: Set[str] = field(default_factory=set)
    #: total records read (headers and resume markers included).
    records: int = 0
    #: number of times the journal was reopened for append.
    resumes: int = 0

    def is_finished(self, task_id: str) -> bool:
        return task_id in self.finished

    def payload(self, task_id: str) -> Any:
        return self.finished.get(task_id)


def load_journal(path: str) -> JournalState:
    """Parse a journal back into a :class:`JournalState`.

    Tolerates exactly one torn (incomplete) final line — the signature
    of a crash mid-append; any other unparseable line raises
    :class:`~repro.errors.ConfigError`, as does a missing header or a
    :data:`JOURNAL_VERSION` mismatch.
    """
    state = JournalState(path=path)
    header_seen = False
    try:
        with open(path, "r", encoding="utf-8") as fh:
            raw = fh.read()
    except OSError as exc:
        raise ConfigError(f"cannot read journal {path!r}: {exc}") from exc
    lines = raw.split("\n")
    # A well-formed journal ends with "\n", so the final split element is
    # empty; anything else is a torn trailing record from a crash.
    torn = lines[-1]
    lines = lines[:-1]
    if torn:
        warnings.warn(
            f"journal {path} ends in a torn record (crash mid-append); "
            f"dropping it — the task it described will simply re-run",
            RuntimeWarning, stacklevel=2)
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except ValueError as exc:
            raise ConfigError(
                f"journal {path} line {lineno} is not valid JSON "
                f"({exc}); the file is corrupt beyond a torn tail") from exc
        state.records += 1
        kind = rec.get("type")
        if kind == "journal":
            version = rec.get("version")
            if version != JOURNAL_VERSION:
                raise ConfigError(
                    f"journal {path} has version {version!r}; this build "
                    f"reads version {JOURNAL_VERSION} — re-run without "
                    f"--resume to start a fresh journal")
            state.version = int(version)
            state.meta = dict(rec.get("meta") or {})
            header_seen = True
        elif kind == "resume":
            state.resumes += 1
        elif kind == "start":
            state.started.add(str(rec["task"]))
        elif kind == "finish":
            task = str(rec["task"])
            state.finished[task] = rec.get("payload")
            state.started.discard(task)
            state.failed.pop(task, None)
        elif kind == "failure":
            task = str(rec["task"])
            state.failed[task] = rec.get("failure")
            state.started.discard(task)
        else:
            raise ConfigError(
                f"journal {path} line {lineno}: unknown record type "
                f"{kind!r}")
    if state.records == 0:
        raise ConfigError(f"journal {path} is empty")
    if not header_seen:
        raise ConfigError(f"journal {path} has no header record")
    return state


class RunJournal:
    """Append-only writer half of the journal (see module docstring).

    Open fresh with ``RunJournal(path, meta={...})`` (truncates) or
    continue an interrupted run with ``RunJournal(path, resume=True)``
    (appends a ``resume`` marker; the caller loads prior progress with
    :func:`load_journal` first).  Usable as a context manager.
    """

    def __init__(self, path: str, *, meta: Optional[Dict[str, Any]] = None,
                 resume: bool = False) -> None:
        self.path = path
        self._fh: Optional[IO[str]] = None
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        if resume and not os.path.exists(path):
            raise ConfigError(
                f"cannot resume: journal {path!r} does not exist")
        self._fh = open(path, "a" if resume else "w", encoding="utf-8")
        if resume:
            self.record("resume")
        else:
            self.record("journal", version=JOURNAL_VERSION,
                        meta=dict(meta or {}))

    # -- record writing ------------------------------------------------------

    def record(self, type_: str, **fields: Any) -> None:
        """Append one record durably (write + flush + fsync)."""
        if self._fh is None:
            raise ConfigError(f"journal {self.path} is closed")
        line = json.dumps({"type": type_, **fields}, sort_keys=True)
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def start(self, task_id: str) -> None:
        self.record("start", task=task_id)

    def finish(self, task_id: str, payload: Any = None) -> None:
        self.record("finish", task=task_id, payload=payload)

    def failure(self, task_id: str, failure: Dict[str, Any]) -> None:
        self.record("failure", task=task_id, failure=failure)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
