"""One sampled conformance-fuzz configuration, fully materialized.

A :class:`FuzzCase` binds a :class:`~repro.conformance.space.ParamSpace`
sample to everything the driver needs to run it: the platform variant,
the fabric, the traffic sources, the armed :class:`~repro.sim.SimConfig`
(watchdogs + sanitizer), and the :class:`~repro.faults.FaultPlan` the
``fault`` dimension names.  Cases serialize to JSON (the corpus format)
and rebuild bit-exactly: ``FuzzCase.from_dict(case.to_dict())`` yields a
case whose derived ``SimConfig`` and ``FaultPlan`` compare equal to the
originals — the dump embeds both derivations and cross-checks them on
load, so a corpus entry can never silently drift from the run it
minimized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from ..errors import ConfigError
from ..params import HbmPlatform
from ..sim import SimConfig
from ..faults.plan import FaultEvent, FaultKind, FaultPlan
from ..traffic import make_pattern_sources
from ..types import FabricKind, Pattern, RWRatio
from .. import make_fabric

#: Corpus/file-format version; bump on incompatible changes.
SCHEMA_VERSION = 1

#: Platform variants the ``platform`` dimension can select.  Geometry is
#: itself a fuzz axis: the 2-switch (8 PCH / 8 masters) variant keeps
#: runs cheap, the 4-switch one exercises longer lateral chains and a
#: masters/PCH ratio the hand-written grids never vary.
PLATFORMS: Dict[str, HbmPlatform] = {
    "small": HbmPlatform(num_pch=8, pch_capacity=64 * 1024 * 1024),
    "wide": HbmPlatform(num_pch=16, pch_capacity=64 * 1024 * 1024),
}

#: Fault-axis values: plan builders scaled to the case's horizon, in the
#: style of the chaos scenario library but targeted at fuzz-sized runs.
#: ``pch 1`` exists on every platform variant and is owned by master 1
#: under the single-channel patterns.
FAULT_KEYS = ("none", "offline", "offline-strict", "slow", "stall",
              "corrupt", "multi")


def _onset(cycles: int) -> int:
    return max(1, cycles // 3)


def build_fault_plan(key: str, cycles: int, seed: int) -> FaultPlan:
    """The fault plan a ``fault`` dimension value denotes (scaled to the
    run length, seeded for the ECC counter hash)."""
    onset = _onset(cycles)
    quarter = max(1, cycles // 4)
    if key == "none":
        return FaultPlan(seed=seed)
    if key == "offline":
        return FaultPlan([FaultEvent(FaultKind.PCH_OFFLINE, at=onset, pch=1)],
                         seed=seed, degrade=True)
    if key == "offline-strict":
        return FaultPlan([FaultEvent(FaultKind.PCH_OFFLINE, at=onset, pch=1)],
                         seed=seed, degrade=False)
    if key == "slow":
        return FaultPlan([FaultEvent(FaultKind.PCH_SLOW, at=onset, pch=1,
                                     duration=quarter, factor=3.0)],
                         seed=seed)
    if key == "stall":
        return FaultPlan([FaultEvent(FaultKind.LINK_STALL, at=onset,
                                     cut=None, duration=quarter)],
                         seed=seed)
    if key == "corrupt":
        return FaultPlan([FaultEvent(FaultKind.DATA_CORRUPT, at=onset,
                                     pch=None, duration=quarter, rate=0.05)],
                         seed=seed, dbit_fraction=0.1)
    if key == "multi":
        # The corruption window outlives the stall: a fully stalled
        # fabric transfers no beats, so corruption overlapping only the
        # stall would (correctly) produce almost no ECC events.
        return FaultPlan(
            [FaultEvent(FaultKind.LINK_STALL, at=onset, duration=quarter),
             FaultEvent(FaultKind.PCH_SLOW, at=onset + quarter // 2, pch=2,
                        duration=quarter, factor=2.5),
             FaultEvent(FaultKind.DATA_CORRUPT, at=onset, pch=None,
                        duration=2 * quarter, rate=0.02)],
            seed=seed, dbit_fraction=0.2)
    raise ConfigError(f"unknown fault key {key!r}; choose from {FAULT_KEYS}")


@dataclass(frozen=True)
class FuzzCase:
    """One fully specified conformance run."""

    fabric: FabricKind
    pattern: Pattern
    rw: RWRatio
    burst_len: int
    outstanding: int
    cycles: int
    warmup_div: int
    """Warmup is ``cycles // warmup_div`` (a ratio fuzzes cleanly across
    the cycles axis; an absolute value would not)."""

    fault: str
    platform_key: str
    seed: int
    """Traffic seed (and the fault plan's ECC hash seed)."""

    def __post_init__(self) -> None:
        if self.platform_key not in PLATFORMS:
            raise ConfigError(f"unknown platform {self.platform_key!r}")
        if self.fault not in FAULT_KEYS:
            raise ConfigError(f"unknown fault key {self.fault!r}")
        if self.warmup_div < 2:
            raise ConfigError("warmup_div must be >= 2")

    # -- derived run inputs --------------------------------------------------

    @property
    def platform(self) -> HbmPlatform:
        return PLATFORMS[self.platform_key]

    @property
    def warmup(self) -> int:
        return self.cycles // self.warmup_div

    @property
    def guard_cycles(self) -> int:
        """Watchdog deadline: generous enough that every *recoverable*
        disturbance in the fault library (3x slowdowns, capped-backoff
        retries, quarter-run stalls) clears it, while a genuinely dead
        channel with degradation off still trips it — the must-abort
        oracle depends on that separation."""
        return 4 * self.cycles + 4_000

    @property
    def drain_budget(self) -> int:
        """Cycle budget for post-run drain; exceeding it is a
        termination failure (lost transaction or livelock)."""
        return 40 * self.cycles + 60_000

    def sim_config(self, engine: str = "fast") -> SimConfig:
        return SimConfig(
            cycles=self.cycles,
            warmup=self.warmup,
            outstanding=self.outstanding,
            engine=engine,
            sanitize=True,
            txn_timeout_cycles=self.guard_cycles,
            progress_timeout_cycles=self.guard_cycles,
        )

    def fault_plan(self) -> FaultPlan:
        return build_fault_plan(self.fault, self.cycles, self.seed)

    def build(self) -> Tuple[Any, List[Any]]:
        """Fresh (fabric, sources) for one run of this case."""
        platform = self.platform
        fab = make_fabric(self.fabric, platform)
        sources = make_pattern_sources(
            self.pattern, platform, burst_len=self.burst_len, rw=self.rw,
            address_map=fab.address_map, seed=self.seed)
        return fab, sources

    def label(self) -> str:
        return (f"{self.fabric.value}/{self.pattern.name}"
                f"/{self.rw.reads}:{self.rw.writes}/bl{self.burst_len}"
                f"/o{self.outstanding}/c{self.cycles}w{self.warmup_div}"
                f"/{self.fault}/{self.platform_key}/s{self.seed}")

    # -- space binding -------------------------------------------------------

    @classmethod
    def from_sample(cls, sample: Mapping[str, Any], seed: int = 0,
                    ) -> "FuzzCase":
        """Bind one :class:`ParamSpace` sample (string-valued, as the
        space declares it) to a runnable case."""
        r, w = str(sample["rw"]).split(":")
        return cls(
            fabric=FabricKind(sample["fabric"]),
            pattern=Pattern[str(sample["pattern"])],
            rw=RWRatio(int(r), int(w)),
            burst_len=int(sample["burst_len"]),
            outstanding=int(sample["outstanding"]),
            cycles=int(sample["cycles"]),
            warmup_div=int(sample["warmup_div"]),
            fault=str(sample["fault"]),
            platform_key=str(sample["platform"]),
            seed=seed,
        )

    def to_sample(self) -> Dict[str, Any]:
        """The space-shaped dict this case came from (used by the
        shrinker to walk dimensions)."""
        return {
            "fabric": self.fabric.value,
            "pattern": self.pattern.name,
            "rw": f"{self.rw.reads}:{self.rw.writes}",
            "burst_len": self.burst_len,
            "outstanding": self.outstanding,
            "cycles": self.cycles,
            "warmup_div": self.warmup_div,
            "fault": self.fault,
            "platform": self.platform_key,
        }

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Corpus JSON form.  Besides the sample itself the dump embeds
        the *derived* ``SimConfig`` and ``FaultPlan`` so a loaded entry
        can prove it still denotes the same run (cf. :meth:`from_dict`)."""
        return {
            "schema": SCHEMA_VERSION,
            "sample": self.to_sample(),
            "seed": self.seed,
            "sim_config": self.sim_config().to_dict(),
            "fault_plan": self.fault_plan().to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FuzzCase":
        if data.get("schema") != SCHEMA_VERSION:
            raise ConfigError(
                f"corpus schema {data.get('schema')!r} unsupported "
                f"(expected {SCHEMA_VERSION})")
        case = cls.from_sample(data["sample"], seed=int(data.get("seed", 0)))
        # Cross-check the embedded derivations: if the builders changed
        # since the entry was written, fail loudly instead of silently
        # replaying a different scenario than the one minimized.
        if "sim_config" in data:
            stored = SimConfig.from_dict(data["sim_config"])
            if stored != case.sim_config():
                raise ConfigError(
                    "corpus entry's stored SimConfig no longer matches its "
                    "rebuilt derivation — the case builders changed; "
                    "re-minimize or migrate the entry")
        if "fault_plan" in data:
            stored_plan = FaultPlan.from_dict(data["fault_plan"])
            if stored_plan != case.fault_plan():
                raise ConfigError(
                    "corpus entry's stored FaultPlan no longer matches its "
                    "rebuilt derivation — the fault library changed; "
                    "re-minimize or migrate the entry")
        return case
