"""The analytical reference model of the conformance fuzzer.

Model-based testing needs an oracle that is *independent* of the engine
under test.  A second cycle simulator would just share the bugs; instead
the reference model predicts **coarse invariants** any correct run of a
sampled config must satisfy, from closed-form reasoning alone:

* **Physics** — measured-window DRAM traffic cannot exceed one beat per
  pseudo-channel per fabric cycle, and per-direction traffic cannot
  exceed what the accelerator-clocked master ports can supply.  These
  are exact bounds with no modeling slack.
* **Roofline** — fault-free throughput must stay below the
  :class:`~repro.core.estimator.BandwidthEstimator` ceiling (the memory
  roof of the paper's roofline methodology) times a small tolerance.
  The estimator derates for refresh and turnaround but not for
  contention, so the cycle simulator sitting *above* it means double
  counting somewhere in the model.
* **Conservation** — after the post-run drain every attempt is
  accounted for: ``issued + retries == completed + nacks`` (fresh
  issues plus re-issues each end in exactly one success or one failed
  completion) and ``nacks == retries + unrecoverable`` (every failure
  either re-issues or abandons), with zero recovery traffic on
  fault-free runs.
* **Fault response** — the sampled fault plan implies observable
  behaviour: a degraded channel loss must surface NACKs (when the
  pattern provably routes traffic at the dead channel) and leave the
  channel in ``dead_pchs``; an un-degraded loss must trip a watchdog
  (when traffic provably reaches it) rather than hang or silently pass;
  a device-wide corruption window over read traffic must produce ECC
  events.
* **Termination** — the run completes and drains inside an explicit
  cycle budget; anything else is a lost transaction or livelock.

Every prediction errs on the side of *certainty*: the model only claims
what must hold for **every** correct engine, so a violation is a real
finding, never oracle noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.estimator import BandwidthEstimator, EstimateInputs
from ..faults.plan import FaultKind, FaultPlan
from ..params import gbps
from ..sim.stats import SimReport
from ..types import FabricKind, Pattern
from .case import FuzzCase

#: Tolerance on the estimator-based roofline ceiling.  The estimator is
#: a deration model, not a cycle model: boundary effects (transactions
#: counted whole at the window edges, integer pacing) let a correct run
#: sit a few percent above it on short horizons.
ROOFLINE_MARGIN = 1.15
ROOFLINE_SLACK_GBPS = 1.0


@dataclass(frozen=True)
class Prediction:
    """What the reference model claims about one case's outcome."""

    #: Hard physical ceiling on measured-window throughput (GB/s).
    physics_gbps: float
    #: Per-direction port-supply ceiling (GB/s); read and write each.
    port_dir_gbps: float
    #: Roofline (estimator) ceiling incl. margin; ``None`` when the run
    #: is faulted (faults only lower throughput, but the margin math is
    #: only claimed for clean runs).
    roofline_gbps: Optional[float]
    #: Channels that must be dead at end of run (completed runs only).
    dead_pchs: Tuple[int, ...]
    #: NACKs must be observed (pattern provably hits a lost channel).
    expect_nacks: bool
    #: ECC events (corrected + uncorrectable) must be observed.
    expect_ecc: bool
    #: A FaultError abort is an acceptable outcome.
    may_abort: bool
    #: A FaultError abort is the *only* acceptable outcome.
    must_abort: bool
    #: If no recovery traffic can exist, these must all be zero.
    fault_free: bool
    #: Drain must finish within this many cycles.
    drain_budget: int
    notes: Tuple[str, ...] = field(default_factory=tuple)


def _targets_pch(case: FuzzCase, pch: int) -> bool:
    """Whether the case's traffic *provably* keeps hitting ``pch``.

    Single-channel patterns pin master ``m`` to PCH ``m`` (one master
    per channel on both fuzz platforms), so channel ``pch`` sees a
    steady stream iff a master with that index exists.  Device-wide
    random traffic hits every channel with near-certainty over thousands
    of transactions.  Cross-channel *strided* traffic under the vendor's
    contiguous map concentrates on a data-dependent hot-spot — no claim.
    """
    platform = case.platform
    if case.pattern.is_single_channel:
        return pch < platform.num_masters and pch < platform.num_pch
    if case.pattern is Pattern.CCRA:
        return pch < platform.num_pch
    return False


def _nacks_certain(case: FuzzCase, pch: int) -> bool:
    """Whether a *degraded* loss of ``pch`` must surface NACKs.

    Degradation remaps all traffic issued after the fault, so the only
    guaranteed NACK source is work queued for the dead channel at the
    onset instant.  That is provable only when the channel's feed is
    pinned and saturated: a single-channel pattern (master ``pch``
    streams at its own channel forever), enough credits that the issue
    pipeline never runs dry (DRAM round trips exceed the pacing interval
    several times over at depth >= 8), and a contended fabric — the
    ideal crossbar's service time can beat the credit loop, leaving
    in-flight queues legitimately empty at any given cycle.
    """
    return (case.pattern.is_single_channel
            and _targets_pch(case, pch)
            and case.outstanding >= 8
            and case.fabric is not FabricKind.IDEAL)


def _unstalled_span(start: int, end: int,
                    stalls: List[Tuple[int, int]]) -> int:
    """Length of ``[start, end)`` not covered by any stall interval."""
    uncovered = end - start
    for s, e in sorted(stalls):
        lo, hi = max(start, s), min(end, e)
        if hi > lo:
            uncovered -= hi - lo
    return uncovered


def predict(case: FuzzCase) -> Prediction:
    """Run the reference model over one sampled configuration."""
    platform = case.platform
    plan = case.fault_plan()
    measured = case.cycles - case.warmup
    notes: List[str] = []

    # -- physics: one beat per PCH per fabric cycle, shared by both
    # directions at the DRAM; per direction, the accelerator-clocked
    # ports bound the supply.
    physics_gbps = gbps(platform.num_pch * platform.bytes_per_beat
                        * platform.fabric_clock_hz)
    port_dir_gbps = gbps(platform.num_masters * platform.bytes_per_beat
                         * platform.accel_clock_hz)

    # -- roofline ceiling (clean runs only).
    roofline: Optional[float] = None
    if not plan.events:
        est = BandwidthEstimator(platform).estimate(EstimateInputs(
            fabric=case.fabric,
            pattern=case.pattern,
            rw=case.rw,
            burst_len=case.burst_len,
            outstanding=case.outstanding,
        ))
        ceiling = est.total_gbps
        if (case.fabric is FabricKind.XLNX and case.pattern is Pattern.CCS
                and not (case.rw.read_only or case.rw.write_only)):
            # The estimator's single-hot-spot assumption (Nch_eff = 1
            # for contiguous cross-channel strided data) undercounts the
            # simulator's CCS placement: reads and writes stream through
            # *disjoint halves* of the space, i.e. two simultaneous
            # hot-spot channels under mixed traffic.  The oracle claims
            # an upper bound, so it takes the two-channel ceiling.
            ceiling *= 2.0
            notes.append("xlnx/CCS mixed: two disjoint hot-spots, "
                         "ceiling doubled")
        roofline = ROOFLINE_MARGIN * ceiling + ROOFLINE_SLACK_GBPS
        notes.append(f"estimator ceiling {est.total_gbps:.1f} GB/s "
                     f"({est.bottleneck})")

    # -- fault response.
    offline = [e for e in plan.events
               if e.kind is FaultKind.PCH_OFFLINE and e.at < case.cycles]
    corrupt = [e for e in plan.events
               if e.kind is FaultKind.DATA_CORRUPT and e.at < case.cycles]
    dead = tuple(e.pch for e in offline)
    hits_dead = any(_targets_pch(case, e.pch) for e in offline)

    must_abort = bool(offline) and not plan.degrade and hits_dead
    may_abort = bool(offline) and not plan.degrade
    expect_nacks = (bool(offline) and plan.degrade
                    and any(_nacks_certain(case, e.pch) for e in offline))

    # A device-wide corruption window over steady read traffic flips
    # beats with near-certainty: expected events ~ rate x read-beats in
    # the window, which is >> 1 for every space point that satisfies the
    # guards below.  A device-wide link stall suppresses the traffic the
    # window needs, so only the *unstalled* part of the window counts.
    stalls = [(e.at, e.at + e.duration) for e in plan.events
              if e.kind is FaultKind.LINK_STALL and e.cut is None]
    min_window = max(1, case.cycles // 8)
    expect_ecc = any(
        e.pch is None and e.rate >= 0.02
        and _unstalled_span(e.at, e.at + e.duration, stalls) >= min_window
        for e in corrupt) and case.rw.reads > 0

    return Prediction(
        physics_gbps=physics_gbps,
        port_dir_gbps=port_dir_gbps,
        roofline_gbps=roofline,
        dead_pchs=dead,
        expect_nacks=expect_nacks,
        expect_ecc=expect_ecc,
        may_abort=may_abort,
        must_abort=must_abort,
        fault_free=not plan.events,
        drain_budget=case.drain_budget,
        notes=tuple(notes),
    )


@dataclass(frozen=True)
class Outcome:
    """What actually happened when the driver ran a case (one loop)."""

    #: Report of the completed run, or ``None`` if it aborted.
    report: Optional[SimReport]
    #: FaultError subclass name when the run aborted, else "".
    abort: str
    #: Drain cycles actually used (0 when aborted during the run).
    drain_cycles: int
    #: Post-drain per-engine totals: (issued, completed, nacks, retries,
    #: unrecoverable) summed over masters.
    totals: Tuple[int, int, int, int, int]


def check(case: FuzzCase, pred: Prediction, outcome: Outcome) -> List[str]:
    """Violations of the reference model (empty = conformant)."""
    violations: List[str] = []
    if outcome.abort:
        if not (pred.may_abort or pred.must_abort):
            violations.append(
                f"aborted with {outcome.abort} although the fault plan "
                f"cannot legally abort this run")
        return violations
    if pred.must_abort:
        violations.append(
            "completed although an un-degraded channel loss with traffic "
            "provably routed at the dead channel must trip a watchdog")
        return violations

    rep = outcome.report
    assert rep is not None
    issued, completed, nacks, retries, unrecoverable = outcome.totals

    # -- conservation (post-drain attempt accounting): every attempt
    # (fresh issue or re-issue) ends in exactly one success or failure.
    if issued + retries != completed + nacks:
        violations.append(
            f"conservation: issued {issued} + retries {retries} != "
            f"completed {completed} + nacks {nacks} after drain")
    if retries + unrecoverable != nacks:
        violations.append(
            f"conservation: nacks {nacks} != retries {retries} + "
            f"unrecoverable {unrecoverable}")
    if pred.fault_free and (nacks or retries or unrecoverable
                            or rep.ecc_corrected or rep.ecc_uncorrectable
                            or rep.dead_pchs):
        violations.append(
            f"fault-free run shows recovery traffic: nacks={nacks} "
            f"retries={retries} unrecoverable={unrecoverable} "
            f"ecc={rep.ecc_corrected}+{rep.ecc_uncorrectable} "
            f"dead={rep.dead_pchs}")

    # -- physics.
    if rep.total_gbps > pred.physics_gbps * (1.0 + 1e-9):
        violations.append(
            f"physics: {rep.total_gbps:.2f} GB/s exceeds the DRAM beat "
            f"ceiling {pred.physics_gbps:.2f} GB/s")
    for name, got in (("read", rep.read_gbps), ("write", rep.write_gbps)):
        if got > pred.port_dir_gbps * (1.0 + 1e-9):
            violations.append(
                f"physics: {name} {got:.2f} GB/s exceeds the port supply "
                f"{pred.port_dir_gbps:.2f} GB/s")

    # -- roofline.
    if pred.roofline_gbps is not None and rep.total_gbps > pred.roofline_gbps:
        violations.append(
            f"roofline: {rep.total_gbps:.2f} GB/s exceeds the estimator "
            f"ceiling {pred.roofline_gbps:.2f} GB/s (margin included)")

    # -- fault response.
    if tuple(rep.dead_pchs) != pred.dead_pchs:
        violations.append(
            f"dead channels {rep.dead_pchs} != predicted "
            f"{list(pred.dead_pchs)}")
    if pred.expect_nacks and nacks == 0:
        violations.append(
            "no NACKs although traffic provably kept hitting a degraded "
            "dead channel")
    if pred.expect_ecc and rep.ecc_corrected + rep.ecc_uncorrectable == 0:
        violations.append(
            "no ECC events although a device-wide corruption window "
            "covered steady read traffic")

    # -- termination.
    if outcome.drain_cycles > pred.drain_budget:
        violations.append(
            f"drain used {outcome.drain_cycles} cycles, budget "
            f"{pred.drain_budget}")
    return violations
