"""The replayable fuzz corpus (``tests/corpus/``).

Every failure the fuzz driver minimizes is persisted as one JSON file:
the minimal :class:`~repro.conformance.case.FuzzCase` (with its derived
``SimConfig`` and ``FaultPlan`` embedded for bit-exact replay
validation), the failure that was observed, and the campaign that found
it.  Committed entries are re-run by the tier-1 corpus replay test, so
a past fuzz finding can never silently regress: the entry documents the
bug, the fix makes it pass, and the replay keeps it passing.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Union

from ..errors import ConfigError
from .case import FuzzCase

if TYPE_CHECKING:  # pragma: no cover
    from .driver import Failure


def default_corpus_dir() -> Path:
    """``tests/corpus/`` of the repository this package was loaded from
    (falling back to the working directory for installed trees)."""
    repo_root = Path(__file__).resolve().parents[3]
    candidate = repo_root / "tests" / "corpus"
    if candidate.is_dir():
        return candidate
    return Path.cwd() / "tests" / "corpus"


def entry_name(case: FuzzCase, kind: str) -> str:
    """Stable, content-addressed filename for one corpus entry."""
    digest = hashlib.sha256(
        json.dumps(case.to_dict(), sort_keys=True).encode()).hexdigest()[:10]
    return f"{kind}-{digest}.json"


def write_entry(corpus_dir: Union[str, Path], case: FuzzCase,
                failures: Sequence["Failure"],
                *, seed: int, budget: int) -> str:
    """Persist one minimized failing case; returns the file path."""
    directory = Path(corpus_dir)
    directory.mkdir(parents=True, exist_ok=True)
    kind = failures[0].kind if failures else "unknown"
    payload: Dict[str, Any] = {
        "case": case.to_dict(),
        "failure": {
            "kind": kind,
            "details": [f.detail for f in failures],
        },
        "found_by": {"seed": seed, "budget": budget},
    }
    path = directory / entry_name(case, kind)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return str(path)


def load_entry(path: Union[str, Path]) -> FuzzCase:
    """Rebuild the case of one corpus file (cross-checked bit-exactly
    against its embedded ``SimConfig``/``FaultPlan`` dumps)."""
    with open(path) as fh:
        payload = json.load(fh)
    if "case" not in payload:
        raise ConfigError(f"corpus file {path} has no 'case' object")
    return FuzzCase.from_dict(payload["case"])


def list_entries(corpus_dir: Optional[Union[str, Path]] = None) -> List[Path]:
    """Corpus files, sorted for deterministic replay order."""
    directory = Path(corpus_dir) if corpus_dir is not None \
        else default_corpus_dir()
    if not directory.is_dir():
        return []
    return sorted(p for p in directory.iterdir()
                  if p.suffix == ".json" and p.is_file())


def replay(corpus_dir: Optional[Union[str, Path]] = None) -> List[str]:
    """Re-run every committed corpus entry; returns failure lines
    (empty = every past finding stays fixed)."""
    from .driver import run_case
    lines: List[str] = []
    entries = list_entries(corpus_dir)
    for path in entries:
        case = load_entry(path)
        result = run_case(case)
        if result.skipped:
            lines.append(f"{os.path.basename(path)}: statically rejected "
                         f"({result.skipped}) — entry is stale")
        elif not result.ok:
            for f in result.failures:
                lines.append(f"{os.path.basename(path)}: [{f.kind}] "
                             f"{f.detail}")
    return lines
