"""Model-based conformance fuzzing over timing, fault, and fabric spaces.

The hand-written differential grids cover a handful of configurations;
this package explores the *combinatorial* space around them (see
DESIGN.md §9):

* :mod:`repro.conformance.space` — :class:`ParamSpace`: exhaustive
  enumeration for small core dimensions, seeded pairwise covering
  arrays for broad ones, with a provable 2-way coverage guarantee.
* :mod:`repro.conformance.case` — :class:`FuzzCase`: one sampled
  configuration materialized into platform / fabric / traffic /
  ``SimConfig`` / ``FaultPlan``, JSON round-trippable for the corpus.
* :mod:`repro.conformance.reference` — the analytical reference model:
  closed-form predictions (physics and roofline bandwidth ceilings,
  attempt conservation, expected NACK/ECC/abort behaviour under the
  sampled fault plan, termination budgets) checked against real runs.
* :mod:`repro.conformance.driver` — the fuzz driver: every sampled
  config runs on both engine loops with the sanitizer armed, is diffed
  bit-exactly, and is checked against the reference model; failures
  auto-minimize by greedy dimension shrinking.
* :mod:`repro.conformance.corpus` — replayable minimized-failure store
  under ``tests/corpus/`` (regression-tested in tier-1).

CLI: ``repro-hbm fuzz [--budget N] [--seed S] [--replay-corpus]``.
"""

from .case import FAULT_KEYS, FuzzCase, PLATFORMS, build_fault_plan
from .corpus import (default_corpus_dir, list_entries, load_entry, replay,
                     write_entry)
from .driver import (BROAD_DIMS, CORE_DIMS, CampaignReport, CaseResult,
                     Failure, campaign_cases, run_campaign, run_case, shrink)
from .reference import Outcome, Prediction, check, predict
from .space import ParamSpace, covers_all_pairs, missing_pairs

__all__ = [
    "FAULT_KEYS",
    "FuzzCase",
    "PLATFORMS",
    "build_fault_plan",
    "default_corpus_dir",
    "list_entries",
    "load_entry",
    "replay",
    "write_entry",
    "BROAD_DIMS",
    "CORE_DIMS",
    "CampaignReport",
    "CaseResult",
    "Failure",
    "campaign_cases",
    "run_campaign",
    "run_case",
    "shrink",
    "Outcome",
    "Prediction",
    "check",
    "predict",
    "ParamSpace",
    "covers_all_pairs",
    "missing_pairs",
]
