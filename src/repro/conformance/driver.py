"""The conformance fuzz driver: sample → run → oracle → shrink.

For every sampled configuration the driver runs the *real* engine twice
— fast path and legacy per-cycle loop, both with the runtime sanitizer
armed and both watchdogs set — drains, and then applies three stacked
oracles:

1. the sanitizer (AXI ordering, conservation ledgers, credit leaks,
   DRAM bank legality) raising typed :class:`SanitizerError`\\ s,
2. a bit-exactness diff between the two loops' reports and post-drain
   counters,
3. the analytical reference model (:mod:`repro.conformance.reference`).

A failing case is auto-minimized by greedy dimension shrinking (walk
every dimension toward its most benign value while the same failure
kind persists) and written to the replayable corpus
(:mod:`repro.conformance.corpus`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..check.static import quick_check
from ..errors import ConfigError, FaultError, SanitizerError, SimulationError
from ..sim import Engine
from .case import FuzzCase, FAULT_KEYS
from .reference import Outcome, Prediction, check, predict
from .space import ParamSpace

#: The exhaustive core space: every fabric x pattern combination at the
#: paper's default knobs.  Small enough to enumerate fully, and the axis
#: pair where interaction bugs are most likely to hide.
CORE_DIMS = {
    "fabric": ("ideal", "xlnx", "mao"),
    "pattern": ("SCS", "CCS", "SCRA", "CCRA"),
    "rw": ("2:1",),
    "burst_len": (8,),
    "outstanding": (32,),
    "cycles": (1200,),
    "warmup_div": (4,),
    "fault": ("none",),
    "platform": ("small",),
}

#: The broad space, sampled pairwise.  Dimension values are ordered most
#: benign first — the shrinker walks each dimension toward index 0.
BROAD_DIMS = {
    "fabric": ("ideal", "xlnx", "mao"),
    "pattern": ("SCS", "CCS", "SCRA", "CCRA"),
    "rw": ("2:1", "1:0", "0:1", "1:1"),
    "burst_len": (8, 16, 4, 1),
    "outstanding": (32, 8, 4, 1),
    "cycles": (1200, 900, 2100),
    "warmup_div": (4, 6, 3),
    "fault": FAULT_KEYS,
    "platform": ("small", "wide"),
}


@dataclass(frozen=True)
class Failure:
    """One conformance finding on one case."""

    kind: str
    """``sanitizer`` / ``engine-diff`` / ``prediction`` / ``termination``
    / ``error`` — the shrinker preserves this while minimizing."""

    detail: str


@dataclass(frozen=True)
class CaseResult:
    """Outcome of one case under the full oracle stack."""

    case: FuzzCase
    failures: Tuple[Failure, ...] = ()
    skipped: str = ""
    """Non-empty when static pre-validation rejected the config (not a
    finding: the analyzer is *supposed* to reject impossible configs)."""

    total_gbps: float = 0.0
    abort: str = ""

    @property
    def ok(self) -> bool:
        return not self.failures


def _one_loop(case: FuzzCase, fast_path: bool) -> Outcome:
    """Run one engine loop of ``case`` to a drained end state."""
    fabric, sources = case.build()
    engine = Engine(fabric, sources, case.sim_config(fast_path=fast_path),
                    faults=case.fault_plan() or None)
    try:
        report = engine.run()
        drain_cycles = engine.drain(max_cycles=case.drain_budget)
    except FaultError as exc:
        return Outcome(report=None, abort=type(exc).__name__,
                       drain_cycles=0, totals=_totals(engine))
    return Outcome(report=report, abort="", drain_cycles=drain_cycles,
                   totals=_totals(engine))


def _totals(engine: Engine) -> Tuple[int, int, int, int, int]:
    mps = engine.masters
    return (sum(mp.issued for mp in mps),
            sum(mp.completed for mp in mps),
            sum(mp.nacks for mp in mps),
            sum(mp.retries for mp in mps),
            sum(mp.unrecoverable for mp in mps))


def _diff_outcomes(fast: Outcome, legacy: Outcome) -> List[str]:
    """Bit-exactness diff between the two engine loops."""
    diffs: List[str] = []
    if fast.abort != legacy.abort:
        diffs.append(f"abort differs: fast={fast.abort or 'completed'!r} "
                     f"legacy={legacy.abort or 'completed'!r}")
        return diffs
    if fast.totals != legacy.totals:
        diffs.append(f"post-drain counters differ: fast={fast.totals} "
                     f"legacy={legacy.totals}")
    if fast.report != legacy.report:
        diffs.append("SimReport differs between fast and legacy loops")
    return diffs


def run_case(case: FuzzCase) -> CaseResult:
    """One case through static pre-validation and the full oracle stack."""
    try:
        fabric, _ = case.build()
        quick_check(fabric, case.sim_config())
    except ConfigError as exc:
        return CaseResult(case=case, skipped=str(exc))

    pred = predict(case)
    failures: List[Failure] = []
    try:
        fast = _one_loop(case, fast_path=True)
        legacy = _one_loop(case, fast_path=False)
    except SanitizerError as exc:
        return CaseResult(case=case, failures=(
            Failure("sanitizer", f"{type(exc).__name__}: {exc}"),))
    except SimulationError as exc:
        return CaseResult(case=case, failures=(
            Failure("termination", f"{type(exc).__name__}: {exc}"),))
    except Exception as exc:  # noqa: BLE001 — a crash is a finding too
        return CaseResult(case=case, failures=(
            Failure("error", f"{type(exc).__name__}: {exc}"),))

    for diff in _diff_outcomes(fast, legacy):
        failures.append(Failure("engine-diff", diff))
    for violation in check(case, pred, fast):
        failures.append(Failure("prediction", violation))
    rep = fast.report
    return CaseResult(
        case=case,
        failures=tuple(failures),
        total_gbps=rep.total_gbps if rep is not None else 0.0,
        abort=fast.abort,
    )


# -- shrinking ---------------------------------------------------------------

#: Hard cap on shrink re-runs per failing case (each re-run simulates
#: both loops, so minimization cost stays bounded).
MAX_SHRINK_RUNS = 64


def _fails_like(case: FuzzCase, kinds: Sequence[str]) -> bool:
    result = run_case(case)
    return any(f.kind in kinds for f in result.failures)


def shrink(case: FuzzCase, dims: Optional[Dict[str, tuple]] = None,
           ) -> Tuple[FuzzCase, int]:
    """Greedy dimension shrinking toward a minimal failing config.

    Walks every dimension (in :data:`BROAD_DIMS` order) toward its most
    benign value — index 0 of the dimension tuple — keeping each move
    only when a failure of the *same kind* persists, and iterates to a
    fixpoint.  Returns the minimized case and the number of verification
    runs spent.  The result is guaranteed to still fail.
    """
    dims = dict(BROAD_DIMS if dims is None else dims)
    baseline = run_case(case)
    kinds = sorted({f.kind for f in baseline.failures})
    if not kinds:
        raise ConfigError("shrink() needs a failing case")
    sample = case.to_sample()
    runs = 0
    changed = True
    while changed and runs < MAX_SHRINK_RUNS:
        changed = False
        for name, values in dims.items():
            if name not in sample or sample[name] not in values:
                continue
            idx = values.index(sample[name])
            # Try increasingly benign values, most benign first.
            for cand_idx in range(idx):
                if runs >= MAX_SHRINK_RUNS:
                    break
                trial = dict(sample)
                trial[name] = values[cand_idx]
                runs += 1
                if _fails_like(FuzzCase.from_sample(trial, seed=case.seed),
                               kinds):
                    sample = trial
                    changed = True
                    break
    return FuzzCase.from_sample(sample, seed=case.seed), runs


# -- campaigns ---------------------------------------------------------------


@dataclass
class CampaignReport:
    """Everything one fuzz campaign did."""

    seed: int
    budget: int
    results: List[CaseResult] = field(default_factory=list)
    minimized: List[Tuple[CaseResult, FuzzCase]] = field(default_factory=list)
    corpus_written: List[str] = field(default_factory=list)

    @property
    def failures(self) -> List[CaseResult]:
        return [r for r in self.results if not r.ok and not r.skipped]

    @property
    def skipped(self) -> List[CaseResult]:
        return [r for r in self.results if r.skipped]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        ran = len(self.results) - len(self.skipped)
        lines = [
            f"conformance fuzz: seed {self.seed}, budget {self.budget} -> "
            f"{ran} configs run, {len(self.skipped)} statically rejected, "
            f"{len(self.failures)} failing",
        ]
        for r in self.failures:
            lines.append(f"  FAIL {r.case.label()}")
            for f in r.failures:
                lines.append(f"       [{f.kind}] {f.detail}")
        for original, minimal in self.minimized:
            lines.append(f"  minimized {original.case.label()} -> "
                         f"{minimal.label()}")
        for path in self.corpus_written:
            lines.append(f"  corpus entry written: {path}")
        if self.ok:
            lines.append("  all reference-model predictions satisfied; "
                         "fast/legacy loops bit-identical on every config")
        return "\n".join(lines)


def campaign_cases(budget: int, seed: int) -> List[FuzzCase]:
    """The deterministic case list of a ``(budget, seed)`` campaign.

    The exhaustive core space runs first, then the pairwise broad space.
    A budget beyond one sweep wraps around with a bumped traffic seed
    (same configs, fresh stimulus), so arbitrarily large budgets stay
    meaningful.
    """
    if budget < 1:
        raise ConfigError("budget must be >= 1")
    samples = ParamSpace.iter_unique([
        ParamSpace(CORE_DIMS, mode="full"),
        ParamSpace(BROAD_DIMS, mode="pairwise", seed=seed),
    ])
    cases: List[FuzzCase] = []
    for i in range(budget):
        sweep, idx = divmod(i, len(samples))
        cases.append(FuzzCase.from_sample(samples[idx],
                                          seed=seed + 1000 * sweep))
    return cases


def run_campaign(budget: int = 200, seed: int = 0, *, minimize: bool = True,
                 corpus_dir: Optional[str] = None,
                 progress=None) -> CampaignReport:
    """Run a seeded fuzz campaign; optionally minimize and persist
    failures into the corpus directory."""
    from . import corpus as corpus_mod
    report = CampaignReport(seed=seed, budget=budget)
    for case in campaign_cases(budget, seed):
        result = run_case(case)
        report.results.append(result)
        if progress is not None:
            progress(result)
        if result.ok or result.skipped:
            continue
        if minimize:
            minimal, _runs = shrink(case)
            report.minimized.append((result, minimal))
            target = minimal
        else:
            target = case
        if corpus_dir is not None:
            minimal_result = run_case(target)
            path = corpus_mod.write_entry(
                corpus_dir, target,
                minimal_result.failures or result.failures,
                seed=seed, budget=budget)
            report.corpus_written.append(path)
    return report
