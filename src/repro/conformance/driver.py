"""The conformance fuzz driver: sample → run → oracle → shrink.

For every sampled configuration the driver runs the *real* engine three
times — fast path, vector struct-of-arrays tier, and legacy per-cycle
loop, all with the runtime sanitizer armed and both watchdogs set —
drains, and then applies three stacked oracles:

1. the sanitizer (AXI ordering, conservation ledgers, credit leaks,
   DRAM bank legality) raising typed :class:`SanitizerError`\\ s,
2. a bit-exactness diff of each optimized loop's report and post-drain
   counters against the legacy oracle,
3. the analytical reference model (:mod:`repro.conformance.reference`).

A failing case is auto-minimized by greedy dimension shrinking (walk
every dimension toward its most benign value while the same failure
kind persists) and written to the replayable corpus
(:mod:`repro.conformance.corpus`).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, \
    Tuple

from ..check.static import quick_check
from ..errors import ConfigError, FaultError, SanitizerError, SimulationError
from ..runtime import JournalState, RunJournal, load_journal
from ..sim import Engine
from ..sim.cache import MODEL_VERSION
from .case import FuzzCase, FAULT_KEYS, SCHEMA_VERSION
from .reference import Outcome, Prediction, check, predict
from .space import ParamSpace

#: The exhaustive core space: every fabric x pattern combination at the
#: paper's default knobs.  Small enough to enumerate fully, and the axis
#: pair where interaction bugs are most likely to hide.
CORE_DIMS: Dict[str, Tuple[object, ...]] = {
    "fabric": ("ideal", "xlnx", "mao"),
    "pattern": ("SCS", "CCS", "SCRA", "CCRA"),
    "rw": ("2:1",),
    "burst_len": (8,),
    "outstanding": (32,),
    "cycles": (1200,),
    "warmup_div": (4,),
    "fault": ("none",),
    "platform": ("small",),
}

#: The broad space, sampled pairwise.  Dimension values are ordered most
#: benign first — the shrinker walks each dimension toward index 0.
BROAD_DIMS: Dict[str, Tuple[object, ...]] = {
    "fabric": ("ideal", "xlnx", "mao"),
    "pattern": ("SCS", "CCS", "SCRA", "CCRA"),
    "rw": ("2:1", "1:0", "0:1", "1:1"),
    "burst_len": (8, 16, 4, 1),
    "outstanding": (32, 8, 4, 1),
    "cycles": (1200, 900, 2100),
    "warmup_div": (4, 6, 3),
    "fault": FAULT_KEYS,
    "platform": ("small", "wide"),
}


@dataclass(frozen=True)
class Failure:
    """One conformance finding on one case."""

    kind: str
    """``sanitizer`` / ``engine-diff`` / ``prediction`` / ``termination``
    / ``error`` — the shrinker preserves this while minimizing."""

    detail: str


@dataclass(frozen=True)
class CaseResult:
    """Outcome of one case under the full oracle stack."""

    case: FuzzCase
    failures: Tuple[Failure, ...] = ()
    skipped: str = ""
    """Non-empty when static pre-validation rejected the config (not a
    finding: the analyzer is *supposed* to reject impossible configs)."""

    total_gbps: float = 0.0
    abort: str = ""

    @property
    def ok(self) -> bool:
        return not self.failures


def _one_loop(case: FuzzCase, engine_tier: str) -> Outcome:
    """Run one engine loop of ``case`` to a drained end state."""
    fabric, sources = case.build()
    engine = Engine(fabric, sources, case.sim_config(engine=engine_tier),
                    faults=case.fault_plan() or None)
    try:
        report = engine.run()
        drain_cycles = engine.drain(max_cycles=case.drain_budget)
    except FaultError as exc:
        return Outcome(report=None, abort=type(exc).__name__,
                       drain_cycles=0, totals=_totals(engine))
    return Outcome(report=report, abort="", drain_cycles=drain_cycles,
                   totals=_totals(engine))


def _totals(engine: Engine) -> Tuple[int, int, int, int, int]:
    mps = engine.masters
    return (sum(mp.issued for mp in mps),
            sum(mp.completed for mp in mps),
            sum(mp.nacks for mp in mps),
            sum(mp.retries for mp in mps),
            sum(mp.unrecoverable for mp in mps))


def _diff_outcomes(probe: Outcome, oracle: Outcome, probe_name: str,
                   oracle_name: str = "legacy") -> List[str]:
    """Bit-exactness diff of one optimized loop against the oracle."""
    diffs: List[str] = []
    if probe.abort != oracle.abort:
        diffs.append(
            f"abort differs: {probe_name}={probe.abort or 'completed'!r} "
            f"{oracle_name}={oracle.abort or 'completed'!r}")
        return diffs
    if probe.totals != oracle.totals:
        diffs.append(
            f"post-drain counters differ: {probe_name}={probe.totals} "
            f"{oracle_name}={oracle.totals}")
    if probe.report != oracle.report:
        diffs.append(f"SimReport differs between {probe_name} and "
                     f"{oracle_name} loops")
    return diffs


def run_case(case: FuzzCase) -> CaseResult:
    """One case through static pre-validation and the full oracle stack."""
    try:
        fabric, _ = case.build()
        quick_check(fabric, case.sim_config())
    except ConfigError as exc:
        return CaseResult(case=case, skipped=str(exc))

    pred = predict(case)
    failures: List[Failure] = []
    try:
        fast = _one_loop(case, "fast")
        vector = _one_loop(case, "vector")
        legacy = _one_loop(case, "legacy")
    except SanitizerError as exc:
        return CaseResult(case=case, failures=(
            Failure("sanitizer", f"{type(exc).__name__}: {exc}"),))
    except SimulationError as exc:
        return CaseResult(case=case, failures=(
            Failure("termination", f"{type(exc).__name__}: {exc}"),))
    except Exception as exc:  # noqa: BLE001 — a crash is a finding too
        return CaseResult(case=case, failures=(
            Failure("error", f"{type(exc).__name__}: {exc}"),))

    for diff in _diff_outcomes(fast, legacy, "fast"):
        failures.append(Failure("engine-diff", diff))
    for diff in _diff_outcomes(vector, legacy, "vector"):
        failures.append(Failure("engine-diff", diff))
    for violation in check(case, pred, fast):
        failures.append(Failure("prediction", violation))
    rep = fast.report
    return CaseResult(
        case=case,
        failures=tuple(failures),
        total_gbps=rep.total_gbps if rep is not None else 0.0,
        abort=fast.abort,
    )


# -- shrinking ---------------------------------------------------------------

#: Hard cap on shrink re-runs per failing case (each re-run simulates
#: both loops, so minimization cost stays bounded).
MAX_SHRINK_RUNS = 64


def _fails_like(case: FuzzCase, kinds: Sequence[str]) -> bool:
    result = run_case(case)
    return any(f.kind in kinds for f in result.failures)


def shrink(case: FuzzCase, dims: Optional[Dict[str, Tuple[object, ...]]] = None,
           ) -> Tuple[FuzzCase, int]:
    """Greedy dimension shrinking toward a minimal failing config.

    Walks every dimension (in :data:`BROAD_DIMS` order) toward its most
    benign value — index 0 of the dimension tuple — keeping each move
    only when a failure of the *same kind* persists, and iterates to a
    fixpoint.  Returns the minimized case and the number of verification
    runs spent.  The result is guaranteed to still fail.
    """
    dims = dict(BROAD_DIMS if dims is None else dims)
    baseline = run_case(case)
    kinds = sorted({f.kind for f in baseline.failures})
    if not kinds:
        raise ConfigError("shrink() needs a failing case")
    sample = case.to_sample()
    runs = 0
    changed = True
    while changed and runs < MAX_SHRINK_RUNS:
        changed = False
        for name, values in dims.items():
            if name not in sample or sample[name] not in values:
                continue
            idx = values.index(sample[name])
            # Try increasingly benign values, most benign first.
            for cand_idx in range(idx):
                if runs >= MAX_SHRINK_RUNS:
                    break
                trial = dict(sample)
                trial[name] = values[cand_idx]
                runs += 1
                if _fails_like(FuzzCase.from_sample(trial, seed=case.seed),
                               kinds):
                    sample = trial
                    changed = True
                    break
    return FuzzCase.from_sample(sample, seed=case.seed), runs


# -- campaigns ---------------------------------------------------------------


def case_digest(case: FuzzCase) -> str:
    """Content-addressed identity of one case (the journal task id).

    Hashes the full serialized case — sample, seed, and the embedded
    ``SimConfig``/``FaultPlan`` derivations — so a digest names the
    exact run, and any builder drift since the journal was written
    changes the digest and forces a re-run instead of a stale skip.
    """
    blob = json.dumps(case.to_dict(), sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _campaign_meta(seed: int) -> Dict[str, Any]:
    """Journal header meta; resume refuses on any mismatch here."""
    return {"kind": "fuzz-campaign", "seed": seed,
            "model_version": MODEL_VERSION, "case_schema": SCHEMA_VERSION}


def _check_resume_meta(state: JournalState, seed: int) -> None:
    meta = state.meta
    expected = _campaign_meta(seed)
    for key in ("kind", "seed", "model_version", "case_schema"):
        if meta.get(key) != expected[key]:
            raise ConfigError(
                f"journal {state.path} is not resumable by this campaign: "
                f"{key}={meta.get(key)!r} (expected {expected[key]!r}); "
                f"matching seed and model/schema versions are required for "
                f"a bit-identical resume")


def _result_payload(result: CaseResult, minimal: Optional[FuzzCase],
                    corpus_path: Optional[str]) -> Dict[str, Any]:
    """JSON form of everything the campaign recorded for one case."""
    return {
        "result": {
            "failures": [{"kind": f.kind, "detail": f.detail}
                         for f in result.failures],
            "skipped": result.skipped,
            "total_gbps": result.total_gbps,
            "abort": result.abort,
        },
        "minimized": minimal.to_dict() if minimal is not None else None,
        "corpus_path": corpus_path,
    }


def _restore_result(case: FuzzCase, payload: Mapping[str, Any],
                    ) -> Tuple[CaseResult, Optional[FuzzCase],
                               Optional[str]]:
    """Rebuild a journaled case's outcome bit-identically.

    JSON round-trips Python floats exactly (``repr``-based), so the
    restored :class:`CaseResult` compares equal to the one an
    uninterrupted run would have produced."""
    data = payload["result"]
    result = CaseResult(
        case=case,
        failures=tuple(Failure(str(f["kind"]), str(f["detail"]))
                       for f in data.get("failures", ())),
        skipped=str(data.get("skipped", "")),
        total_gbps=float(data.get("total_gbps", 0.0)),
        abort=str(data.get("abort", "")),
    )
    minimal = (FuzzCase.from_dict(payload["minimized"])
               if payload.get("minimized") else None)
    corpus_path = payload.get("corpus_path") or None
    return result, minimal, corpus_path


@dataclass
class CampaignReport:
    """Everything one fuzz campaign did."""

    seed: int
    budget: int
    results: List[CaseResult] = field(default_factory=list)
    minimized: List[Tuple[CaseResult, FuzzCase]] = field(default_factory=list)
    corpus_written: List[str] = field(default_factory=list)
    #: Cases restored from a resume journal instead of re-simulated.
    resumed: int = 0
    #: True when a shutdown request stopped the campaign early.
    interrupted: bool = False
    #: True when ``max_minutes`` expired before the budget was spent.
    deadline_reached: bool = False
    #: Cases of the budget not yet run (interrupt/deadline checkpoints).
    remaining: int = 0
    #: Journal backing this campaign, if any (the resume target).
    journal_path: Optional[str] = None

    @property
    def complete(self) -> bool:
        return self.remaining == 0

    @property
    def failures(self) -> List[CaseResult]:
        return [r for r in self.results if not r.ok and not r.skipped]

    @property
    def skipped(self) -> List[CaseResult]:
        return [r for r in self.results if r.skipped]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        ran = len(self.results) - len(self.skipped)
        lines = [
            f"conformance fuzz: seed {self.seed}, budget {self.budget} -> "
            f"{ran} configs run, {len(self.skipped)} statically rejected, "
            f"{len(self.failures)} failing",
        ]
        for r in self.failures:
            lines.append(f"  FAIL {r.case.label()}")
            for f in r.failures:
                lines.append(f"       [{f.kind}] {f.detail}")
        for original, minimal in self.minimized:
            lines.append(f"  minimized {original.case.label()} -> "
                         f"{minimal.label()}")
        for path in self.corpus_written:
            lines.append(f"  corpus entry written: {path}")
        if self.ok:
            lines.append("  all reference-model predictions satisfied; "
                         "fast/vector/legacy loops bit-identical on every "
                         "config")
        return "\n".join(lines)


def campaign_cases(budget: int, seed: int) -> List[FuzzCase]:
    """The deterministic case list of a ``(budget, seed)`` campaign.

    The exhaustive core space runs first, then the pairwise broad space.
    A budget beyond one sweep wraps around with a bumped traffic seed
    (same configs, fresh stimulus), so arbitrarily large budgets stay
    meaningful.
    """
    if budget < 1:
        raise ConfigError("budget must be >= 1")
    samples = ParamSpace.iter_unique([
        ParamSpace(CORE_DIMS, mode="full"),
        ParamSpace(BROAD_DIMS, mode="pairwise", seed=seed),
    ])
    cases: List[FuzzCase] = []
    for i in range(budget):
        sweep, idx = divmod(i, len(samples))
        cases.append(FuzzCase.from_sample(samples[idx],
                                          seed=seed + 1000 * sweep))
    return cases


def run_campaign(budget: int = 200, seed: int = 0, *, minimize: bool = True,
                 corpus_dir: Optional[str] = None,
                 progress: Optional[Callable[["CaseResult"], None]] = None,
                 journal_path: Optional[str] = None,
                 resume_from: Optional[str] = None,
                 max_minutes: Optional[float] = None,
                 should_stop: Optional[Callable[[], bool]] = None,
                 ) -> CampaignReport:
    """Run a seeded fuzz campaign; optionally minimize and persist
    failures into the corpus directory.

    Crash safety: with ``journal_path`` every case's outcome is recorded
    durably in a :class:`~repro.runtime.RunJournal` the moment it
    completes.  ``resume_from`` restores a prior journal's completed
    cases bit-identically (the deterministic :func:`campaign_cases`
    list plus content-addressed :func:`case_digest` ids make the skip
    exact) and re-simulates only the remainder, appending to the same
    journal.  ``max_minutes`` checkpoints cleanly at a wall-clock
    deadline; ``should_stop`` (e.g. a
    :class:`~repro.runtime.GracefulShutdown`) checkpoints on operator
    interrupt.  Either way the report says how many cases remain and a
    rerun with ``resume_from`` finishes the campaign.
    """
    from . import corpus as corpus_mod
    report = CampaignReport(seed=seed, budget=budget)
    state: Optional[JournalState] = None
    journal: Optional[RunJournal] = None
    if resume_from is not None:
        if journal_path is not None and journal_path != resume_from:
            raise ConfigError(
                "pass either journal_path or resume_from (a resume "
                "appends to the journal it resumes from)")
        state = load_journal(resume_from)
        _check_resume_meta(state, seed)
        journal_path = resume_from
        journal = RunJournal(journal_path, resume=True)
    elif journal_path is not None:
        journal = RunJournal(journal_path, meta=_campaign_meta(seed))
    report.journal_path = journal_path

    # Supervision plumbing, not simulated behaviour: the deadline bounds
    # operator wall-clock, never the simulated cycle count.
    deadline = (time.monotonic() + max_minutes * 60.0  # det-lint: allow
                if max_minutes is not None else None)
    cases = campaign_cases(budget, seed)
    try:
        for case in cases:
            digest = case_digest(case)
            if state is not None and state.is_finished(digest):
                try:
                    restored = _restore_result(case, state.payload(digest))
                except (ConfigError, KeyError, TypeError, ValueError) as exc:
                    raise ConfigError(
                        f"journal {journal_path} entry {digest} cannot be "
                        f"restored ({exc}); re-run without --resume"
                    ) from exc
                result, minimal, corpus_path = restored
                report.results.append(result)
                report.resumed += 1
                if minimal is not None:
                    report.minimized.append((result, minimal))
                if corpus_path:
                    report.corpus_written.append(corpus_path)
                continue
            if should_stop is not None and should_stop():
                report.interrupted = True
                break
            if (deadline is not None
                    and time.monotonic() >= deadline):  # det-lint: allow
                report.deadline_reached = True
                break
            if journal is not None:
                journal.start(digest)
            result = run_case(case)
            report.results.append(result)
            if progress is not None:
                progress(result)
            minimal = None
            corpus_path = None
            if not (result.ok or result.skipped):
                target = case
                if minimize:
                    minimal, _runs = shrink(case)
                    report.minimized.append((result, minimal))
                    target = minimal
                if corpus_dir is not None:
                    minimal_result = run_case(target)
                    corpus_path = corpus_mod.write_entry(
                        corpus_dir, target,
                        minimal_result.failures or result.failures,
                        seed=seed, budget=budget)
                    report.corpus_written.append(corpus_path)
            if journal is not None:
                journal.finish(digest,
                               _result_payload(result, minimal, corpus_path))
        report.remaining = budget - len(report.results)
    finally:
        if journal is not None:
            journal.close()
    return report
