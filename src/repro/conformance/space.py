"""Parameter spaces for model-based conformance fuzzing.

A :class:`ParamSpace` turns a dict of named dimensions (each an ordered
tuple of candidate values) into a deterministic list of sampled
configurations.  Two modes, after the litex AXI-Lite model-based test
idiom:

* ``mode="full"`` — the exhaustive cartesian product, for *small* core
  spaces where every combination is affordable;
* ``mode="pairwise"`` — a 2-way covering array for *broad* spaces: every
  value pair of every dimension pair appears in at least one sample
  (guaranteed by construction and provable with
  :func:`missing_pairs`), at a tiny fraction of the product size.

The pairwise construction is a seeded AETG-style greedy: each round
builds a handful of candidate configs (dimension order shuffled per
candidate, each dimension greedily picking the value that covers the
most still-uncovered pairs) and keeps the best one.  Rounds that would
stall are forced to make progress by seeding the candidate from an
explicit uncovered pair, so termination — and with it full 2-way
coverage — is guaranteed, not probabilistic.  Everything is driven by a
``random.Random(seed)``: the same ``(dims, mode, seed)`` always yields
the same samples in the same order, which is what makes fuzz campaigns
replayable.
"""

from __future__ import annotations

import itertools
import random
from typing import (Dict, Iterable, Iterator, List, Mapping, Sequence, Set,
                    Tuple)

from ..errors import ConfigError

#: One sampled configuration: dimension name -> chosen value.
Sample = Dict[str, object]

#: A covered pair: ((dim_i, value_i), (dim_j, value_j)) with dim_i < dim_j
#: in dimension-declaration order.
Pair = Tuple[Tuple[str, object], Tuple[str, object]]

#: Candidate configs generated per greedy round.  More candidates give
#: slightly smaller arrays at linear cost; 8 is a good trade-off.
_CANDIDATES_PER_ROUND = 8


class ParamSpace:
    """A named, ordered parameter space with a deterministic sampler."""

    def __init__(self, dims: Mapping[str, Sequence[object]],
                 mode: str = "full",
                 seed: int = 0) -> None:
        if mode not in ("full", "pairwise"):
            raise ConfigError(f"mode must be 'full' or 'pairwise', "
                              f"got {mode!r}")
        if not dims:
            raise ConfigError("a ParamSpace needs at least one dimension")
        self.dims: Dict[str, Tuple[object, ...]] = {}
        for name, values in dims.items():
            vals = tuple(values)
            if not vals:
                raise ConfigError(f"dimension {name!r} has no values")
            if len(set(vals)) != len(vals):
                raise ConfigError(f"dimension {name!r} repeats a value")
            self.dims[name] = vals
        self.mode = mode
        self.seed = seed
        self._samples: List[Sample] = []
        self._generated = False

    # -- sampling ------------------------------------------------------------

    def samples(self) -> List[Sample]:
        """The sampled configurations (cached; deterministic)."""
        if not self._generated:
            if self.mode == "full":
                self._samples = self._full()
            else:
                self._samples = self._pairwise()
            self._generated = True
        return list(self._samples)

    def __iter__(self) -> Iterator[Sample]:
        return iter(self.samples())

    def __len__(self) -> int:
        return len(self.samples())

    @property
    def product_size(self) -> int:
        """Size of the full cartesian product (for reporting)."""
        n = 1
        for vals in self.dims.values():
            n *= len(vals)
        return n

    def _full(self) -> List[Sample]:
        names = list(self.dims)
        return [dict(zip(names, combo))
                for combo in itertools.product(*self.dims.values())]

    def all_pairs(self) -> Set[Pair]:
        """Every value pair of every dimension pair (the coverage goal)."""
        names = list(self.dims)
        pairs: Set[Pair] = set()
        for i, di in enumerate(names):
            for dj in names[i + 1:]:
                for vi in self.dims[di]:
                    for vj in self.dims[dj]:
                        pairs.add(((di, vi), (dj, vj)))
        return pairs

    @staticmethod
    def _pairs_of(sample: Sample, names: Sequence[str]) -> Set[Pair]:
        items = [(n, sample[n]) for n in names]
        return {(items[i], items[j])
                for i in range(len(items)) for j in range(i + 1, len(items))}

    def _pairwise(self) -> List[Sample]:
        names = list(self.dims)
        if len(names) == 1:
            # No pairs exist; cover every single value instead.
            return [{names[0]: v} for v in self.dims[names[0]]]
        rng = random.Random(self.seed)
        uncovered = self.all_pairs()
        samples: List[Sample] = []
        while uncovered:
            best: Sample = {}
            best_gain = -1
            for _ in range(_CANDIDATES_PER_ROUND):
                cand = self._candidate(rng, names, uncovered)
                gain = len(self._pairs_of(cand, names) & uncovered)
                if gain > best_gain:
                    best, best_gain = cand, gain
            if best_gain <= 0:
                # Greedy stalled; force progress from an uncovered pair.
                best = self._forced(rng, names, uncovered)
            uncovered -= self._pairs_of(best, names)
            samples.append(best)
        return samples

    def _candidate(self, rng: random.Random, names: Sequence[str],
                   uncovered: Set[Pair]) -> Sample:
        """One AETG candidate: shuffled dim order, greedy value choice."""
        order = list(names)
        rng.shuffle(order)
        chosen: Sample = {}
        for name in order:
            best_val = None
            best_gain = -1
            for val in self.dims[name]:
                gain = sum(
                    1 for other, oval in chosen.items()
                    if self._pair(name, val, other, oval, names) in uncovered)
                if gain > best_gain:
                    best_val, best_gain = val, gain
            chosen[name] = best_val
        return {n: chosen[n] for n in names}

    def _forced(self, rng: random.Random, names: Sequence[str],
                uncovered: Set[Pair]) -> Sample:
        """Seed a candidate from an explicit uncovered pair: the sample
        is then guaranteed to retire at least that pair."""
        (da, va), (db, vb) = min(uncovered, key=repr)
        chosen: Sample = {da: va, db: vb}
        for name in names:
            if name in chosen:
                continue
            best_val = None
            best_gain = -1
            for val in self.dims[name]:
                gain = sum(
                    1 for other, oval in chosen.items()
                    if self._pair(name, val, other, oval, names) in uncovered)
                if gain > best_gain:
                    best_val, best_gain = val, gain
            chosen[name] = best_val
        return {n: chosen[n] for n in names}

    def _pair(self, da: str, va: object, db: str, vb: object,
              names: Sequence[str]) -> Pair:
        if names.index(da) < names.index(db):
            return ((da, va), (db, vb))
        return ((db, vb), (da, va))

    # -- composition ---------------------------------------------------------

    @staticmethod
    def iter_unique(spaces: Iterable["ParamSpace"]) -> List[Sample]:
        """Concatenate several spaces' samples, dropping duplicates.

        Spaces may differ in dimensions; samples are compared by their
        full (name, value) item set.  Order is preserved: earlier spaces
        win, so putting the exhaustive core space first keeps its
        complete product intact.
        """
        seen: Set[Tuple[object, ...]] = set()
        out: List[Sample] = []
        for space in spaces:
            for sample in space.samples():
                key = tuple(sorted(sample.items(), key=lambda kv: kv[0]))
                if key not in seen:
                    seen.add(key)
                    out.append(sample)
        return out


def missing_pairs(dims: Mapping[str, Sequence[object]],
                  samples: Sequence[Mapping[str, object]]) -> Set[Pair]:
    """Value pairs of ``dims`` not covered by ``samples`` (empty = proof
    of the 2-way guarantee).  Samples missing one of the two dimensions
    simply don't count toward that pair."""
    space = ParamSpace(dims, mode="full")
    names = list(space.dims)
    remaining = space.all_pairs()
    for sample in samples:
        for i, di in enumerate(names):
            if di not in sample:
                continue
            for dj in names[i + 1:]:
                if dj in sample:
                    remaining.discard(((di, sample[di]), (dj, sample[dj])))
    return remaining


def covers_all_pairs(dims: Mapping[str, Sequence[object]],
                     samples: Sequence[Mapping[str, object]]) -> bool:
    """True iff ``samples`` is a 2-way covering array for ``dims``."""
    return not missing_pairs(dims, samples)
