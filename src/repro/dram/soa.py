"""Struct-of-arrays (SoA) views of per-pseudo-channel DRAM state.

The vector engine tier (:mod:`repro.sim.vector`) keeps its due-time
bookkeeping in numpy arrays indexed by pseudo-channel; this module holds
the adapters that move the *model's* scalar per-PCH state in and out of
that layout.  :class:`DramStateSoA` captures every mutable field of the
32 :class:`~repro.dram.pch.PseudoChannel` objects (bus meters, bank page
tables, refresh clocks, diagnostic counters) into one array per field —
``bus_free`` becomes a ``float64[num_pch]`` vector, ``open_row`` a
``int64[num_pch, banks]`` matrix, and so on.

Two uses:

* the vectorized/scalar interleaving property tests drive the same
  workload through both steppers and compare :meth:`DramStateSoA.digest`
  fingerprints — a single hash over the full SoA image — to prove the
  vector tier leaves *model* state (not just reports) bit-identical;
* ``capture`` -> ``restore`` round-trips are the save/load primitive the
  hypothesis suite exercises for exactness (floats pass through
  untouched; ``None`` sentinels survive the integer encoding).

The adapters are deliberately one-shot (capture/restore), not live
mirrors: per-PCH *service* is order-sensitive (FR-FCFS picks, same-ID
ordering) and must stay scalar, so the arrays are only authoritative
between event horizons — see DESIGN.md section 12.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, Tuple

import numpy as np

from .pch import PseudoChannel

#: Integer stand-in for ``last_miss_delta[d] is None`` (no prior miss in
#: direction ``d``).  Real deltas are row-index differences, far inside
#: int64 range, so the extreme value can never collide.
DELTA_NONE = np.iinfo(np.int64).min

#: ``PchCounters`` fields mirrored into the counter matrix, in order.
COUNTER_FIELDS: Tuple[str, ...] = (
    "txns_serviced", "beats_transferred", "read_beats", "write_beats",
    "turnarounds", "port_stalls", "miss_gaps", "refreshes",
    "ecc_corrected", "ecc_uncorrectable")


class DramStateSoA:
    """All mutable per-PCH DRAM state, one numpy array per field."""

    __slots__ = (
        "bus_free", "last_dir", "miss_streak", "last_miss_row",
        "last_miss_delta", "chan_debt", "next_refresh", "refresh_bank",
        "open_row", "next_act", "last_act_any",
        "activates", "row_hits", "conflicts", "counters")

    def __init__(self, num_pch: int, num_banks: int) -> None:
        self.bus_free = np.zeros(num_pch, dtype=np.float64)
        self.last_dir = np.zeros(num_pch, dtype=np.int64)
        self.miss_streak = np.zeros(num_pch, dtype=np.int64)
        self.last_miss_row = np.zeros((num_pch, 2), dtype=np.int64)
        self.last_miss_delta = np.zeros((num_pch, 2), dtype=np.int64)
        self.chan_debt = np.zeros((num_pch, 2), dtype=np.float64)
        self.next_refresh = np.zeros(num_pch, dtype=np.float64)
        self.refresh_bank = np.zeros(num_pch, dtype=np.int64)
        self.open_row = np.zeros((num_pch, num_banks), dtype=np.int64)
        self.next_act = np.zeros((num_pch, num_banks), dtype=np.float64)
        self.last_act_any = np.zeros(num_pch, dtype=np.float64)
        self.activates = np.zeros(num_pch, dtype=np.int64)
        self.row_hits = np.zeros(num_pch, dtype=np.int64)
        self.conflicts = np.zeros(num_pch, dtype=np.int64)
        self.counters = np.zeros(
            (num_pch, len(COUNTER_FIELDS)), dtype=np.int64)

    # -- scalar <-> array ----------------------------------------------------

    @classmethod
    def capture(cls, pchs: Sequence[PseudoChannel]) -> "DramStateSoA":
        """Snapshot ``pchs`` into a fresh SoA image."""
        if not pchs:
            raise ValueError("capture needs at least one pseudo-channel")
        soa = cls(len(pchs), len(pchs[0].banks.open_row))
        soa.refresh(pchs)
        return soa

    def refresh(self, pchs: Sequence[PseudoChannel]) -> None:
        """Re-read every field of ``pchs`` into this image in place."""
        for i, pch in enumerate(pchs):
            self.bus_free[i] = pch.bus_free
            self.last_dir[i] = pch.last_dir
            self.miss_streak[i] = pch.miss_streak
            self.last_miss_row[i] = pch.last_miss_row
            self.last_miss_delta[i] = [
                DELTA_NONE if d is None else d for d in pch.last_miss_delta]
            self.chan_debt[i] = pch.chan_debt
            self.next_refresh[i] = pch.next_refresh
            self.refresh_bank[i] = pch.refresh_bank
            banks = pch.banks
            self.open_row[i] = banks.open_row
            self.next_act[i] = banks.next_act
            self.last_act_any[i] = banks.last_act_any
            self.activates[i] = banks.activates
            self.row_hits[i] = banks.row_hits
            self.conflicts[i] = banks.conflicts
            c = pch.counters
            for j, name in enumerate(COUNTER_FIELDS):
                self.counters[i, j] = getattr(c, name)

    def restore(self, pchs: Sequence[PseudoChannel]) -> None:
        """Write this image back onto ``pchs``, field for field."""
        if len(pchs) != len(self.bus_free):
            raise ValueError(
                f"image holds {len(self.bus_free)} PCHs, got {len(pchs)}")
        for i, pch in enumerate(pchs):
            pch.bus_free = float(self.bus_free[i])
            pch.last_dir = int(self.last_dir[i])
            pch.miss_streak = int(self.miss_streak[i])
            pch.last_miss_row = [int(v) for v in self.last_miss_row[i]]
            pch.last_miss_delta = [
                None if v == DELTA_NONE else int(v)
                for v in self.last_miss_delta[i]]
            pch.chan_debt = [float(v) for v in self.chan_debt[i]]
            pch.next_refresh = float(self.next_refresh[i])
            pch.refresh_bank = int(self.refresh_bank[i])
            banks = pch.banks
            banks.open_row = [int(v) for v in self.open_row[i]]
            banks.next_act = [float(v) for v in self.next_act[i]]
            banks.last_act_any = float(self.last_act_any[i])
            banks.activates = int(self.activates[i])
            banks.row_hits = int(self.row_hits[i])
            banks.conflicts = int(self.conflicts[i])
            c = pch.counters
            for j, name in enumerate(COUNTER_FIELDS):
                setattr(c, name, int(self.counters[i, j]))

    # -- fingerprinting --------------------------------------------------------

    def arrays(self) -> List[np.ndarray]:
        """Every field array, in declaration order."""
        return [getattr(self, name) for name in self.__slots__]

    def digest(self) -> str:
        """SHA-256 over the raw bytes of every array (layout-stable)."""
        return soa_digest(self.arrays())


def soa_digest(arrays: Sequence[np.ndarray]) -> str:
    """Order-sensitive SHA-256 fingerprint of a sequence of arrays.

    Hashes each array's shape alongside its bytes so ``[1, 2] + [3]``
    and ``[1] + [2, 3]`` cannot collide.
    """
    h = hashlib.sha256()
    for a in arrays:
        h.update(str(a.shape).encode())
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()
