"""Cycle-timing model of one HBM pseudo-channel.

A pseudo-channel owns

* a shared bidirectional **data bus** (one 32 B beat per fabric cycle;
  switching direction costs turnaround dead time),
* a :class:`~repro.dram.bank.BankSet` for row/activate management,
* two AXI-side **port-rate gates** (R and W).  The HBM AXI ports are
  clocked in the accelerator's domain (300 MHz in the paper's setup), so
  each direction of a PCH moves at most ``port_ratio`` beats per fabric
  cycle — 2/3, i.e. 9.6 GB/s.  This is the paper's measured unidirectional
  hot-spot ceiling, while concurrent reads *and* writes still fill the
  DRAM bus to ~13 GB/s (Fig. 2 / Table IV).  The gates are token buckets
  with ``port_slack_cycles`` of burst tolerance so the controller can
  group same-direction transactions to amortize bus turnarounds,
* periodic **refresh** that blocks the channel for ``t_rfc`` every
  ``t_refi`` cycles (the 7-9 % loss Xilinx documents).

:meth:`PseudoChannel.service` consumes one transaction and returns its
``(transfer_start, data_exit)`` times; all resource meters advance as a
side effect.  The surrounding :class:`~repro.dram.controller.MemoryController`
decides *which* transaction to service (scheduling policy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..axi.transaction import AxiTransaction, STATUS_POISONED
from ..params import DramTiming
from .bank import BankSet


@dataclass
class PchCounters:
    """Diagnostic counters of one pseudo-channel."""

    txns_serviced: int = 0
    beats_transferred: int = 0
    read_beats: int = 0
    write_beats: int = 0
    turnarounds: int = 0
    port_stalls: int = 0
    miss_gaps: int = 0
    refreshes: int = 0
    ecc_corrected: int = 0
    ecc_uncorrectable: int = 0

    def merge(self, other: "PchCounters") -> None:
        self.txns_serviced += other.txns_serviced
        self.beats_transferred += other.beats_transferred
        self.read_beats += other.read_beats
        self.write_beats += other.write_beats
        self.turnarounds += other.turnarounds
        self.port_stalls += other.port_stalls
        self.miss_gaps += other.miss_gaps
        self.refreshes += other.refreshes
        self.ecc_corrected += other.ecc_corrected
        self.ecc_uncorrectable += other.ecc_uncorrectable


@dataclass
class PchFaultState:
    """Mutable fault condition of one pseudo-channel.

    Installed lazily by the :class:`~repro.faults.FaultInjector` when a
    fault first targets the channel; ``PseudoChannel.fault`` stays
    ``None`` on the fault-free path, so healthy runs pay one attribute
    check per service call and nothing else.
    """

    #: Hard failure: the channel stopped servicing (permanent).
    offline: bool = False
    #: Timing multiplier window (refresh storm / thermal throttle).
    slow_until: float = -1.0
    slow_factor: float = 1.0
    #: Data-corruption window; ``ecc`` classifies each transferred beat.
    corrupt_until: float = -1.0
    corrupt_rate: float = 0.0
    ecc: Optional[object] = None  # duck-typed SecdedModel


_DIR_NONE = -1
_DIR_READ = 0
_DIR_WRITE = 1


class PseudoChannel:
    """Timing state of one pseudo-channel's DRAM and AXI port."""

    __slots__ = ("index", "timing", "port_ratio", "banks", "bus_free",
                 "last_dir", "miss_streak", "last_miss_row",
                 "last_miss_delta", "chan_debt", "next_refresh", "refresh_bank",
                 "counters", "fault")

    def __init__(self, index: int, timing: DramTiming,
                 refresh_phase: int = 0, port_ratio: float = 2.0 / 3.0) -> None:
        self.index = index
        self.timing = timing
        self.port_ratio = port_ratio
        self.banks = BankSet(timing)
        #: Cycle from which the shared data bus is free again.
        self.bus_free: float = 0.0
        self.last_dir: int = _DIR_NONE
        self.miss_streak: int = 0
        #: Per-direction row of the previous miss / its row stride, used
        #: to classify a miss stream as regular (strided) or irregular.
        self.last_miss_row = [-1, -1]
        self.last_miss_delta = [None, None]
        #: Token-bucket debt of the per-direction AXI port [read, write].
        self.chan_debt = [0.0, 0.0]
        #: Stagger refresh phases across PCHs so the device does not pause
        #: globally (real HBM controllers do the same).  Phase 0 means the
        #: first refresh lands a full interval in.
        phase = refresh_phase % timing.t_refi
        first = timing.t_refi / timing.num_banks if timing.per_bank_refresh \
            else timing.t_refi
        self.next_refresh: float = float(phase if phase else first)
        self.refresh_bank = 0
        self.counters = PchCounters()
        #: Fault condition, or ``None`` while healthy (the common case).
        self.fault: Optional[PchFaultState] = None

    # -- scheduling gates -------------------------------------------------------

    def ready_for_service(self, cycle: int, horizon: float) -> bool:
        """Whether new work may be committed at ``cycle``.

        The controller schedules ahead of the data bus by ``horizon``
        cycles so row activates overlap with ongoing transfers (bank-level
        parallelism); once the bus is booked further ahead than the
        horizon, scheduling pauses.
        """
        return self.bus_free < cycle + horizon

    def channel_open(self, is_read: bool, cycle: int) -> bool:
        """Whether the direction's port-rate gate admits another burst."""
        d = _DIR_READ if is_read else _DIR_WRITE
        open_ = self.chan_debt[d] <= cycle + self.timing.port_slack_cycles
        if not open_:
            self.counters.port_stalls += 1
        return open_

    # -- simulation ----------------------------------------------------------

    def service(self, txn: AxiTransaction, cycle: int,
                cmd_ready: float) -> tuple[float, float]:
        """Commit ``txn`` to the DRAM and advance all meters.

        Parameters
        ----------
        txn:
            The transaction; ``txn.local`` must hold its local offset.
        cycle:
            Current fabric cycle (decision time).
        cmd_ready:
            Earliest cycle the MC command path allows (shared per MC).

        Returns
        -------
        (transfer_start, data_exit):
            When the data bus transfer begins, and when the last beat (plus
            column latency) leaves towards the requester (reads) or is
            committed (writes).
        """
        t = self.timing
        # Refresh: catch up on any due refresh windows first.
        if t.per_bank_refresh:
            # Rotate through the banks: one bank blocks for t_rfc_pb every
            # t_refi/num_banks; the data bus and other banks keep working.
            interval = t.t_refi / t.num_banks
            while cycle >= self.next_refresh:
                bank = self.refresh_bank
                start = max(self.next_refresh, self.banks.next_act[bank])
                self.banks.next_act[bank] = start + t.t_rfc_pb
                self.refresh_bank = (bank + 1) % t.num_banks
                self.next_refresh += interval
                self.counters.refreshes += 1
        else:
            while cycle >= self.next_refresh:
                busy = self.bus_free if self.bus_free > self.next_refresh else self.next_refresh
                self.bus_free = busy + t.t_rfc
                self.next_refresh += t.t_refi
                self.counters.refreshes += 1

        earliest = float(cycle) if cycle > cmd_ready else cmd_ready
        column_ready, hit = self.banks.access(txn.local, earliest)

        d = _DIR_READ if txn.is_read else _DIR_WRITE
        # Shared data bus with direction turnaround.
        bus = self.bus_free
        if self.last_dir != d and self.last_dir != _DIR_NONE:
            bus += t.t_turnaround_rd_to_wr if d == _DIR_WRITE else t.t_turnaround_wr_to_rd
            self.counters.turnarounds += 1
        self.last_dir = d
        if not hit:
            # Sustained *irregular* row-miss streams expose part of the
            # precharge + activate latency on the data path: constant-
            # stride miss sequences pipeline their activates evenly, while
            # random row sequences clump them (tFAW/bank-group pressure).
            row = txn.local // t.row_bytes
            prev_row = self.last_miss_row[d]
            delta = row - prev_row if prev_row >= 0 else None
            regular = delta is not None and delta == self.last_miss_delta[d]
            if self.miss_streak >= 2 and not regular:
                bus += t.t_miss_gap
                self.counters.miss_gaps += 1
            self.last_miss_row[d] = row
            self.last_miss_delta[d] = delta
            self.miss_streak += 1
        else:
            self.miss_streak = 0

        start = column_ready if column_ready > bus else bus
        burst = txn.burst_len
        fault = self.fault
        if fault is not None and cycle < fault.slow_until:
            # Refresh storm / thermal throttle: the transfer occupies the
            # bus ``slow_factor`` times longer (the paper's effective-
            # bandwidth collapse under adverse DRAM conditions).
            end = start + burst * fault.slow_factor
        else:
            end = start + burst
        self.bus_free = end
        # Port-rate token bucket: the direction's long-run beat rate is
        # capped at the accelerator-domain port clock.
        debt = self.chan_debt[d]
        base = debt if debt > start else start
        self.chan_debt[d] = base + burst / self.port_ratio

        c = self.counters
        c.txns_serviced += 1
        c.beats_transferred += burst
        if d == _DIR_READ:
            if (fault is not None and fault.ecc is not None
                    and cycle < fault.corrupt_until):
                # SECDED classification of each read beat leaving the
                # DRAM; keyed by the channel's cumulative beat counter so
                # the outcome is path-independent (see repro.faults.ecc).
                corr, uncorr = fault.ecc.classify_burst(
                    self.index, c.read_beats, burst, fault.corrupt_rate)
                c.ecc_corrected += corr
                if uncorr:
                    c.ecc_uncorrectable += uncorr
                    txn.status = STATUS_POISONED
            c.read_beats += burst
            exit_time = end + t.cas_latency
        else:
            c.write_beats += burst
            exit_time = end + t.write_latency
        return start, exit_time

    # -- reporting -----------------------------------------------------------

    def utilization(self, cycles: int) -> float:
        """Fraction of elapsed cycles the data bus moved beats."""
        if cycles <= 0:
            return 0.0
        return min(1.0, self.counters.beats_transferred / cycles)
