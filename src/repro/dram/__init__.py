"""DRAM-side models: banks, pseudo-channels, and memory controllers.

One HBM pseudo-channel (PCH) owns a 64-bit DDR bus to its memory
subsection; on the Xilinx device every two PCHs share one memory
controller (MC) that performs the AXI-to-DDR protocol conversion (Fig. 1).
The timing phenomena the paper measures all live here:

* DRAM **page** (row) latching: accesses to an open page are fast, row
  changes cost precharge + activate (Sec. IV-A, burst-length analysis);
* the **bidirectional** DDR data bus: concurrent AXI reads and writes pay
  bus-turnaround dead time (Fig. 2);
* **refresh** cycles that remove 7-9 % of the theoretical bandwidth;
* the AXI-side **multiplexing dead cycles** when the port switches between
  requesting masters, and the MC **command path** shared by the two PCHs
  of a controller (what makes burst-length-1 traffic command-bound).
"""

from .bank import BankSet
from .pch import PseudoChannel, PchCounters
from .controller import MemoryController, SchedulerConfig

__all__ = [
    "BankSet",
    "PseudoChannel",
    "PchCounters",
    "MemoryController",
    "SchedulerConfig",
]
