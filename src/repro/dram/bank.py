"""Per-bank DRAM row state.

A pseudo-channel's local address space is striped over rows of
``row_bytes`` bytes; row ``r`` lives in bank ``r % num_banks``.  Each bank
remembers its open row and the earliest cycle it may activate again
(``t_rc`` after its previous activate).  Activates to *different* banks may
be pipelined every ``t_rrd`` cycles, which is what lets streaming access
hide row changes while same-bank ping-pong (long strides, Fig. 5) cannot.
"""

from __future__ import annotations

from ..params import DramTiming


class BankSet:
    """Row/activate state of all banks of one pseudo-channel."""

    __slots__ = ("timing", "open_row", "next_act", "last_act_any",
                 "activates", "row_hits", "conflicts")

    def __init__(self, timing: DramTiming) -> None:
        self.timing = timing
        n = timing.num_banks
        #: Open row per bank; -1 means closed (power-up state).
        self.open_row = [-1] * n
        #: Earliest cycle each bank may activate again (tRC rule).
        self.next_act = [0.0] * n
        #: Most recent activate on *any* bank (tRRD rule).
        self.last_act_any = -1.0e18
        self.activates = 0
        self.row_hits = 0
        #: Misses that closed a *different* open row first (precharge
        #: paid); ``activates - conflicts`` opened a cold bank.
        self.conflicts = 0

    def bank_of(self, local_addr: int) -> int:
        row = local_addr // self.timing.row_bytes
        return row % self.timing.num_banks

    def row_of(self, local_addr: int) -> int:
        return local_addr // self.timing.row_bytes

    def would_hit(self, local_addr: int) -> bool:
        """Whether an access to ``local_addr`` would hit the open row
        (used by the controller's FR-FCFS-style scheduler)."""
        row = local_addr // self.timing.row_bytes
        return self.open_row[row % self.timing.num_banks] == row

    def access(self, local_addr: int, earliest: float) -> tuple[float, bool]:
        """Perform the row management for an access starting no earlier than
        ``earliest``.

        Returns ``(column_ready, was_hit)``: the cycle from which column
        commands may issue, and whether the access hit the open row.
        """
        t = self.timing
        row = local_addr // t.row_bytes
        bank = row % t.num_banks
        if self.open_row[bank] == row:
            self.row_hits += 1
            return earliest, True
        # Row miss: (precharge if a row is open, then) activate.
        act = earliest
        nxt = self.next_act[bank]
        if nxt > act:
            act = nxt
        rrd_ready = self.last_act_any + t.t_rrd
        if rrd_ready > act:
            act = rrd_ready
        if self.open_row[bank] < 0:
            penalty = t.t_rcd
        else:
            penalty = t.t_rp + t.t_rcd
            self.conflicts += 1
        self.open_row[bank] = row
        self.next_act[bank] = act + t.t_rc
        self.last_act_any = act
        self.activates += 1
        return act + penalty, False

    def park(self, until: float) -> None:
        """Block all activates until ``until`` and close every row.

        Used by the fault model (refresh storm / thermal throttle): a
        storm of back-to-back refreshes closes the open rows and keeps
        the banks busy, so the first access afterwards pays a full
        activate on a cold bank.
        """
        for bank in range(self.timing.num_banks):
            if self.next_act[bank] < until:
                self.next_act[bank] = until
            self.open_row[bank] = -1

    @property
    def hit_rate(self) -> float:
        total = self.activates + self.row_hits
        return self.row_hits / total if total else 0.0
