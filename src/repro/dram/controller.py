"""Memory controller: AXI-to-DDR conversion and transaction scheduling.

On the Xilinx device every two pseudo-channels share one memory controller
(Fig. 1).  The controller model owns

* a shared **request FIFO** (the landing zone of the interconnect),
* a shared **command path** meter: each transaction occupies it for
  ``cmd_cycles_per_txn`` cycles, which bounds small-burst transaction rates
  (the burst-length-1 penalty of Fig. 3),
* one **scheduler queue per PCH** with an FR-FCFS-style pick inside a
  bounded reorder ``window``: open-row hits and direction-grouping are
  preferred, which is how real controllers "more efficiently coalesce
  accesses and increase DRAM page hits" (Sec. IV-B).

The per-master ``reorder_depth`` models the number of independent AXI IDs
(and the MAO's reorder buffers): a transaction may only be picked ahead of
at most ``reorder_depth - 1`` earlier transactions of the *same* master.
Depth 1 forces strict per-master order — the leftmost point of Fig. 6.

Write responses are *posted*: the B handshake is generated when the write
is accepted into a scheduler queue (the Xilinx controller acknowledges
bufferable writes early); flow control still applies because the queues
are bounded.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..axi.transaction import AxiTransaction
from ..errors import ConfigError
from ..params import DramTiming
from ..types import Direction
from .pch import PseudoChannel

#: Callback signature: (txn, time) for completed read data / accepted write.
CompletionFn = Callable[[AxiTransaction, float], None]
#: Callback telling the fabric whether a PCH's response path has space.
SpaceFn = Callable[[int], bool]


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunables of the controller's transaction scheduler."""

    window: int = 16
    """Entries of each PCH queue the scheduler may pick from (the
    controller-internal reordering Wang et al. configure)."""

    reorder_depth: int = 32
    """Max per-master out-of-order distance (independent AXI IDs).  This is
    the x-axis of Fig. 6."""

    queue_capacity: int = 48
    """Per-PCH scheduler queue depth (backpressure boundary)."""

    request_fifo_capacity: int = 16
    """Shared landing FIFO depth per controller."""

    horizon: float = 48.0
    """How many cycles ahead of the data bus the scheduler commits work, so
    activates overlap with ongoing transfers."""

    hit_bonus: int = 2
    """Score bonus for open-row hits (FR part of FR-FCFS)."""

    dir_bonus: int = 1
    """Score bonus for keeping the bus direction (turnaround grouping)."""

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigError("scheduler window must be >= 1")
        if self.reorder_depth < 1:
            raise ConfigError("reorder_depth must be >= 1")
        if self.queue_capacity < self.window:
            raise ConfigError("queue_capacity must be >= window")


class MemoryController:
    """One memory controller fronting ``len(pchs)`` pseudo-channels."""

    def __init__(
        self,
        index: int,
        pchs: List[PseudoChannel],
        timing: DramTiming,
        sched: SchedulerConfig,
        *,
        on_read_data: CompletionFn,
        on_write_accept: CompletionFn,
        response_space: SpaceFn,
        mc_latency: int = 0,
        on_nack: Optional[CompletionFn] = None,
    ) -> None:
        self.index = index
        self.pchs = pchs
        self.timing = timing
        self.sched = sched
        self.on_read_data = on_read_data
        self.on_write_accept = on_write_accept
        self.response_space = response_space
        self.mc_latency = mc_latency
        #: Bounce path for requests that hit an offline pseudo-channel
        #: (wired by the fabric; used only under a degradation policy).
        self.on_nack = on_nack
        #: Degradation policy flag, set by the fault injector: when true,
        #: requests arriving at an offline PCH are NACKed back to their
        #: master instead of queueing forever.
        self.degrade_offline = False
        #: Shared command-path meter.
        self.cmd_free: float = 0.0
        #: Per-PCH scheduler queues (txns with .pch/.local already set).
        self.queues: List[List[AxiTransaction]] = [[] for _ in pchs]
        #: Pending read-data events: (exit_time, seq, txn, local_pch_idx).
        self._pending: List[tuple] = []
        self._seq = 0
        self.accepts = 0
        self._local_index = {p.index: i for i, p in enumerate(pchs)}
        #: Optional acceptance hook (vector engine): called once per
        #: transaction queued by :meth:`try_accept`, so a due-time cache
        #: can re-arm a controller it believed idle.
        self.waker: Optional[Callable[["MemoryController"], None]] = None

    # -- fabric-facing -------------------------------------------------------

    def local_index(self, pch: int) -> int:
        try:
            return self._local_index[pch]
        except KeyError:
            raise ConfigError(
                f"PCH {pch} not fronted by MC {self.index}") from None

    def try_accept(self, txn: AxiTransaction, cycle: int) -> bool:
        """Accept a transaction into its PCH scheduler queue.

        Returns ``False`` (backpressure) when the queue is full; the fabric
        leaves the flit in its landing FIFO and retries next cycle.
        """
        li = self.local_index(txn.pch)
        fault = self.pchs[li].fault
        if fault is not None and fault.offline and self.degrade_offline \
                and self.on_nack is not None:
            # Dead channel under a degradation policy: bounce the request
            # so the master's retry re-resolves through the remap table.
            self.on_nack(txn, float(cycle))
            return True
        q = self.queues[li]
        if len(q) >= self.sched.queue_capacity:
            return False
        txn.accept_cycle = cycle
        q.append(txn)
        self.accepts += 1
        if self.waker is not None:
            self.waker(self)
        if txn.is_write:
            # Posted write: B response on acceptance into the queue.
            self.on_write_accept(txn, float(cycle))
        return True

    # -- simulation ----------------------------------------------------------

    def step(self, cycle: int) -> None:
        for q in self.queues:
            if q:
                self._schedule(cycle)
                break
        if self._pending:
            self._deliver_read_data(cycle)

    def _schedule(self, cycle: int) -> None:
        s = self.sched
        commit_horizon = cycle + s.horizon
        for li, pch in enumerate(self.pchs):
            fault = pch.fault
            if fault is not None and fault.offline:
                # A dead channel services nothing; without a degradation
                # policy its queued requests sit here until the watchdog
                # turns the silence into a TransactionTimeout.
                continue
            q = self.queues[li]
            # Inlined pch.ready_for_service(cycle, s.horizon) — this loop
            # runs every cycle for every pseudo-channel.
            while q and pch.bus_free < commit_horizon:
                idx = self._pick(q, pch, cycle)
                if idx is None:
                    break
                txn = q.pop(idx)
                start, exit_time = pch.service(txn, cycle, self.cmd_free)
                base = float(cycle) if cycle > self.cmd_free else self.cmd_free
                self.cmd_free = base + self.timing.cmd_cycles_per_txn
                if txn.is_read:
                    self._seq += 1
                    heapq.heappush(
                        self._pending,
                        (exit_time + self.mc_latency, self._seq, txn, li))

    def _pick(self, q: List[AxiTransaction], pch: PseudoChannel,
              cycle: int) -> Optional[int]:
        """FR-FCFS-style pick inside the reorder window.

        Returns the queue index to service, or ``None`` if nothing is
        eligible (e.g. the response path is full for every candidate read,
        or both direction gates are exhausted).
        """
        s = self.sched
        banks = pch.banks
        last_dir = pch.last_dir
        best_idx: Optional[int] = None
        best_score = -1
        limit = min(len(q), s.window)
        # The per-master order constraint can only bind when a master may
        # have more than ``reorder_depth`` entries inside the window.
        track_order = s.reorder_depth < limit
        seen: dict = {} if track_order else None
        resp_ok: Optional[bool] = None
        gate_ok = [None, None]  # cached per direction
        max_score = s.hit_bonus + s.dir_bonus
        read_dir = Direction.READ
        for i in range(limit):
            txn = q[i]
            if track_order:
                m = txn.master
                order = seen.get(m, 0)
                seen[m] = order + 1
                if order >= s.reorder_depth:
                    continue
            is_read = txn.direction is read_dir
            d = 0 if is_read else 1
            ok = gate_ok[d]
            if ok is None:
                ok = gate_ok[d] = pch.channel_open(is_read, cycle)
            if not ok:
                continue
            if is_read:
                if resp_ok is None:
                    resp_ok = self.response_space(pch.index)
                if not resp_ok:
                    continue
            score = 0
            if banks.would_hit(txn.local):
                score += s.hit_bonus
            if d == last_dir:
                score += s.dir_bonus
            if score > best_score:
                best_score = score
                best_idx = i
                if score == max_score:
                    break  # cannot do better
        return best_idx

    def _deliver_read_data(self, cycle: int) -> None:
        pending = self._pending
        while pending and pending[0][0] <= cycle:
            _, _, txn, li = heapq.heappop(pending)
            self.on_read_data(txn, float(cycle))

    def next_event(self, cycle: int) -> float:
        """Earliest future cycle at which :meth:`step` could change state.

        Conservative: any queued transaction means work may be scheduled
        next cycle (whether a scheduling gate actually opens is left to
        the per-cycle logic); otherwise only pending read-data deliveries
        remain, whose due times are known exactly.  ``math.inf`` when the
        controller is empty.
        """
        for q in self.queues:
            if q:
                return cycle + 1
        if self._pending:
            t = math.ceil(self._pending[0][0])
            return t if t > cycle + 1 else cycle + 1
        return math.inf

    # -- invariants / reporting ----------------------------------------------

    def flush_offline(self, pch_index: int, cycle: int) -> List[AxiTransaction]:
        """Evict everything queued for a (newly offline) pseudo-channel.

        Returns the evicted transactions; the caller (the fault injector,
        under a degradation policy) NACKs them back to their masters.
        Read data already committed to the DRAM bus (``_pending``) still
        delivers — the failure point is the command interface, not data
        in flight out of the channel.
        """
        li = self.local_index(pch_index)
        q = self.queues[li]
        flushed = list(q)
        q.clear()
        return flushed

    def queued(self, pch_index: int) -> int:
        """Scheduler-queue depth of one fronted PCH (telemetry gauge)."""
        return len(self.queues[self.local_index(pch_index)])

    def pending_reads(self, pch_index: int) -> int:
        """Read-data events booked but not yet delivered for a PCH."""
        return sum(1 for item in self._pending if self.pchs[item[3]].index == pch_index)

    def in_flight(self) -> int:
        """Transactions buffered anywhere inside this controller."""
        return sum(len(q) for q in self.queues) + len(self._pending)
