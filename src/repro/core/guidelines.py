"""Design-guideline advisor derived from the paper's analysis.

Sec. IV distills the measurements into rules a designer "always needs to
consider when dealing with HBM".  This module encodes them as checkable
rules over an accelerator description, so the library can warn about the
exact pitfalls the paper measured:

1. a reduced clock must be compensated by a concurrent read/write ratio
   (Fig. 2),
2. bursts must be long enough to amortize command handling (Fig. 3),
3. enough transactions must be outstanding to cover the round trip,
4. accesses must spread over all channels at every point in time
   (Fig. 3b/3d) — interleave or partition,
5. lateral routing should be avoided or minimized (Fig. 4, Table II),
6. random patterns need reordering freedom (Fig. 6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..types import FabricKind, Pattern, RWRatio


class Severity(enum.Enum):
    OK = "ok"
    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"


@dataclass(frozen=True)
class Guideline:
    """One finding of the advisor."""

    rule: str
    severity: Severity
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity.value.upper():8s}] {self.rule}: {self.message}"


@dataclass(frozen=True)
class DesignDescription:
    """What the advisor needs to know about an accelerator design."""

    accel_clock_hz: int = 300_000_000
    rw: RWRatio = RWRatio(2, 1)
    burst_len: int = 16
    outstanding: int = 32
    pattern: Pattern = Pattern.CCS
    fabric: FabricKind = FabricKind.XLNX
    uses_interleaving: bool = False
    latency_sensitive: bool = False


def evaluate_guidelines(
    design: DesignDescription,
    platform: HbmPlatform = DEFAULT_PLATFORM,
) -> List[Guideline]:
    """Check a design against the paper's guidelines."""
    findings: List[Guideline] = []
    f = findings.append

    # Rule 1: clock-frequency compensation (Fig. 2).
    full_rate_hz = platform.fabric_clock_hz
    ratio = design.accel_clock_hz / full_rate_hz
    if ratio >= 1.0:
        f(Guideline("clock", Severity.OK,
                    "accelerator runs at the full HBM port rate"))
    elif not (design.rw.read_only or design.rw.write_only):
        f(Guideline("clock", Severity.OK,
                    f"reduced clock ({design.accel_clock_hz/1e6:.0f} MHz) is "
                    f"compensated by the {design.rw} read/write ratio"))
    else:
        f(Guideline("clock", Severity.WARNING,
                    f"unidirectional traffic at {design.accel_clock_hz/1e6:.0f} MHz "
                    f"caps each port at {ratio:.0%} of the HBM rate; add "
                    "concurrent reads/writes or raise the clock (Sec. IV-A)"))

    # Rule 2: burst length (Fig. 3).
    if design.burst_len >= 4:
        f(Guideline("burst", Severity.OK,
                    f"burst length {design.burst_len} amortizes command "
                    "handling and mux dead cycles"))
    elif design.burst_len == 1:
        f(Guideline("burst", Severity.CRITICAL,
                    "burst length 1 halves throughput even for strided "
                    "patterns (Fig. 3); use >= 4"))
    else:
        f(Guideline("burst", Severity.WARNING,
                    f"burst length {design.burst_len} loses throughput under "
                    "mixed load/store traffic; prefer >= 4 (Fig. 3)"))

    # Rule 3: outstanding transactions must cover the round trip.
    # Closed-page read round trip is ~48 accelerator cycles; each
    # transaction supplies burst_len beats.
    round_trip_beats = 48
    covered = design.outstanding * design.burst_len
    if covered >= round_trip_beats:
        f(Guideline("outstanding", Severity.OK,
                    f"{design.outstanding} outstanding x BL{design.burst_len} "
                    "covers the AXI round trip"))
    else:
        f(Guideline("outstanding", Severity.CRITICAL,
                    f"only {covered} beats in flight; the ~{round_trip_beats}-"
                    "cycle round trip will stall the bus pipeline (Sec. IV-A)"))

    # Rule 4: channel parallelism (Fig. 3b / 3d).
    if design.pattern.is_single_channel:
        f(Guideline("channels", Severity.INFO,
                    "manual single-channel partitioning: maximal throughput "
                    "but data must be prepartitioned (and possibly duplicated)"))
    elif design.uses_interleaving or design.fabric is FabricKind.MAO:
        f(Guideline("channels", Severity.OK,
                    "address interleaving spreads contiguous data over all "
                    "channels"))
    elif design.pattern.is_random:
        f(Guideline("channels", Severity.WARNING,
                    "random global traffic reaches all channels but suffers "
                    "fabric contention (Fig. 3d); consider the MAO"))
    else:
        f(Guideline("channels", Severity.CRITICAL,
                    "contiguous data under the vendor address map collapses "
                    "onto one PCH (hot-spot, 2.8 % of peak, Fig. 3b); "
                    "interleave or partition"))

    # Rule 5: lateral routing (Fig. 4, Table II).
    if design.fabric is FabricKind.XLNX and not design.pattern.is_single_channel:
        sev = Severity.WARNING if not design.latency_sensitive else Severity.CRITICAL
        f(Guideline("lateral", sev,
                    "cross-channel traffic routes over the lateral switch "
                    "buses: expect throughput loss (Fig. 4) and high latency "
                    "variance (Table II); minimize lateral hops or use a "
                    "hierarchical network"))
    else:
        f(Guideline("lateral", Severity.OK, "no lateral routing expected"))

    # Rule 6: reordering for random patterns (Fig. 6).
    if design.pattern.is_random and design.outstanding < 8:
        f(Guideline("reorder", Severity.WARNING,
                    "random patterns need reordering freedom; provide more "
                    "independent AXI IDs / outstanding transactions (Fig. 6)"))
    elif design.pattern.is_random:
        f(Guideline("reorder", Severity.OK,
                    "sufficient reordering freedom for random access"))
    return findings


def worst_severity(findings: List[Guideline]) -> Severity:
    """The most severe finding (OK < INFO < WARNING < CRITICAL)."""
    order = [Severity.OK, Severity.INFO, Severity.WARNING, Severity.CRITICAL]
    worst = Severity.OK
    for g in findings:
        if order.index(g.severity) > order.index(worst):
            worst = g.severity
    return worst
