"""Configuration of the Memory Access Optimizer (MAO) IP core.

The MAO (Sec. IV-B, Table III) is the paper's ready-to-use IP core that
sits between the accelerator's bus masters and the HBM interface.  It
combines the three architectural adaptions derived from the analysis:

1. hierarchical distribution network (no lateral bottlenecks),
2. interleaved address mapping (automatic channel parallelism),
3. reorder buffers near the bus masters (early out-of-order acceptance).

Four synthesizable variants exist (Table III): *Full* replaces the vendor
switch fabric entirely, *Partial* reuses the local 4x4 crossbars but
leaves the lateral connections unused; each comes with one hierarchical
stage (12-cycle latency) or two (25-cycle read latency).  The paper's
Table IV measurements use variant four (Partial, two stages).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigError
from ..params import NUM_PCH


class MaoVariant(enum.Enum):
    """Integration style of the MAO core (Table III)."""

    FULL = "full"
    """Completely replaces the vendor bus fabric."""

    PARTIAL = "partial"
    """Keeps the 4x4 local crossbars, leaves lateral connections unused."""


@dataclass(frozen=True)
class MaoConfig:
    """One MAO build configuration.

    Parameters mirror the knobs of Table III plus the interleaving and
    reordering parameters swept in Figs. 5 and 6.
    """

    variant: MaoVariant = MaoVariant.PARTIAL
    stages: int = 2
    """Hierarchical distribution stages (1 -> 12-cycle, 2 -> 25-cycle read
    path in Table III)."""

    num_ports: int = NUM_PCH
    """Bus-master ports offered (the paper keeps 32 for comparability)."""

    interleave_granularity: int = 512
    """Address interleaving chunk in bytes; 512 B matches the largest AXI3
    burst so one burst never straddles channels."""

    reorder_depth: int = 32
    """Independent AXI IDs per master == reorder-buffer depth (Fig. 6)."""

    interleave_enabled: bool = True
    """Ablation switch: MAO network without address interleaving."""

    def __post_init__(self) -> None:
        if self.stages not in (1, 2):
            raise ConfigError("MAO supports one or two hierarchical stages")
        if self.num_ports < 1:
            raise ConfigError("num_ports must be >= 1")
        if self.reorder_depth < 1:
            raise ConfigError("reorder_depth must be >= 1")
        if self.interleave_granularity < 32:
            raise ConfigError("interleave granularity below one beat")

    # -- latency model (Table III) ---------------------------------------------

    @property
    def read_latency_cycles(self) -> int:
        """Read-path core latency in accelerator cycles (Table III)."""
        return 12 if self.stages == 1 else 25

    @property
    def write_latency_cycles(self) -> int:
        """Write-path core latency in accelerator cycles (Table III)."""
        return 12

    @property
    def fmax_mhz(self) -> int:
        """Achievable clock of the configuration (Table III)."""
        if self.variant is MaoVariant.FULL:
            return 130 if self.stages == 1 else 150
        return 350 if self.stages == 1 else 360

    def describe(self) -> str:
        return (f"MAO {self.variant.value}, {self.stages} stage(s), "
                f"interleave {self.interleave_granularity} B, "
                f"reorder depth {self.reorder_depth}")


#: The configuration used for the paper's Table IV measurements.
TABLE_IV_CONFIG = MaoConfig(variant=MaoVariant.PARTIAL, stages=2)
