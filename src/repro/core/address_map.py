"""Global-address-to-pseudo-channel mapping schemes.

The Xilinx HBM controller maps "the memory capacity of every PCH
contiguously into successive sections of the global address space"
(Sec. II), so a buffer copied linearly into HBM lands entirely in one PCH
and every master contends for it — the *hot-spot* pattern of Fig. 3b.

The MAO's second architectural adaption (Sec. IV-B) changes this scheme so
data is *interleaved* between the PCHs: consecutive ``granularity``-byte
chunks rotate over all channels, so a contiguous access stream
automatically touches every channel.

Both maps are bijections between global addresses and ``(pch, local)``
pairs; the property tests verify this.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import AddressError, ConfigError
from ..params import BYTES_PER_BEAT, HbmPlatform, DEFAULT_PLATFORM


class AddressMap(ABC):
    """Bijection between global byte addresses and per-PCH local addresses."""

    def __init__(self, platform: HbmPlatform = DEFAULT_PLATFORM) -> None:
        self.platform = platform

    @property
    def capacity(self) -> int:
        return self.platform.total_capacity

    def check(self, address: int) -> None:
        if not 0 <= address < self.capacity:
            raise AddressError(
                f"address {address:#x} outside HBM capacity {self.capacity:#x}")

    @abstractmethod
    def pch_of(self, address: int) -> int:
        """Pseudo-channel holding the byte at ``address``."""

    @abstractmethod
    def local_of(self, address: int) -> int:
        """Local (within-PCH) byte offset of ``address``."""

    @abstractmethod
    def global_of(self, pch: int, local: int) -> int:
        """Inverse mapping: global address of ``(pch, local)``."""

    def decompose(self, address: int) -> tuple[int, int]:
        """Return ``(pch, local)`` for a global address."""
        return self.pch_of(address), self.local_of(address)

    def pchs_of_burst(self, address: int, num_bytes: int) -> set[int]:
        """All PCHs a ``num_bytes``-long access starting at ``address``
        touches.  AXI bursts are at most 512 B, far below any sensible
        interleave granularity, so in practice this is a single channel —
        but the helper exists for validation."""
        step = BYTES_PER_BEAT
        return {self.pch_of(a) for a in range(address, address + num_bytes, step)}


class ContiguousMap(AddressMap):
    """The Xilinx default: each PCH owns a contiguous address slice.

    ``pch = address // pch_capacity``.  This is what makes naively copied
    CPU buffers collapse onto a single channel (Sec. II, third drawback).
    """

    def pch_of(self, address: int) -> int:
        self.check(address)
        return address // self.platform.pch_capacity

    def local_of(self, address: int) -> int:
        self.check(address)
        return address % self.platform.pch_capacity

    def global_of(self, pch: int, local: int) -> int:
        cap = self.platform.pch_capacity
        if not 0 <= pch < self.platform.num_pch:
            raise AddressError(f"PCH {pch} out of range")
        if not 0 <= local < cap:
            raise AddressError(f"local offset {local:#x} out of range")
        return pch * cap + local

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ContiguousMap()"


@dataclass(frozen=True)
class _InterleaveGeometry:
    granularity: int
    num_pch: int

    @property
    def period(self) -> int:
        """Bytes of global address space per full rotation over all PCHs
        (16 KB for 32 channels at 512 B granularity — the lower knee of
        the paper's Fig. 5)."""
        return self.granularity * self.num_pch


class InterleavedMap(AddressMap):
    """MAO address interleaving: ``granularity``-byte chunks rotate over PCHs.

    ``pch = (address // granularity) % num_pch``; the local offset packs the
    master's chunks densely:
    ``local = (address // period) * granularity + address % granularity``.

    The default granularity of 512 B equals the largest AXI3 burst
    (16 beats x 32 B), so a maximal burst never straddles two channels while
    consecutive bursts land on consecutive channels.
    """

    DEFAULT_GRANULARITY = 512

    def __init__(
        self,
        platform: HbmPlatform = DEFAULT_PLATFORM,
        granularity: int = DEFAULT_GRANULARITY,
    ) -> None:
        super().__init__(platform)
        if granularity < BYTES_PER_BEAT or granularity % BYTES_PER_BEAT:
            raise ConfigError(
                f"interleave granularity must be a positive multiple of "
                f"{BYTES_PER_BEAT} B, got {granularity}")
        if platform.pch_capacity % granularity:
            raise ConfigError("granularity must divide the PCH capacity")
        self.geometry = _InterleaveGeometry(granularity, platform.num_pch)

    @property
    def granularity(self) -> int:
        return self.geometry.granularity

    @property
    def period(self) -> int:
        return self.geometry.period

    def pch_of(self, address: int) -> int:
        self.check(address)
        return (address // self.geometry.granularity) % self.geometry.num_pch

    def local_of(self, address: int) -> int:
        self.check(address)
        g = self.geometry.granularity
        return (address // self.geometry.period) * g + address % g

    def global_of(self, pch: int, local: int) -> int:
        g = self.geometry.granularity
        if not 0 <= pch < self.platform.num_pch:
            raise AddressError(f"PCH {pch} out of range")
        if not 0 <= local < self.platform.pch_capacity:
            raise AddressError(f"local offset {local:#x} out of range")
        chunk, offset = divmod(local, g)
        return chunk * self.geometry.period + pch * g + offset

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InterleavedMap(granularity={self.granularity})"
