"""The paper's primary contribution: the Memory Access Optimizer (MAO).

The MAO is an IP core inserted between the accelerator's bus masters and
the HBM AXI ports (the "Memory Access area" of Fig. 1).  It implements the
three architectural adaptions of Sec. IV-B:

1. a **hierarchical distribution network** replacing the lateral switch
   connections (:mod:`repro.fabric.mao_fabric`),
2. a **configurable address interleaving** so consecutive addresses spread
   over all pseudo-channels (:mod:`repro.core.address_map`),
3. **reorder buffers** near the bus masters that accept out-of-order
   responses early (:mod:`repro.core.reorder`).

This package also contains the analytical effective-bandwidth estimator
(:mod:`repro.core.estimator`) and the design-guideline advisor
(:mod:`repro.core.guidelines`) derived from the paper's analysis.
"""

from .address_map import AddressMap, ContiguousMap, InterleavedMap
from .mao import MaoConfig, MaoVariant
from .reorder import ReorderBuffer
from .estimator import BandwidthEstimator, EstimateInputs, Estimate
from .guidelines import Guideline, evaluate_guidelines

__all__ = [
    "AddressMap",
    "ContiguousMap",
    "InterleavedMap",
    "MaoConfig",
    "MaoVariant",
    "ReorderBuffer",
    "BandwidthEstimator",
    "EstimateInputs",
    "Estimate",
    "Guideline",
    "evaluate_guidelines",
]
