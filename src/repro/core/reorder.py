"""Per-master reorder buffer model.

The MAO's third adaption (Sec. IV-B): "further reorder buffers on the BM
side can free the bus fabric by accepting and storing out-of-order
transactions early".  A buffer of depth ``R`` behaves like ``R``
independent AXI IDs assigned round-robin: responses for the same ID must
stay in order, responses on different IDs may overtake each other.

Two views are provided:

* :meth:`ReorderBuffer.release_time` — the analytical timing rule used by
  the MAO fabric model: response ``k`` with completion time ``t`` releases
  at ``max(t, release_time_of(k - depth))``.
* a functional accept/drain API used by the unit and property tests to
  verify the ordering invariants directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ConfigError


class ReorderBuffer:
    """Reorder buffer of one bus master."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ConfigError("reorder depth must be >= 1")
        self.depth = depth
        self._issue_seq = 0
        #: Last release time per AXI ID lane.
        self._lane_release: List[float] = [float("-inf")] * depth
        # Functional view.
        self._pending: Dict[int, object] = {}
        self._next_drain = 0
        self._drained: List[object] = []

    # -- timing view -----------------------------------------------------------

    def issue(self) -> int:
        """Allocate the next sequence number (AXI ID = seq % depth)."""
        seq = self._issue_seq
        self._issue_seq += 1
        return seq

    def release_time(self, seq: int, completion_time: float) -> float:
        """When the response for ``seq`` may be handed to the master.

        Same-ID responses are strictly ordered, so a response cannot
        release before its lane's previous release.
        """
        lane = seq % self.depth
        release = completion_time
        prev = self._lane_release[lane]
        if prev > release:
            release = prev
        self._lane_release[lane] = release
        return release

    # -- functional view ---------------------------------------------------------

    def accept(self, seq: int, payload: object) -> None:
        """Store an out-of-order response; drains in per-lane order."""
        if seq in self._pending:
            raise ConfigError(f"duplicate response for seq {seq}")
        if seq >= self._issue_seq:
            raise ConfigError(f"response for unissued seq {seq}")
        self._pending[seq] = payload

    def drain(self) -> List[object]:
        """Release every response whose lane order allows it.

        Responses drain in global sequence order per lane; the buffer
        never releases seq ``k`` on a lane before seq ``k - depth``.
        """
        out: List[object] = []
        progressed = True
        while progressed:
            progressed = False
            # The earliest undrained seq on each lane is drainable.
            lane_next: Dict[int, int] = {}
            for seq in sorted(self._pending):
                lane = seq % self.depth
                if lane not in lane_next:
                    lane_next[lane] = seq
            for seq in sorted(lane_next.values()):
                # A lane's next response is only drainable if all earlier
                # seqs on the *same lane* have drained, which the
                # construction above guarantees.
                out.append(self._pending.pop(seq))
                progressed = True
        self._drained.extend(out)
        return out

    @property
    def occupancy(self) -> int:
        return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReorderBuffer(depth={self.depth}, occupancy={self.occupancy})"
