"""Analytical effective-bandwidth estimator (the paper's methodology).

Sec. IV derives the parameters that govern achievable HBM throughput:
design frequency ``facc``, bus width ``W``, read/write ratio ``RWrat``,
burst length ``BL``, outstanding transactions ``Not``, effectively used
channels ``Nch_eff``, effective lateral buses ``Nlat_eff`` and contention
losses ``Ccont``.  This module turns those into a closed-form bandwidth
estimate — the number a designer plugs into the Roofline model *before*
building anything (Sec. V: "we estimate the maximal achievable memory
throughput ... in advance").

The estimate is the largest total traffic ``T`` (split ``T_r : T_w``
according to the ratio) satisfying every resource constraint:

* per-master port supply per direction (``facc x W``),
* per-PCH DRAM data bus, derated by refresh and bus-turnaround mix,
* per-PCH per-direction AXI channel, derated by the multiplexing dead
  cycles when several masters share the channel,
* the MC command path (binds at small bursts),
* the lateral-bus bisection for cross-channel traffic on the segmented
  fabric.

All derations are computed from the same
:class:`~repro.params.DramTiming` / :class:`~repro.params.FabricTiming`
constants the cycle simulation uses, so estimator and simulator agree by
construction where the model is exact and the tests quantify the gap
where it is not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError
from ..params import HbmPlatform, DEFAULT_PLATFORM, gbps
from ..types import FabricKind, Pattern, RWRatio, TWO_TO_ONE


@dataclass(frozen=True)
class EstimateInputs:
    """Designer-facing inputs of the bandwidth estimate."""

    fabric: FabricKind = FabricKind.XLNX
    pattern: Pattern = Pattern.CCS
    rw: RWRatio = TWO_TO_ONE
    burst_len: int = 16
    outstanding: int = 32
    accel_clock_hz: Optional[int] = None
    """Accelerator clock; defaults to the platform's (300 MHz)."""

    num_masters: Optional[int] = None
    """Active bus masters; defaults to all 32."""

    def __post_init__(self) -> None:
        if not 1 <= self.burst_len <= 16:
            raise ConfigError("burst_len must be 1..16")
        if self.outstanding < 1:
            raise ConfigError("outstanding must be >= 1")


@dataclass(frozen=True)
class Estimate:
    """Result of a bandwidth estimate, in bytes/s plus diagnostics."""

    total_bytes_per_s: float
    read_bytes_per_s: float
    write_bytes_per_s: float
    bottleneck: str
    nch_eff: int
    notes: tuple = ()

    @property
    def total_gbps(self) -> float:
        return gbps(self.total_bytes_per_s)

    @property
    def read_gbps(self) -> float:
        return gbps(self.read_bytes_per_s)

    @property
    def write_gbps(self) -> float:
        return gbps(self.write_bytes_per_s)


class BandwidthEstimator:
    """Closed-form effective-bandwidth model of the platform."""

    def __init__(self, platform: HbmPlatform = DEFAULT_PLATFORM) -> None:
        self.platform = platform

    # -- deration factors ------------------------------------------------------

    def refresh_efficiency(self) -> float:
        """DRAM cycles left after refresh (the 7-9 % loss)."""
        t = self.platform.dram
        return 1.0 - t.t_rfc / t.t_refi

    def turnaround_efficiency(self, rw: RWRatio, burst_len: int,
                              window: int = 16) -> float:
        """Data-bus efficiency after read/write turnaround dead time.

        The controller groups same-direction transactions inside its
        reorder ``window``, so a mixed stream pays roughly two turnarounds
        per window of ``window`` transactions.
        """
        if rw.read_only or rw.write_only:
            return 1.0
        t = self.platform.dram
        beats = window * burst_len
        dead = t.t_turnaround_rd_to_wr + t.t_turnaround_wr_to_rd
        return beats / (beats + dead)

    def port_direction_limit(self, accel_hz: int) -> float:
        """Per-PCH per-direction byte rate of the AXI port.

        The HBM AXI ports run in the accelerator's clock domain, so each
        direction of a PCH moves at most ``accel_hz x 32 B`` — 9.6 GB/s at
        300 MHz, the paper's measured unidirectional hot-spot ceiling.
        """
        return float(min(accel_hz, self.platform.fabric_clock_hz)
                     * self.platform.bytes_per_beat)

    def command_path_limit(self, burst_len: int) -> float:
        """Per-PCH byte rate the shared MC command path allows."""
        t = self.platform.dram
        p = self.platform
        txn_rate = p.fabric_clock_hz / (t.cmd_cycles_per_txn * p.pch_per_mc)
        return txn_rate * burst_len * p.bytes_per_beat

    # -- channel effectiveness ---------------------------------------------------

    def effective_channels(self, inputs: EstimateInputs) -> int:
        """``Nch_eff``: channels that actually carry traffic."""
        p = self.platform
        if inputs.pattern.is_single_channel:
            return min(inputs.num_masters or p.num_masters, p.num_pch)
        if inputs.fabric is FabricKind.XLNX:
            # Contiguous map: globally contiguous data sits in one PCH
            # unless the pattern is random over the device.
            return p.num_pch if inputs.pattern.is_random else 1
        return p.num_pch

    def masters_share_channels(self, inputs: EstimateInputs) -> bool:
        """Whether several masters hit the same PCH."""
        return not inputs.pattern.is_single_channel

    def lateral_limit(self, inputs: EstimateInputs) -> float:
        """Bisection bound of the segmented fabric for cross-channel
        random traffic, in bytes/s.

        Uniform random traffic crosses the middle cut with probability
        1/2 x 1/2 x 2 = 1/2; two lateral buses per direction and parity
        serve it.  Head-of-line blocking pushes the practical limit below
        this (quantified by the cycle simulation).
        """
        p = self.platform
        per_bus = p.pch_peak_bytes_per_s
        buses = 2 * p.lateral_buses  # both directions across the middle cut
        crossing_fraction = 0.5
        return buses * per_bus / crossing_fraction

    # -- the estimate ----------------------------------------------------------------

    def estimate(self, inputs: EstimateInputs) -> Estimate:
        p = self.platform
        n_masters = inputs.num_masters or p.num_masters
        accel_hz = inputs.accel_clock_hz or p.accel_clock_hz
        fr = inputs.rw.read_fraction
        fw = inputs.rw.write_fraction
        nch = self.effective_channels(inputs)

        port_dir = accel_hz * p.bytes_per_beat  # per master, per direction
        pch_peak = p.pch_peak_bytes_per_s
        bus_eff = (self.refresh_efficiency()
                   * self.turnaround_efficiency(inputs.rw, inputs.burst_len))
        chan_dir = self.port_direction_limit(accel_hz)
        # Small bursts additionally bound by the command path.
        cmd_limit = self.command_path_limit(inputs.burst_len)

        constraints: list[tuple[str, float, float]] = []

        def add(name: str, coeff: float, capacity: float) -> None:
            """Constraint coeff * T <= capacity."""
            if coeff > 0:
                constraints.append((name, coeff, capacity))

        # Port supply (per direction, aggregated over masters).
        add("port-read", fr, port_dir * n_masters)
        add("port-write", fw, port_dir * n_masters)
        # Per-PCH DRAM data bus.
        add("dram-bus", 1.0, nch * min(pch_peak * bus_eff, cmd_limit))
        # Per-PCH per-direction AXI channel (accelerator-domain port clock).
        add("axi-read-channel", fr, nch * chan_dir)
        add("axi-write-channel", fw, nch * chan_dir)
        # Lateral bisection for cross-channel random traffic on XLNX.
        if (inputs.fabric is FabricKind.XLNX
                and not inputs.pattern.is_single_channel
                and inputs.pattern.is_random):
            add("lateral-bisection", 1.0, self.lateral_limit(inputs))

        best = math.inf
        bottleneck = "unconstrained"
        for name, coeff, cap in constraints:
            t = cap / coeff
            if t < best:
                best = t
                bottleneck = name

        notes = []
        if inputs.outstanding * inputs.burst_len < 48:
            notes.append(
                "outstanding x burst_len may not cover the AXI round trip; "
                "expect pipeline stalls (Sec. IV-A)")
        return Estimate(
            total_bytes_per_s=best,
            read_bytes_per_s=best * fr,
            write_bytes_per_s=best * fw,
            bottleneck=bottleneck,
            nch_eff=nch,
            notes=tuple(notes),
        )
