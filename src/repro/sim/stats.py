"""Statistics collection for simulation runs.

Latency aggregation uses Welford's online algorithm (numerically stable,
single pass, O(1) memory) so million-transaction runs do not accumulate
sample lists.  Throughput is derived from completed bytes inside the
measurement window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..axi.transaction import AxiTransaction
from ..params import HbmPlatform, gbps
from ..types import Direction

if TYPE_CHECKING:  # pragma: no cover
    from ..dram.pch import PseudoChannel


#: Buckets of the log2 latency histograms: bucket ``i`` counts round-trip
#: latencies (accelerator cycles) in ``[2**(i-1), 2**i)``, bucket 0 the
#: sub-cycle residue.  24 buckets cover anything a sane run produces.
HIST_BUCKETS = 24


def hist_bucket(latency: float) -> int:
    """Histogram bucket of one latency sample."""
    b = int(latency).bit_length()
    return b if b < HIST_BUCKETS else HIST_BUCKETS - 1


class OnlineStats:
    """Welford online mean/variance accumulator.

    With zero samples every statistic reports ``0.0`` — never the
    ``±inf`` extrema sentinels, which would leak non-JSON ``Infinity``
    into serialized reports of empty measurement windows.
    """

    __slots__ = ("count", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


@dataclass(frozen=True)
class LatencySummary:
    """Round-trip latency summary in accelerator-clock cycles."""

    count: int
    mean: float
    std: float
    min: float
    max: float

    @classmethod
    def from_online(cls, s: OnlineStats) -> "LatencySummary":
        if s.count == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0)
        return cls(s.count, s.mean, s.std, s.min, s.max)


@dataclass
class SimReport:
    """Everything one simulation run measured."""

    cycles: int
    warmup: int
    fabric_clock_hz: int
    read_bytes: int
    write_bytes: int
    read_latency: LatencySummary
    write_latency: LatencySummary
    issued: int
    completed: int
    in_flight_at_end: int
    per_pch_bytes: List[int]
    per_master_bytes: List[int]
    fabric_name: str = ""
    #: Log2 histograms of round-trip latency (accelerator cycles), one
    #: count per :data:`HIST_BUCKETS` bucket; empty when unrecorded.
    read_latency_hist: List[int] = field(default_factory=list)
    write_latency_hist: List[int] = field(default_factory=list)
    #: Resilience accounting (all zero on fault-free runs).
    retries: int = 0
    nacks: int = 0
    ecc_corrected: int = 0
    ecc_uncorrectable: int = 0
    unrecoverable: int = 0
    #: Pseudo-channels offline at the end of the run.
    dead_pchs: List[int] = field(default_factory=list)

    # -- derived -----------------------------------------------------------------

    @property
    def measured_cycles(self) -> int:
        return self.cycles - self.warmup

    @property
    def elapsed_seconds(self) -> float:
        return self.measured_cycles / self.fabric_clock_hz

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    @property
    def read_gbps(self) -> float:
        return gbps(self.read_bytes / self.elapsed_seconds)

    @property
    def write_gbps(self) -> float:
        return gbps(self.write_bytes / self.elapsed_seconds)

    @property
    def total_gbps(self) -> float:
        return gbps(self.total_bytes / self.elapsed_seconds)

    def fraction_of_peak(self, platform: HbmPlatform) -> float:
        """Throughput as a fraction of the device's theoretical peak."""
        peak = gbps(platform.device_peak_bytes_per_s)
        return self.total_gbps / peak if peak else 0.0

    def active_pchs(self, threshold_fraction: float = 0.01) -> int:
        """Channels that carried at least ``threshold_fraction`` of the mean
        per-channel traffic — the paper's effective channel count Nch_eff."""
        total = sum(self.per_pch_bytes)
        if total == 0:
            return 0
        mean = total / len(self.per_pch_bytes)
        return sum(1 for b in self.per_pch_bytes if b >= threshold_fraction * mean)

    def summary(self) -> str:
        return (f"[{self.fabric_name}] RD {self.read_gbps:7.2f} GB/s  "
                f"WR {self.write_gbps:7.2f} GB/s  total {self.total_gbps:7.2f} GB/s  "
                f"lat RD {self.read_latency.mean:7.1f}±{self.read_latency.std:<7.1f} "
                f"WR {self.write_latency.mean:7.1f}±{self.write_latency.std:<7.1f} "
                f"(accel cycles)")


class StatsCollector:
    """Accumulates per-run statistics during simulation.

    Throughput is measured at the DRAM: the engine snapshots the
    pseudo-channels' committed beat counters at the end of warmup and the
    report uses the delta — posted write acknowledgements therefore never
    inflate bandwidth with queue fill-up.  Latencies and distribution
    histograms come from per-transaction completions.
    """

    def __init__(self, platform: HbmPlatform, warmup: int) -> None:
        self.platform = platform
        self.warmup = warmup
        self.read_bytes = 0
        self.write_bytes = 0
        self.read_latency = OnlineStats()
        self.write_latency = OnlineStats()
        self.read_hist = [0] * HIST_BUCKETS
        self.write_hist = [0] * HIST_BUCKETS
        self.per_pch_bytes = [0] * platform.num_pch
        self.per_master_bytes = [0] * platform.num_masters
        self._dram_baseline: Optional[tuple] = None
        self._dram_final: Optional[tuple] = None
        #: ECC totals, filled by :meth:`finalize_dram`.
        self.ecc_corrected = 0
        self.ecc_uncorrectable = 0

    def record(self, txn: AxiTransaction, cycle: int) -> None:
        if cycle < self.warmup:
            return
        nbytes = txn.num_bytes
        if txn.is_read:
            self.read_bytes += nbytes
        else:
            self.write_bytes += nbytes
        if 0 <= txn.pch < len(self.per_pch_bytes):
            self.per_pch_bytes[txn.pch] += nbytes
        self.per_master_bytes[txn.master] += nbytes
        if txn.issue_cycle >= self.warmup:
            lat_fabric = txn.complete_cycle - txn.issue_cycle
            lat_accel = lat_fabric * self.platform.clock_ratio
            if txn.is_read:
                self.read_latency.add(lat_accel)
                self.read_hist[hist_bucket(lat_accel)] += 1
            else:
                self.write_latency.add(lat_accel)
                self.write_hist[hist_bucket(lat_accel)] += 1

    # -- DRAM-side accounting ---------------------------------------------------

    @staticmethod
    def _dram_totals(pchs: Sequence["PseudoChannel"]) -> Tuple[int, int]:
        rd = sum(p.counters.read_beats for p in pchs)
        wr = sum(p.counters.write_beats for p in pchs)
        return rd, wr

    def snapshot_dram(self, pchs: Sequence["PseudoChannel"]) -> None:
        """Called by the engine when the warmup window ends."""
        self._dram_baseline = self._dram_totals(pchs)

    def finalize_dram(self, pchs: Sequence["PseudoChannel"]) -> None:
        """Called by the engine at the end of the run."""
        self._dram_final = self._dram_totals(pchs)
        # ECC events are whole-run totals (faults are scheduled events,
        # not steady-state behaviour, so no warmup baseline applies).
        self.ecc_corrected = sum(p.counters.ecc_corrected for p in pchs)
        self.ecc_uncorrectable = sum(p.counters.ecc_uncorrectable for p in pchs)

    def report(self, cycles: int, *, issued: int, completed: int,
               fabric_name: str, retries: int = 0, nacks: int = 0,
               unrecoverable: int = 0,
               dead_pchs: Sequence[int] = ()) -> SimReport:
        read_bytes, write_bytes = self.read_bytes, self.write_bytes
        if self._dram_baseline is not None and self._dram_final is not None:
            bpb = self.platform.bytes_per_beat
            read_bytes = (self._dram_final[0] - self._dram_baseline[0]) * bpb
            write_bytes = (self._dram_final[1] - self._dram_baseline[1]) * bpb
        return SimReport(
            cycles=cycles,
            warmup=self.warmup,
            fabric_clock_hz=self.platform.fabric_clock_hz,
            read_bytes=read_bytes,
            write_bytes=write_bytes,
            read_latency=LatencySummary.from_online(self.read_latency),
            write_latency=LatencySummary.from_online(self.write_latency),
            issued=issued,
            completed=completed,
            in_flight_at_end=issued - completed,
            per_pch_bytes=self.per_pch_bytes,
            per_master_bytes=self.per_master_bytes,
            fabric_name=fabric_name,
            read_latency_hist=list(self.read_hist),
            write_latency_hist=list(self.write_hist),
            retries=retries,
            nacks=nacks,
            ecc_corrected=self.ecc_corrected,
            ecc_uncorrectable=self.ecc_uncorrectable,
            unrecoverable=unrecoverable,
            dead_pchs=list(dead_pchs),
        )
