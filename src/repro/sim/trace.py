"""Per-transaction trace recording.

The paper's measurement harness observes individual AXI transactions
(issue, acceptance, completion, destination).  :class:`TraceRecorder`
captures the same tuple for every completed transaction of a run and
exposes vectorized views for analysis — latency percentiles, per-channel
histograms, time-sliced bandwidth — without burdening the simulation hot
path (one list append per completion).

Attach a recorder through the engine::

    rec = TraceRecorder()
    Engine(fabric, sources, cfg, observers=[rec]).run()
    print(rec.latency_percentiles())

**Truncation.** With ``max_records`` set the recorder keeps the *first*
N completions and counts the rest in :attr:`TraceRecorder.dropped`.
Every statistical view is then biased toward the start of the run
(warmup transients, pre-steady-state latencies) — the views still
compute, but the first one computed from a truncated trace emits a
``RuntimeWarning`` so the bias never goes unnoticed.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..axi.transaction import AxiTransaction
from ..params import HbmPlatform, DEFAULT_PLATFORM

#: Trace record fields, in column order.  ``status`` is the completion
#: status of this attempt (0 ok / 1 nack / 2 poisoned), ``attempt`` the
#: retry ordinal (0 for the first issue) — a retried transaction appears
#: once per attempt, distinguishable by (uid, attempt).
FIELDS = ("uid", "master", "pch", "addr", "is_read", "burst_len", "issue",
          "accept", "complete", "hops", "status", "attempt")


class TraceRecorder:
    """Collects one record per completed transaction.

    ``max_records`` caps memory by dropping every completion past the
    cap (counted in :attr:`dropped`); see the module docstring for the
    bias this introduces into the views.
    """

    def __init__(self, platform: HbmPlatform = DEFAULT_PLATFORM,
                 max_records: Optional[int] = None) -> None:
        self.platform = platform
        self.max_records = max_records
        self._rows: List[Tuple] = []
        #: Completions discarded because ``max_records`` was reached.
        self.dropped = 0
        self._warned_truncated = False

    # -- observer interface -----------------------------------------------------

    def on_complete(self, txn: AxiTransaction, cycle: int) -> None:
        if self.max_records is not None and len(self._rows) >= self.max_records:
            self.dropped += 1
            return
        self._rows.append((
            txn.uid, txn.master, txn.pch, txn.address,
            1 if txn.is_read else 0, txn.burst_len, txn.issue_cycle,
            txn.accept_cycle, txn.complete_cycle, txn.hops,
            txn.status, txn.retries,
        ))

    # -- views ---------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def truncated(self) -> bool:
        """Whether any completion was dropped at the ``max_records`` cap."""
        return self.dropped > 0

    def as_array(self) -> np.ndarray:
        """The whole trace as an (N, len(FIELDS)) int64 array.

        Warns once (per recorder) when the trace was truncated: a capped
        trace holds only the run's *first* completions, so any statistic
        derived from this view is biased toward early, pre-steady-state
        behavior.
        """
        if self.dropped and not self._warned_truncated:
            self._warned_truncated = True
            warnings.warn(
                f"trace was truncated at max_records={self.max_records} "
                f"({self.dropped} completions dropped); views cover only "
                f"the first {len(self._rows)} completions and are biased "
                f"toward the start of the run",
                RuntimeWarning, stacklevel=2)
        if not self._rows:
            return np.empty((0, len(FIELDS)), dtype=np.int64)
        return np.asarray(self._rows, dtype=np.int64)

    def column(self, name: str) -> np.ndarray:
        return self.as_array()[:, FIELDS.index(name)]

    def latencies_accel(self, reads_only: bool = False) -> np.ndarray:
        """Round-trip latencies in accelerator cycles."""
        arr = self.as_array()
        if arr.size == 0:
            return np.empty(0)
        if reads_only:
            arr = arr[arr[:, FIELDS.index("is_read")] == 1]
        lat = arr[:, FIELDS.index("complete")] - arr[:, FIELDS.index("issue")]
        return lat * self.platform.clock_ratio

    def latency_percentiles(self, qs=(50, 90, 99)) -> Dict[int, float]:
        lat = self.latencies_accel()
        if lat.size == 0:
            return {q: 0.0 for q in qs}
        return {q: float(np.percentile(lat, q)) for q in qs}

    def per_pch_bytes(self) -> np.ndarray:
        """Bytes delivered per pseudo-channel."""
        arr = self.as_array()
        out = np.zeros(self.platform.num_pch, dtype=np.int64)
        if arr.size:
            nbytes = arr[:, FIELDS.index("burst_len")] * self.platform.bytes_per_beat
            np.add.at(out, arr[:, FIELDS.index("pch")], nbytes)
        return out

    def bandwidth_timeline(self, bucket_cycles: int = 1000) -> np.ndarray:
        """GB/s per time bucket (by completion cycle)."""
        arr = self.as_array()
        if arr.size == 0:
            return np.empty(0)
        comp = arr[:, FIELDS.index("complete")]
        nbytes = arr[:, FIELDS.index("burst_len")] * self.platform.bytes_per_beat
        buckets = comp // bucket_cycles
        out = np.zeros(int(buckets.max()) + 1, dtype=np.float64)
        np.add.at(out, buckets, nbytes.astype(np.float64))
        seconds = bucket_cycles / self.platform.fabric_clock_hz
        return out / seconds / 1e9

    def hop_latency_correlation(self) -> float:
        """Pearson correlation between lateral hops and latency — positive
        on the segmented fabric (Table II's distance effect), ~0 on MAO."""
        arr = self.as_array()
        if len(arr) < 2:
            return 0.0
        hops = arr[:, FIELDS.index("hops")].astype(np.float64)
        lat = (arr[:, FIELDS.index("complete")]
               - arr[:, FIELDS.index("issue")]).astype(np.float64)
        if hops.std() == 0 or lat.std() == 0:
            return 0.0
        return float(np.corrcoef(hops, lat)[0, 1])
