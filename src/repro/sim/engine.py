"""The cycle-stepped simulation kernel.

One :class:`Engine` owns a fabric (with its controllers and
pseudo-channels) and one :class:`~repro.axi.master.MasterPort` per traffic
source.  Every fabric cycle it

1. lets each master issue transactions (credits + clock pacing allowing),
2. advances the fabric (switch arbitration, controllers, DRAM),
3. distributes completions back to the masters and the statistics.

The engine also enforces the conservation invariant — every issued
transaction is either completed or demonstrably buffered somewhere — which
guards against simulator bugs silently inflating throughput.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..axi.master import MasterPort, TrafficSource
from ..errors import SimulationError
from ..fabric.base import BaseFabric
from .config import SimConfig
from .stats import SimReport, StatsCollector


class Engine:
    """Drives one simulation run."""

    def __init__(
        self,
        fabric: BaseFabric,
        sources: Sequence[TrafficSource],
        config: Optional[SimConfig] = None,
        observers: Sequence = (),
    ) -> None:
        self.fabric = fabric
        self.config = config or SimConfig()
        #: Objects with an ``on_complete(txn, cycle)`` hook (e.g.
        #: :class:`~repro.sim.trace.TraceRecorder`).
        self.observers = list(observers)
        platform = fabric.platform
        if len(sources) > platform.num_masters:
            raise SimulationError(
                f"{len(sources)} sources for {platform.num_masters} masters")
        self.masters: List[MasterPort] = []
        for src in sources:
            idx = getattr(src, "master", len(self.masters))
            self.masters.append(MasterPort(
                idx, platform, src, outstanding_limit=self.config.outstanding))
        self.stats = StatsCollector(platform, self.config.warmup)
        self.cycle = 0

    # -- main loop -----------------------------------------------------------

    def run(self) -> SimReport:
        fabric = self.fabric
        masters = self.masters
        by_index = {mp.index: mp for mp in masters}
        stats = self.stats
        observers = self.observers
        warmup = self.config.warmup
        for cycle in range(self.config.cycles):
            self.cycle = cycle
            if cycle == warmup:
                stats.snapshot_dram(fabric.pchs)
            for mp in masters:
                mp.step(cycle, fabric)
            fabric.step(cycle)
            done = fabric.completions
            if done:
                fabric.completions = []
                for txn, _time in done:
                    by_index[txn.master].on_complete(txn, cycle)
                    stats.record(txn, cycle)
                    for obs in observers:
                        obs.on_complete(txn, cycle)
        stats.finalize_dram(fabric.pchs)
        issued = sum(mp.issued for mp in masters)
        completed = sum(mp.completed for mp in masters)
        if completed > issued:
            raise SimulationError("completed more transactions than issued")
        return stats.report(self.config.cycles, issued=issued,
                            completed=completed,
                            fabric_name=fabric.name)

    def drain(self, max_cycles: int = 200_000) -> int:
        """Run extra cycles (without issuing) until the fabric is quiescent.

        Returns the number of drain cycles used.  Raises
        :class:`~repro.errors.SimulationError` when the fabric does not
        drain — a deadlock or a lost transaction.
        """
        fabric = self.fabric
        by_index = {mp.index: mp for mp in self.masters}
        for mp in self.masters:
            mp.outstanding_limit = 0  # stop issuing
        start = self.cycle + 1
        for cycle in range(start, start + max_cycles):
            self.cycle = cycle
            fabric.step(cycle)
            done = fabric.completions
            if done:
                fabric.completions = []
                for txn, _t in done:
                    by_index[txn.master].on_complete(txn, cycle)
            if fabric.quiescent() and all(mp.outstanding == 0 for mp in self.masters):
                return cycle - start + 1
        raise SimulationError(
            f"fabric failed to drain within {max_cycles} cycles "
            f"({sum(mp.outstanding for mp in self.masters)} transactions stuck)")


def simulate(
    fabric: BaseFabric,
    sources: Sequence[TrafficSource],
    config: Optional[SimConfig] = None,
) -> SimReport:
    """Convenience one-shot simulation."""
    return Engine(fabric, sources, config).run()
