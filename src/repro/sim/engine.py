"""The cycle-stepped simulation kernel.

One :class:`Engine` owns a fabric (with its controllers and
pseudo-channels) and one :class:`~repro.axi.master.MasterPort` per traffic
source.  Every fabric cycle it

1. lets each master issue transactions (credits + clock pacing allowing),
2. advances the fabric (switch arbitration, controllers, DRAM),
3. distributes completions back to the masters and the statistics.

The engine also enforces the conservation invariant — every issued
transaction is either completed or demonstrably buffered somewhere — which
guards against simulator bugs silently inflating throughput.

Two interchangeable main loops drive the model:

* the **legacy loop** (:meth:`Engine.run` with ``fast_path=False``) steps
  every master and the fabric once per cycle — the reference semantics;
* the **fast path** (default) skips masters that provably cannot issue
  this cycle (credits exhausted / pacing meter pending) and, when every
  master is asleep, asks the fabric for its *event horizon*
  (:meth:`~repro.fabric.base.BaseFabric.next_event`) and jumps the clock
  forward over provably empty cycles.

The fast path is an optimization, never a model change: skipped work is
exactly the work the legacy loop would have executed as a no-op, so both
loops produce bit-identical :class:`SimReport` results (enforced by the
differential tests in ``tests/test_engine_fastpath.py``).
"""

from __future__ import annotations

import math
from typing import (TYPE_CHECKING, Dict, List, Optional, Protocol, Sequence,
                    Tuple)

from ..axi.master import MasterPort, TrafficSource
from ..axi.transaction import STATUS_OK, AxiTransaction
from ..errors import ObserverError, SanitizerError, SimulationError
from ..fabric.base import BaseFabric
from ..faults.inject import FaultInjector
from ..faults.plan import FaultPlan
from ..faults.watchdog import ProgressWatchdog, TransactionWatchdog
from .config import SimConfig
from .stats import SimReport, StatsCollector

if TYPE_CHECKING:  # pragma: no cover
    from ..check.sanitizer import Sanitizer
    from ..telemetry.sampler import Telemetry

#: One cycle's completion batch as handed over by the fabric:
#: ``(transaction, fabric-time of the last beat)`` pairs.
CompletionBatch = List[Tuple[AxiTransaction, float]]


class CompletionObserver(Protocol):
    """Anything with an ``on_complete(txn, cycle)`` hook.

    Observers see every *attempt* (successes, NACKs, poisoned reads)
    exactly once, after the engine's own accounting for the batch.
    """

    def on_complete(self, txn: AxiTransaction, cycle: int) -> None: ...


class Engine:
    """Drives one simulation run."""

    def __init__(
        self,
        fabric: BaseFabric,
        sources: Sequence[TrafficSource],
        config: Optional[SimConfig] = None,
        observers: Sequence[CompletionObserver] = (),
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.fabric = fabric
        self.config = config or SimConfig()
        #: Objects with an ``on_complete(txn, cycle)`` hook (e.g.
        #: :class:`~repro.sim.trace.TraceRecorder`).
        self.observers: List[CompletionObserver] = list(observers)
        platform = fabric.platform
        if len(sources) > platform.num_masters:
            raise SimulationError(
                f"{len(sources)} sources for {platform.num_masters} masters")
        cfg = self.config
        self.masters: List[MasterPort] = []
        for src in sources:
            idx = getattr(src, "master", len(self.masters))
            self.masters.append(MasterPort(
                idx, platform, src, outstanding_limit=cfg.outstanding,
                max_retries=cfg.max_retries,
                backoff_base=cfg.retry_backoff_cycles,
                backoff_cap=cfg.retry_backoff_cap))
        self.stats = StatsCollector(platform, cfg.warmup)
        #: Fault schedule bound to this run's fabric, or ``None``.
        self.faults = faults
        self.injector = (FaultInjector(faults, fabric)
                         if faults is not None and faults else None)
        self._txn_dog = (TransactionWatchdog(cfg.txn_timeout_cycles)
                         if cfg.txn_timeout_cycles else None)
        self._progress_dog = (ProgressWatchdog(cfg.progress_timeout_cycles)
                              if cfg.progress_timeout_cycles else None)
        if self._txn_dog is not None:
            hook = self._txn_dog.note_issue
            for mp in self.masters:
                mp.on_issue = hook
        #: Runtime invariant checker, or ``None`` (the default).  When
        #: off the engine pays one ``is None`` test per completion batch.
        self.sanitizer: Optional[Sanitizer] = None
        if cfg.sanitize:
            from ..check.sanitizer import Sanitizer
            Sanitizer().attach(self)
        #: Telemetry sampler, or ``None`` (the default).  Same contract
        #: as the sanitizer: a pure observer, one ``is None`` test per
        #: loop iteration when off, bit-identical reports when on.
        self.telemetry: Optional[Telemetry] = None
        if cfg.telemetry:
            from ..telemetry.sampler import Telemetry
            Telemetry(interval=cfg.telemetry_interval).attach(self)
        self.cycle = 0
        #: Cycles the last :meth:`run` actually stepped (diagnostics; equals
        #: ``config.cycles`` on the legacy path, typically less on the fast
        #: path when quiescent stretches were skipped).
        self.stepped_cycles = 0

    # -- main loop -----------------------------------------------------------

    def run(self) -> SimReport:
        engine = self.config.engine
        if engine == "vector":
            from .vector import run_vector
            run_vector(self)
        elif self.config.fast_path:
            self._run_fast()
        else:
            self._run_legacy()
        fabric = self.fabric
        masters = self.masters
        if self.sanitizer is not None:
            self.sanitizer.finish()
        if self.telemetry is not None:
            self.telemetry.finish(self.cycle)
        self.stats.finalize_dram(fabric.pchs)
        issued = sum(mp.issued for mp in masters)
        completed = sum(mp.completed for mp in masters)
        if completed > issued:
            raise SimulationError("completed more transactions than issued")
        return self.stats.report(
            self.config.cycles, issued=issued, completed=completed,
            fabric_name=fabric.name,
            retries=sum(mp.retries for mp in masters),
            nacks=sum(mp.nacks for mp in masters),
            unrecoverable=sum(mp.unrecoverable for mp in masters),
            dead_pchs=(list(self.injector.dead) if self.injector else []))

    def _process_completions(self, done: CompletionBatch, cycle: int,
                             by_index: Dict[int, MasterPort]) -> None:
        """Route one cycle's completion batch.

        Two phases: first the accounting (masters, watchdogs, stats) for
        the whole batch, then the observers — so a raising observer
        surfaces as a typed :class:`~repro.errors.ObserverError` *after*
        the conservation-relevant state is consistent, and observers see
        every attempt (successes, NACKs, poisoned reads) exactly once.
        """
        stats = self.stats
        dog = self._txn_dog
        for txn, _time in done:
            mp = by_index[txn.master]
            if dog is not None:
                dog.note_done(txn)
            if txn.status != STATUS_OK:
                mp.on_nack(txn, cycle)
            else:
                mp.on_complete(txn, cycle)
                stats.record(txn, cycle)
        pdog = self._progress_dog
        if pdog is not None:
            pdog.note_progress(cycle)
        observers = self.observers
        if observers:
            for txn, _time in done:
                for obs in observers:
                    try:
                        obs.on_complete(txn, cycle)
                    except SanitizerError:
                        # A sanitizer finding is a typed simulator-bug
                        # report, not an observer crash: let it surface
                        # unwrapped.
                        raise
                    except Exception as exc:
                        raise ObserverError(
                            f"observer {type(obs).__name__} raised on "
                            f"transaction #{txn.uid} at cycle {cycle}: "
                            f"{exc}") from exc
        if self.sanitizer is not None:
            self.sanitizer.after_batch(cycle)

    def _run_legacy(self) -> None:
        """The reference per-cycle loop: every master, every cycle."""
        fabric = self.fabric
        masters = self.masters
        by_index = {mp.index: mp for mp in masters}
        stats = self.stats
        warmup = self.config.warmup
        injector = self.injector
        dog = self._txn_dog
        pdog = self._progress_dog
        tele = self.telemetry
        for cycle in range(self.config.cycles):
            self.cycle = cycle
            if injector is not None:
                injector.fire_due(cycle)
            if cycle == warmup:
                stats.snapshot_dram(fabric.pchs)
            for mp in masters:
                mp.step(cycle, fabric)
            fabric.step(cycle)
            done = fabric.completions
            if done:
                fabric.completions = []
                self._process_completions(done, cycle, by_index)
            if dog is not None:
                dog.check(cycle)
            if pdog is not None and cycle >= pdog.deadline():
                pdog.check(cycle, sum(mp.outstanding for mp in masters))
            if tele is not None and cycle >= tele.next_sample:
                tele.sample(cycle)
        self.stepped_cycles = self.config.cycles

    def _run_fast(self) -> None:
        """Batched loop: skip provably idle masters and empty cycles.

        Per-master ``wake`` cycles encode when a master next needs
        stepping (see :meth:`MasterPort.wake_after`); a completion wakes
        its master for the following cycle.  When every master sleeps
        beyond the next cycle, the clock jumps to the earliest of the
        master horizon, the fabric's event horizon, the end of warmup
        (the DRAM snapshot boundary), and the end of the run.  The
        skipped cycles are exactly those in which the legacy loop would
        have executed no observable work.
        """
        fabric = self.fabric
        masters = self.masters
        by_index = {mp.index: mp for mp in masters}
        slot = {mp.index: i for i, mp in enumerate(masters)}
        stats = self.stats
        warmup = self.config.warmup
        cycles = self.config.cycles
        injector = self.injector
        dog = self._txn_dog
        pdog = self._progress_dog
        tele = self.telemetry
        wake: List[float] = [0.0] * len(masters)
        snapshotted = False
        stepped = 0
        cycle = 0
        while cycle < cycles:
            self.cycle = cycle
            stepped += 1
            if injector is not None:
                injector.fire_due(cycle)
            if not snapshotted and cycle >= warmup:
                stats.snapshot_dram(fabric.pchs)
                snapshotted = True
            for i, mp in enumerate(masters):
                if wake[i] <= cycle:
                    mp.step(cycle, fabric)
                    wake[i] = mp.wake_after(cycle)
            fabric.step(cycle)
            done = fabric.completions
            if done:
                fabric.completions = []
                for txn, _time in done:
                    i = slot[txn.master]
                    if wake[i] > cycle + 1:
                        wake[i] = cycle + 1
                self._process_completions(done, cycle, by_index)
            if dog is not None:
                dog.check(cycle)
            if pdog is not None and cycle >= pdog.deadline():
                pdog.check(cycle, sum(mp.outstanding for mp in masters))
            if tele is not None and cycle >= tele.next_sample:
                tele.sample(cycle)
            nxt = cycle + 1
            horizon = min(wake) if wake else math.inf
            if horizon > nxt:
                target = horizon
                if not snapshotted and warmup > cycle:
                    if warmup < target:
                        target = warmup
                if target > nxt:
                    fabric_next = fabric.next_event(cycle)
                    if fabric_next < target:
                        target = fabric_next
                # Clamp jumps to the fault and watchdog timeline so the
                # skipped stretches contain no observable events — the
                # invariant that keeps fast and legacy runs bit-identical
                # under fault injection.
                if target > nxt and injector is not None:
                    nf = injector.next_fire(cycle)
                    if nf < target:
                        target = nf
                if target > nxt and dog is not None:
                    d = dog.next_deadline()
                    if d < target:
                        target = d
                if (target > nxt and pdog is not None
                        and any(mp.outstanding for mp in masters)):
                    d = pdog.deadline()
                    if d < target:
                        target = d
                if target > nxt:
                    nxt = int(min(target, cycles))
                    if tele is not None:
                        # Event-horizon hook: snapshot the pre-jump state
                        # (it persists unchanged across the skipped
                        # stretch) instead of sampling per skipped cycle.
                        tele.note_jump(cycle, nxt)
            cycle = nxt
        if not snapshotted:
            # warmup == cycles is rejected by SimConfig, so the snapshot
            # always lands inside the loop; keep a defensive fallback.
            stats.snapshot_dram(fabric.pchs)  # pragma: no cover
        # The legacy loop leaves ``self.cycle`` at the last simulated
        # cycle; match it so drain() proceeds identically after a run
        # whose trailing quiet cycles were skipped.
        self.cycle = cycles - 1
        self.stepped_cycles = stepped

    def drain(self, max_cycles: int = 200_000) -> int:
        """Run extra cycles (without fresh issues) until quiescent.

        Returns the number of drain cycles used.  Raises
        :class:`~repro.errors.SimulationError` when the fabric does not
        drain — a deadlock or a lost transaction.  Masters are switched
        into draining mode for the duration: fresh source traffic stops,
        but queued *retries* still re-issue (they hold work the fabric
        owes a completion for), so a fault that struck late in the run
        resolves during the drain instead of leaking transactions.  The
        transaction watchdog, when enabled, keeps checking — a silently
        stuck transaction raises a typed
        :class:`~repro.errors.TransactionTimeout` instead of spinning to
        the drain deadline.
        """
        fabric = self.fabric
        masters = self.masters
        by_index = {mp.index: mp for mp in masters}
        for mp in masters:
            mp.draining = True
        fast = self.config.fast_path
        dog = self._txn_dog
        san = self.sanitizer
        start = self.cycle + 1
        end = start + max_cycles
        try:
            cycle = start
            while cycle < end:
                self.cycle = cycle
                for mp in masters:
                    if mp.retry_pending:
                        mp.step(cycle, fabric)
                fabric.step(cycle)
                done = fabric.completions
                if done:
                    fabric.completions = []
                    for txn, _t in done:
                        mp = by_index[txn.master]
                        if dog is not None:
                            dog.note_done(txn)
                        if txn.status != STATUS_OK:
                            mp.on_nack(txn, cycle)
                        else:
                            mp.on_complete(txn, cycle)
                        # Observers are not notified during drain, but the
                        # sanitizer's in-flight ledger must keep tracking.
                        if san is not None:
                            san.on_complete(txn, cycle)
                    if san is not None:
                        san.after_batch(cycle)
                if dog is not None:
                    dog.check(cycle)
                if fabric.quiescent() and all(
                        mp.outstanding == 0 and not mp.retry_pending
                        for mp in masters):
                    if san is not None:
                        san.check_drained()
                    return cycle - start + 1
                nxt = cycle + 1
                if fast:
                    fabric_next = fabric.next_event(cycle)
                    for mp in masters:
                        r = mp.next_retry()
                        if r < fabric_next:
                            fabric_next = r
                    if dog is not None:
                        d = dog.next_deadline()
                        if d < fabric_next:
                            fabric_next = d
                    if fabric_next > nxt:
                        # Nothing can happen before the horizon; jump.
                        # An infinite horizon with work still in flight
                        # means a transaction was lost — fail fast at the
                        # deadline instead of spinning to it.
                        nxt = int(min(fabric_next, end))
                cycle = nxt
        finally:
            for mp in masters:
                mp.draining = False
        raise SimulationError(
            f"fabric failed to drain within {max_cycles} cycles "
            f"({sum(mp.outstanding for mp in masters)} transactions stuck)")


def simulate(
    fabric: BaseFabric,
    sources: Sequence[TrafficSource],
    config: Optional[SimConfig] = None,
    faults: Optional[FaultPlan] = None,
) -> SimReport:
    """Convenience one-shot simulation."""
    return Engine(fabric, sources, config, faults=faults).run()
