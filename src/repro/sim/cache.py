"""Experiment-level memoization of simulation results.

The sweep harness re-simulates many identical points: ``repro-hbm all``
shares sweep points between figures, the benchmark suite re-runs the same
configurations round after round, and iterating on one experiment's
post-processing should not pay for re-simulating its inputs.  Since every
simulation is a pure function of (fabric construction, traffic pattern,
engine config) — traffic sources are deterministically seeded — results
can be memoized safely.

:class:`SimCache` keeps an in-memory table and, when a directory is
configured (``REPRO_SIM_CACHE_DIR`` or the constructor argument), a
pickle file per entry so results survive across processes and runs.
Entries are stored together with their full key and verified on load, so
a SHA-1 filename collision degrades to a miss, never a wrong result.

Keys come from :func:`sweep_key`, which folds in

* a model version (bump :data:`MODEL_VERSION` whenever a change alters
  simulation *results*, so stale disk entries are never returned),
* a digest of the platform's full ``repr`` (every timing/topology knob),
* the engine path in effect (``fast_path`` — reports are bit-identical
  either way by construction, but keeping the key exact makes the cache
  trivially sound even while that property is being debugged),
* the caller's parameters, ``repr``-normalized.

``REPRO_SIM_CACHE=0`` disables all caching without touching call sites.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, NoReturn, Optional, Set, Tuple

from .config import (_engine_default, _fast_path_default, _sanitize_default,
                     _telemetry_default)

#: Bump when a model change alters simulation outputs.
MODEL_VERSION = 2


class _Miss:
    """Type of the :data:`MISS` sentinel (falsy, unique, unpicklable by
    design — a cache *value* can never compare ``is MISS``)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "MISS"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self) -> NoReturn:
        raise TypeError("MISS is a sentinel, not a cacheable value")


#: Returned by :meth:`SimCache.lookup` when a key is absent.  Test with
#: ``value is MISS`` — unlike ``None`` this can never collide with a
#: legitimately cached result.
MISS = _Miss()


def cache_enabled() -> bool:
    """Global off-switch: ``REPRO_SIM_CACHE=0`` disables memoization."""
    return os.environ.get("REPRO_SIM_CACHE", "1").lower() not in (
        "0", "false", "no", "off")


def platform_digest(platform: Any) -> str:
    """Short stable digest of a platform's full parameterization."""
    return hashlib.sha1(repr(platform).encode()).hexdigest()[:12]


def sweep_key(experiment: str, platform: Any, **params: Any) -> Tuple:
    """Build a cache key for one sweep point.

    ``params`` values are normalized through ``repr`` so enums, ratios,
    and config dataclasses key naturally; pass every input that changes
    the simulated result (and nothing else).
    """
    items = tuple(sorted((k, repr(v)) for k, v in params.items()))
    # The observer switches (sanitize, telemetry) are bit-identity
    # preserving like the engine tier, but keying on them keeps the cache
    # trivially sound even while that property is being debugged.
    return (MODEL_VERSION, experiment, platform_digest(platform),
            ("engine", _engine_default()),
            ("fast_path", _fast_path_default()),
            ("sanitize", _sanitize_default()),
            ("telemetry", _telemetry_default()), items)


#: Spill directories already warned about (module-level so every
#: SimCache instance shares the once-per-directory budget).
_SPILL_WARNED: Set[str] = set()


@dataclass(frozen=True)
class CacheStats:
    """Disk footprint of one cache directory."""

    directory: Optional[str]
    entries: int
    total_bytes: int

    def summary(self) -> str:
        if not self.directory:
            return "sim cache: no disk directory configured (memory only)"
        mib = self.total_bytes / (1024 * 1024)
        return (f"sim cache at {self.directory}: {self.entries} entr(ies), "
                f"{mib:.1f} MiB")


@dataclass(frozen=True)
class PruneResult:
    """What :meth:`SimCache.prune` removed and what remains."""

    removed: int
    freed_bytes: int
    remaining_entries: int
    remaining_bytes: int

    def summary(self) -> str:
        mib = self.freed_bytes / (1024 * 1024)
        left = self.remaining_bytes / (1024 * 1024)
        return (f"pruned {self.removed} entr(ies), freed {mib:.1f} MiB; "
                f"{self.remaining_entries} entr(ies), {left:.1f} MiB remain")


class SimCache:
    """Two-level (memory + optional disk) memo table for sweep results.

    Values must be picklable when a directory is configured; the sweep
    row dataclasses and :class:`~repro.sim.stats.SimReport` all are.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self._directory = directory
        self._memory: Dict[Tuple, Any] = {}
        self.hits = 0
        self.misses = 0

    @property
    def directory(self) -> Optional[str]:
        """Disk-spill directory; falls back to ``REPRO_SIM_CACHE_DIR``."""
        return self._directory or os.environ.get("REPRO_SIM_CACHE_DIR") or None

    def _path(self, key: Tuple) -> str:
        digest = hashlib.sha1(repr(key).encode()).hexdigest()
        return os.path.join(self.directory, digest + ".pkl")

    def lookup(self, key: Tuple) -> Any:
        """Cached value for ``key``, or the :data:`MISS` sentinel.

        Prefer this over :meth:`get` for miss detection: ``None`` is a
        perfectly valid cached value (a sweep point that produced no
        result), and ``get(...) is None`` silently re-simulates it on
        every call.
        """
        if not cache_enabled():
            self.misses += 1
            return MISS
        if key in self._memory:
            self.hits += 1
            return self._memory[key]
        if self.directory:
            path = self._path(key)
            try:
                with open(path, "rb") as fh:
                    stored_key, value = pickle.load(fh)
            except FileNotFoundError:
                pass  # ordinary miss
            except Exception as exc:
                # Corrupt, truncated, or schema-incompatible entry:
                # unpickling hostile bytes can raise nearly anything
                # (UnpicklingError, EOFError, AttributeError, ...).  Warn,
                # delete the bad file so it never costs another parse, and
                # degrade to a miss.
                warnings.warn(
                    f"discarding unreadable sim-cache entry {path}: "
                    f"{type(exc).__name__}: {exc}",
                    RuntimeWarning, stacklevel=2)
                try:
                    os.remove(path)
                except OSError:
                    pass
            else:
                # A stored key that fails to match is a filename collision
                # or a MODEL_VERSION mismatch — a miss, never a wrong hit.
                if stored_key == key:
                    self._memory[key] = value
                    self.hits += 1
                    return value
        self.misses += 1
        return MISS

    def get(self, key: Tuple) -> Optional[Any]:
        """Cached value for ``key``, or ``None`` on a miss.

        Legacy accessor: a cached ``None`` is indistinguishable from a
        miss here.  Use :meth:`lookup` (against :data:`MISS`) or
        :meth:`__contains__` when that matters.
        """
        value = self.lookup(key)
        return None if value is MISS else value

    def __contains__(self, key: Tuple) -> bool:
        """Whether ``key`` would hit, without counting a hit or a miss."""
        if not cache_enabled():
            return False
        hits, misses = self.hits, self.misses
        found = self.lookup(key) is not MISS
        self.hits, self.misses = hits, misses
        return found

    def put(self, key: Tuple, value: Any) -> None:
        if value is MISS:
            raise TypeError("MISS is a sentinel, not a cacheable value")
        if not cache_enabled():
            return
        self._memory[key] = value
        directory = self.directory
        if not directory:
            return
        try:
            os.makedirs(directory, exist_ok=True)
            path = self._path(key)
            tmp = path + f".tmp.{os.getpid()}"
            with open(tmp, "wb") as fh:
                pickle.dump((key, value), fh)
            os.replace(tmp, path)
        except OSError as exc:
            # Disk spill is best-effort (the memory entry is already
            # stored), but silence here would hide an unwritable or full
            # REPRO_SIM_CACHE_DIR until the user wonders why nothing
            # persists.  Warn once per directory, not per point — a
            # 1000-point sweep against a full disk should not emit 1000
            # warnings.
            if directory not in _SPILL_WARNED:
                _SPILL_WARNED.add(directory)
                warnings.warn(
                    f"sim-cache disk spill to {directory!r} failed "
                    f"({type(exc).__name__}: {exc}); results will not "
                    f"persist across processes until this is fixed "
                    f"(warning once per directory)",
                    RuntimeWarning, stacklevel=2)

    # -- disk housekeeping ---------------------------------------------------

    def _entries(self) -> List[Tuple[str, int, float]]:
        """(path, size, mtime) of every on-disk entry, oldest first."""
        directory = self.directory
        if not directory or not os.path.isdir(directory):
            return []
        out: List[Tuple[str, int, float]] = []
        for name in os.listdir(directory):
            if not name.endswith(".pkl"):
                continue
            path = os.path.join(directory, name)
            try:
                st = os.stat(path)
            except OSError:
                continue  # raced with a concurrent prune/replace
            out.append((path, st.st_size, st.st_mtime))
        out.sort(key=lambda e: (e[2], e[0]))
        return out

    def stats(self) -> CacheStats:
        """Entry count and byte footprint of the disk directory."""
        entries = self._entries()
        return CacheStats(directory=self.directory,
                          entries=len(entries),
                          total_bytes=sum(size for _, size, _ in entries))

    def prune(self, max_bytes: Optional[int] = None,
              max_age_days: Optional[float] = None) -> PruneResult:
        """Bound the disk directory's growth.

        ``max_age_days`` removes entries whose file mtime is older;
        ``max_bytes`` then removes oldest-first until the directory fits
        the budget.  Campaign caches grow one pickle per sweep point
        forever otherwise.  In-memory entries are untouched (they die
        with the process anyway); a pruned key simply misses and
        re-simulates.
        """
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        doomed: Dict[str, int] = {}
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86_400.0  # det-lint: allow
            for path, size, mtime in entries:
                if mtime < cutoff:
                    doomed[path] = size
        if max_bytes is not None:
            kept = total - sum(doomed.values())
            for path, size, _mtime in entries:
                if kept <= max_bytes:
                    break
                if path in doomed:
                    continue
                doomed[path] = size
                kept -= size
        removed = 0
        freed = 0
        for path, size in doomed.items():
            try:
                os.remove(path)
            except OSError:
                continue  # raced or unwritable; leave it for next time
            removed += 1
            freed += size
        return PruneResult(removed=removed, freed_bytes=freed,
                           remaining_entries=len(entries) - removed,
                           remaining_bytes=total - freed)

    def clear(self) -> None:
        """Drop in-memory entries (disk files are left alone)."""
        self._memory.clear()
        self.hits = 0
        self.misses = 0


#: Process-wide cache used by the experiment helpers.
DEFAULT_CACHE = SimCache()
