"""Experiment-level memoization of simulation results.

The sweep harness re-simulates many identical points: ``repro-hbm all``
shares sweep points between figures, the benchmark suite re-runs the same
configurations round after round, and iterating on one experiment's
post-processing should not pay for re-simulating its inputs.  Since every
simulation is a pure function of (fabric construction, traffic pattern,
engine config) — traffic sources are deterministically seeded — results
can be memoized safely.

:class:`SimCache` keeps an in-memory table and, when a directory is
configured (``REPRO_SIM_CACHE_DIR`` or the constructor argument), a
pickle file per entry so results survive across processes and runs.
Entries are stored together with their full key and verified on load, so
a SHA-1 filename collision degrades to a miss, never a wrong result.

Keys come from :func:`sweep_key`, which folds in

* a model version (bump :data:`MODEL_VERSION` whenever a change alters
  simulation *results*, so stale disk entries are never returned),
* a digest of the platform's full ``repr`` (every timing/topology knob),
* the engine path in effect (``fast_path`` — reports are bit-identical
  either way by construction, but keeping the key exact makes the cache
  trivially sound even while that property is being debugged),
* the caller's parameters, ``repr``-normalized.

``REPRO_SIM_CACHE=0`` disables all caching without touching call sites.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, NoReturn, Optional, Set, Tuple

from .config import (_engine_default, _fast_path_default, _sanitize_default,
                     _telemetry_default)

#: Bump when a model change alters simulation outputs.
MODEL_VERSION = 2


class _Miss:
    """Type of the :data:`MISS` sentinel (falsy, unique, unpicklable by
    design — a cache *value* can never compare ``is MISS``)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "MISS"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self) -> NoReturn:
        raise TypeError("MISS is a sentinel, not a cacheable value")


#: Returned by :meth:`SimCache.lookup` when a key is absent.  Test with
#: ``value is MISS`` — unlike ``None`` this can never collide with a
#: legitimately cached result.
MISS = _Miss()


def cache_enabled() -> bool:
    """Global off-switch: ``REPRO_SIM_CACHE=0`` disables memoization."""
    return os.environ.get("REPRO_SIM_CACHE", "1").lower() not in (
        "0", "false", "no", "off")


def platform_digest(platform: Any) -> str:
    """Short stable digest of a platform's full parameterization."""
    return hashlib.sha1(repr(platform).encode()).hexdigest()[:12]


def sweep_key(experiment: str, platform: Any, **params: Any) -> Tuple:
    """Build a cache key for one sweep point.

    ``params`` values are normalized through ``repr`` so enums, ratios,
    and config dataclasses key naturally; pass every input that changes
    the simulated result (and nothing else).
    """
    items = tuple(sorted((k, repr(v)) for k, v in params.items()))
    # The observer switches (sanitize, telemetry) are bit-identity
    # preserving like the engine tier, but keying on them keeps the cache
    # trivially sound even while that property is being debugged.
    return (MODEL_VERSION, experiment, platform_digest(platform),
            ("engine", _engine_default()),
            ("fast_path", _fast_path_default()),
            ("sanitize", _sanitize_default()),
            ("telemetry", _telemetry_default()), items)


#: Spill directories already warned about (module-level so every
#: SimCache instance shares the once-per-directory budget).
_SPILL_WARNED: Set[str] = set()


@dataclass(frozen=True)
class CacheStats:
    """Disk footprint of one cache directory."""

    directory: Optional[str]
    entries: int
    total_bytes: int
    #: ``*.pkl.tmp.<pid>`` spill files stranded by a writer that crashed
    #: between the temp write and the atomic rename.  They are invisible
    #: to lookups and removed by :meth:`SimCache.prune`.
    orphan_tmp_files: int = 0
    orphan_tmp_bytes: int = 0

    def summary(self) -> str:
        if not self.directory:
            return "sim cache: no disk directory configured (memory only)"
        mib = self.total_bytes / (1024 * 1024)
        text = (f"sim cache at {self.directory}: {self.entries} entr(ies), "
                f"{mib:.1f} MiB")
        if self.orphan_tmp_files:
            tmp_kib = self.orphan_tmp_bytes / 1024
            text += (f"; {self.orphan_tmp_files} orphaned tmp file(s), "
                     f"{tmp_kib:.1f} KiB (prune removes stale ones)")
        return text


@dataclass(frozen=True)
class PruneResult:
    """What :meth:`SimCache.prune` removed and what remains."""

    removed: int
    freed_bytes: int
    remaining_entries: int
    remaining_bytes: int
    #: Stale orphaned spill temp files swept (counted separately from
    #: ``removed``; their bytes are included in ``freed_bytes``).
    removed_tmp: int = 0

    def summary(self) -> str:
        mib = self.freed_bytes / (1024 * 1024)
        left = self.remaining_bytes / (1024 * 1024)
        text = (f"pruned {self.removed} entr(ies), freed {mib:.1f} MiB; "
                f"{self.remaining_entries} entr(ies), {left:.1f} MiB remain")
        if self.removed_tmp:
            text += f"; swept {self.removed_tmp} orphaned tmp file(s)"
        return text


def _memory_bound_default() -> Optional[int]:
    """In-memory entry bound from ``REPRO_SIM_CACHE_MEM`` (unset, empty,
    or ``<= 0`` means unbounded — the right default for batch sweeps)."""
    env = os.environ.get("REPRO_SIM_CACHE_MEM")
    if not env:
        return None
    try:
        bound = int(env)
    except ValueError:
        warnings.warn(
            f"ignoring invalid REPRO_SIM_CACHE_MEM={env!r} (not an "
            f"integer); the in-memory table stays unbounded",
            RuntimeWarning, stacklevel=2)
        return None
    return bound if bound > 0 else None


class SimCache:
    """Two-level (memory + optional disk) memo table for sweep results.

    Values must be picklable when a directory is configured; the sweep
    row dataclasses and :class:`~repro.sim.stats.SimReport` all are.

    Safe for concurrent use from threads and asyncio tasks: the memory
    table and hit/miss counters are guarded by an internal lock (process
    pools never needed this — each worker had its own instance — but the
    sweep service shares one cache across a whole event loop).

    ``max_memory_entries`` bounds the in-memory table with LRU eviction;
    evicted entries stay readable from disk.  Batch sweeps default to
    unbounded (``None``); long-lived servers set a bound (or export
    ``REPRO_SIM_CACHE_MEM``) so promoting every disk hit into memory
    cannot grow without limit.
    """

    def __init__(self, directory: Optional[str] = None,
                 max_memory_entries: Optional[int] = None) -> None:
        self._directory = directory
        self._memory: Dict[Tuple, Any] = {}
        self._lock = threading.RLock()
        self._max_memory = (max_memory_entries if max_memory_entries
                            is not None else _memory_bound_default())
        if self._max_memory is not None and self._max_memory < 1:
            self._max_memory = None
        self.hits = 0
        self.misses = 0

    @property
    def directory(self) -> Optional[str]:
        """Disk-spill directory; falls back to ``REPRO_SIM_CACHE_DIR``."""
        return self._directory or os.environ.get("REPRO_SIM_CACHE_DIR") or None

    @property
    def max_memory_entries(self) -> Optional[int]:
        """LRU bound of the in-memory table (``None`` = unbounded)."""
        return self._max_memory

    def memory_entries(self) -> int:
        """Current size of the in-memory table."""
        with self._lock:
            return len(self._memory)

    def _path(self, key: Tuple) -> str:
        digest = hashlib.sha1(repr(key).encode()).hexdigest()
        return os.path.join(self.directory, digest + ".pkl")

    def _remember(self, key: Tuple, value: Any) -> None:
        """Insert under the lock, evicting least-recently-used entries
        beyond the bound.  Python dicts iterate in insertion order, and
        every hit reinserts its key, so the first key is always the LRU."""
        self._memory.pop(key, None)
        self._memory[key] = value
        if self._max_memory is not None:
            while len(self._memory) > self._max_memory:
                self._memory.pop(next(iter(self._memory)))

    def _lookup(self, key: Tuple, count: bool) -> Any:
        """Shared hit path of :meth:`lookup` and :meth:`__contains__`;
        ``count`` gates the hit/miss accounting so a pure membership
        probe never perturbs the counters (atomically — the old
        save/restore dance raced concurrent lookups)."""
        if not cache_enabled():
            if count:
                with self._lock:
                    self.misses += 1
            return MISS
        with self._lock:
            if key in self._memory:
                value = self._memory[key]
                if self._max_memory is not None:
                    self._memory[key] = self._memory.pop(key)  # LRU touch
                if count:
                    self.hits += 1
                return value
            if self.directory:
                path = self._path(key)
                try:
                    with open(path, "rb") as fh:
                        stored_key, value = pickle.load(fh)
                except FileNotFoundError:
                    pass  # ordinary miss
                except Exception as exc:
                    # Corrupt, truncated, or schema-incompatible entry:
                    # unpickling hostile bytes can raise nearly anything
                    # (UnpicklingError, EOFError, AttributeError, ...).
                    # Warn, delete the bad file so it never costs another
                    # parse, and degrade to a miss.
                    warnings.warn(
                        f"discarding unreadable sim-cache entry {path}: "
                        f"{type(exc).__name__}: {exc}",
                        RuntimeWarning, stacklevel=3)
                    try:
                        os.remove(path)
                    except OSError:
                        pass
                else:
                    # A stored key that fails to match is a filename
                    # collision or a MODEL_VERSION mismatch — a miss,
                    # never a wrong hit.
                    if stored_key == key:
                        self._remember(key, value)
                        if count:
                            self.hits += 1
                        return value
            if count:
                self.misses += 1
            return MISS

    def lookup(self, key: Tuple) -> Any:
        """Cached value for ``key``, or the :data:`MISS` sentinel.

        Prefer this over :meth:`get` for miss detection: ``None`` is a
        perfectly valid cached value (a sweep point that produced no
        result), and ``get(...) is None`` silently re-simulates it on
        every call.
        """
        return self._lookup(key, count=True)

    def get(self, key: Tuple) -> Optional[Any]:
        """Cached value for ``key``, or ``None`` on a miss.

        Legacy accessor: a cached ``None`` is indistinguishable from a
        miss here.  Use :meth:`lookup` (against :data:`MISS`) or
        :meth:`__contains__` when that matters.
        """
        value = self.lookup(key)
        return None if value is MISS else value

    def __contains__(self, key: Tuple) -> bool:
        """Whether ``key`` would hit, without counting a hit or a miss."""
        return self._lookup(key, count=False) is not MISS

    def put(self, key: Tuple, value: Any) -> None:
        if value is MISS:
            raise TypeError("MISS is a sentinel, not a cacheable value")
        if not cache_enabled():
            return
        with self._lock:
            self._remember(key, value)
        directory = self.directory
        if not directory:
            return
        try:
            os.makedirs(directory, exist_ok=True)
            path = self._path(key)
            # The tmp suffix must be unique per *writer*, not just per
            # process: two threads spilling the same key under one pid
            # would otherwise race each other's os.replace.
            tmp = path + f".tmp.{os.getpid()}-{threading.get_ident()}"
            with open(tmp, "wb") as fh:
                pickle.dump((key, value), fh)
            os.replace(tmp, path)
        except OSError as exc:
            # Disk spill is best-effort (the memory entry is already
            # stored), but silence here would hide an unwritable or full
            # REPRO_SIM_CACHE_DIR until the user wonders why nothing
            # persists.  Warn once per directory, not per point — a
            # 1000-point sweep against a full disk should not emit 1000
            # warnings.
            if directory not in _SPILL_WARNED:
                _SPILL_WARNED.add(directory)
                warnings.warn(
                    f"sim-cache disk spill to {directory!r} failed "
                    f"({type(exc).__name__}: {exc}); results will not "
                    f"persist across processes until this is fixed "
                    f"(warning once per directory)",
                    RuntimeWarning, stacklevel=2)

    # -- disk housekeeping ---------------------------------------------------

    def _entries(self) -> List[Tuple[str, int, float]]:
        """(path, size, mtime) of every on-disk entry, oldest first."""
        directory = self.directory
        if not directory or not os.path.isdir(directory):
            return []
        out: List[Tuple[str, int, float]] = []
        for name in os.listdir(directory):
            if not name.endswith(".pkl"):
                continue
            path = os.path.join(directory, name)
            try:
                st = os.stat(path)
            except OSError:
                continue  # raced with a concurrent prune/replace
            out.append((path, st.st_size, st.st_mtime))
        out.sort(key=lambda e: (e[2], e[0]))
        return out

    def _tmp_entries(self) -> List[Tuple[str, int, float]]:
        """(path, size, mtime) of orphaned ``*.pkl.tmp.<pid>`` spill
        files.  :meth:`put` writes the temp file then ``os.replace``\\ s it
        into place; a crash between the two strands the temp forever, and
        the ``*.pkl``-only :meth:`_entries` walk never saw them."""
        directory = self.directory
        if not directory or not os.path.isdir(directory):
            return []
        out: List[Tuple[str, int, float]] = []
        for name in os.listdir(directory):
            if ".pkl.tmp." not in name:
                continue
            path = os.path.join(directory, name)
            try:
                st = os.stat(path)
            except OSError:
                continue  # raced with the writer's os.replace
            out.append((path, st.st_size, st.st_mtime))
        out.sort(key=lambda e: (e[2], e[0]))
        return out

    def stats(self) -> CacheStats:
        """Entry count and byte footprint of the disk directory,
        orphaned spill temp files included."""
        entries = self._entries()
        tmps = self._tmp_entries()
        return CacheStats(directory=self.directory,
                          entries=len(entries),
                          total_bytes=sum(size for _, size, _ in entries),
                          orphan_tmp_files=len(tmps),
                          orphan_tmp_bytes=sum(size for _, size, _ in tmps))

    def prune(self, max_bytes: Optional[int] = None,
              max_age_days: Optional[float] = None,
              tmp_grace_seconds: float = 900.0) -> PruneResult:
        """Bound the disk directory's growth.

        ``max_age_days`` removes entries whose file mtime is older;
        ``max_bytes`` then removes oldest-first until the directory fits
        the budget.  Campaign caches grow one pickle per sweep point
        forever otherwise.  In-memory entries are untouched (they die
        with the process anyway); a pruned key simply misses and
        re-simulates.

        Every prune also sweeps orphaned ``*.pkl.tmp.<pid>`` spill files
        older than ``tmp_grace_seconds`` — debris of a writer that died
        between its temp write and the atomic rename.  The age gate keeps
        a *live* writer's in-progress temp file (written and renamed
        within milliseconds) safe from a concurrent prune.
        """
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        doomed: Dict[str, int] = {}
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86_400.0  # det-lint: allow
            for path, size, mtime in entries:
                if mtime < cutoff:
                    doomed[path] = size
        if max_bytes is not None:
            kept = total - sum(doomed.values())
            for path, size, _mtime in entries:
                if kept <= max_bytes:
                    break
                if path in doomed:
                    continue
                doomed[path] = size
                kept -= size
        removed = 0
        freed = 0
        for path, size in doomed.items():
            try:
                os.remove(path)
            except OSError:
                continue  # raced or unwritable; leave it for next time
            removed += 1
            freed += size
        removed_tmp = 0
        tmp_cutoff = time.time() - tmp_grace_seconds  # det-lint: allow
        for path, size, mtime in self._tmp_entries():
            if mtime >= tmp_cutoff:
                continue  # possibly a live writer mid-spill; keep it
            try:
                os.remove(path)
            except OSError:
                continue
            removed_tmp += 1
            freed += size
        return PruneResult(removed=removed, freed_bytes=freed,
                           remaining_entries=len(entries) - removed,
                           remaining_bytes=total - freed,
                           removed_tmp=removed_tmp)

    def clear(self) -> None:
        """Drop in-memory entries (disk files are left alone)."""
        with self._lock:
            self._memory.clear()
            self.hits = 0
            self.misses = 0


#: Process-wide cache used by the experiment helpers.
DEFAULT_CACHE = SimCache()
