"""Simulation run configuration."""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional

from ..errors import ConfigError


def _fast_path_default() -> bool:
    """Fast path is on unless ``REPRO_FAST_PATH`` disables it globally."""
    return os.environ.get("REPRO_FAST_PATH", "1").lower() not in (
        "0", "false", "no", "off")


def _sanitize_default() -> bool:
    """Sanitizer is off unless ``REPRO_SANITIZE`` enables it globally."""
    return os.environ.get("REPRO_SANITIZE", "0").lower() in (
        "1", "true", "yes", "on")


def _telemetry_default() -> bool:
    """Telemetry is off unless ``REPRO_TELEMETRY`` enables it globally."""
    return os.environ.get("REPRO_TELEMETRY", "0").lower() in (
        "1", "true", "yes", "on")


#: Engine tiers selectable via :attr:`SimConfig.engine` / ``--engine``.
ENGINE_TIERS = ("fast", "legacy", "vector")


def _engine_default() -> str:
    """Engine tier from ``REPRO_ENGINE``, or ``""`` (derive from
    ``fast_path`` in ``__post_init__``)."""
    return os.environ.get("REPRO_ENGINE", "")


@dataclass(frozen=True)
class SimConfig:
    """Parameters of one simulation run.

    ``cycles`` are fabric-clock (450 MHz) cycles.  Statistics are
    collected only after ``warmup`` cycles so queue fill-up does not bias
    steady-state throughput; latency samples are restricted to
    transactions *issued* inside the measurement window.
    """

    cycles: int = 12_000
    """Total fabric cycles to simulate (12k cycles = 26.7 us)."""

    warmup: int = 2_000
    """Cycles excluded from the measurement window."""

    outstanding: int = 32
    """Outstanding-transaction credit per master (``Not``).  The paper's
    *Single* latency scenario uses 1, the *Burst* scenario 32."""

    fast_path: bool = field(default_factory=_fast_path_default)
    """Use the batched/quiescence-skipping engine loop.  The fast path is
    an *optimization, never a model change*: it must produce bit-identical
    :class:`~repro.sim.stats.SimReport` results (enforced by the
    differential tests in ``tests/test_engine_fastpath.py``).  Set to
    ``False`` — or export ``REPRO_FAST_PATH=0`` — to fall back to the
    legacy strictly per-cycle loop when debugging."""

    engine: str = field(default_factory=_engine_default)
    """Which main-loop tier drives the run: ``"fast"`` (the default
    batched/quiescence-skipping loop), ``"legacy"`` (the reference
    strictly per-cycle loop), or ``"vector"`` (the numpy
    struct-of-arrays tier, :mod:`repro.sim.vector`).  All three are
    bit-identical (enforced by the three-way differential grid in
    ``tests/test_engine_fastpath.py``).  An empty string — the default
    when ``REPRO_ENGINE`` is unset — derives the tier from
    :attr:`fast_path`; when both are given explicitly, ``engine`` wins
    and ``fast_path`` is normalized to match."""

    sanitize: bool = field(default_factory=_sanitize_default)
    """Attach the runtime invariant sanitizer
    (:class:`~repro.check.sanitizer.Sanitizer`) to the run.  The
    sanitizer is a pure observer — reports stay bit-identical — but it
    costs time, so it is off by default; enable per run here, via the
    CLI's ``--sanitize``, or globally with ``REPRO_SANITIZE=1``."""

    telemetry: bool = field(default_factory=_telemetry_default)
    """Attach a :class:`~repro.telemetry.sampler.Telemetry` sampler to
    the run (reachable afterwards as ``engine.telemetry``).  Like the
    sanitizer it is a pure observer — reports stay bit-identical — and
    when off the engine pays one ``is None`` test per loop iteration.
    Enable per run here, via the CLI's ``--telemetry``, or globally with
    ``REPRO_TELEMETRY=1``."""

    telemetry_interval: int = 256
    """Baseline sampling period of the telemetry layer, in fabric
    cycles.  Samples are additionally taken at every fast-path clock
    jump and once at the end of the run, so lowering this only sharpens
    the *time resolution* of counter tracks, never the run totals."""

    txn_timeout_cycles: Optional[int] = None
    """Per-transaction watchdog: a transaction seeing no completion (or
    NACK) within this many cycles of its issue raises a typed
    :class:`~repro.errors.TransactionTimeout`.  ``None`` disables the
    watchdog (the default for healthy runs)."""

    progress_timeout_cycles: Optional[int] = None
    """Global deadlock watchdog: in-flight work with no completion for
    this many cycles raises :class:`~repro.errors.DeadlockError`.
    Distinguishes deadlock from quiescence — zero in-flight work never
    trips it.  ``None`` disables the watchdog."""

    max_retries: int = 8
    """Re-issue attempts per transaction after a NACK or poisoned read
    before it is abandoned and counted as unrecoverable."""

    retry_backoff_cycles: int = 16
    """Base retry backoff; attempt ``k`` waits ``base * 2**(k-1)``
    cycles, capped at ``retry_backoff_cap``."""

    retry_backoff_cap: int = 1024
    """Upper bound of the exponential retry backoff."""

    def __post_init__(self) -> None:
        if not self.engine:
            object.__setattr__(
                self, "engine", "fast" if self.fast_path else "legacy")
        if self.engine not in ENGINE_TIERS:
            raise ConfigError(
                f"engine must be one of {ENGINE_TIERS}, got {self.engine!r}")
        # ``engine`` is authoritative; ``fast_path`` stays as the derived
        # boolean view older call sites (and drain()) key off.
        object.__setattr__(self, "fast_path", self.engine != "legacy")
        if self.cycles <= 0:
            raise ConfigError("cycles must be positive")
        if not 0 <= self.warmup < self.cycles:
            raise ConfigError("warmup must lie inside the run")
        if self.outstanding < 1:
            raise ConfigError("outstanding must be >= 1")
        if self.telemetry_interval < 1:
            raise ConfigError("telemetry_interval must be >= 1")
        if self.txn_timeout_cycles is not None and self.txn_timeout_cycles < 1:
            raise ConfigError("txn_timeout_cycles must be >= 1 (or None)")
        if (self.progress_timeout_cycles is not None
                and self.progress_timeout_cycles < 1):
            raise ConfigError("progress_timeout_cycles must be >= 1 (or None)")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.retry_backoff_cycles < 1:
            raise ConfigError("retry_backoff_cycles must be >= 1")
        if self.retry_backoff_cap < self.retry_backoff_cycles:
            raise ConfigError(
                "retry_backoff_cap must be >= retry_backoff_cycles")
        if (self.txn_timeout_cycles is not None
                and self.retry_backoff_cap >= self.txn_timeout_cycles):
            # A retry parked for its full backoff would sit past the
            # watchdog deadline and be reported as a timeout instead of
            # re-issuing — a silent hang disguised as a fault.
            raise ConfigError(
                f"retry_backoff_cap ({self.retry_backoff_cap}) must be < "
                f"txn_timeout_cycles ({self.txn_timeout_cycles}); a parked "
                f"retry would outlive the transaction watchdog")

    @property
    def measured_cycles(self) -> int:
        return self.cycles - self.warmup

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict of every field, *including* the env-defaulted
        toggles (``fast_path``/``sanitize``/``telemetry``) — a dumped
        config replays the run it described, not whatever the loading
        process's environment happens to say.  Round-trips bit-exactly
        through :meth:`from_dict` (hypothesis-tested; the fuzz corpus
        depends on it)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown SimConfig field(s): {sorted(unknown)}")
        return cls(**{k: data[k] for k in data})
