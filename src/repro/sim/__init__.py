"""Cycle-stepped simulation engine.

:class:`~repro.sim.engine.Engine` drives bus masters, a fabric, and the
DRAM models cycle by cycle at the fabric clock (450 MHz) and collects the
statistics the paper reports: throughput in GB/s per direction and
round-trip latency mean/σ in accelerator-clock cycles.

Typical use::

    from repro import sim, fabric, traffic
    fab = fabric.SegmentedFabric()
    sources = traffic.make_pattern_sources(Pattern.CCS)
    report = sim.Engine(fab, sources, sim.SimConfig(cycles=12_000)).run()
    print(report.total_gbps)
"""

from .config import SimConfig
from .stats import LatencySummary, SimReport, OnlineStats
from .engine import Engine, simulate
from .cache import SimCache, sweep_key
from .trace import TraceRecorder

__all__ = [
    "SimConfig",
    "LatencySummary",
    "SimReport",
    "OnlineStats",
    "Engine",
    "simulate",
    "SimCache",
    "sweep_key",
    "TraceRecorder",
]
