"""The vectorized struct-of-arrays engine tier (``engine="vector"``).

Third main-loop tier next to the legacy per-cycle loop and the fast
path.  Where the fast path skips whole *cycles* only when every master
sleeps and the fabric's conservative :meth:`~repro.fabric.base.BaseFabric.next_event`
allows it, the vector tier tracks a **per-component due time** — one
slot per arbitrated output bus, per memory controller and per master —
and each stepped cycle advances only the components whose due time has
arrived.  The segmented fabric's arbitration planes keep their dues in
numpy arrays (vectorized ``due <= cycle`` scans pay there, with dozens
of switch outputs per plane); the MC dues and master wake times live in
plain python lists under an exactly-maintained scalar minimum cache,
which profiling showed beats numpy reductions at those plane sizes.
The struct-of-arrays adapters (:mod:`repro.dram.soa`,
:mod:`repro.fabric.soa`) carry the full numpy state image for
capture/restore and digesting.  Between stepped cycles the tier jumps
the clock to the minimum over all planes, which fires far more often
than the fast path's horizon: a
saturated controller whose scheduler has booked the DRAM bus 48 cycles
ahead is provably idle until that booking drains, and a transmitting
switch output is provably silent until its bus meter expires.

Correctness rests on the same over-approximation property the fast path
uses, applied per component:

* the legacy loop steps *every* component *every* cycle, so stepping a
  component spuriously is always bit-identical (its step is a no-op);
* the only hazards are **missed** steps.  A component may be skipped at
  a stepped cycle only when its step is provably a no-op — including
  its observable diagnostic counters (``grant_stalls``,
  ``port_stalls``), which the telemetry layer samples — and a cycle may
  be jumped over only when *nothing* observable would happen in it.

Due times are therefore conservative, and every asynchronous arrival
re-arms its consumer through a waker hook (:attr:`~repro.fabric.links.ArbOutput.waker`,
:attr:`~repro.fabric.links.Fifo.waker`,
:attr:`~repro.dram.controller.MemoryController.waker`,
:attr:`~repro.fabric.mao_fabric.MaoFabric.read_slot_waker`).  A fired
fault event invalidates everything (:meth:`_BaseStepper.resync`) —
fault handlers mutate arbitrary model state, so the caches start over;
this clamps vectorized jumps exactly as the ISSUE requires.

Where vectorization is *forbidden*: the per-cycle work inside one
component stays scalar.  FR-FCFS picks, round-robin grants and the
MAO's AXI ID lane allocation are order-sensitive — the same-ID release
chains and the ``_event_seq`` tiebreaker make *acceptance order* part
of the observable result — so components due on the same cycle are
stepped in exactly the legacy iteration order (see DESIGN.md §12).

The tier is selected via ``SimConfig(engine="vector")`` / ``--engine
vector`` / ``REPRO_ENGINE=vector`` and must produce bit-identical
:class:`~repro.sim.stats.SimReport`, trace and telemetry-final results
(enforced by the three-way grid in ``tests/test_engine_fastpath.py``
and the conformance fuzz loop).
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Any, Callable, List, Sequence, Set

import numpy as np

from ..fabric.ideal import IdealFabric
from ..fabric.links import ArbOutput, Fifo
from ..fabric.mao_fabric import MaoFabric
from ..fabric.segmented import SegmentedFabric

if TYPE_CHECKING:  # pragma: no cover
    from ..axi.master import MasterPort
    from ..dram.controller import MemoryController
    from ..fabric.base import BaseFabric
    from .engine import Engine

_INF = math.inf

#: Master-plane specializations (extended sleep rules), keyed by fabric.
_MODE_GENERIC = 0
_MODE_SEG = 1
_MODE_MAO = 2


def _out_due(o: ArbOutput, cycle: int) -> float:
    """Next cycle at which ``o.step`` is not a provable no-op.

    Called right after ``o`` stepped at ``cycle``.  Three cases:

    * an in-flight delivery is due at its (exact, known) arrival cycle;
    * a pending flit with the bus *transmitting* (``busy_until >
      cycle``): the legacy step returns on the own-busy branch without
      touching any counter until the meter expires — skip to
      ``ceil(busy_until)``;
    * a pending flit with the bus free: the next step may grant or bump
      ``grant_stalls`` (shared-bus stall, destination backpressure, HOL
      blocking) — both observable — so the output is due every cycle.
    """
    d = _INF
    infl = o.in_flight
    if infl:
        d = float(math.ceil(infl[0][0]))
    if o.pending_in:
        b = o.busy_until
        g = float(math.ceil(b)) if b > cycle else cycle + 1.0
        if g < d:
            d = g
    return d


class _McDues:
    """Per-controller due times, waker-armed on acceptance.

    A controller with queued work is due every cycle while any fronted
    pseudo-channel's scheduler gate is open (a ``_pick`` attempt may
    bump ``port_stalls``), but once the scheduler has booked the DRAM
    bus ``horizon`` cycles ahead the per-cycle gate provably fails —
    with no pick and no counter — until the booking drains.  Pending
    read-data deliveries have exact due times.  Offline channels are
    parked at ``inf``; recovery arrives via fault events, which resync
    everything.

    ``due_min`` caches ``min(due)`` exactly: wakers only ever *lower*
    entries (to 0.0, lowering the cache with them), and the only raises
    happen inside :meth:`recompute`, whose callers re-derive the cache
    via :meth:`refresh_min` before relying on it.  The cache is what
    lets a stepped cycle skip the controller plane with one float
    compare instead of a 16-wide scan.
    """

    __slots__ = ("mcs", "horizon", "due", "due_min")

    def __init__(self, mcs: Sequence["MemoryController"],
                 horizon: float) -> None:
        self.mcs = list(mcs)
        self.horizon = horizon
        self.due: List[float] = [0.0] * len(self.mcs)
        self.due_min = 0.0
        for i, mc in enumerate(self.mcs):
            def waker(_mc: "MemoryController", _self: "_McDues" = self,
                      _i: int = i) -> None:
                _self.due[_i] = 0.0
                _self.due_min = 0.0
            mc.waker = waker

    def recompute(self, i: int, cycle: int) -> None:
        """Refresh controller ``i``'s due time after it stepped."""
        mc = self.mcs[i]
        d = _INF
        pend = mc._pending
        if pend:
            d = float(math.ceil(pend[0][0]))
        h = self.horizon
        queues = mc.queues
        for li, pch in enumerate(mc.pchs):
            if not queues[li]:
                continue
            fault = pch.fault
            if fault is not None and fault.offline:
                continue
            bf = pch.bus_free
            if bf >= cycle + h:
                t = math.floor(bf - h) + 1.0
                if t < d:
                    d = t
            else:
                # Gate open: the next step attempts a pick here.
                d = cycle + 1.0
                break
        self.due[i] = d

    def refresh_min(self) -> None:
        self.due_min = min(self.due)

    def resync(self) -> None:
        due = self.due
        for i in range(len(due)):
            due[i] = 0.0
        self.due_min = 0.0

    def detach(self) -> None:
        for mc in self.mcs:
            mc.waker = None


class _BaseStepper:
    """Drives one fabric cycle and reports the fabric's next due time.

    The generic tier: step the whole fabric every stepped cycle and use
    its conservative ``next_event`` — correct for any
    :class:`~repro.fabric.base.BaseFabric`, with no component skipping.
    Subclasses specialize for the shipped fabrics; a user fabric (or a
    subclass overriding ``step``) falls back here, so the vector engine
    degrades to fast-path behavior instead of guessing at unknown
    semantics.
    """

    def __init__(self, fabric: "BaseFabric") -> None:
        self.fabric = fabric

    def step(self, cycle: int) -> None:
        self.fabric.step(cycle)

    def next_due(self, cycle: int) -> float:
        return self.fabric.next_event(cycle)

    def resync(self) -> None:
        """Invalidate every cached due time (a fault event fired)."""

    def detach(self) -> None:
        """Remove installed waker hooks."""


class _TransitStepper(_BaseStepper):
    """Heap-fed fabrics (MAO, ideal): transit + staged + controllers.

    Re-implements the fabric's step body with due-driven controller
    stepping; the transit heap and staging deque are cheap to inspect
    live, so only the controller plane needs cached dues.
    """

    def __init__(self, fabric: "BaseFabric") -> None:
        super().__init__(fabric)
        self.fab: Any = fabric
        self.is_ideal = isinstance(fabric, IdealFabric)
        self.mcdues = _McDues(fabric.mcs, fabric.sched.horizon)
        #: Earliest cycle the next staged-retry sweep could accept
        #: something.  ``inf`` after a sweep refused everything: a
        #: refusal means the target queue is full, and only a scheduler
        #: pop frees space.  Pops happen exclusively inside the
        #: due-driven controller loop below, which re-arms this to
        #: ``cycle + 1`` whenever a stepped controller's queues shrank
        #: while staged work exists — the legacy sweep that first
        #: succeeds runs the cycle *after* the pop, never earlier.
        self._staged_ready = 0.0

    def step(self, cycle: int) -> None:
        fab = self.fab
        if not self.is_ideal or cycle >= fab._stall_until:
            transit = fab._in_transit
            while transit and transit[0][0] <= cycle:
                _, _, txn = heapq.heappop(transit)
                fab._staged.append(txn)
            if fab._staged:
                fab._staged = fab._retry_staged(fab._staged, cycle)
                self._staged_ready = _INF
        mcdues = self.mcdues
        if mcdues.due_min <= cycle:
            track = bool(fab._staged)
            popped = False
            mcs = mcdues.mcs
            for i, d in enumerate(mcdues.due):
                if d <= cycle:
                    mc = mcs[i]
                    if track:
                        before = sum(len(q) for q in mc.queues)
                        mc.step(cycle)
                        if sum(len(q) for q in mc.queues) < before:
                            popped = True
                    else:
                        mc.step(cycle)
                    mcdues.recompute(i, cycle)
            mcdues.refresh_min()
            if popped:
                self._staged_ready = cycle + 1.0
        ev = fab._events
        if ev and ev[0][0] <= cycle:
            fab._pop_due_events(cycle)

    def next_due(self, cycle: int) -> float:
        fab = self.fab
        d = self.mcdues.due_min
        ev = fab._events
        if ev:
            t = float(math.ceil(ev[0][0]))
            if t < d:
                d = t
        t = _INF
        if fab._staged:
            # This cycle's sweep refused every transaction still staged
            # (anything accepted left the deque), so each target queue
            # is full; the pop tracking above tells us the earliest
            # cycle a sweep could next succeed.  A starved fabric —
            # every credit parked behind an offline channel, no pops
            # anywhere — contributes ``inf`` here and the clock jumps
            # straight to the next fault event or horizon clamp.
            t = self._staged_ready
        if fab._in_transit:
            # A fresh arrival may target a queue with space and be
            # accepted by the sweep of its arrival cycle.
            a = float(math.ceil(fab._in_transit[0][0]))
            if a < t:
                t = a
        stall = fab._stall_until if self.is_ideal else 0.0
        if stall > cycle and (fab._staged or fab._in_transit):
            # The ideal fabric's whole ingress (transit drain *and*
            # staged retries) is frozen until the stall expires, so no
            # sweep ran this cycle and the refused-this-cycle reasoning
            # above does not apply: the first live sweep — against
            # queues whose occupancy may have dropped meanwhile — is
            # the earliest acceptance point, no earlier and no later.
            t = float(math.ceil(stall))
        if t < d:
            d = t
        return d if d > cycle + 1 else cycle + 1.0

    def resync(self) -> None:
        self._staged_ready = 0.0
        self.mcdues.resync()

    def detach(self) -> None:
        self.mcdues.detach()


class _SegmentedStepper(_BaseStepper):
    """The segmented switch fabric: per-output due times with in-order
    scans.

    The two output planes (request, response) each keep a due array;
    outputs due this cycle are stepped in exactly the legacy list
    order.  A delivery *during* the scan that lands ahead of the scan
    position must be granted this same cycle (legacy steps that output
    later in its list) — the waker pushes its index onto a min-heap the
    scan merges in; a delivery behind the position waits for the next
    cycle, exactly as legacy's already-stepped output would.  MC
    landing FIFOs and completion FIFOs are drained only while non-empty
    (failed ``try_accept`` drains are mutation-free, so a blocked
    non-empty FIFO is simply due every cycle).
    """

    def __init__(self, fabric: SegmentedFabric) -> None:
        super().__init__(fabric)
        self.fab = fabric
        self.req = fabric._request_outputs
        self.resp = fabric._response_outputs
        self.req_due = np.zeros(len(self.req), dtype=np.float64)
        self.resp_due = np.zeros(len(self.resp), dtype=np.float64)
        # Exact min caches over the due planes, same discipline as
        # ``_McDues.due_min``: wakers lower, scans re-derive.
        self._mins = [0.0, 0.0]
        self.req_stamp: List[int] = [-1] * len(self.req)
        self.resp_stamp: List[int] = [-1] * len(self.resp)
        self.mcdues = _McDues(fabric.mcs, fabric.sched.horizon)
        #: PCH indices whose MC landing FIFO is non-empty.
        self.mcin_active: Set[int] = set()
        #: Master indices whose completion FIFO received flits this cycle.
        self.comp_dirty: Set[int] = set()
        # Scan state the wakers consult: which plane is scanning (0 =
        # none) and how far it has advanced.
        self._phase = 0
        self._pos = -1
        self._extras: List[int] = []
        for plane, outs in ((1, self.req), (2, self.resp)):
            due = self.req_due if plane == 1 else self.resp_due
            for j, o in enumerate(outs):
                o.waker = self._make_out_waker(plane, j, due)
        for p, fifo in enumerate(fabric.mc_in):
            def mcin_waker(_act: Set[int] = self.mcin_active,
                           _p: int = p) -> None:
                _act.add(_p)
            fifo.waker = mcin_waker
        for m, fifo in enumerate(fabric.completion):
            def comp_waker(_dirty: Set[int] = self.comp_dirty,
                           _m: int = m) -> None:
                _dirty.add(_m)
            fifo.waker = comp_waker

    def _make_out_waker(self, plane: int, j: int,
                        due: Any) -> Callable[[ArbOutput], None]:
        def waker(_o: ArbOutput, _self: "_SegmentedStepper" = self,
                  _plane: int = plane, _j: int = j,
                  _due: Any = due) -> None:
            _due[_j] = 0.0
            _self._mins[_plane - 1] = 0.0
            if _self._phase == _plane and _j > _self._pos:
                heapq.heappush(_self._extras, _j)
        return waker

    def _scan(self, outs: List[ArbOutput], due: Any, stamp: List[int],
              cycle: int) -> None:
        idxs = np.nonzero(due <= cycle)[0].tolist()
        extras = self._extras
        k = 0
        n = len(idxs)
        self._pos = -1
        while True:
            if k < n:
                j = idxs[k]
                if extras and extras[0] < j:
                    j = heapq.heappop(extras)
                else:
                    k += 1
            elif extras:
                j = heapq.heappop(extras)
            else:
                break
            if stamp[j] == cycle:
                continue  # delivered via both the due array and a waker
            stamp[j] = cycle
            self._pos = j
            o = outs[j]
            o.step(cycle)
            due[j] = _out_due(o, cycle)
        self._pos = -1

    def step(self, cycle: int) -> None:
        fab = self.fab
        mins = self._mins
        if mins[0] <= cycle:
            self._phase = 1
            self._scan(self.req, self.req_due, self.req_stamp, cycle)
            self._phase = 0
            mins[0] = float(self.req_due.min())
        act = self.mcin_active
        if act:
            mc_by_pch = fab._mc_by_pch
            mc_in = fab.mc_in
            for p in sorted(act):
                fifo = mc_in[p]
                items = fifo.items
                mc = mc_by_pch[p]
                while items and mc.try_accept(items[0].txn, cycle):
                    fifo.popleft()
                if not items:
                    act.discard(p)
        mcdues = self.mcdues
        if mcdues.due_min <= cycle:
            mcs = mcdues.mcs
            for i, d in enumerate(mcdues.due):
                if d <= cycle:
                    mcs[i].step(cycle)
                    mcdues.recompute(i, cycle)
            mcdues.refresh_min()
        if mins[1] <= cycle:
            self._phase = 2
            self._scan(self.resp, self.resp_due, self.resp_stamp, cycle)
            self._phase = 0
            mins[1] = float(self.resp_due.min())
        dirty = self.comp_dirty
        if dirty:
            completion = fab.completion
            completions = fab.completions
            for m in sorted(dirty):
                fifo = completion[m]
                items = fifo.items
                while items:
                    flit = fifo.popleft()
                    flit.txn.complete_cycle = cycle
                    completions.append((flit.txn, float(cycle)))
            dirty.clear()
        ev = fab._events
        if ev and ev[0][0] <= cycle:
            fab._pop_due_events(cycle)

    def next_due(self, cycle: int) -> float:
        if self.mcin_active:
            return cycle + 1.0
        mins = self._mins
        d = mins[0]
        if mins[1] < d:
            d = mins[1]
        t = self.mcdues.due_min
        if t < d:
            d = t
        ev = self.fab._events
        if ev:
            t = float(math.ceil(ev[0][0]))
            if t < d:
                d = t
        return d if d > cycle + 1 else cycle + 1.0

    def resync(self) -> None:
        self.req_due[:] = 0.0
        self.resp_due[:] = 0.0
        self._mins[0] = 0.0
        self._mins[1] = 0.0
        self.mcdues.resync()
        self.mcin_active.clear()
        self.mcin_active.update(
            p for p, f in enumerate(self.fab.mc_in) if f.items)

    def detach(self) -> None:
        for o in self.req:
            o.waker = None
        for o in self.resp:
            o.waker = None
        for fifo in self.fab.mc_in:
            fifo.waker = None
        for fifo in self.fab.completion:
            fifo.waker = None
        self.mcdues.detach()


def make_stepper(fabric: "BaseFabric") -> _BaseStepper:
    """Pick the stepper tier for ``fabric``.

    Specialized steppers re-implement the fabric's ``step`` body, so
    they are only safe when the fabric's *step semantics* are exactly
    the shipped ones — gated on method identity, not ``isinstance``
    alone.  Subclasses that override ``step`` (or, for the MAO, the
    hooks the lane-credit waker rides on) fall back to the generic
    tier, which is correct for anything.
    """
    t = type(fabric)
    if isinstance(fabric, SegmentedFabric) and t.step is SegmentedFabric.step:
        return _SegmentedStepper(fabric)
    if isinstance(fabric, MaoFabric) and t.step is MaoFabric.step:
        return _TransitStepper(fabric)
    if isinstance(fabric, IdealFabric) and t.step is IdealFabric.step:
        return _TransitStepper(fabric)
    return _BaseStepper(fabric)


def _master_mode(fabric: "BaseFabric") -> int:
    """Which extended master sleep rules apply (see ``run_vector``)."""
    t = type(fabric)
    if isinstance(fabric, SegmentedFabric) and t.submit is SegmentedFabric.submit:
        return _MODE_SEG
    if (isinstance(fabric, MaoFabric)
            and t.submit is MaoFabric.submit
            and t._on_read_data is MaoFabric._on_read_data
            and t._on_nack is MaoFabric._on_nack):
        return _MODE_MAO
    return _MODE_GENERIC


def run_vector(eng: "Engine") -> None:
    """The vector main loop; bit-identical to ``Engine._run_legacy``.

    Mirrors the fast path's per-cycle phase order exactly, with three
    upgrades: per-component due-driven fabric stepping (the stepper
    tiers above), numpy wake/due arrays with vectorized ``<= cycle``
    scans, and two extended master sleep states beyond
    :meth:`~repro.axi.master.MasterPort.wake_after`:

    * **segmented ingress block** — a master with a staged transaction
      and a full ingress FIFO provably no-ops (the refused submit
      leaves both the retry loop and the fresh loop unchanged) until
      the FIFO drains; re-checked after every stepped cycle, since
      ingress pops only happen inside stepped cycles;
    * **MAO lane saturation** — a master whose staged *read* faces
      saturated AXI ID lanes, with an empty retry heap (a due write
      retry would be accepted — a mutation), sleeps until
      :attr:`~repro.fabric.mao_fabric.MaoFabric.read_slot_waker` fires.

    Masters are always safe to step spuriously; both rules only ever
    *extend* a sleep that a completion, a waker or a fault resync can
    cut short.  Any fired fault event wakes everything and resyncs the
    stepper — fault handlers mutate arbitrary state, so no cached due
    time survives them.
    """
    fabric = eng.fabric
    masters = eng.masters
    by_index = {mp.index: mp for mp in masters}
    slot = {mp.index: i for i, mp in enumerate(masters)}
    stats = eng.stats
    warmup = eng.config.warmup
    cycles = eng.config.cycles
    injector = eng.injector
    dog = eng._txn_dog
    pdog = eng._progress_dog
    tele = eng.telemetry
    stepper = make_stepper(fabric)
    mode = _master_mode(fabric)
    n = len(masters)
    wake: List[float] = [0.0] * n
    # Exact cache of ``min(wake)``: everything outside the scan loop
    # only ever *lowers* entries (completions, wakers, fault resyncs),
    # and the scan — the one place entries rise — re-derives it.
    wake_min = 0.0 if n else _INF

    if mode == _MODE_MAO:
        mao: Any = fabric

        def read_slot_waker(m: int, _wake: List[float] = wake,
                            _slot: Any = slot) -> None:
            nonlocal wake_min
            i = _slot.get(m)
            if i is not None:
                _wake[i] = 0.0
                wake_min = 0.0
        mao.read_slot_waker = read_slot_waker
        max_reads: int = mao._max_reads
        rif: List[int] = mao._reads_in_flight
    seg_ingress: List[Fifo] = (
        fabric.ingress if mode == _MODE_SEG else [])  # type: ignore[attr-defined]
    blocked: List[int] = []
    is_blocked = [False] * n

    snapshotted = False
    stepped = 0
    cycle = 0
    try:
        while cycle < cycles:
            eng.cycle = cycle
            stepped += 1
            if injector is not None:
                fired = injector.next_fire(cycle) <= cycle
                injector.fire_due(cycle)
                if fired:
                    # Fault handlers mutate arbitrary model state
                    # (parked banks, offline channels, frozen links,
                    # remaps): wake everything and drop every cached
                    # due time.  Spurious steps are no-ops, so this is
                    # always safe — and rare.
                    for i in range(n):
                        wake[i] = 0.0
                        is_blocked[i] = False
                    wake_min = 0.0 if n else _INF
                    blocked.clear()
                    stepper.resync()
            if not snapshotted and cycle >= warmup:
                stats.snapshot_dram(fabric.pchs)
                snapshotted = True
            if wake_min <= cycle:
                new_min = _INF
                for i in range(n):
                    w = wake[i]
                    if w <= cycle:
                        mp = masters[i]
                        mp.step(cycle, fabric)
                        w = mp.wake_after(cycle)
                        if w == cycle + 1:
                            staged = mp._staged
                            if staged is not None:
                                if mode == _MODE_SEG:
                                    if seg_ingress[mp.index].full:
                                        w = _INF
                                        if not is_blocked[i]:
                                            is_blocked[i] = True
                                            blocked.append(i)
                                elif (mode == _MODE_MAO
                                        and not staged.is_write
                                        and not mp._retry
                                        and rif[mp.index] >= max_reads):
                                    w = _INF
                        wake[i] = w
                    if w < new_min:
                        new_min = w
                wake_min = new_min
            stepper.step(cycle)
            done = fabric.completions
            if done:
                fabric.completions = []
                for txn, _time in done:
                    i = slot[txn.master]
                    if wake[i] > cycle + 1:
                        wake[i] = cycle + 1
                if wake_min > cycle + 1:
                    wake_min = cycle + 1
                eng._process_completions(done, cycle, by_index)
            if dog is not None:
                dog.check(cycle)
            if pdog is not None and cycle >= pdog.deadline():
                pdog.check(cycle, sum(mp.outstanding for mp in masters))
            if tele is not None and cycle >= tele.next_sample:
                tele.sample(cycle)
            if blocked:
                # Ingress FIFOs only drain inside stepped cycles, so
                # re-checking blocked masters here (and after fault
                # resyncs) catches every 'full -> space' transition.
                still: List[int] = []
                for i in blocked:
                    mp = masters[i]
                    if wake[i] != _INF or mp._staged is None:
                        is_blocked[i] = False
                    elif seg_ingress[mp.index].full:
                        still.append(i)
                    else:
                        is_blocked[i] = False
                        wake[i] = cycle + 1
                        if wake_min > cycle + 1:
                            wake_min = cycle + 1
                blocked = still
            nxt = cycle + 1
            horizon = wake_min
            if horizon > nxt:
                target = horizon
                if not snapshotted and warmup > cycle:
                    if warmup < target:
                        target = float(warmup)
                if target > nxt:
                    fabric_next = stepper.next_due(cycle)
                    if fabric_next < target:
                        target = fabric_next
                # Clamp jumps to the fault and watchdog timeline so the
                # skipped stretches contain no observable events — the
                # invariant that keeps all engine tiers bit-identical
                # under fault injection.
                if target > nxt and injector is not None:
                    nf = injector.next_fire(cycle)
                    if nf < target:
                        target = nf
                if target > nxt and dog is not None:
                    d = dog.next_deadline()
                    if d < target:
                        target = d
                if (target > nxt and pdog is not None
                        and any(mp.outstanding for mp in masters)):
                    d = float(pdog.deadline())
                    if d < target:
                        target = d
                if target > nxt:
                    nxt = int(min(target, cycles))
                    if tele is not None:
                        # Event-horizon hook: snapshot the pre-jump
                        # state instead of sampling per skipped cycle.
                        tele.note_jump(cycle, nxt)
            cycle = nxt
    finally:
        stepper.detach()
        if mode == _MODE_MAO:
            mao.read_slot_waker = None
    if not snapshotted:
        stats.snapshot_dram(fabric.pchs)  # pragma: no cover
    # Match the legacy loop's final clock so drain() proceeds
    # identically after a run whose trailing quiet cycles were skipped.
    eng.cycle = cycles - 1
    eng.stepped_cycles = stepped
