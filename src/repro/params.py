"""Device, clock, and timing parameters of the modeled HBM FPGA platform.

The paper's measurements were taken on a Xilinx Virtex UltraScale+
XCVU37P-2E with two 4-Hi HBM2 stacks (8 GB total).  The constants here
describe that platform:

* 32 pseudo-channels (PCHs), each presented to the programmable logic as a
  256-bit AXI3 port running at the fabric clock (450 MHz), i.e. a
  theoretical 14.4 GB/s per PCH and 460.8 GB/s for the device.
* The accelerator side typically runs at 300 MHz (the paper argues 450 MHz
  is hard to close timing at), so each bus-master port can move at most
  9.6 GB/s per direction.
* Every two PCHs share one memory controller (MC); every four bus masters
  and two MCs hang off one local crossbar switch; eight such switches are
  chained with two lateral buses per direction (Fig. 1 of the paper).

All cycle quantities are expressed in *fabric cycles* (450 MHz) unless
stated otherwise.  The DRAM timing values are a calibrated model — they are
chosen so that the simulator reproduces the paper's measured anchor points
(single-PCH effective throughput, closed-page latencies, refresh overhead of
7–9 %), not copied from a DRAM datasheet; see DESIGN.md §5.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError

# ---------------------------------------------------------------------------
# Fundamental device geometry (Xilinx Virtex UltraScale+ HBM, XCVU37P)
# ---------------------------------------------------------------------------

#: Number of HBM pseudo-channels exposed as AXI ports.
NUM_PCH = 32

#: Number of HBM stacks on the device (two 4-Hi stacks).
NUM_STACKS = 2

#: Total HBM capacity in bytes (two 4 GB stacks).
TOTAL_CAPACITY = 8 * 1024**3

#: Capacity of one pseudo-channel in bytes.
PCH_CAPACITY = TOTAL_CAPACITY // NUM_PCH

#: AXI data bus width in bits / bytes.  One *beat* moves 32 B.
AXI_DATA_WIDTH_BITS = 256
BYTES_PER_BEAT = AXI_DATA_WIDTH_BITS // 8

#: AXI3 caps INCR bursts at 16 beats.
MAX_BURST_LEN = 16

#: Fabric-side clock of the HBM AXI ports (Hz).
FABRIC_CLOCK_HZ = 450_000_000

#: Default accelerator clock used throughout the paper (Hz).
ACCEL_CLOCK_HZ = 300_000_000

#: Theoretical bandwidth of one PCH (14.4 GB/s) and the device (460.8 GB/s).
PCH_PEAK_BYTES_PER_S = FABRIC_CLOCK_HZ * BYTES_PER_BEAT
DEVICE_PEAK_BYTES_PER_S = PCH_PEAK_BYTES_PER_S * NUM_PCH

#: Switch-fabric geometry: 8 local switches, each with 4 master ports and
#: 2 memory controllers (each MC fronts 2 PCHs); 2 lateral buses per
#: direction between neighbouring switches (Fig. 1 / Fig. 4b).
NUM_SWITCHES = 8
MASTERS_PER_SWITCH = 4
MCS_PER_SWITCH = 2
PCH_PER_MC = 2
PCH_PER_SWITCH = MCS_PER_SWITCH * PCH_PER_MC
LATERAL_BUSES_PER_DIRECTION = 2

GB = 1e9  # decimal gigabyte, as used for GB/s figures in the paper


def gbps(bytes_per_s: float) -> float:
    """Convert bytes/s to (decimal) GB/s for reporting."""
    return bytes_per_s / GB


# ---------------------------------------------------------------------------
# DRAM timing model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DramTiming:
    """Calibrated DRAM timing parameters of one pseudo-channel.

    The row/bank structure models the locality behaviour the paper observes:
    a PCH has ``num_banks`` banks; the local address space is striped over
    rows of ``row_bytes`` bytes, and row ``r`` lives in bank ``r %
    num_banks``.  Activating a row in a bank that has a different open row
    costs ``t_rp + t_rcd`` cycles; activates to *different* banks can be
    pipelined every ``t_rrd`` cycles; re-activating the *same* bank is
    limited by ``t_rc``.

    All values are in fabric (450 MHz) cycles.
    """

    row_bytes: int = 1024
    """Bytes of local PCH address space covered by one DRAM row."""

    num_banks: int = 16
    """Banks per pseudo-channel (bank = row index mod num_banks; HBM2
    exposes 16 banks per pseudo-channel).  With 1 KB rows this places the
    same-bank ping-pong knee of the Fig. 5 stride sweep between 256 KB
    and 512 KB, as measured."""

    t_rcd: int = 7
    """Row activate to column access delay (~15 ns)."""

    t_rp: int = 7
    """Row precharge time (~15 ns)."""

    t_rc: int = 24
    """Minimum delay between two activates of the *same* bank (~53 ns).
    Same-bank ping-pong (strides beyond 256 KB in Fig. 5) is tRC-bound."""

    t_rrd: int = 2
    """Minimum delay between activates to *different* banks."""

    t_miss_gap: int = 12
    """Data-bus gap exposed by sustained *irregular* row-miss streams.

    Regular miss sequences (a strided stream touching a new row every
    transaction with a constant row stride) keep the activate engine's
    tRRD/tFAW budget evenly spent and pipeline completely; random row
    sequences clump activates onto bank groups and expose part of the
    precharge+activate latency on the data path.  The gap applies when a
    transaction misses, the previous two transactions also missed, and
    the per-direction row stride is not constant — a calibrated proxy for
    the tFAW/bank-group clustering losses that reproduces the paper's
    measured random-access plateau (CCRA at ~58 % of a channel with
    16-beat bursts, Table IV) without touching strided streams."""

    cas_latency: int = 7
    """Column access (read) latency once the row is open."""

    write_latency: int = 4
    """Column write latency once the row is open."""

    t_turnaround_rd_to_wr: int = 2
    """Dead cycles on the shared data bus when switching read -> write."""

    t_turnaround_wr_to_rd: int = 4
    """Dead cycles on the shared data bus when switching write -> read."""

    t_refi: int = 1755
    """Average refresh interval (3.9 us at 450 MHz)."""

    t_rfc: int = 125
    """Refresh cycle time during which the PCH is blocked (~7.1 % overhead,
    inside the 7-9 % band Xilinx states)."""

    per_bank_refresh: bool = False
    """HBM2 optional per-bank refresh: instead of blocking the whole
    channel for ``t_rfc`` every ``t_refi``, each bank is refreshed
    individually (``t_rfc_pb`` every ``t_refi / num_banks``, rotating).
    Accesses to *other* banks proceed, so a streaming workload recovers
    most of the 7-9 % all-bank loss.  Off by default — the paper's
    platform uses all-bank refresh."""

    t_rfc_pb: int = 25
    """Per-bank refresh cycle time (~55 ns), used when
    ``per_bank_refresh`` is enabled."""

    cmd_cycles_per_txn: float = 1.2
    """Command-path occupancy per AXI transaction on the memory controller,
    shared by the two PCHs of an MC.  This is what makes burst-length-1
    traffic command-bound (Fig. 3: +50 % when BL goes from 1 to 2)."""

    port_slack_cycles: int = 128
    """Burst tolerance of the per-direction AXI port-rate gate.  The HBM
    AXI ports are clocked in the accelerator's domain (300 MHz in the
    paper's setup), capping each PCH at 9.6 GB/s *per direction* — the
    measured unidirectional hot-spot ceiling — while the DRAM data bus can
    still deliver ~13 GB/s when reads and writes overlap.  The gate is a
    token bucket: short same-direction groups may exceed the rate (so the
    controller can amortize bus turnarounds) but the long-run rate is
    bounded by the port clock."""

    def __post_init__(self) -> None:
        if self.row_bytes % BYTES_PER_BEAT:
            raise ConfigError("row_bytes must be a multiple of the beat size")
        if self.num_banks < 1:
            raise ConfigError("num_banks must be >= 1")
        for name in ("t_rcd", "t_rp", "t_rc", "t_rrd", "cas_latency",
                     "write_latency", "t_refi", "t_rfc", "port_slack_cycles"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if self.t_rc < self.t_rcd + self.t_rp:
            raise ConfigError("t_rc must cover t_rcd + t_rp")

    @property
    def refresh_overhead(self) -> float:
        """Fraction of cycles lost to refresh."""
        return self.t_rfc / self.t_refi

    @property
    def beats_per_row(self) -> int:
        return self.row_bytes // BYTES_PER_BEAT


# ---------------------------------------------------------------------------
# Fabric latency model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FabricTiming:
    """Pipeline latencies of the interconnect, in fabric cycles.

    Calibrated against the paper's latency measurements: a closed-page read
    to the local PCH takes 48 accelerator cycles (160 ns = 72 fabric
    cycles) round trip, writes acknowledge after 17 accelerator cycles
    (57 ns), and each lateral hop adds ~3 cycles per direction (the farthest
    PCH read is 72 accelerator cycles = 240 ns).
    """

    switch_latency: int = 16
    """Pipeline latency through a local crossbar switch, each direction."""

    mc_latency: int = 12
    """AXI-to-DDR conversion latency in the memory controller, each way."""

    lateral_hop_latency: int = 2
    """Extra pipeline latency per lateral hop, each direction (the
    farthest-PCH read measures ~72 accelerator cycles round trip)."""

    dead_cycles: int = 2
    """Arbitration dead cycles inserted when a switch output changes the
    granted input (bus multiplexing for timing closure, Sec. IV-A)."""

    mao_stage_latency: int = 12
    """Latency of one MAO hierarchical distribution stage (Table III has
    12-cycle one-stage and 25-cycle two-stage configurations)."""

    def __post_init__(self) -> None:
        for name in ("switch_latency", "mc_latency", "lateral_hop_latency",
                     "dead_cycles", "mao_stage_latency"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")


# ---------------------------------------------------------------------------
# Aggregate platform description
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HbmPlatform:
    """Complete description of the modeled HBM FPGA platform.

    The default instance models the XCVU37P used in the paper.  Tests and
    what-if studies may build variants via :func:`dataclasses.replace` or
    the :meth:`scaled` helper.
    """

    num_pch: int = NUM_PCH
    pch_capacity: int = PCH_CAPACITY
    bytes_per_beat: int = BYTES_PER_BEAT
    fabric_clock_hz: int = FABRIC_CLOCK_HZ
    accel_clock_hz: int = ACCEL_CLOCK_HZ
    masters_per_switch: int = MASTERS_PER_SWITCH
    pch_per_mc: int = PCH_PER_MC
    mcs_per_switch: int = MCS_PER_SWITCH
    lateral_buses: int = LATERAL_BUSES_PER_DIRECTION
    dram: DramTiming = field(default_factory=DramTiming)
    fabric: FabricTiming = field(default_factory=FabricTiming)

    def __post_init__(self) -> None:
        if self.num_pch < 1:
            raise ConfigError("num_pch must be >= 1")
        if self.pch_capacity <= 0:
            raise ConfigError("pch_capacity must be positive")
        pch_per_switch = self.mcs_per_switch * self.pch_per_mc
        if self.num_pch % pch_per_switch:
            raise ConfigError(
                "num_pch must be divisible by PCHs per switch "
                f"({pch_per_switch})")
        if self.accel_clock_hz > self.fabric_clock_hz:
            raise ConfigError("accelerator clock may not exceed fabric clock")

    # -- derived geometry ---------------------------------------------------

    @property
    def num_switches(self) -> int:
        return self.num_pch // (self.mcs_per_switch * self.pch_per_mc)

    @property
    def pch_per_switch(self) -> int:
        return self.mcs_per_switch * self.pch_per_mc

    @property
    def num_masters(self) -> int:
        return self.num_switches * self.masters_per_switch

    @property
    def total_capacity(self) -> int:
        return self.num_pch * self.pch_capacity

    # -- derived bandwidths ---------------------------------------------------

    @property
    def pch_peak_bytes_per_s(self) -> float:
        """Theoretical peak of one PCH (fabric clock x beat width)."""
        return float(self.fabric_clock_hz * self.bytes_per_beat)

    @property
    def device_peak_bytes_per_s(self) -> float:
        """Theoretical device peak (460.8 GB/s on the XCVU37P)."""
        return self.pch_peak_bytes_per_s * self.num_pch

    @property
    def port_peak_bytes_per_s(self) -> float:
        """Peak one bus-master port can move per direction at the
        accelerator clock (9.6 GB/s at 300 MHz)."""
        return float(self.accel_clock_hz * self.bytes_per_beat)

    @property
    def clock_ratio(self) -> float:
        """Accelerator/fabric clock ratio (2/3 for 300/450 MHz)."""
        return self.accel_clock_hz / self.fabric_clock_hz

    # -- helpers --------------------------------------------------------------

    def switch_of_master(self, master: int) -> int:
        """Local switch index a bus master is attached to."""
        self._check_master(master)
        return master // self.masters_per_switch

    def switch_of_pch(self, pch: int) -> int:
        """Local switch index a pseudo-channel is attached to."""
        self._check_pch(pch)
        return pch // self.pch_per_switch

    def mc_of_pch(self, pch: int) -> int:
        """Memory-controller index a pseudo-channel belongs to."""
        self._check_pch(pch)
        return pch // self.pch_per_mc

    def local_pch_of_master(self, master: int) -> int:
        """The PCH directly associated with a master in a 1:1 port map."""
        self._check_master(master)
        return master * self.num_pch // self.num_masters

    def fabric_cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.fabric_clock_hz

    def accel_cycles(self, fabric_cycles: float) -> float:
        """Convert fabric cycles to accelerator-clock cycles."""
        return fabric_cycles * self.clock_ratio

    def with_accel_clock(self, hz: int) -> "HbmPlatform":
        """A copy of this platform with a different accelerator clock."""
        return replace(self, accel_clock_hz=hz)

    def _check_master(self, master: int) -> None:
        if not 0 <= master < self.num_masters:
            raise ConfigError(
                f"master index {master} out of range 0..{self.num_masters - 1}")

    def _check_pch(self, pch: int) -> None:
        if not 0 <= pch < self.num_pch:
            raise ConfigError(
                f"PCH index {pch} out of range 0..{self.num_pch - 1}")


#: The default platform: the paper's XCVU37P-2E at a 300 MHz accelerator clock.
DEFAULT_PLATFORM = HbmPlatform()
