"""Bus-master (BM) port model.

A bus master wraps a traffic source and issues its transactions into the
fabric, modeling the two accelerator-side constraints the paper analyzes:

* **clock pacing** — the accelerator runs at 300 MHz while the HBM ports
  run at 450 MHz; a master can move at most one beat per *accelerator*
  cycle per direction.  Issuing a write costs ``burst_len`` accelerator
  cycles of the data channel, issuing a read address costs one.
* **outstanding-transaction credits** (``Not`` in the paper) — "accelerators
  must always have multiple active AXI transactions on every bus to
  prefetch data" (Sec. IV-A).  The credit count bounds in-flight
  transactions; the paper's *Single* latency scenario uses 1, the *Burst*
  scenario 32.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Callable, List, Optional, Protocol, Tuple

from ..axi.transaction import AxiTransaction, STATUS_OK
from ..params import HbmPlatform

if TYPE_CHECKING:  # pragma: no cover
    from ..fabric.base import BaseFabric


class TrafficSource(Protocol):
    """Protocol for per-master transaction generators."""

    def next_txn(self, cycle: int) -> Optional[AxiTransaction]:
        """Produce the next transaction, or ``None`` when (currently)
        exhausted.  Implementations must set ``master``/``direction``/
        ``address``/``burst_len``."""
        ...


class MasterPort:
    """One accelerator bus master attached to the fabric."""

    __slots__ = ("index", "platform", "source", "outstanding_limit",
                 "outstanding", "next_issue", "_staged", "issued", "completed",
                 "read_issued", "write_issued", "exhausted",
                 "_retry", "_retry_seq", "retries", "nacks", "unrecoverable",
                 "max_retries", "backoff_base", "backoff_cap", "on_issue",
                 "draining")

    def __init__(
        self,
        index: int,
        platform: HbmPlatform,
        source: TrafficSource,
        outstanding_limit: int = 32,
        max_retries: int = 8,
        backoff_base: int = 16,
        backoff_cap: int = 1024,
    ) -> None:
        self.index = index
        self.platform = platform
        self.source = source
        self.outstanding_limit = outstanding_limit
        self.outstanding = 0
        #: Accelerator-clock pacing meter, in fabric cycles.
        self.next_issue: float = 0.0
        self._staged: Optional[AxiTransaction] = None
        self.issued = 0
        self.completed = 0
        self.read_issued = 0
        self.write_issued = 0
        #: The source returned None at least once (finite workloads).
        self.exhausted = False
        #: Retry queue of NACKed/poisoned transactions: (due, seq, txn)
        #: min-heap; a transaction waits out its capped exponential
        #: backoff before re-entering the issue path.
        self._retry: List[Tuple[int, int, AxiTransaction]] = []
        self._retry_seq = 0
        self.retries = 0
        self.nacks = 0
        #: Transactions abandoned after ``max_retries`` failed attempts.
        self.unrecoverable = 0
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        #: Optional hook called with ``(txn, cycle)`` on every issue and
        #: re-issue (the engine wires the transaction watchdog here).
        self.on_issue: Optional[Callable[[AxiTransaction, int], None]] = None
        #: Engine drain mode: retries still re-issue (they hold work the
        #: fabric owes a completion for), fresh source traffic stops.
        self.draining = False

    # -- simulation ----------------------------------------------------------

    def step(self, cycle: int, fabric: "BaseFabric") -> None:
        """Issue as many transactions as credits and pacing allow.

        Due retries go first — they are older traffic and re-use the
        ordinary credit and pacing budget, so a retry storm self-throttles
        exactly like fresh traffic.
        """
        ratio = self.platform.clock_ratio
        retry = self._retry
        while (retry and retry[0][0] <= cycle
               and self.outstanding < self.outstanding_limit
               and self.next_issue <= cycle):
            txn = retry[0][2]
            if not fabric.submit(txn, cycle):
                break
            heapq.heappop(retry)
            # The attempt ordinal bumps at *resubmit*, not at NACK time,
            # so observers of the failed completion still see the ordinal
            # of the attempt that actually failed.
            txn.retries += 1
            txn.status = STATUS_OK
            self.outstanding += 1
            self.retries += 1
            cost = txn.burst_len / ratio if txn.is_write else 1.0 / ratio
            base = (self.next_issue if self.next_issue > cycle - 1.0
                    else float(cycle))
            self.next_issue = base + cost
            if self.on_issue is not None:
                self.on_issue(txn, cycle)
        if self.draining:
            return
        while (self.outstanding < self.outstanding_limit
               and self.next_issue <= cycle):
            txn = self._staged
            if txn is None:
                txn = self.source.next_txn(cycle)
                if txn is None:
                    # Re-derived from source position on every step; the
                    # SoA image deliberately omits it.
                    self.exhausted = True  # statecheck: derived
                    return
            if not fabric.submit(txn, cycle):
                # Ingress backpressure: retry the same transaction later.
                self._staged = txn
                return
            self._staged = None
            self.outstanding += 1
            self.issued += 1
            if txn.is_write:
                self.write_issued += 1
                cost = txn.burst_len / ratio
            else:
                self.read_issued += 1
                cost = 1.0 / ratio
            # Keep fractional pacing credit across cycle boundaries (the
            # issue check is integer-cycle, the budget is fractional);
            # only a genuinely idle port resets its meter.
            base = (self.next_issue if self.next_issue > cycle - 1.0
                    else float(cycle))
            self.next_issue = base + cost
            if self.on_issue is not None:
                self.on_issue(txn, cycle)

    def wake_after(self, cycle: int) -> float:
        """Earliest future cycle at which :meth:`step` could do anything.

        Used by the engine's fast path to skip masters that provably
        cannot issue: a credit-blocked master sleeps until a completion
        (``inf`` — the engine wakes it explicitly), a pacing-blocked one
        until its meter expires.  A master with a staged retry or a
        (possibly temporarily) exhausted source must be polled every
        cycle, exactly as the legacy loop does.
        """
        if self.outstanding >= self.outstanding_limit:
            return math.inf
        if self.next_issue > cycle:
            return math.ceil(self.next_issue)
        return cycle + 1

    def on_complete(self, txn: AxiTransaction, cycle: int) -> None:
        """Called by the engine when one of this master's transactions
        finishes (last read beat / write response)."""
        self.outstanding -= 1
        self.completed += 1
        if self.outstanding < 0:
            from ..errors import SimulationError
            raise SimulationError(
                f"master {self.index} completed more transactions than issued")

    def on_nack(self, txn: AxiTransaction, cycle: int) -> bool:
        """A failed completion (NACK or poisoned read) came back.

        The credit returns immediately; the transaction waits out a capped
        exponential backoff (``backoff_base * 2**attempt``, at most
        ``backoff_cap`` cycles) and re-issues through :meth:`step`, which
        bumps the attempt ordinal.  After ``max_retries`` failed attempts
        it is abandoned and counted as unrecoverable.  Returns whether a
        retry was scheduled.
        """
        self.outstanding -= 1
        self.nacks += 1
        if txn.retries >= self.max_retries:
            self.unrecoverable += 1
            return False
        delay = self.backoff_base << txn.retries
        if delay > self.backoff_cap:
            delay = self.backoff_cap
        self._retry_seq += 1
        heapq.heappush(self._retry, (cycle + delay, self._retry_seq, txn))
        return True

    def next_retry(self) -> float:
        """Due cycle of the earliest queued retry, ``inf`` when none."""
        return self._retry[0][0] if self._retry else math.inf

    @property
    def retry_pending(self) -> bool:
        return bool(self._retry)

    @property
    def retry_queue_depth(self) -> int:
        """Transactions currently parked in the backoff queue (a
        telemetry gauge: sustained depth means the fabric keeps NACKing
        faster than the backoff drains)."""
        return len(self._retry)

    @property
    def idle(self) -> bool:
        """No credit in use, no staged retry, no backoff queue."""
        return (self.outstanding == 0 and self._staged is None
                and not self._retry)
