"""Bus-master (BM) port model.

A bus master wraps a traffic source and issues its transactions into the
fabric, modeling the two accelerator-side constraints the paper analyzes:

* **clock pacing** — the accelerator runs at 300 MHz while the HBM ports
  run at 450 MHz; a master can move at most one beat per *accelerator*
  cycle per direction.  Issuing a write costs ``burst_len`` accelerator
  cycles of the data channel, issuing a read address costs one.
* **outstanding-transaction credits** (``Not`` in the paper) — "accelerators
  must always have multiple active AXI transactions on every bus to
  prefetch data" (Sec. IV-A).  The credit count bounds in-flight
  transactions; the paper's *Single* latency scenario uses 1, the *Burst*
  scenario 32.
"""

from __future__ import annotations

import math
from typing import Optional, Protocol

from ..axi.transaction import AxiTransaction
from ..params import HbmPlatform


class TrafficSource(Protocol):
    """Protocol for per-master transaction generators."""

    def next_txn(self, cycle: int) -> Optional[AxiTransaction]:
        """Produce the next transaction, or ``None`` when (currently)
        exhausted.  Implementations must set ``master``/``direction``/
        ``address``/``burst_len``."""
        ...


class MasterPort:
    """One accelerator bus master attached to the fabric."""

    __slots__ = ("index", "platform", "source", "outstanding_limit",
                 "outstanding", "next_issue", "_staged", "issued", "completed",
                 "read_issued", "write_issued", "exhausted")

    def __init__(
        self,
        index: int,
        platform: HbmPlatform,
        source: TrafficSource,
        outstanding_limit: int = 32,
    ) -> None:
        self.index = index
        self.platform = platform
        self.source = source
        self.outstanding_limit = outstanding_limit
        self.outstanding = 0
        #: Accelerator-clock pacing meter, in fabric cycles.
        self.next_issue: float = 0.0
        self._staged: Optional[AxiTransaction] = None
        self.issued = 0
        self.completed = 0
        self.read_issued = 0
        self.write_issued = 0
        #: The source returned None at least once (finite workloads).
        self.exhausted = False

    # -- simulation ----------------------------------------------------------

    def step(self, cycle: int, fabric) -> None:
        """Issue as many transactions as credits and pacing allow."""
        ratio = self.platform.clock_ratio
        while (self.outstanding < self.outstanding_limit
               and self.next_issue <= cycle):
            txn = self._staged
            if txn is None:
                txn = self.source.next_txn(cycle)
                if txn is None:
                    self.exhausted = True
                    return
            if not fabric.submit(txn, cycle):
                # Ingress backpressure: retry the same transaction later.
                self._staged = txn
                return
            self._staged = None
            self.outstanding += 1
            self.issued += 1
            if txn.is_write:
                self.write_issued += 1
                cost = txn.burst_len / ratio
            else:
                self.read_issued += 1
                cost = 1.0 / ratio
            # Keep fractional pacing credit across cycle boundaries (the
            # issue check is integer-cycle, the budget is fractional);
            # only a genuinely idle port resets its meter.
            base = (self.next_issue if self.next_issue > cycle - 1.0
                    else float(cycle))
            self.next_issue = base + cost

    def wake_after(self, cycle: int) -> float:
        """Earliest future cycle at which :meth:`step` could do anything.

        Used by the engine's fast path to skip masters that provably
        cannot issue: a credit-blocked master sleeps until a completion
        (``inf`` — the engine wakes it explicitly), a pacing-blocked one
        until its meter expires.  A master with a staged retry or a
        (possibly temporarily) exhausted source must be polled every
        cycle, exactly as the legacy loop does.
        """
        if self.outstanding >= self.outstanding_limit:
            return math.inf
        if self.next_issue > cycle:
            return math.ceil(self.next_issue)
        return cycle + 1

    def on_complete(self, txn: AxiTransaction, cycle: int) -> None:
        """Called by the engine when one of this master's transactions
        finishes (last read beat / write response)."""
        self.outstanding -= 1
        self.completed += 1
        if self.outstanding < 0:
            from ..errors import SimulationError
            raise SimulationError(
                f"master {self.index} completed more transactions than issued")

    @property
    def idle(self) -> bool:
        """No credit in use and no staged retry."""
        return self.outstanding == 0 and self._staged is None
