"""Splitting arbitrary requests into AXI3-legal bursts.

Real masters rarely issue perfectly sized accesses: a DMA descriptor or a
cache line fill may start unaligned and span kilobytes.  The hardware in
front of the HBM ports (and the MAO's ingress stage) slices such requests
into INCR bursts that

* move at most 16 beats (AXI3),
* never cross a 4 KB address boundary,
* optionally never cross an address-interleave chunk, so every burst
  lands on exactly one pseudo-channel.

:func:`split_request` implements that slicing; the property tests verify
exact coverage, ordering, and legality for arbitrary inputs.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..errors import AxiProtocolError
from ..params import BYTES_PER_BEAT, MAX_BURST_LEN
from .transaction import check_burst_legal

_AXI_BOUNDARY = 4096
_MAX_BURST_BYTES = MAX_BURST_LEN * BYTES_PER_BEAT


def split_request(
    address: int,
    num_bytes: int,
    *,
    chunk: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """Slice ``[address, address + num_bytes)`` into legal AXI3 bursts.

    Returns ``(burst_address, burst_len)`` pairs in address order.  The
    request is first widened to beat granularity (a partial first/last
    beat still moves a full 32 B beat with byte strobes, exactly as AXI
    does), then cut at every 4 KB boundary, every ``chunk`` boundary if
    given (e.g. the MAO's interleave granularity), and every 16 beats.

    Raises :class:`~repro.errors.AxiProtocolError` for empty or negative
    requests, or a chunk that is not a positive beat multiple.
    """
    if num_bytes <= 0:
        raise AxiProtocolError(f"request of {num_bytes} bytes")
    if address < 0:
        raise AxiProtocolError(f"negative address {address:#x}")
    if chunk is not None and (chunk < BYTES_PER_BEAT or chunk % BYTES_PER_BEAT):
        raise AxiProtocolError(
            f"chunk must be a positive multiple of {BYTES_PER_BEAT} B")

    # Widen to beat granularity.
    start = address - address % BYTES_PER_BEAT
    end = address + num_bytes
    if end % BYTES_PER_BEAT:
        end += BYTES_PER_BEAT - end % BYTES_PER_BEAT

    bursts: List[Tuple[int, int]] = []
    pos = start
    while pos < end:
        limit = end
        # Cut at the next 4 KB boundary.
        next_4k = (pos // _AXI_BOUNDARY + 1) * _AXI_BOUNDARY
        if next_4k < limit:
            limit = next_4k
        # Cut at the next interleave chunk boundary.
        if chunk is not None:
            next_chunk = (pos // chunk + 1) * chunk
            if next_chunk < limit:
                limit = next_chunk
        # Cut at the burst-length cap.
        if pos + _MAX_BURST_BYTES < limit:
            limit = pos + _MAX_BURST_BYTES
        burst_len = (limit - pos) // BYTES_PER_BEAT
        bursts.append((pos, burst_len))
        pos = limit
    return bursts


def split_and_validate(address: int, num_bytes: int,
                       chunk: Optional[int] = None) -> List[Tuple[int, int]]:
    """Like :func:`split_request` but re-checks every burst against the
    protocol validator (used by tests and defensive callers)."""
    bursts = split_request(address, num_bytes, chunk=chunk)
    for addr, bl in bursts:
        check_burst_legal(addr, bl)
    return bursts


def covered_bytes(bursts: List[Tuple[int, int]]) -> int:
    """Total bytes the burst list moves."""
    return sum(bl * BYTES_PER_BEAT for _a, bl in bursts)
