"""AXI3 burst transactions.

A transaction is one AXI read or write burst: ``burst_len`` beats of
``BYTES_PER_BEAT`` (32) bytes starting at ``address``.  AXI3 limits INCR
bursts to 16 beats and forbids bursts that cross a 4 KB address boundary;
:func:`check_burst_legal` enforces both.

Transactions are the unit that flows through the interconnect and memory
controllers in the cycle simulation, so the class is deliberately a
``__slots__`` mutable object rather than a frozen dataclass — millions of
them are created per simulation run and attribute access is on the hot
path (see the optimization guide: avoid needless allocation in inner
loops).
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..errors import AxiProtocolError
from ..params import BYTES_PER_BEAT, MAX_BURST_LEN
from ..types import Direction

_AXI_BOUNDARY = 4096

_txn_counter = itertools.count()

#: Completion status codes (``AxiTransaction.status``).
STATUS_OK = 0
#: The fabric bounced the transaction (e.g. its pseudo-channel went
#: offline under a degradation policy); the master may retry.
STATUS_NACK = 1
#: Read data was corrupted beyond the SECDED code's correction
#: capability; the master may retry (a re-read can succeed).
STATUS_POISONED = 2

STATUS_NAMES = {STATUS_OK: "ok", STATUS_NACK: "nack",
                STATUS_POISONED: "poisoned"}


def check_burst_legal(address: int, burst_len: int) -> None:
    """Validate an AXI3 INCR burst.

    Raises :class:`~repro.errors.AxiProtocolError` if the burst length is
    outside 1..16, the address is not beat-aligned, or the burst crosses a
    4 KB boundary (AXI A3.4.1).
    """
    if not 1 <= burst_len <= MAX_BURST_LEN:
        raise AxiProtocolError(
            f"AXI3 burst length must be 1..{MAX_BURST_LEN}, got {burst_len}")
    if address < 0:
        raise AxiProtocolError(f"negative address {address:#x}")
    if address % BYTES_PER_BEAT:
        raise AxiProtocolError(
            f"address {address:#x} not aligned to the {BYTES_PER_BEAT} B beat size")
    last = address + burst_len * BYTES_PER_BEAT - 1
    if address // _AXI_BOUNDARY != last // _AXI_BOUNDARY:
        raise AxiProtocolError(
            f"burst {address:#x}+{burst_len * BYTES_PER_BEAT} crosses a 4 KB boundary")


class AxiTransaction:
    """One AXI3 read or write burst travelling through the system.

    Attributes double as the simulator's bookkeeping: ``issue_cycle`` is
    stamped when the master issues the address, ``complete_cycle`` when the
    last read beat returns (reads) or the write response arrives (writes).

    Parameters
    ----------
    master:
        Index of the issuing bus master.
    direction:
        :data:`~repro.types.Direction.READ` or ``WRITE``.
    address:
        Global byte address of the first beat.
    burst_len:
        Number of beats (1..16).
    axi_id:
        AXI transaction ID.  Transactions with the same ID must complete in
        order; distinct IDs may be reordered (this is what Fig. 6 sweeps).
    validate:
        Skip protocol validation when ``False`` (hot paths that generate
        known-legal addresses).
    """

    __slots__ = (
        "uid", "master", "direction", "address", "burst_len", "axi_id",
        "pch", "local", "issue_cycle", "accept_cycle", "complete_cycle",
        "beats_done", "hops", "status", "retries",
    )

    def __init__(
        self,
        master: int,
        direction: Direction,
        address: int,
        burst_len: int,
        axi_id: int = 0,
        *,
        validate: bool = True,
    ) -> None:
        if validate:
            check_burst_legal(address, burst_len)
        self.uid: int = next(_txn_counter)
        self.master = master
        self.direction = direction
        self.address = address
        self.burst_len = burst_len
        self.axi_id = axi_id
        #: Destination pseudo-channel; filled in by the address map.
        self.pch: int = -1
        #: Local (within-PCH) byte offset; filled in by the address map.
        self.local: int = -1
        #: Cycle the master issued the address phase.
        self.issue_cycle: int = -1
        #: Cycle the memory controller accepted the transaction.
        self.accept_cycle: int = -1
        #: Cycle of the last data beat / write response at the master.
        self.complete_cycle: int = -1
        #: Data beats already transferred back to (reads) or from (writes)
        #: the master.
        self.beats_done: int = 0
        #: Lateral hops the transaction traversed (diagnostics).
        self.hops: int = 0
        #: Completion status (:data:`STATUS_OK` / ``NACK`` / ``POISONED``).
        self.status: int = STATUS_OK
        #: Times this transaction was NACKed/poisoned and re-issued.
        self.retries: int = 0

    # -- derived properties --------------------------------------------------

    @property
    def is_read(self) -> bool:
        return self.direction is Direction.READ

    @property
    def is_write(self) -> bool:
        return self.direction is Direction.WRITE

    @property
    def num_bytes(self) -> int:
        return self.burst_len * BYTES_PER_BEAT

    @property
    def end_address(self) -> int:
        """One past the last byte touched."""
        return self.address + self.num_bytes

    @property
    def latency(self) -> Optional[int]:
        """Round-trip latency in fabric cycles, or ``None`` if in flight."""
        if self.complete_cycle < 0 or self.issue_cycle < 0:
            return None
        return self.complete_cycle - self.issue_cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "RD" if self.is_read else "WR"
        return (f"AxiTransaction(#{self.uid} {kind} m{self.master} "
                f"addr={self.address:#x} bl={self.burst_len} id={self.axi_id} "
                f"pch={self.pch})")
