"""AXI3 transaction and bus-master port models.

The HBM pseudo-channels are exposed to the programmable logic as 256-bit
AXI3 ports; the accelerator's bus masters (BMs) talk AXI3 to the
interconnect.  This package models the protocol-level objects:

* :class:`~repro.axi.transaction.AxiTransaction` — a single read or write
  burst (1..16 beats of 32 B).
* :class:`~repro.axi.master.MasterPort` — one bus master's AXI port,
  including outstanding-transaction credits and the accelerator-side clock
  pacing.
"""

from .transaction import AxiTransaction, check_burst_legal
from .master import MasterPort
from .splitter import split_request, split_and_validate

__all__ = ["AxiTransaction", "check_burst_legal", "MasterPort",
           "split_request", "split_and_validate"]
