"""Shared enumerations and small value types used across the package.

These mirror the vocabulary of the paper:

* :class:`Direction` — AXI read vs. write channel.
* :class:`Locality` — *single channel* (SC) vs. *cross channel* (CC) access,
  i.e. whether a bus master is restricted to its directly attached
  pseudo-channel or addresses the whole device (Table I of the paper).
* :class:`Order` — *strided* (S) vs. *random access* (RA) address sequences
  (Table I of the paper).
* :class:`Pattern` — the four combinations SCS / CCS / SCRA / CCRA.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Direction(enum.Enum):
    """AXI transfer direction."""

    READ = "read"
    WRITE = "write"

    @property
    def is_read(self) -> bool:
        return self is Direction.READ

    @property
    def is_write(self) -> bool:
        return self is Direction.WRITE


class Locality(enum.Enum):
    """Channel locality of a bus master's accesses (Table I)."""

    SINGLE_CHANNEL = "SC"
    CROSS_CHANNEL = "CC"


class Order(enum.Enum):
    """Ordering of the generated address sequence (Table I)."""

    STRIDE = "S"
    RANDOM = "RA"


class Pattern(enum.Enum):
    """The four basic access patterns of Table I."""

    SCS = ("SC", "S")
    CCS = ("CC", "S")
    SCRA = ("SC", "RA")
    CCRA = ("CC", "RA")

    def __init__(self, locality: str, order: str) -> None:
        self._locality = Locality(locality)
        self._order = Order(order)

    @property
    def locality(self) -> Locality:
        return self._locality

    @property
    def order(self) -> Order:
        return self._order

    @property
    def is_single_channel(self) -> bool:
        return self._locality is Locality.SINGLE_CHANNEL

    @property
    def is_random(self) -> bool:
        return self._order is Order.RANDOM


class FabricKind(enum.Enum):
    """Which interconnect connects the bus masters to the pseudo-channels."""

    XLNX = "xlnx"
    """The Xilinx-style segmented switch network with lateral connections."""

    MAO = "mao"
    """The paper's Memory Access Optimizer hierarchical network."""

    IDEAL = "ideal"
    """A zero-contention reference crossbar (used for sanity checks)."""


@dataclass(frozen=True)
class RWRatio:
    """A ratio of concurrent read to write transactions, e.g. ``2:1``.

    The paper (Fig. 2) sweeps this ratio at a fixed 300 MHz accelerator
    clock; ``RWRatio(2, 1)`` issues two read transactions for every write
    transaction. ``RWRatio(1, 0)`` is read-only and ``RWRatio(0, 1)`` is
    write-only.
    """

    reads: int
    writes: int

    def __post_init__(self) -> None:
        if self.reads < 0 or self.writes < 0:
            raise ValueError("ratio components must be non-negative")
        if self.reads == 0 and self.writes == 0:
            raise ValueError("ratio must include at least one direction")

    @property
    def read_fraction(self) -> float:
        """Fraction of transactions that are reads."""
        return self.reads / (self.reads + self.writes)

    @property
    def write_fraction(self) -> float:
        """Fraction of transactions that are writes."""
        return self.writes / (self.reads + self.writes)

    @property
    def read_only(self) -> bool:
        return self.writes == 0

    @property
    def write_only(self) -> bool:
        return self.reads == 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.reads}:{self.writes}"


READ_ONLY = RWRatio(1, 0)
WRITE_ONLY = RWRatio(0, 1)
TWO_TO_ONE = RWRatio(2, 1)
ONE_TO_ONE = RWRatio(1, 1)
