"""Read/write-ratio sequencing.

The paper's Fig. 2 sweeps the ratio of concurrent read and write
transactions ``RWrat``; accelerators commonly run 2:1 (read two inputs,
write one output — exactly the matrix-multiply accelerator A of
Sec. V).  :func:`direction_sequence` turns a ratio into a repeating
direction schedule that interleaves the two directions as evenly as
possible, which is how an accelerator's load and store units naturally
overlap (and what keeps the DRAM scheduler's grouping honest — a
pathological RRR...WWW schedule would hide turnaround costs).
"""

from __future__ import annotations

from typing import List

from ..types import Direction, RWRatio


def direction_sequence(rw: RWRatio) -> List[Direction]:
    """An evenly interleaved repeating schedule for ``rw``.

    Examples: ``2:1 -> [R, R, W]``; ``1:1 -> [R, W]``; ``3:2 ->
    [R, W, R, W, R]``; ``1:0 -> [R]``.

    Uses Bresenham-style error accumulation so the heavier direction is
    spread uniformly through the period.
    """
    r, w = rw.reads, rw.writes
    if w == 0:
        return [Direction.READ]
    if r == 0:
        return [Direction.WRITE]
    total = r + w
    seq: List[Direction] = []
    for i in range(total):
        # Reads are emitted whenever the running read quota crosses an
        # integer boundary; this spreads the heavier direction uniformly.
        if (i + 1) * r // total > i * r // total:
            seq.append(Direction.READ)
        else:
            seq.append(Direction.WRITE)
    assert seq.count(Direction.READ) == r
    assert seq.count(Direction.WRITE) == w
    return seq
