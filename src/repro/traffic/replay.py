"""Trace-replay traffic: re-run a recorded access stream elsewhere.

Workflow: record a run with :class:`~repro.sim.trace.TraceRecorder`, save
it (``.npz``), and replay the exact transaction stream on a *different*
interconnect or platform for an apples-to-apples comparison — the
methodology real memory-system studies use with application traces, and
the closest synthetic equivalent to the paper's "proof by applying the
methodology to state-of-the-art accelerators" when an accelerator's
traffic is available only as a trace.

Replay preserves each master's address/direction/burst sequence (program
order per master); inter-master timing is re-decided by the simulated
system, which is the point of the comparison.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..axi.transaction import AxiTransaction
from ..errors import ConfigError
from ..sim.trace import FIELDS, TraceRecorder
from ..types import Direction

_COL = {name: i for i, name in enumerate(FIELDS)}


def trace_to_array(recorder: TraceRecorder) -> np.ndarray:
    """Extract a replayable array, ordered by issue cycle."""
    arr = recorder.as_array()
    if arr.size == 0:
        raise ConfigError("empty trace")
    order = np.argsort(arr[:, _COL["issue"]], kind="stable")
    return arr[order]


def save_trace(path: str, recorder: TraceRecorder) -> None:
    """Persist a trace to ``.npz``."""
    np.savez_compressed(path, trace=trace_to_array(recorder),
                        fields=np.array(FIELDS))


def load_trace(path: str) -> np.ndarray:
    """Load a trace saved by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as data:
        return data["trace"]


class TraceReplaySource:
    """Replays one master's share of a recorded trace.

    Addresses in the trace are *global* addresses as issued by the
    original traffic generators, so the replay target's address map
    decides where they land — replaying a hot-spot trace through the MAO
    shows the interleaving fix directly.
    """

    def __init__(self, master: int, trace: np.ndarray,
                 loop: bool = False) -> None:
        mine = trace[trace[:, _COL["master"]] == master]
        self.master = master
        self.loop = loop
        self._is_read = mine[:, _COL["is_read"]]
        self._burst = mine[:, _COL["burst_len"]]
        self._addr = mine[:, _COL["addr"]]
        self._idx = 0
        self.replayed = 0

    def next_txn(self, cycle: int) -> Optional[AxiTransaction]:
        if self._idx >= len(self._is_read):
            if not self.loop or len(self._is_read) == 0:
                return None
            self._idx = 0
        i = self._idx
        self._idx += 1
        self.replayed += 1
        direction = Direction.READ if self._is_read[i] else Direction.WRITE
        return AxiTransaction(self.master, direction, int(self._addr[i]),
                              int(self._burst[i]), validate=False)


def make_replay_sources(trace: np.ndarray, *, loop: bool = False
                        ) -> List[TraceReplaySource]:
    """One replay source per master present in the trace."""
    masters = sorted(set(int(m) for m in trace[:, _COL["master"]]))
    return [TraceReplaySource(m, trace, loop=loop) for m in masters]
