"""Traffic generators for the paper's access patterns.

Table I of the paper spans two axes — channel locality (single vs. cross
channel) and ordering (strided vs. random) — giving the four basic
patterns SCS, CCS, SCRA, CCRA.  This package generates exactly those,
plus the special sweeps of the evaluation section:

* :mod:`repro.traffic.rotation` — the Fig. 4 rotation pattern
  (master ``m`` -> PCH ``(m+i) mod 32``),
* :mod:`repro.traffic.stride` — the Fig. 5 stride-length sweep,
* :mod:`repro.traffic.mix` — read/write-ratio sequencing (Fig. 2),
* :mod:`repro.traffic.hotspot` — explicit hot-spot traffic for tests.
"""

from .mix import direction_sequence
from .patterns import (
    PatternSource,
    ScsSource,
    CcsSource,
    ScraSource,
    CcraSource,
    make_pattern_sources,
)
from .rotation import RotationSource, make_rotation_sources
from .stride import StrideSweepSource, make_stride_sources
from .hotspot import HotspotSource, make_hotspot_sources
from .replay import (TraceReplaySource, make_replay_sources, save_trace,
                     load_trace, trace_to_array)

__all__ = [
    "direction_sequence",
    "PatternSource",
    "ScsSource",
    "CcsSource",
    "ScraSource",
    "CcraSource",
    "make_pattern_sources",
    "RotationSource",
    "make_rotation_sources",
    "StrideSweepSource",
    "make_stride_sources",
    "HotspotSource",
    "make_hotspot_sources",
    "TraceReplaySource",
    "make_replay_sources",
    "save_trace",
    "load_trace",
    "trace_to_array",
]
