"""Explicit hot-spot traffic: every master targets one pseudo-channel.

Under the vendor's contiguous address map the plain CCS pattern already
*is* a hot-spot (all data lives in PCH 0); this source makes the target
channel explicit so the hot-spot can be reproduced under *any* address
map — used by the unit tests and by ablation studies that pin the
bottleneck to a chosen channel.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.address_map import AddressMap, ContiguousMap
from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..types import Direction, RWRatio, TWO_TO_ONE
from .patterns import PatternSource


class HotspotSource(PatternSource):
    """Collective strided stream into a single explicit PCH."""

    def __init__(
        self,
        master: int,
        target_pch: int,
        platform: HbmPlatform = DEFAULT_PLATFORM,
        burst_len: int = 16,
        rw: RWRatio = TWO_TO_ONE,
        address_map: Optional[AddressMap] = None,
        num_masters: Optional[int] = None,
    ) -> None:
        super().__init__(master, platform, burst_len, rw)
        self.address_map = address_map or ContiguousMap(platform)
        self.target_pch = target_pch
        self.num_masters = num_masters or platform.num_masters
        half = platform.pch_capacity // 2
        self._base = {Direction.READ: 0, Direction.WRITE: half}
        self._size = half
        self._step = {Direction.READ: 0, Direction.WRITE: 0}

    def _next_address(self, direction: Direction) -> Optional[int]:
        k = self._step[direction]
        self._step[direction] = k + 1
        local = (k * self.num_masters + self.master) * self.burst_bytes
        local = self._base[direction] + local % self._size
        return self.address_map.global_of(self.target_pch, local)


def make_hotspot_sources(
    target_pch: int = 0,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    burst_len: int = 16,
    rw: RWRatio = TWO_TO_ONE,
    address_map: Optional[AddressMap] = None,
) -> List[HotspotSource]:
    """One hot-spot source per bus master."""
    return [HotspotSource(m, target_pch, platform, burst_len, rw, address_map)
            for m in range(platform.num_masters)]
