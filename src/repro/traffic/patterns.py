"""The four basic access patterns of Table I (SCS, CCS, SCRA, CCRA).

All sources share the same skeleton: an evenly interleaved read/write
schedule (:func:`~repro.traffic.mix.direction_sequence`) and a per-
direction address generator.  Addresses are aligned to the burst size, so
every generated transaction is AXI3-legal by construction (a power-of-two
burst never crosses a 4 KB boundary when size-aligned).

* **SCS** — single-channel strided: master ``m`` streams through the
  memory of *its own* pseudo-channel (the manual 1:1 partitioning used by
  prior accelerator work).  Reads and writes stream through disjoint
  halves of the local capacity.
* **CCS** — cross-channel strided: data lies globally contiguous and
  every master requests the globally subsequent chunk in turn.  Under the
  vendor's contiguous address map this collapses onto one PCH — the
  hot-spot of Fig. 3b; under the MAO's interleaving it spreads over all
  channels.
* **SCRA** — random inside the master's own channel.
* **CCRA** — random over the whole device, ≤512 B per transaction.

Random sources draw addresses from a per-master ``numpy`` generator in
vectorized batches (the hot loop only pops precomputed integers).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..axi.transaction import AxiTransaction
from ..core.address_map import AddressMap, ContiguousMap
from ..errors import ConfigError
from ..params import BYTES_PER_BEAT, HbmPlatform, DEFAULT_PLATFORM
from ..types import Direction, Pattern, RWRatio, TWO_TO_ONE
from .mix import direction_sequence

_RANDOM_BATCH = 4096


class PatternSource:
    """Common skeleton of all pattern traffic sources."""

    def __init__(
        self,
        master: int,
        platform: HbmPlatform,
        burst_len: int,
        rw: RWRatio = TWO_TO_ONE,
    ) -> None:
        if not 1 <= burst_len <= 16:
            raise ConfigError(f"burst_len must be 1..16, got {burst_len}")
        self.master = master
        self.platform = platform
        self.burst_len = burst_len
        self.burst_bytes = burst_len * BYTES_PER_BEAT
        self.rw = rw
        self._schedule = direction_sequence(rw)
        self._sched_idx = 0
        self.generated = 0

    # -- protocol --------------------------------------------------------------

    def next_txn(self, cycle: int) -> Optional[AxiTransaction]:
        d = self._schedule[self._sched_idx]
        self._sched_idx = (self._sched_idx + 1) % len(self._schedule)
        addr = self._next_address(d)
        if addr is None:
            return None
        self.generated += 1
        return AxiTransaction(self.master, d, addr, self.burst_len,
                              validate=False)

    def _next_address(self, direction: Direction) -> Optional[int]:
        raise NotImplementedError

    # -- helpers ------------------------------------------------------------------

    def _align(self, addr: int) -> int:
        return addr - addr % self.burst_bytes


class ScsSource(PatternSource):
    """Single-channel strided: stream within the master's own PCH."""

    def __init__(
        self,
        master: int,
        platform: HbmPlatform = DEFAULT_PLATFORM,
        burst_len: int = 16,
        rw: RWRatio = TWO_TO_ONE,
        address_map: Optional[AddressMap] = None,
    ) -> None:
        super().__init__(master, platform, burst_len, rw)
        self.address_map = address_map or ContiguousMap(platform)
        self.pch = platform.local_pch_of_master(master)
        half = platform.pch_capacity // 2
        self._base = {Direction.READ: 0, Direction.WRITE: half}
        self._size = half
        self._offset = {Direction.READ: 0, Direction.WRITE: 0}

    def _next_address(self, direction: Direction) -> Optional[int]:
        off = self._offset[direction]
        local = self._base[direction] + off
        self._offset[direction] = (off + self.burst_bytes) % self._size
        return self.address_map.global_of(self.pch, local)


class CcsSource(PatternSource):
    """Cross-channel strided: globally contiguous collective stream."""

    #: Default working-set size per direction (fits inside one PCH so the
    #: contiguous map exhibits the paper's hot-spot behaviour).
    DEFAULT_REGION = 64 * 1024 * 1024

    def __init__(
        self,
        master: int,
        platform: HbmPlatform = DEFAULT_PLATFORM,
        burst_len: int = 16,
        rw: RWRatio = TWO_TO_ONE,
        read_base: int = 0,
        write_base: Optional[int] = None,
        region_size: int = DEFAULT_REGION,
        num_masters: Optional[int] = None,
    ) -> None:
        super().__init__(master, platform, burst_len, rw)
        self.num_masters = num_masters or platform.num_masters
        self.region_size = region_size
        self._base = {
            Direction.READ: read_base,
            Direction.WRITE: write_base if write_base is not None
            else read_base + region_size,
        }
        self._step = {Direction.READ: 0, Direction.WRITE: 0}

    def _next_address(self, direction: Direction) -> Optional[int]:
        k = self._step[direction]
        self._step[direction] = k + 1
        chunk = (k * self.num_masters + self.master) * self.burst_bytes
        return self._base[direction] + chunk % self.region_size


class _RandomMixin:
    """Vectorized random-offset drawing (batched numpy)."""

    def _init_random(self, seed: int, span_chunks: int) -> None:
        self._rng = np.random.default_rng(seed)
        self._span = span_chunks
        self._batch: Optional[np.ndarray] = None
        self._batch_idx = 0

    def _next_chunk_index(self) -> int:
        if self._batch is None or self._batch_idx >= len(self._batch):
            self._batch = self._rng.integers(
                0, self._span, size=_RANDOM_BATCH, dtype=np.int64)
            self._batch_idx = 0
        v = int(self._batch[self._batch_idx])
        self._batch_idx += 1
        return v


class ScraSource(PatternSource, _RandomMixin):
    """Single-channel random access inside the master's own PCH."""

    def __init__(
        self,
        master: int,
        platform: HbmPlatform = DEFAULT_PLATFORM,
        burst_len: int = 16,
        rw: RWRatio = TWO_TO_ONE,
        address_map: Optional[AddressMap] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(master, platform, burst_len, rw)
        self.address_map = address_map or ContiguousMap(platform)
        self.pch = platform.local_pch_of_master(master)
        self._init_random(seed * 1000003 + master,
                          platform.pch_capacity // self.burst_bytes)

    def _next_address(self, direction: Direction) -> Optional[int]:
        local = self._next_chunk_index() * self.burst_bytes
        return self.address_map.global_of(self.pch, local)


class CcraSource(PatternSource, _RandomMixin):
    """Cross-channel random access over the whole device (≤512 B chunks)."""

    def __init__(
        self,
        master: int,
        platform: HbmPlatform = DEFAULT_PLATFORM,
        burst_len: int = 16,
        rw: RWRatio = TWO_TO_ONE,
        seed: int = 0,
        span_bytes: Optional[int] = None,
    ) -> None:
        super().__init__(master, platform, burst_len, rw)
        span = span_bytes if span_bytes is not None else platform.total_capacity
        self._init_random(seed * 1000003 + master, span // self.burst_bytes)

    def _next_address(self, direction: Direction) -> Optional[int]:
        return self._next_chunk_index() * self.burst_bytes


def make_pattern_sources(
    pattern: Pattern,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    burst_len: int = 16,
    rw: RWRatio = TWO_TO_ONE,
    address_map: Optional[AddressMap] = None,
    seed: int = 0,
) -> List[PatternSource]:
    """One source per bus master for a Table I pattern.

    ``address_map`` is only needed for the single-channel patterns (so the
    master targets *its own* PCH regardless of the mapping the fabric
    applies); cross-channel patterns generate global addresses and let the
    fabric's map decide where they land.
    """
    n = platform.num_masters
    if pattern is Pattern.SCS:
        return [ScsSource(m, platform, burst_len, rw, address_map)
                for m in range(n)]
    if pattern is Pattern.CCS:
        return [CcsSource(m, platform, burst_len, rw) for m in range(n)]
    if pattern is Pattern.SCRA:
        return [ScraSource(m, platform, burst_len, rw, address_map, seed)
                for m in range(n)]
    if pattern is Pattern.CCRA:
        return [CcraSource(m, platform, burst_len, rw, seed) for m in range(n)]
    raise ConfigError(f"unknown pattern {pattern!r}")
