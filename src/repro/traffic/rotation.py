"""Rotation traffic of Fig. 4: master ``m`` -> PCH ``(m + offset) mod 32``.

The paper uses this pattern to expose the lateral-bus limits of the
segmented switch fabric: "assigning every BM m through an offset i a
unique PCH m + i mod Nch_max".  Every PCH serves exactly one master
(contiguous SCS-style bursts), so the DRAM itself is never the
bottleneck; any loss comes from the interconnect.  Offsets larger than
``num_pch / 2`` are equivalent to a rotation in the other direction
because the fabric is symmetric.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.address_map import AddressMap, ContiguousMap
from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..types import Direction, RWRatio, TWO_TO_ONE
from .patterns import PatternSource


class RotationSource(PatternSource):
    """Strided single-destination traffic to a rotated PCH."""

    def __init__(
        self,
        master: int,
        offset: int,
        platform: HbmPlatform = DEFAULT_PLATFORM,
        burst_len: int = 16,
        rw: RWRatio = TWO_TO_ONE,
        address_map: Optional[AddressMap] = None,
    ) -> None:
        super().__init__(master, platform, burst_len, rw)
        self.address_map = address_map or ContiguousMap(platform)
        self.offset = offset
        self.pch = (platform.local_pch_of_master(master) + offset) % platform.num_pch
        half = platform.pch_capacity // 2
        self._base = {Direction.READ: 0, Direction.WRITE: half}
        self._size = half
        self._pos = {Direction.READ: 0, Direction.WRITE: 0}

    def _next_address(self, direction: Direction) -> Optional[int]:
        off = self._pos[direction]
        local = self._base[direction] + off
        self._pos[direction] = (off + self.burst_bytes) % self._size
        return self.address_map.global_of(self.pch, local)


def make_rotation_sources(
    offset: int,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    burst_len: int = 16,
    rw: RWRatio = TWO_TO_ONE,
    address_map: Optional[AddressMap] = None,
) -> List[RotationSource]:
    """One rotation source per bus master."""
    return [RotationSource(m, offset, platform, burst_len, rw, address_map)
            for m in range(platform.num_masters)]
