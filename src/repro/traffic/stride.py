"""Stride-length sweep traffic of Fig. 5.

The 32 masters collectively walk a strided window sequence: at step ``k``
master ``b`` accesses the ``b``-th 512 B chunk of the window starting at
``k * stride``, i.e. address ``k * stride + b * 512``.

* ``stride < 16 KB`` (= 32 masters x 512 B): consecutive windows overlap,
  so "the same data is always accessed by several subsequent BMs" — the
  masters drift out of lockstep and collide on pseudo-channels.
* ``stride == 16 KB``: windows tile the address space exactly; under MAO
  interleaving every master stays locked to its own channel.
* ``stride > 256 KB``: each master's per-channel address advances a full
  bank-rotation per step, so every transaction re-activates the same
  bank — DRAM page misses dominate (tRC-bound).

Writes mirror the read structure in a disjoint half of the device so a
mixed read/write ratio can be swept too.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigError
from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..types import Direction, RWRatio, TWO_TO_ONE
from .patterns import PatternSource


class StrideSweepSource(PatternSource):
    """One master's share of the collective strided window walk."""

    def __init__(
        self,
        master: int,
        stride: int,
        platform: HbmPlatform = DEFAULT_PLATFORM,
        burst_len: int = 16,
        rw: RWRatio = TWO_TO_ONE,
    ) -> None:
        super().__init__(master, platform, burst_len, rw)
        if stride <= 0 or stride % self.burst_bytes:
            raise ConfigError(
                f"stride must be a positive multiple of the access size "
                f"({self.burst_bytes} B), got {stride}")
        self.stride = stride
        half = platform.total_capacity // 2
        # Wrap at a stride multiple so the walk stays aligned.
        self._wrap = (half // stride) * stride
        if self._wrap == 0:
            raise ConfigError("stride larger than half the device capacity")
        self._lane_offset = master * self.burst_bytes
        self._base = {Direction.READ: 0, Direction.WRITE: half}
        self._step = {Direction.READ: 0, Direction.WRITE: 0}

    def _next_address(self, direction: Direction) -> Optional[int]:
        k = self._step[direction]
        self._step[direction] = k + 1
        window = (k * self.stride) % self._wrap
        return self._base[direction] + window + self._lane_offset


def make_stride_sources(
    stride: int,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    burst_len: int = 16,
    rw: RWRatio = TWO_TO_ONE,
) -> List[StrideSweepSource]:
    """One stride-sweep source per bus master."""
    return [StrideSweepSource(m, stride, platform, burst_len, rw)
            for m in range(platform.num_masters)]
