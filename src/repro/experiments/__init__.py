"""Experiment harness: one module per table/figure of the paper.

Every experiment module exposes the same surface:

* ``run(...) -> list[Row]`` — regenerate the experiment's data (rows are
  frozen dataclasses),
* ``format_table(rows) -> str`` — the paper-style table/series printout,
* ``PAPER_REFERENCE`` — the anchor values reported in the paper, used by
  the paper-claims tests and the EXPERIMENTS.md generator.

Use :mod:`repro.experiments.registry` to enumerate them and
``python -m repro.experiments.runner`` (or the ``repro-hbm`` console
script) to run them from the command line.
"""

from .registry import EXPERIMENTS, ExperimentSpec, get_experiment

__all__ = ["EXPERIMENTS", "ExperimentSpec", "get_experiment"]
