"""Markdown report generation.

``repro-hbm report`` regenerates every artifact and assembles a single
markdown document: one section per table/figure with the formatted output
in a fenced block and the paper's reference values alongside — the
machine-written companion to the hand-written EXPERIMENTS.md analysis.
"""

from __future__ import annotations

import time
from typing import List, Optional

from .registry import EXPERIMENTS

_HEADER = """# Regenerated results — Fast HBM Access with FPGAs (IPDPSW 2021)

Produced by `repro-hbm report`{cycles_note}.  Simulated platform: Xilinx
XCVU37P-class HBM subsystem (32 pseudo-channels, 300 MHz accelerator
clock).  See EXPERIMENTS.md for the paper-vs-measured analysis and
docs/CALIBRATION.md for how the model constants were pinned.
"""


def generate_report(
    keys: Optional[List[str]] = None,
    cycles: Optional[int] = None,
) -> str:
    """Run the selected experiments (default: all) and render markdown."""
    from .registry import get_experiment
    selected = sorted(EXPERIMENTS) if keys is None else keys
    for key in selected:
        get_experiment(key)  # raises ConfigError for typos
    note = f" at a {cycles}-cycle horizon" if cycles else ""
    parts = [_HEADER.format(cycles_note=note)]
    for key in selected:
        spec = EXPERIMENTS[key]
        kwargs = {}
        if cycles is not None and spec.uses_simulation:
            kwargs["cycles"] = cycles
        start = time.perf_counter()  # det-lint: allow (display only)
        table = spec.execute(**kwargs)
        elapsed = time.perf_counter() - start  # det-lint: allow
        parts.append(f"## {key} — {spec.title}\n")
        parts.append(f"```text\n{table}\n```\n")
        ref = spec.paper_reference
        if ref and key != "extensions":
            parts.append("Paper reference values: "
                         + "; ".join(f"`{k}` = {v}" for k, v in ref.items()
                                     if not isinstance(v, dict))
                         + f"  \n*(regenerated in {elapsed:.1f} s)*\n")
        else:
            parts.append(f"*(regenerated in {elapsed:.1f} s)*\n")
    return "\n".join(parts)
