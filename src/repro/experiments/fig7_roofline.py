"""Fig. 7 — Roofline models of accelerators A and B.

Two rooflines (one per accelerator), each with the measured XLNX and MAO
memory ceilings and the compute ceilings of every P configuration; every
(P, fabric) design point is placed at its attainable performance.

Paper shape: without optimized access, *all* configurations of both
accelerators are memory bound at ~10-13 GB/s; with the MAO, accelerator
A becomes compute bound up to P=16 (18.4x for the feasible P=8) and
accelerator B becomes compute bound everywhere, its P=32 point less than
a percent from the memory ceiling (28.5x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..accelerators import AcceleratorA, AcceleratorB
from ..accelerators.base import AcceleratorConfig
from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..roofline import (Ceiling, CeilingKind, RooflineModel, RooflinePoint,
                        render_roofline)
from ._common import DEFAULT_CYCLES
from .table5_accelerators import MeasuredBandwidths, measure_bandwidths

PS = (4, 8, 16, 32)

PAPER_REFERENCE = {
    "a_mao_bound": {4: "compute", 8: "compute", 16: "compute", 32: "memory"},
    "b_xlnx_bound": "memory",   # all P memory bound without MAO
    "b_mao_bound": "compute",   # all P compute bound with MAO
}


@dataclass(frozen=True)
class Fig7Result:
    accelerator: str
    model: RooflineModel
    points: List[RooflinePoint]


def run(
    cycles: int = DEFAULT_CYCLES,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    bandwidths: MeasuredBandwidths | None = None,
) -> List[Fig7Result]:
    bw = bandwidths or measure_bandwidths(cycles, platform)
    results: List[Fig7Result] = []
    for cls, bw_x, bw_m in ((AcceleratorA, bw.a_xlnx_gbps, bw.a_mao_gbps),
                            (AcceleratorB, bw.b_xlnx_gbps, bw.b_mao_gbps)):
        ceilings = [
            Ceiling("Memory BW XLNX", CeilingKind.MEMORY, bw_x),
            Ceiling("Memory BW MAO", CeilingKind.MEMORY, bw_m),
        ]
        models = {p: cls(AcceleratorConfig(p=p)) for p in PS}
        for p, m in models.items():
            ceilings.append(Ceiling(f"{p} ports", CeilingKind.COMPUTE,
                                    m.compute_ceiling_gops))
        roof = RooflineModel(ceilings)
        points = []
        for p, m in models.items():
            for fabric, mem in (("XLNX", "Memory BW XLNX"),
                                ("MAO", "Memory BW MAO")):
                points.append(roof.place(
                    f"{p} ports ({fabric})", m.operational_intensity,
                    compute=f"{p} ports", memory=mem))
        results.append(Fig7Result(cls.name, roof, points))
    return results


def format_table(results: List[Fig7Result]) -> str:
    out = []
    for res in results:
        out.append(f"\nFig. 7 — Roofline of {res.accelerator}")
        out.append(render_roofline(res.model, res.points))
    return "\n".join(out)
