"""Fig. 3 — burst-length sweep for the four basic patterns.

One sub-figure per Table I pattern (SCS / CCS / SCRA / CCRA), burst
lengths 1..16, each measured read-only, write-only, and mixed 2:1 on the
vendor fabric.  Key shapes the paper reports:

* length-1 bursts perform significantly worse everywhere; unidirectional
  single-channel gains ~50 % going to length 2 and plateaus early,
* the CCS hot-spot saturates at ~2.8 % of the device (13 GB/s mixed,
  9.6 GB/s unidirectional),
* CCRA still reaches ~5.4x a single channel's maximum thanks to
  memory-level parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..traffic import make_pattern_sources
from ..types import FabricKind, Pattern, RWRatio, READ_ONLY, WRITE_ONLY, TWO_TO_ONE
from .. import make_fabric
from ._common import DEFAULT_CYCLES, measure, pct_of_peak, sweep_key

BURST_LENGTHS = (1, 2, 4, 8, 16)
DIRECTIONS = {"RD": READ_ONLY, "WR": WRITE_ONLY, "Both": TWO_TO_ONE}

PAPER_REFERENCE = {
    "scs_bl16_gbps": 416.7,
    "ccs_hotspot_both_gbps": 13.0,
    "ccs_hotspot_uni_gbps": 9.6,
    "scs_bl1_to_bl2_gain": 0.5,
    "ccra_vs_single_pch_factor": 5.4,
}


@dataclass(frozen=True)
class Fig3Row:
    pattern: Pattern
    direction: str
    burst_len: int
    total_gbps: float
    fraction_of_peak: float


def _point(args) -> Fig3Row:
    """One sweep point (module-level so it is process-pool picklable)."""
    pattern, dir_name, bl, cycles, platform = args
    rw = DIRECTIONS[dir_name]
    fab = make_fabric(FabricKind.XLNX, platform)
    sources = make_pattern_sources(
        pattern, platform, burst_len=bl, rw=rw, address_map=fab.address_map)
    rep = measure(FabricKind.XLNX, sources, cycles=cycles,
                  platform=platform, fabric=fab,
                  cache_key=sweep_key(
                      "pattern-sim", platform, fabric=FabricKind.XLNX,
                      pattern=pattern, burst_len=bl, rw=rw, seed=0))
    return Fig3Row(
        pattern=pattern,
        direction=dir_name,
        burst_len=bl,
        total_gbps=rep.total_gbps,
        fraction_of_peak=pct_of_peak(rep.total_gbps, platform),
    )


def _point_key(args) -> tuple:
    """Row-level cache key (distinct namespace from the report keys)."""
    pattern, dir_name, bl, cycles, platform = args
    return sweep_key("fig3-row", platform, pattern=pattern,
                     direction=dir_name, burst_len=bl, cycles=cycles)


def run(
    cycles: int = DEFAULT_CYCLES,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    patterns=tuple(Pattern),
    burst_lengths=BURST_LENGTHS,
    workers: int | None = None,
) -> List[Fig3Row]:
    from .parallel import parallel_sweep
    from ..sim.cache import DEFAULT_CACHE
    points = [(pattern, dir_name, bl, cycles, platform)
              for pattern in patterns
              for dir_name in DIRECTIONS
              for bl in burst_lengths]
    return parallel_sweep(_point, points, workers,
                          cache=DEFAULT_CACHE, key_fn=_point_key)


def series(rows: List[Fig3Row], pattern: Pattern,
           direction: str) -> Dict[int, float]:
    """One curve of the figure: burst length -> GB/s."""
    return {r.burst_len: r.total_gbps for r in rows
            if r.pattern is pattern and r.direction == direction}


def format_table(rows: List[Fig3Row]) -> str:
    out = ["Fig. 3 — burst-length sweep (GB/s, vendor fabric)"]
    patterns = sorted({r.pattern for r in rows}, key=lambda p: p.name)
    bls = sorted({r.burst_len for r in rows})
    for pattern in patterns:
        out.append(f"\n  {pattern.name}:")
        header = "    dir  " + "".join(f"{('BL' + str(b)):>10}" for b in bls)
        out.append(header)
        for direction in DIRECTIONS:
            s = series(rows, pattern, direction)
            line = f"    {direction:<5}" + "".join(
                f"{s.get(b, float('nan')):>10.1f}" for b in bls)
            out.append(line)
    return "\n".join(out)
