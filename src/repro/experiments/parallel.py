"""Crash-safe process-level parallelism for experiment sweeps.

Every sweep in the harness is embarrassingly parallel — each point builds
its own fabric and traffic and shares no state — so they scale linearly
over worker processes.  :func:`parallel_sweep` maps a *module-level*
function over the sweep points on the supervised runtime
(:class:`repro.runtime.SupervisedPool`) while preserving input order;
with ``workers <= 1`` (or in an environment where forking is
undesirable) it degrades to a plain loop, so callers need no fallback
logic.

Crash safety, on top of the old contract:

* every finished point is checkpointed the moment it completes — the
  ``cache.put`` happens per-completion in the parent, never deferred to
  the end of the sweep, so a crash at point 99/100 loses at most the
  points still in flight;
* a worker killed mid-run (OOM, SIGKILL) no longer aborts the sweep
  with ``BrokenProcessPool``: the pool is rebuilt, lost tasks are
  retried with backoff, and a task that keeps killing workers is
  quarantined and reported as a structured
  :class:`~repro.runtime.TaskFailure`;
* with a :class:`~repro.runtime.RunJournal` active (the CLI's
  ``--journal``/``--resume`` flags install one process-wide), per-point
  start/finish records make an interrupted sweep exactly resumable even
  when the result cache is memory-only.

Only module-level functions and picklable arguments may be passed (the
standard multiprocessing contract); the experiment modules define their
per-point workers at module scope for exactly this reason.
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import os
import pickle
import re
import warnings
from typing import Any, Callable, List, Optional, Sequence, Set, Tuple, TypeVar

from ..runtime import (RunJournal, JournalState, SupervisedPool,
                       SweepOutcome, TaskFailure, get_active_journal,
                       get_active_shutdown)
from ..sim.cache import MISS

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` or the CPU count (capped)."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring invalid REPRO_WORKERS={env!r} (not an integer); "
                f"falling back to the CPU count",
                RuntimeWarning, stacklevel=2)
    return max(1, min(8, os.cpu_count() or 1))


#: Default ``object.__repr__`` embeds the instance's memory address —
#: different every process, so it can never serve as a resume identity.
_ADDR_REPR = re.compile(r" at 0x[0-9a-fA-F]+")

#: Types already warned about for unstable reprs (once per type, not per
#: sweep point — a 1000-point sweep of one bad type warns once).
_UNSTABLE_WARNED: Set[type] = set()


def _stable_repr(item: Any) -> str:
    """A ``repr``-like string that is identical across processes.

    ``repr`` is the natural normalization for sweep items (it is what the
    cache keys use), but the default ``object.__repr__`` embeds a memory
    address: an item without a custom ``__repr__`` got a different
    journal id in every process, silently defeating ``--resume``
    matching.  This walk keeps structured containers and dataclasses
    field-by-field (so one unstable leaf cannot poison its siblings) and
    masks the address of any leaf that still reprs unstably — with a
    warning, because a masked id identifies the item only by type and
    sweep position.
    """
    if dataclasses.is_dataclass(item) and not isinstance(item, type):
        fields = ", ".join(
            f"{f.name}={_stable_repr(getattr(item, f.name))}"
            for f in dataclasses.fields(item))
        return f"{type(item).__qualname__}({fields})"
    if isinstance(item, tuple):
        body = ", ".join(_stable_repr(x) for x in item)
        return f"({body},)" if len(item) == 1 else f"({body})"
    if isinstance(item, list):
        return "[" + ", ".join(_stable_repr(x) for x in item) + "]"
    if isinstance(item, (set, frozenset)):
        body = ", ".join(sorted(_stable_repr(x) for x in item))
        return f"{type(item).__name__}({{{body}}})"
    if isinstance(item, dict):
        pairs = sorted((_stable_repr(k), _stable_repr(v))
                       for k, v in item.items())
        return "{" + ", ".join(f"{k}: {v}" for k, v in pairs) + "}"
    text = repr(item)
    if _ADDR_REPR.search(text):
        if type(item) not in _UNSTABLE_WARNED:
            _UNSTABLE_WARNED.add(type(item))
            warnings.warn(
                f"sweep item of type {type(item).__qualname__} has an "
                f"address-based repr ({text!r}); its journal id is "
                f"derived from type and position only — give it a "
                f"__repr__ (or pass key_fn) for a content-addressed "
                f"resume identity",
                RuntimeWarning, stacklevel=4)
        text = _ADDR_REPR.sub(" at 0x0", text)
    return text


def _task_id(index: int, item: Any, key: Optional[tuple]) -> str:
    """Stable journal id for one sweep point.

    Content-addressed by the cache key when there is one (the strongest
    identity: it already folds in the model version and every input), by
    a process-stable structured digest of the item otherwise.  The index
    prefix keeps ids unique even when a sweep legitimately repeats a
    point.
    """
    basis = repr(key) if key is not None else _stable_repr(item)
    digest = hashlib.sha1(basis.encode()).hexdigest()[:16]
    return f"{index}:{digest}"


def _encode_value(value) -> str:
    return base64.b64encode(pickle.dumps(value)).decode("ascii")


def _decode_value(payload) -> Tuple[bool, object]:
    """Decode a journal payload; ``(False, None)`` on any mismatch so a
    stale or hand-edited journal degrades to re-running the point."""
    if not isinstance(payload, dict) or "value" not in payload:
        return False, None
    try:
        return True, pickle.loads(base64.b64decode(payload["value"]))
    except Exception:  # noqa: BLE001 — corrupt payload = re-run
        return False, None


def supervised_sweep(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    *,
    cache=None,
    key_fn: Optional[Callable[[T], tuple]] = None,
    journal: Optional[RunJournal] = None,
    resume_state: Optional[JournalState] = None,
    task_timeout: Optional[float] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    max_crash_retries: int = 2,
    quarantine: bool = True,
    drain_timeout: float = 30.0,
    force_pool: bool = False,
) -> SweepOutcome:
    """Map ``fn`` over ``items`` under full supervision.

    The most general entry point: returns the complete
    :class:`~repro.runtime.SweepOutcome` (ordered results, structured
    failures, pending indices, retry/rebuild accounting) instead of a
    bare list.  Cached points are satisfied in the parent, journaled
    points recorded in ``resume_state`` are restored without
    re-simulation, and everything else is dispatched to a
    :class:`~repro.runtime.SupervisedPool` (or run inline for
    ``workers <= 1``, where per-task timeouts cannot preempt).

    ``force_pool=True`` dispatches to the pool even for a single point —
    the sweep service uses this to give *individual* jobs crash
    isolation and preemptive timeouts, which the inline path cannot
    provide.
    """
    n = default_workers() if workers is None else workers
    items = list(items)
    keys = ([key_fn(item) for item in items]
            if cache is not None and key_fn is not None else None)
    if journal is None and resume_state is None:
        journal, resume_state = get_active_journal()
    if should_stop is None:
        should_stop = get_active_shutdown()
    ids = [_task_id(i, items[i], keys[i] if keys else None)
           for i in range(len(items))]

    results: List = [None] * len(items)
    outcome = SweepOutcome(total=len(items), results=results)
    todo: List[int] = []
    for i in range(len(items)):
        # 1. the result cache (strongest: shared across runs and hosts).
        if keys is not None:
            hit = cache.lookup(keys[i])
            if hit is not MISS:
                results[i] = hit
                outcome.completed.append(i)
                continue
        # 2. the journal of the interrupted run being resumed.
        if resume_state is not None and resume_state.is_finished(ids[i]):
            ok, value = _decode_value(resume_state.payload(ids[i]))
            if ok:
                results[i] = value
                outcome.completed.append(i)
                if keys is not None:
                    cache.put(keys[i], value)
                continue
        todo.append(i)

    def on_dispatch(i: int) -> None:
        if journal is not None:
            journal.start(ids[i])

    def on_result(i: int, value) -> None:
        # Streaming checkpoint: durable the moment it completes.
        if keys is not None:
            cache.put(keys[i], value)
        if journal is not None:
            journal.finish(ids[i], {"value": _encode_value(value)})

    def on_failure(failure: TaskFailure) -> None:
        if journal is not None:
            journal.failure(ids[failure.index], {
                "kind": failure.kind, "detail": failure.detail,
                "attempts": failure.attempts})

    if not todo:
        return outcome

    if not force_pool and (n <= 1 or len(todo) <= 1):
        # Inline path: same hooks and stop semantics, no subprocesses
        # (and therefore no preemptive timeouts or crash isolation).
        for pos, i in enumerate(todo):
            if should_stop is not None and should_stop():
                outcome.interrupted = True
                outcome.pending = todo[pos:]
                break
            on_dispatch(i)
            try:
                value = fn(items[i])
            except Exception as exc:  # noqa: BLE001 — structured failure
                on_failure_record = TaskFailure(
                    index=i, task=repr(items[i])[:120], kind="error",
                    detail=f"{type(exc).__name__}: {exc}", attempts=1)
                outcome.failures.append(on_failure_record)
                on_failure(on_failure_record)
                continue
            results[i] = value
            outcome.completed.append(i)
            on_result(i, value)
        return outcome

    pool = SupervisedPool(
        workers=min(n, len(todo)),
        task_timeout=task_timeout,
        max_crash_retries=max_crash_retries,
        quarantine=quarantine,
    )
    sub = pool.map(fn, items, indices=todo, results=results,
                   on_dispatch=on_dispatch, on_result=on_result,
                   on_failure=on_failure, should_stop=should_stop,
                   drain_timeout=drain_timeout)
    outcome.results = sub.results
    outcome.completed.extend(sub.completed)
    outcome.failures = sub.failures
    outcome.pending = sub.pending
    outcome.retries = sub.retries
    outcome.rebuilds = sub.rebuilds
    outcome.quarantined = sub.quarantined
    outcome.interrupted = sub.interrupted
    return outcome


def parallel_sweep(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    *,
    cache=None,
    key_fn: Optional[Callable[[T], tuple]] = None,
    task_timeout: Optional[float] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    strict: bool = True,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally across processes.

    Results come back in input order.  ``workers=None`` uses
    :func:`default_workers`; ``workers<=1`` or a single item runs inline.

    With ``cache`` (a :class:`~repro.sim.cache.SimCache`) and ``key_fn``
    (item -> cache key), cached points are satisfied in the parent
    process and only the misses are dispatched to the pool; each fresh
    result is stored back under its key *the moment it completes*, so a
    crash mid-sweep never discards already-computed points.  This keeps
    memoization effective across process-pool sweeps, where worker-local
    caches die with the workers.

    Runs on the supervised runtime: worker death and hangs surface as
    structured holes, not ``BrokenProcessPool``.  With ``strict=True``
    (default) an incomplete sweep raises
    :class:`~repro.errors.SweepError` carrying the partial
    :class:`~repro.runtime.SweepOutcome`; ``strict=False`` returns the
    results list with ``None`` holes for callers that degrade.
    """
    outcome = supervised_sweep(
        fn, items, workers, cache=cache, key_fn=key_fn,
        task_timeout=task_timeout, should_stop=should_stop)
    if strict:
        outcome.require_complete()
    return outcome.results  # type: ignore[return-value]
