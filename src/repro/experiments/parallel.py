"""Process-level parallelism for experiment sweeps.

Every sweep in the harness is embarrassingly parallel — each point builds
its own fabric and traffic and shares no state — so they scale linearly
over worker processes.  :func:`parallel_sweep` maps a *module-level*
function over the sweep points with a ``ProcessPoolExecutor`` while
preserving input order; with ``workers <= 1`` (or in an environment where
forking is undesirable) it degrades to a plain loop, so callers need no
fallback logic.

Only module-level functions and picklable arguments may be passed (the
standard multiprocessing contract); the experiment modules define their
per-point workers at module scope for exactly this reason.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from ..sim.cache import MISS

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` or the CPU count (capped)."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring invalid REPRO_WORKERS={env!r} (not an integer); "
                f"falling back to the CPU count",
                RuntimeWarning, stacklevel=2)
    return max(1, min(8, os.cpu_count() or 1))


def _map(fn: Callable[[T], R], items: List[T], n: int) -> List[R]:
    if n <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(n, len(items))) as pool:
        return list(pool.map(fn, items))


def parallel_sweep(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    *,
    cache=None,
    key_fn: Optional[Callable[[T], tuple]] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally across processes.

    Results come back in input order.  ``workers=None`` uses
    :func:`default_workers`; ``workers<=1`` or a single item runs inline.

    With ``cache`` (a :class:`~repro.sim.cache.SimCache`) and ``key_fn``
    (item -> cache key), cached points are satisfied in the parent
    process and only the misses are dispatched to the pool; fresh
    results are stored back under their keys.  This keeps memoization
    effective across process-pool sweeps, where worker-local caches die
    with the workers.
    """
    n = default_workers() if workers is None else workers
    items = list(items)
    if cache is None or key_fn is None:
        return _map(fn, items, n)
    keys = [key_fn(item) for item in items]
    # MISS, not None: a legitimately cached None must count as a hit.
    results: List[R] = [cache.lookup(k) for k in keys]
    missing = [i for i, r in enumerate(results) if r is MISS]
    if missing:
        computed = _map(fn, [items[i] for i in missing], n)
        for i, value in zip(missing, computed):
            results[i] = value
            cache.put(keys[i], value)
    return results  # type: ignore[return-value]
