"""Registry of all paper experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

from ..errors import ConfigError
from . import (chaos, extensions, fig2_rw_ratio, fig3_burst_length,
               fig4_rotation, fig5_stride, fig6_reorder, fig7_roofline,
               table2_latency, table3_resources, table4_throughput,
               table5_accelerators)


@dataclass(frozen=True)
class ExperimentSpec:
    """One regenerable paper artifact."""

    key: str
    title: str
    run: Callable[..., Any]
    format_table: Callable[[Any], str]
    paper_reference: dict
    uses_simulation: bool = True

    def execute(self, **kwargs) -> str:
        """Run and format in one go (the CLI path)."""
        if not self.uses_simulation:
            kwargs.pop("cycles", None)
        data = self.run(**kwargs)
        return self.format_table(data)


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    "fig2": ExperimentSpec(
        "fig2", "Throughput vs. read/write ratio at 300 MHz",
        fig2_rw_ratio.run, fig2_rw_ratio.format_table,
        fig2_rw_ratio.PAPER_REFERENCE),
    "fig3": ExperimentSpec(
        "fig3", "Burst-length comparison for SCS/CCS/SCRA/CCRA",
        fig3_burst_length.run, fig3_burst_length.format_table,
        fig3_burst_length.PAPER_REFERENCE),
    "fig4": ExperimentSpec(
        "fig4", "Effect of the switch fabric (rotation offsets)",
        fig4_rotation.run, fig4_rotation.format_table,
        fig4_rotation.PAPER_REFERENCE),
    "fig5": ExperimentSpec(
        "fig5", "Effect of stride length with MAO",
        fig5_stride.run, fig5_stride.format_table,
        fig5_stride.PAPER_REFERENCE),
    "fig6": ExperimentSpec(
        "fig6", "Effect of reordering on CCRA with MAO",
        fig6_reorder.run, fig6_reorder.format_table,
        fig6_reorder.PAPER_REFERENCE),
    "fig7": ExperimentSpec(
        "fig7", "Roofline models of accelerators A and B",
        fig7_roofline.run, fig7_roofline.format_table,
        fig7_roofline.PAPER_REFERENCE),
    "table2": ExperimentSpec(
        "table2", "HBM latency comparison (XLNX vs MAO)",
        table2_latency.run, table2_latency.format_table,
        table2_latency.PAPER_REFERENCE),
    "table3": ExperimentSpec(
        "table3", "MAO implementation results",
        table3_resources.run, table3_resources.format_table,
        table3_resources.PAPER_REFERENCE, uses_simulation=False),
    "table4": ExperimentSpec(
        "table4", "HBM throughput comparison (XLNX vs MAO)",
        table4_throughput.run, table4_throughput.format_table,
        table4_throughput.PAPER_REFERENCE),
    "table5": ExperimentSpec(
        "table5", "Matrix-multiplication accelerator overview",
        table5_accelerators.run, table5_accelerators.format_table,
        table5_accelerators.PAPER_REFERENCE),
    "extensions": ExperimentSpec(
        "extensions", "What-if studies beyond the paper",
        extensions.run, extensions.format_table,
        extensions.PAPER_REFERENCE),
    "chaos": ExperimentSpec(
        "chaos", "Resilience under injected faults (chaos suite)",
        chaos.run, chaos.format_table,
        chaos.PAPER_REFERENCE),
}


def get_experiment(key: str) -> ExperimentSpec:
    """Look up an experiment by key, with a helpful error for typos."""
    try:
        return EXPERIMENTS[key]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {key!r}; choose from "
            f"{', '.join(sorted(EXPERIMENTS))}") from None
