"""Fig. 5 — effect of stride length on throughput with the MAO.

The collective window walk of :mod:`repro.traffic.stride` swept over
stride lengths.  Paper shape: strides below 16 KB (the interleaving
period) make several masters fetch the same data and collide on
channels; between 16 KB and 256 KB the maximal performance is reached;
above 256 KB every transaction re-activates the same bank and "DRAM page
misses dominate the achievable throughput".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..traffic import make_stride_sources
from ..types import FabricKind, RWRatio, TWO_TO_ONE
from .. import make_fabric
from ._common import DEFAULT_CYCLES, measure, pct_of_peak, sweep_key

KB = 1024
STRIDES = (512, 2 * KB, 4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB,
           128 * KB, 256 * KB, 512 * KB, 1024 * KB, 4096 * KB)

PAPER_REFERENCE = {
    "plateau_low_bytes": 16 * KB,
    "plateau_high_bytes": 256 * KB,
    "plateau_gbps": 414.0,
}


@dataclass(frozen=True)
class Fig5Row:
    stride: int
    total_gbps: float
    fraction_of_peak: float


def run(
    cycles: int = DEFAULT_CYCLES,
    burst_len: int = 16,
    rw: RWRatio = TWO_TO_ONE,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    strides=STRIDES,
) -> List[Fig5Row]:
    rows: List[Fig5Row] = []
    for stride in strides:
        fab = make_fabric(FabricKind.MAO, platform)
        sources = make_stride_sources(stride, platform, burst_len, rw)
        rep = measure(FabricKind.MAO, sources, cycles=cycles,
                      platform=platform, fabric=fab,
                      cache_key=sweep_key(
                          "stride-sim", platform, fabric=FabricKind.MAO,
                          stride=stride, burst_len=burst_len, rw=rw))
        rows.append(Fig5Row(
            stride=stride,
            total_gbps=rep.total_gbps,
            fraction_of_peak=pct_of_peak(rep.total_gbps, platform),
        ))
    return rows


def plateau_rows(rows: List[Fig5Row]) -> List[Fig5Row]:
    lo = PAPER_REFERENCE["plateau_low_bytes"]
    hi = PAPER_REFERENCE["plateau_high_bytes"]
    return [r for r in rows if lo <= r.stride <= hi]


def format_table(rows: List[Fig5Row]) -> str:
    out = ["Fig. 5 — stride length vs. throughput with MAO (BL16, 2:1)",
           f"{'stride':>10} {'GB/s':>10} {'of peak':>9}"]
    for r in rows:
        s = (f"{r.stride // KB} KB" if r.stride >= KB else f"{r.stride} B")
        out.append(f"{s:>10} {r.total_gbps:>10.1f} {r.fraction_of_peak:>9.1%}")
    out.append("paper: maximum between 16 KB and 256 KB; collisions below, "
               "page misses above")
    return "\n".join(out)
