"""Shared helpers for the experiment modules."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..check.static import quick_check
from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..sim import Engine, SimConfig, SimReport
from ..sim.cache import DEFAULT_CACHE, MISS, SimCache, sweep_key  # noqa: F401
from ..types import FabricKind
from .. import make_fabric

#: Default fabric-cycle horizon of the experiments.  12k cycles (~27 us)
#: is enough for steady state at every pattern; benches may lower it.
DEFAULT_CYCLES = 12_000


def measure_key(cache_key: Tuple, *, cycles: int, outstanding: int,
                faults=None) -> Tuple:
    """The *full* cache key :func:`measure` stores its report under.

    ``measure`` folds ``cycles``/``outstanding``/``faults`` into the
    caller's :func:`~repro.sim.cache.sweep_key` so a faulted point can
    never collide with its fault-free twin.  The service layer
    (:mod:`repro.service`) rebuilds the same key to answer queries from
    entries any experiment sweep already wrote — keep the shape here, in
    one place, or warm caches silently stop matching.
    """
    return (cache_key, ("cycles", cycles), ("outstanding", outstanding),
            ("faults", repr(faults) if faults is not None else None))


def measure(
    fabric_kind: FabricKind,
    sources: Sequence,
    *,
    cycles: int = DEFAULT_CYCLES,
    outstanding: int = 32,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    fabric=None,
    faults=None,
    cache_key: Optional[Tuple] = None,
    cache: Optional[SimCache] = None,
) -> SimReport:
    """Run one simulation and return its report.

    With a ``cache_key`` (build one with :func:`~repro.sim.cache.sweep_key`)
    the report is memoized in ``cache`` (default: the process-wide
    :data:`~repro.sim.cache.DEFAULT_CACHE`).  The key must cover every
    input that shapes the result *except* ``cycles``/``outstanding``/
    ``faults``/the platform, which are folded in here — so a faulted
    point can never collide with its fault-free twin.
    """
    if cache_key is not None:
        cache = cache if cache is not None else DEFAULT_CACHE
        full_key = measure_key(cache_key, cycles=cycles,
                               outstanding=outstanding, faults=faults)
        hit = cache.lookup(full_key)
        if hit is not MISS:
            return hit
    fab = fabric if fabric is not None else make_fabric(fabric_kind, platform)
    cfg = SimConfig(cycles=cycles, warmup=min(cycles // 4, 3_000),
                    outstanding=outstanding)
    # Pre-flight: every registry simulation passes the O(1) static checks
    # (credit wedges, timeout ladders) before any cycle is spent.
    quick_check(fab, cfg)
    rep = Engine(fab, sources, cfg, faults=faults).run()
    if cache_key is not None:
        cache.put(full_key, rep)
    return rep


def pct_of_peak(gbps: float, platform: HbmPlatform = DEFAULT_PLATFORM) -> float:
    """Fraction of the theoretical device peak (460.8 GB/s)."""
    return gbps / (platform.device_peak_bytes_per_s / 1e9)
