"""Shared helpers for the experiment modules."""

from __future__ import annotations

from typing import Optional, Sequence

from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..sim import Engine, SimConfig, SimReport
from ..types import FabricKind
from .. import make_fabric

#: Default fabric-cycle horizon of the experiments.  12k cycles (~27 us)
#: is enough for steady state at every pattern; benches may lower it.
DEFAULT_CYCLES = 12_000


def measure(
    fabric_kind: FabricKind,
    sources: Sequence,
    *,
    cycles: int = DEFAULT_CYCLES,
    outstanding: int = 32,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    fabric=None,
) -> SimReport:
    """Run one simulation and return its report."""
    fab = fabric if fabric is not None else make_fabric(fabric_kind, platform)
    cfg = SimConfig(cycles=cycles, warmup=min(cycles // 4, 3_000),
                    outstanding=outstanding)
    return Engine(fab, sources, cfg).run()


def pct_of_peak(gbps: float, platform: HbmPlatform = DEFAULT_PLATFORM) -> float:
    """Fraction of the theoretical device peak (460.8 GB/s)."""
    return gbps / (platform.device_peak_bytes_per_s / 1e9)
