"""Fig. 2 — throughput vs. AXI read/write ratio at 300 MHz.

"Fig. 2 shows this effect on throughput for a more common 300 MHz clock
... the maximal value was already reached with the commonly encountered
2:1 ratio" and concurrent reads/writes lose only ~2 % against the
450 MHz unidirectional reference.

The workload is a perfectly partitioned SCS stream (every master on its
own channel, burst length 16) so the ratio effect is isolated from all
fabric contention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..traffic import make_pattern_sources
from ..types import FabricKind, Pattern, RWRatio
from .. import make_fabric
from ._common import DEFAULT_CYCLES, measure, pct_of_peak, sweep_key

#: The ratio sweep of the figure (read:write).
RATIOS = (
    RWRatio(1, 0), RWRatio(8, 1), RWRatio(4, 1), RWRatio(2, 1),
    RWRatio(1, 1), RWRatio(1, 2), RWRatio(1, 4), RWRatio(1, 8),
    RWRatio(0, 1),
)

PAPER_REFERENCE = {
    "peak_ratio": "2:1",
    "peak_gbps": 416.7,
    "unidirectional_gbps": 307.2,  # 300 MHz port-limited
    "loss_vs_450mhz_unidirectional": 0.02,
}


@dataclass(frozen=True)
class Fig2Row:
    ratio: RWRatio
    read_gbps: float
    write_gbps: float
    total_gbps: float
    fraction_of_peak: float


def run(
    cycles: int = DEFAULT_CYCLES,
    burst_len: int = 16,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    ratios=RATIOS,
) -> List[Fig2Row]:
    rows: List[Fig2Row] = []
    for rw in ratios:
        fab = make_fabric(FabricKind.XLNX, platform)
        sources = make_pattern_sources(
            Pattern.SCS, platform, burst_len=burst_len, rw=rw,
            address_map=fab.address_map)
        rep = measure(FabricKind.XLNX, sources, cycles=cycles,
                      platform=platform, fabric=fab,
                      cache_key=sweep_key(
                          "pattern-sim", platform, fabric=FabricKind.XLNX,
                          pattern=Pattern.SCS, burst_len=burst_len, rw=rw,
                          seed=0))
        rows.append(Fig2Row(
            ratio=rw,
            read_gbps=rep.read_gbps,
            write_gbps=rep.write_gbps,
            total_gbps=rep.total_gbps,
            fraction_of_peak=pct_of_peak(rep.total_gbps, platform),
        ))
    return rows


def peak_row(rows: List[Fig2Row]) -> Fig2Row:
    return max(rows, key=lambda r: r.total_gbps)


def format_table(rows: List[Fig2Row]) -> str:
    out = ["Fig. 2 — throughput vs. read/write ratio (SCS, BL16, 300 MHz)",
           f"{'R:W':>6} {'read':>10} {'write':>10} {'total':>10} {'of peak':>9}"]
    for r in rows:
        out.append(f"{str(r.ratio):>6} {r.read_gbps:>8.1f} G {r.write_gbps:>8.1f} G "
                   f"{r.total_gbps:>8.1f} G {r.fraction_of_peak:>8.1%}")
    best = peak_row(rows)
    out.append(f"peak at {best.ratio} with {best.total_gbps:.1f} GB/s "
               f"(paper: {PAPER_REFERENCE['peak_ratio']} at "
               f"{PAPER_REFERENCE['peak_gbps']} GB/s)")
    return "\n".join(out)
