"""Fig. 4 — effect of the switch fabric's lateral buses on throughput.

Master ``m`` accesses PCH ``(m + i) mod 32`` for rotation offsets
``i = 0..8``.  Paper anchors (relative to the rot-0 full throughput of
416.7 GB/s): offset 1 is still ideal, offset 2 drops to 74.9 % (two
masters share one lateral bus), offset 4 to 49.8 %, and offset 8
saturates at 4/32 = 12.5 % of the device ("all four lateral paths over
the complete length of the device were now used to their full extend").

The module also runs the analytical max-min flow model over the same
topology as a cross-check (the difference quantifies head-of-line
blocking and arbitration dead cycles, which only the cycle simulation
captures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..fabric.flow import rotation_throughput_gbps
from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..traffic import make_rotation_sources
from ..types import FabricKind, RWRatio, TWO_TO_ONE
from .. import make_fabric
from ._common import DEFAULT_CYCLES, measure, pct_of_peak, sweep_key

OFFSETS = tuple(range(9))

PAPER_REFERENCE = {
    "rot0_gbps": 416.7,
    "relative": {0: 1.0, 1: 1.0, 2: 0.749, 4: 0.498, 8: 0.125},
}


@dataclass(frozen=True)
class Fig4Row:
    offset: int
    total_gbps: float
    fraction_of_peak: float
    relative_to_rot0: float
    flow_model_gbps: float


def _point(args) -> float:
    """One rotation offset (module-level so it is process-pool picklable)."""
    offset, burst_len, rw, cycles, platform = args
    fab = make_fabric(FabricKind.XLNX, platform)
    sources = make_rotation_sources(offset, platform, burst_len, rw,
                                    address_map=fab.address_map)
    rep = measure(FabricKind.XLNX, sources, cycles=cycles,
                  platform=platform, fabric=fab)
    return rep.total_gbps


def _point_key(args) -> tuple:
    offset, burst_len, rw, cycles, platform = args
    return sweep_key("fig4-row", platform, offset=offset,
                     burst_len=burst_len, rw=rw, cycles=cycles)


def run(
    cycles: int = DEFAULT_CYCLES,
    burst_len: int = 16,
    rw: RWRatio = TWO_TO_ONE,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    offsets=OFFSETS,
    workers: int | None = None,
) -> List[Fig4Row]:
    from .parallel import parallel_sweep
    from ..sim.cache import DEFAULT_CACHE
    points = [(offset, burst_len, rw, cycles, platform)
              for offset in offsets]
    gbps = parallel_sweep(_point, points, workers,
                          cache=DEFAULT_CACHE, key_fn=_point_key)
    results = list(zip(offsets, gbps))
    base = results[0][1] if results and results[0][0] == 0 else max(
        g for _, g in results)
    rows = [
        Fig4Row(
            offset=offset,
            total_gbps=gbps,
            fraction_of_peak=pct_of_peak(gbps, platform),
            relative_to_rot0=gbps / base if base else 0.0,
            flow_model_gbps=rotation_throughput_gbps(offset, platform, rw),
        )
        for offset, gbps in results
    ]
    return rows


def format_table(rows: List[Fig4Row]) -> str:
    out = ["Fig. 4 — rotation offset vs. throughput (BL16, 2:1)",
           f"{'offset':>7} {'sim GB/s':>10} {'rel rot0':>9} {'of peak':>9} "
           f"{'flow model':>11} {'paper rel':>10}"]
    for r in rows:
        paper = PAPER_REFERENCE["relative"].get(r.offset)
        paper_s = f"{paper:.1%}" if paper is not None else "—"
        out.append(f"{r.offset:>7} {r.total_gbps:>10.1f} "
                   f"{r.relative_to_rot0:>9.1%} {r.fraction_of_peak:>9.1%} "
                   f"{r.flow_model_gbps:>11.1f} {paper_s:>10}")
    return "\n".join(out)
