"""Table IV — HBM throughput comparison: vendor fabric vs. MAO.

CCS and CCRA at burst length 16, read-only / write-only / mixed, on both
interconnects, with the speedup factors.  Paper anchors: CCS improves
from the 13.0 GB/s hot-spot to 414 GB/s (the headline strided speedup);
CCRA from 70.4 GB/s to 266 GB/s (3.78x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..traffic import make_pattern_sources
from ..types import (FabricKind, Pattern, RWRatio, READ_ONLY, WRITE_ONLY,
                     TWO_TO_ONE)
from .. import make_fabric
from ._common import DEFAULT_CYCLES, measure, pct_of_peak, sweep_key

DIRECTIONS: Tuple[Tuple[str, RWRatio], ...] = (
    ("RD", READ_ONLY), ("WR", WRITE_ONLY), ("Both", TWO_TO_ONE))

PAPER_REFERENCE = {
    # (pattern, direction) -> (xlnx GB/s, mao GB/s)
    ("CCS", "RD"): (9.6, 307.0),
    ("CCS", "WR"): (9.6, 307.0),
    ("CCS", "Both"): (13.0, 414.0),
    ("CCRA", "RD"): (36.0, 134.0),
    ("CCRA", "WR"): (48.0, 144.0),
    ("CCRA", "Both"): (70.4, 266.0),
}


@dataclass(frozen=True)
class Table4Row:
    pattern: Pattern
    direction: str
    xlnx_gbps: float
    mao_gbps: float

    @property
    def speedup(self) -> float:
        return self.mao_gbps / self.xlnx_gbps if self.xlnx_gbps else 0.0


def run(
    cycles: int = DEFAULT_CYCLES,
    burst_len: int = 16,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    seed: int = 0,
) -> List[Table4Row]:
    rows: List[Table4Row] = []
    for pattern in (Pattern.CCS, Pattern.CCRA):
        for dir_name, rw in DIRECTIONS:
            gbps: Dict[FabricKind, float] = {}
            for kind in (FabricKind.XLNX, FabricKind.MAO):
                fab = make_fabric(kind, platform)
                sources = make_pattern_sources(
                    pattern, platform, burst_len=burst_len, rw=rw,
                    address_map=fab.address_map, seed=seed)
                rep = measure(kind, sources, cycles=cycles,
                              platform=platform, fabric=fab,
                              cache_key=sweep_key(
                                  "pattern-sim", platform, fabric=kind,
                                  pattern=pattern, burst_len=burst_len, rw=rw,
                                  seed=seed))
                gbps[kind] = rep.total_gbps
            rows.append(Table4Row(
                pattern=pattern,
                direction=dir_name,
                xlnx_gbps=gbps[FabricKind.XLNX],
                mao_gbps=gbps[FabricKind.MAO],
            ))
    return rows


def find(rows: List[Table4Row], pattern: Pattern, direction: str) -> Table4Row:
    for r in rows:
        if r.pattern is pattern and r.direction == direction:
            return r
    raise KeyError((pattern, direction))


def format_table(rows: List[Table4Row],
                 platform: HbmPlatform = DEFAULT_PLATFORM) -> str:
    out = ["Table IV — throughput comparison [GB/s], BL16",
           f"{'pattern':>8} {'dir':>5} {'XLNX':>14} {'MAO':>14} {'speedup':>9} "
           f"{'paper':>15}"]
    for r in rows:
        ref = PAPER_REFERENCE.get((r.pattern.name, r.direction))
        ref_s = f"{ref[0]:.1f} -> {ref[1]:.0f}" if ref else "—"
        out.append(
            f"{r.pattern.name:>8} {r.direction:>5} "
            f"{r.xlnx_gbps:>8.1f} ({pct_of_peak(r.xlnx_gbps, platform):>4.1%}) "
            f"{r.mao_gbps:>7.1f} ({pct_of_peak(r.mao_gbps, platform):>4.1%}) "
            f"{r.speedup:>8.1f}x {ref_s:>15}")
    return "\n".join(out)
