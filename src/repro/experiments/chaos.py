"""Chaos experiment: resilience of the HBM stack under injected faults.

Not a paper artifact — a robustness study layered on the reproduction.
The fault scenarios live in :mod:`repro.faults.chaos`; this module merely
adapts the suite to the experiment-registry interface (``run`` /
``format_table``) so ``repro-hbm run chaos`` and the report pipeline can
drive it like any figure.  The CLI's dedicated ``chaos`` subcommand
exposes the finer knobs (single scenario, fabric, pattern, seed).
"""

from __future__ import annotations

from typing import List, Sequence

from ..faults.chaos import ChaosResult, format_report, run_suite

PAPER_REFERENCE = {
    "note": "robustness extension beyond the paper; no reference values",
}

#: The registry run is a smaller horizon than the figures: every scenario
#: simulates twice (baseline + faulted), and steady state under fault is
#: reached well before 12k cycles.
CHAOS_CYCLES = 6000


def run(cycles: int = CHAOS_CYCLES) -> List[ChaosResult]:
    """Run the whole scenario library on the vendor fabric."""
    return run_suite(cycles=cycles)


def format_table(results: Sequence[ChaosResult]) -> str:
    """Render the per-scenario resilience reports."""
    return format_report(results)
