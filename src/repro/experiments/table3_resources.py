"""Table III — MAO implementation results (resources and fmax).

Four build configurations: Full/Partial integration x one/two
hierarchical stages, with LUT/FF/BRAM counts and achievable clock from
the calibrated resource model (:mod:`repro.resources.mao_resources`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.mao import MaoConfig, MaoVariant
from ..resources.fpga import XCVU37P, FpgaDevice
from ..resources.mao_resources import MaoResourceModel, MaoResourceReport

PAPER_REFERENCE = {
    ("full", 1): dict(fmax=130, rd=12, wr=12, luts=285_327, ffs=274_879, bram=260),
    ("full", 2): dict(fmax=150, rd=25, wr=12, luts=278_800, ffs=255_122, bram=260),
    ("partial", 1): dict(fmax=350, rd=12, wr=12, luts=152_771, ffs=197_831, bram=132),
    ("partial", 2): dict(fmax=360, rd=25, wr=12, luts=147_798, ffs=251_676, bram=260),
}


@dataclass(frozen=True)
class Table3Row:
    variant: str
    stages: int
    fmax_mhz: int
    read_latency: int
    write_latency: int
    luts: int
    ffs: int
    bram: int
    lut_fraction: float


def run(device: FpgaDevice = XCVU37P) -> List[Table3Row]:
    model = MaoResourceModel(device)
    rows: List[Table3Row] = []
    for report in model.table_iii():
        cfg = report.config
        rows.append(Table3Row(
            variant=cfg.variant.value,
            stages=cfg.stages,
            fmax_mhz=report.fmax_mhz,
            read_latency=cfg.read_latency_cycles,
            write_latency=cfg.write_latency_cycles,
            luts=report.resources.luts,
            ffs=report.resources.ffs,
            bram=report.resources.bram36,
            lut_fraction=device.utilization(report.resources)["luts"],
        ))
    return rows


def format_table(rows: List[Table3Row]) -> str:
    out = ["Table III — MAO implementation results",
           f"{'variant':<9} {'fmax':>6} {'lat RD/WR':>10} {'LUTs':>9} "
           f"{'FFs':>9} {'BRAM':>6} {'LUT %':>7}"]
    for r in rows:
        out.append(f"{r.variant:<9} {r.fmax_mhz:>4}MHz "
                   f"{r.read_latency:>4}/{r.write_latency:<4} "
                   f"{r.luts:>9,} {r.ffs:>9,} {r.bram:>6} "
                   f"{r.lut_fraction:>7.2%}")
    out.append("(size comparable to the ~250k LUTs Xilinx states for its "
               "own switch fabric)")
    return "\n".join(out)
