"""Extension experiments beyond the paper's evaluation.

The paper's conclusion sketches future work — more HBM stacks, better
fabrics, higher-accuracy models.  These studies use the same machinery to
answer the questions the paper leaves open:

* :func:`lateral_bus_sweep` — how many lateral buses would the *vendor*
  fabric need before the rotation-8 worst case stops collapsing?  (The
  alternative to replacing the network wholesale with the MAO.)
* :func:`stack_scaling` — the conclusion's "future FPGAs with more HBM
  stacks": strided bandwidth on 1/2/4-stack devices through the MAO.
* :func:`granularity_sweep` — the MAO design choice the paper fixes at
  one AXI burst (512 B): coarser interleaving trades channel parallelism
  for row locality.
* :func:`clock_sweep` — the Sec. IV-A frequency/ratio trade-off as a
  table: which (clock, ratio) pairs saturate the device.
* :func:`refresh_policy` — HBM2's optional per-bank refresh vs. the
  all-bank refresh of the paper's platform: how much of the documented
  7-9 % loss a smarter controller could recover.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from ..core.mao import MaoConfig
from ..fabric import MaoFabric, SegmentedFabric
from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..sim import Engine, SimConfig
from ..traffic import make_pattern_sources, make_rotation_sources
from ..types import Pattern, RWRatio, TWO_TO_ONE
from ._common import DEFAULT_CYCLES

PAPER_REFERENCE = {
    "note": "extensions beyond the paper; no reference values",
}


def _run(fabric, sources, cycles):
    cfg = SimConfig(cycles=cycles, warmup=min(cycles // 4, 3000))
    return Engine(fabric, sources, cfg).run()


# --- lateral bus sweep ---------------------------------------------------------


@dataclass(frozen=True)
class LateralRow:
    buses_per_direction: int
    rotation8_gbps: float
    fraction_of_peak: float


def lateral_bus_sweep(
    cycles: int = DEFAULT_CYCLES,
    counts=(1, 2, 4, 8),
) -> List[LateralRow]:
    """Rotation-8 throughput vs. lateral bus count on the vendor fabric."""
    rows = []
    for n in counts:
        platform = replace(DEFAULT_PLATFORM, lateral_buses=n)
        fab = SegmentedFabric(platform)
        src = make_rotation_sources(8, platform, address_map=fab.address_map)
        rep = _run(fab, src, cycles)
        rows.append(LateralRow(
            buses_per_direction=n,
            rotation8_gbps=rep.total_gbps,
            fraction_of_peak=rep.total_gbps / 460.8,
        ))
    return rows


# --- stack scaling ---------------------------------------------------------------


@dataclass(frozen=True)
class StackRow:
    stacks: int
    num_pch: int
    peak_gbps: float
    measured_gbps: float


def stack_scaling(
    cycles: int = DEFAULT_CYCLES,
    stacks=(1, 2, 4),
) -> List[StackRow]:
    """CCS bandwidth through the MAO for 1/2/4-stack devices."""
    rows = []
    for n in stacks:
        platform = HbmPlatform(num_pch=16 * n,
                               pch_capacity=256 * 1024 * 1024)
        fab = MaoFabric(platform)
        src = make_pattern_sources(Pattern.CCS, platform)
        rep = _run(fab, src, cycles)
        rows.append(StackRow(
            stacks=n,
            num_pch=platform.num_pch,
            peak_gbps=platform.device_peak_bytes_per_s / 1e9,
            measured_gbps=rep.total_gbps,
        ))
    return rows


# --- interleave granularity -------------------------------------------------------


@dataclass(frozen=True)
class GranularityRow:
    granularity: int
    ccs_gbps: float
    active_channels: int


def granularity_sweep(
    cycles: int = DEFAULT_CYCLES,
    granularities=(512, 2048, 8192, 65536, 1 << 20),
) -> List[GranularityRow]:
    """MAO interleave granularity vs. CCS throughput."""
    rows = []
    for gran in granularities:
        fab = MaoFabric(DEFAULT_PLATFORM,
                        config=MaoConfig(interleave_granularity=gran))
        src = make_pattern_sources(Pattern.CCS, DEFAULT_PLATFORM)
        rep = _run(fab, src, cycles)
        rows.append(GranularityRow(
            granularity=gran,
            ccs_gbps=rep.total_gbps,
            active_channels=rep.active_pchs(),
        ))
    return rows


# --- clock / ratio sweep ------------------------------------------------------------


@dataclass(frozen=True)
class ClockRow:
    accel_mhz: int
    rw: RWRatio
    scs_gbps: float


def clock_sweep(
    cycles: int = DEFAULT_CYCLES,
    points=((200, RWRatio(2, 1)), (300, RWRatio(1, 0)), (300, TWO_TO_ONE),
            (450, RWRatio(1, 0)), (450, TWO_TO_ONE)),
) -> List[ClockRow]:
    """SCS throughput over (accelerator clock, read/write ratio) pairs."""
    rows = []
    for mhz, rw in points:
        platform = DEFAULT_PLATFORM.with_accel_clock(mhz * 1_000_000)
        fab = SegmentedFabric(platform)
        src = make_pattern_sources(Pattern.SCS, platform, rw=rw,
                                   address_map=fab.address_map)
        rep = _run(fab, src, cycles)
        rows.append(ClockRow(accel_mhz=mhz, rw=rw, scs_gbps=rep.total_gbps))
    return rows


# --- refresh policy -----------------------------------------------------------------


@dataclass(frozen=True)
class RefreshRow:
    policy: str
    scs_gbps: float
    fraction_of_peak: float


def refresh_policy(cycles: int = DEFAULT_CYCLES) -> List[RefreshRow]:
    """All-bank vs. per-bank refresh on a streaming workload."""
    from ..params import DramTiming
    rows = []
    for name, per_bank in (("all-bank", False), ("per-bank", True)):
        platform = HbmPlatform(dram=DramTiming(per_bank_refresh=per_bank))
        fab = MaoFabric(platform)
        src = make_pattern_sources(Pattern.CCS, platform)
        rep = _run(fab, src, cycles)
        rows.append(RefreshRow(
            policy=name,
            scs_gbps=rep.total_gbps,
            fraction_of_peak=rep.total_gbps / 460.8,
        ))
    return rows


# --- formatting ------------------------------------------------------------------------


def run(cycles: int = DEFAULT_CYCLES) -> dict:
    """All extension studies in one structure (the registry entry point)."""
    return {
        "lateral": lateral_bus_sweep(cycles),
        "stacks": stack_scaling(cycles),
        "granularity": granularity_sweep(cycles),
        "clock": clock_sweep(cycles),
        "refresh": refresh_policy(cycles),
    }


def format_table(results: dict) -> str:
    out = ["Extension studies (beyond the paper)"]
    out.append("\n  Lateral buses vs. rotation-8 collapse (vendor fabric):")
    for r in results["lateral"]:
        out.append(f"    {r.buses_per_direction} buses/direction: "
                   f"{r.rotation8_gbps:7.1f} GB/s ({r.fraction_of_peak:5.1%})")
    out.append("\n  HBM stack scaling (CCS through MAO):")
    for r in results["stacks"]:
        out.append(f"    {r.stacks} stack(s), {r.num_pch:2d} PCH: "
                   f"{r.measured_gbps:7.1f} / {r.peak_gbps:6.1f} GB/s peak")
    out.append("\n  MAO interleave granularity (CCS):")
    for r in results["granularity"]:
        out.append(f"    {r.granularity:>8} B: {r.ccs_gbps:7.1f} GB/s "
                   f"({r.active_channels} channels)")
    out.append("\n  Clock/ratio compensation (SCS):")
    for r in results["clock"]:
        out.append(f"    {r.accel_mhz:3d} MHz @ {str(r.rw):>4}: "
                   f"{r.scs_gbps:7.1f} GB/s")
    out.append("\n  Refresh policy (CCS through MAO):")
    for r in results["refresh"]:
        out.append(f"    {r.policy:>9}: {r.scs_gbps:7.1f} GB/s "
                   f"({r.fraction_of_peak:5.1%})")
    return "\n".join(out)
