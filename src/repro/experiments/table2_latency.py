"""Table II — HBM latency comparison (XLNX vs. MAO).

Round-trip latency mean and standard deviation (accelerator-clock
cycles) for the CCS and CCRA patterns under two traffic intensities:

* **Single** — one transaction at a time with burst length 1 per master,
* **Burst** — 32 outstanding transactions with burst length 16.

Paper shape: the vendor fabric shows high means *and* high variance
under load (contention of PCHs and switches; CCS burst reads at
3020±1479), while the MAO adds a constant ~25 cycles but caps the burst
latencies an order of magnitude lower and nearly eliminates the variance
of write acknowledgements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..sim.stats import LatencySummary
from ..traffic import make_pattern_sources
from ..types import FabricKind, Pattern, RWRatio, TWO_TO_ONE
from .. import make_fabric
from ._common import DEFAULT_CYCLES, measure, sweep_key

#: (name, outstanding, burst_len) of the two traffic setups.
TRAFFIC_SETUPS = (("Single", 1, 1), ("Burst", 32, 16))
FABRICS = (FabricKind.XLNX, FabricKind.MAO)
PATTERNS = (Pattern.CCS, Pattern.CCRA)

PAPER_REFERENCE = {
    # (setup, fabric, pattern, direction) -> (mean, std) in accel cycles
    ("Single", "xlnx", "CCS", "read"): (71.8, 19.8),
    ("Single", "xlnx", "CCS", "write"): (46.3, 24.6),
    ("Single", "mao", "CCS", "read"): (73.7, 12.5),
    ("Single", "mao", "CCS", "write"): (32.0, 0.1),
    ("Burst", "xlnx", "CCS", "read"): (3020.8, 1478.8),
    ("Burst", "xlnx", "CCS", "write"): (585.4, 522.9),
    ("Burst", "mao", "CCS", "read"): (264.5, 13.4),
    ("Burst", "mao", "CCS", "write"): (72.0, 0.7),
    ("Burst", "xlnx", "CCRA", "read"): (651.8, 353.5),
    ("Burst", "mao", "CCRA", "read"): (546.2, 158.4),
}


@dataclass(frozen=True)
class Table2Row:
    setup: str
    fabric: str
    pattern: Pattern
    read: LatencySummary
    write: LatencySummary


def run(
    cycles: int = DEFAULT_CYCLES,
    rw: RWRatio = TWO_TO_ONE,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    seed: int = 0,
) -> List[Table2Row]:
    rows: List[Table2Row] = []
    for setup, outstanding, burst_len in TRAFFIC_SETUPS:
        for fabric_kind in FABRICS:
            for pattern in PATTERNS:
                fab = make_fabric(fabric_kind, platform)
                sources = make_pattern_sources(
                    pattern, platform, burst_len=burst_len, rw=rw,
                    address_map=fab.address_map, seed=seed)
                rep = measure(fabric_kind, sources, cycles=cycles,
                              outstanding=outstanding, platform=platform,
                              fabric=fab,
                              cache_key=sweep_key(
                                  "pattern-sim", platform, fabric=fabric_kind,
                                  pattern=pattern, burst_len=burst_len, rw=rw,
                                  seed=seed))
                rows.append(Table2Row(
                    setup=setup,
                    fabric=fab.name,
                    pattern=pattern,
                    read=rep.read_latency,
                    write=rep.write_latency,
                ))
    return rows


def find(rows: List[Table2Row], setup: str, fabric: str,
         pattern: Pattern) -> Table2Row:
    for r in rows:
        if r.setup == setup and r.fabric == fabric and r.pattern is pattern:
            return r
    raise KeyError((setup, fabric, pattern))


def format_table(rows: List[Table2Row]) -> str:
    out = ["Table II — latency comparison (accelerator cycles, mean ± σ)",
           f"{'traffic':>8} {'fabric':>7}   "
           f"{'CCS read':>16} {'CCS write':>16} "
           f"{'CCRA read':>16} {'CCRA write':>16}"]
    for setup, _o, _b in TRAFFIC_SETUPS:
        for fabric in ("xlnx", "mao"):
            ccs = find(rows, setup, fabric, Pattern.CCS)
            ccra = find(rows, setup, fabric, Pattern.CCRA)
            def fmt(s: LatencySummary) -> str:
                return f"{s.mean:7.1f}±{s.std:<7.1f}"
            out.append(f"{setup:>8} {fabric.upper():>7}   "
                       f"{fmt(ccs.read)} {fmt(ccs.write)} "
                       f"{fmt(ccra.read)} {fmt(ccra.write)}")
    return "\n".join(out)
