"""Precomputed bandwidth surface over the pattern/burst-length grid.

The sweep service (:mod:`repro.service`) must answer "what bandwidth
does pattern P reach at burst length B?" in sub-millisecond time, but a
cycle simulation of one point takes seconds.  This module bridges the
gap: :func:`build_surface` sweeps a grid of :class:`PatternPoint`\\ s
once (through the shared result store, so experiment runs and earlier
service runs warm it), and the resulting :class:`SweepSurface` serves

* **exact** grid points straight from the precomputed samples, and
* **off-grid burst lengths** by log2-linear interpolation between the
  bracketing grid samples — burst-length curves in the paper (Fig. 3)
  are plotted and reasoned about on a log2 axis, where the measured
  curves are close to piecewise linear.

Every simulated sample is stored under the *same* full cache key
:func:`~repro.experiments._common.measure` uses (via
:func:`point_cache_key`), so a ``repro-hbm run fig3`` sweep and a
service warm-up are one shared body of work, not two.

``simulate_point`` is module-level and takes a single picklable tuple —
the standard contract for process-pool sweeps (see
:mod:`repro.experiments.parallel`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..traffic import make_pattern_sources
from ..types import FabricKind, Pattern, RWRatio, TWO_TO_ONE
from .. import make_fabric
from ._common import DEFAULT_CYCLES, measure, measure_key, pct_of_peak, sweep_key

#: Burst-length grid of the precomputed surface (the Fig. 3 axis).
SURFACE_BURST_LENGTHS = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class PatternPoint:
    """One point of the measured bandwidth space.

    This is the service's unit of work: everything that shapes a
    simulated bandwidth number except the platform (which the store keys
    separately).  Frozen and repr-stable, so it journals and cache-keys
    cleanly.
    """

    fabric: FabricKind = FabricKind.XLNX
    pattern: Pattern = Pattern.SCS
    burst_len: int = 16
    rw: RWRatio = TWO_TO_ONE
    cycles: int = DEFAULT_CYCLES
    outstanding: int = 32


def point_cache_key(point: PatternPoint,
                    platform: HbmPlatform = DEFAULT_PLATFORM) -> Tuple:
    """The full cache key :func:`measure` files this point's report under.

    Built from the same ``("pattern-sim", ...)`` sweep key the experiment
    modules use (e.g. :mod:`~repro.experiments.fig3_burst_length`), so a
    service store and an experiment cache directory interoperate: a fig
    sweep warms the service and vice versa.
    """
    base = sweep_key("pattern-sim", platform, fabric=point.fabric,
                     pattern=point.pattern, burst_len=point.burst_len,
                     rw=point.rw, seed=0)
    return measure_key(base, cycles=point.cycles,
                       outstanding=point.outstanding)


def simulate_point(args):
    """Simulate one :class:`PatternPoint`; returns the full ``SimReport``.

    ``args`` is ``(point, platform)`` — a single picklable tuple, so this
    function can run inline, on the supervised pool, or in an isolation
    worker unchanged.  Deliberately does *not* pass a ``cache_key`` to
    :func:`measure`: the caller's sweep layer owns the authoritative
    store write (one write, in the parent, the moment the result lands),
    and a worker-local ``DEFAULT_CACHE`` write would be dead weight.
    """
    point, platform = args
    fab = make_fabric(point.fabric, platform)
    sources = make_pattern_sources(
        point.pattern, platform, burst_len=point.burst_len, rw=point.rw,
        address_map=fab.address_map)
    return measure(point.fabric, sources, cycles=point.cycles,
                   outstanding=point.outstanding, platform=platform,
                   fabric=fab)


def simulate_point_key(args) -> Tuple:
    """``key_fn`` companion of :func:`simulate_point` for sweep layers."""
    point, platform = args
    return point_cache_key(point, platform)


@dataclass(frozen=True)
class SurfaceSample:
    """One precomputed grid sample of the surface."""

    point: PatternPoint
    total_gbps: float
    read_gbps: float
    write_gbps: float
    fraction_of_peak: float


@dataclass(frozen=True)
class SurfaceValue:
    """A surface answer: exact sample or log2-linear interpolation."""

    total_gbps: float
    interpolated: bool
    lower: SurfaceSample
    upper: SurfaceSample


def _axis_key(point: PatternPoint) -> Tuple:
    """Everything but the burst length — the curve a point lives on."""
    return (point.fabric, point.pattern, point.rw.reads, point.rw.writes,
            point.cycles, point.outstanding)


class SweepSurface:
    """Queryable set of precomputed samples with burst-length
    interpolation along each (fabric, pattern, rw) curve."""

    def __init__(self, samples: List[SurfaceSample]) -> None:
        self._curves: Dict[Tuple, Dict[int, SurfaceSample]] = {}
        for s in samples:
            curve = self._curves.setdefault(_axis_key(s.point), {})
            curve[s.point.burst_len] = s

    def __len__(self) -> int:
        return sum(len(c) for c in self._curves.values())

    def exact(self, point: PatternPoint) -> Optional[SurfaceSample]:
        """The precomputed sample at exactly ``point``, if any."""
        return self._curves.get(_axis_key(point), {}).get(point.burst_len)

    def lookup(self, point: PatternPoint) -> Optional[SurfaceValue]:
        """Exact sample, or log2-linear interpolation along burst length.

        Only the burst length may be off-grid; all other fields must
        match a precomputed curve, and the burst length must lie within
        the curve's sampled range (the model is interpolation, never
        extrapolation).  Returns ``None`` when the surface cannot answer
        — the caller falls back to enqueueing a real simulation.
        """
        curve = self._curves.get(_axis_key(point))
        if not curve:
            return None
        hit = curve.get(point.burst_len)
        if hit is not None:
            return SurfaceValue(total_gbps=hit.total_gbps,
                                interpolated=False, lower=hit, upper=hit)
        bls = sorted(curve)
        if not bls[0] < point.burst_len < bls[-1]:
            return None
        lo = max(b for b in bls if b < point.burst_len)
        hi = min(b for b in bls if b > point.burst_len)
        lo_s, hi_s = curve[lo], curve[hi]
        frac = ((math.log2(point.burst_len) - math.log2(lo))
                / (math.log2(hi) - math.log2(lo)))
        value = lo_s.total_gbps + frac * (hi_s.total_gbps - lo_s.total_gbps)
        return SurfaceValue(total_gbps=value, interpolated=True,
                            lower=lo_s, upper=hi_s)


def sample_from_report(point: PatternPoint, report,
                       platform: HbmPlatform = DEFAULT_PLATFORM
                       ) -> SurfaceSample:
    """Fold a ``SimReport`` into the surface's compact sample form."""
    return SurfaceSample(
        point=point,
        total_gbps=report.total_gbps,
        read_gbps=report.read_gbps,
        write_gbps=report.write_gbps,
        fraction_of_peak=pct_of_peak(report.total_gbps, platform))


def build_surface(
    platform: HbmPlatform = DEFAULT_PLATFORM,
    *,
    cycles: int = DEFAULT_CYCLES,
    outstanding: int = 32,
    fabrics: Tuple[FabricKind, ...] = (FabricKind.XLNX,),
    patterns: Tuple[Pattern, ...] = tuple(Pattern),
    burst_lengths: Tuple[int, ...] = SURFACE_BURST_LENGTHS,
    rws: Tuple[RWRatio, ...] = (TWO_TO_ONE,),
    workers: Optional[int] = None,
    cache=None,
) -> SweepSurface:
    """Simulate (or load from ``cache``) the whole grid and index it.

    ``cache`` is the shared result store's :class:`~repro.sim.cache.SimCache`
    (default: the process-wide one) — warm points are loaded, cold points
    simulated on the supervised sweep runtime and stored back, so
    repeated service start-ups cost one grid simulation total.
    """
    from ..sim.cache import DEFAULT_CACHE
    from .parallel import parallel_sweep
    cache = cache if cache is not None else DEFAULT_CACHE
    points = [PatternPoint(fabric=f, pattern=p, burst_len=bl, rw=rw,
                           cycles=cycles, outstanding=outstanding)
              for f in fabrics for p in patterns
              for rw in rws for bl in burst_lengths]
    args = [(pt, platform) for pt in points]
    reports = parallel_sweep(simulate_point, args, workers,
                             cache=cache, key_fn=simulate_point_key)
    return SweepSurface([sample_from_report(pt, rep, platform)
                         for pt, rep in zip(points, reports)])
