"""Command-line runner: regenerate paper artifacts and query the models.

Usage::

    repro-hbm list
    repro-hbm run fig4 [--cycles 12000]
    repro-hbm all [--cycles 8000] [--out results.txt]
    repro-hbm estimate --pattern CCS --fabric mao --rw 2:1 --burst 16
    repro-hbm advise --pattern CCRA --fabric xlnx --outstanding 4
    repro-hbm chaos --scenario pch-offline [--fabric xlnx] [--seed 0]
    repro-hbm profile fig2 [--trace-out trace.json] [--manifest-out m.json]
    repro-hbm check --all          # statically validate every experiment
    repro-hbm check fig6 --lint    # one experiment + determinism lint
    repro-hbm fuzz --budget 200 --seed 0   # model-based conformance fuzzing
    repro-hbm fuzz --replay-corpus         # re-run committed fuzz findings
    repro-hbm serve --port 8321            # HTTP estimate/advise/sweep service
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from ..sim.config import ENGINE_TIERS
from ..types import FabricKind, Pattern, RWRatio
from .registry import EXPERIMENTS, get_experiment


def _parse_rw(text: str) -> RWRatio:
    try:
        r, w = text.split(":")
        return RWRatio(int(r), int(w))
    except (ValueError, TypeError) as exc:
        raise argparse.ArgumentTypeError(
            f"expected READS:WRITES (e.g. 2:1), got {text!r}") from exc


def _cmd_estimate(args) -> str:
    from ..core.estimator import BandwidthEstimator, EstimateInputs
    est = BandwidthEstimator()
    inputs = EstimateInputs(
        fabric=FabricKind(args.fabric),
        pattern=Pattern[args.pattern],
        rw=args.rw,
        burst_len=args.burst,
        outstanding=args.outstanding,
    )
    e = est.estimate(inputs)
    lines = [
        f"pattern {args.pattern} on {args.fabric}, {args.rw} R:W, BL{args.burst}:",
        f"  estimated bandwidth : {e.total_gbps:8.1f} GB/s "
        f"(RD {e.read_gbps:.1f} / WR {e.write_gbps:.1f})",
        f"  binding constraint  : {e.bottleneck}",
        f"  effective channels  : {e.nch_eff}",
    ]
    for note in e.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def _cmd_advise(args) -> str:
    from ..core.guidelines import DesignDescription, evaluate_guidelines
    design = DesignDescription(
        rw=args.rw,
        burst_len=args.burst,
        outstanding=args.outstanding,
        pattern=Pattern[args.pattern],
        fabric=FabricKind(args.fabric),
    )
    findings = evaluate_guidelines(design)
    return "\n".join(str(f) for f in findings)


def _cmd_chaos(args) -> str:
    from ..faults.chaos import format_report, run_suite
    scenarios = None if args.scenario == "all" else [args.scenario]
    results = run_suite(
        scenarios,
        fabric=FabricKind(args.fabric),
        pattern=Pattern[args.pattern],
        cycles=args.cycles,
        seed=args.seed,
        workers=args.workers,
    )
    return format_report(results)


def _cmd_cache(args) -> tuple:
    """Cache maintenance front end; returns (text, exit code)."""
    from ..sim.cache import SimCache
    cache = SimCache(args.dir)
    if not cache.directory:
        return ("sim cache: no disk directory configured "
                "(set REPRO_SIM_CACHE_DIR or pass --dir)", 1)
    lines = []
    if args.prune:
        if args.max_bytes is None and args.max_age_days is None:
            return ("cache --prune needs --max-bytes and/or "
                    "--max-age-days", 2)
        lines.append(cache.prune(max_bytes=args.max_bytes,
                                 max_age_days=args.max_age_days).summary())
    lines.append(cache.stats().summary())
    return "\n".join(lines), 0


def _cmd_serve(args) -> int:
    """Sweep-service front end: build the store (and optionally the
    precomputed surface), then serve until interrupted."""
    from ..service import ResultStore
    from ..service.http import run_server
    store = ResultStore(directory=args.store_dir,
                        max_memory_entries=args.mem_entries)
    surface = None
    if not args.no_surface:
        from .surface import build_surface
        print(f"precomputing sweep surface (cycles={args.cycles}, "
              f"workers={args.workers}) ...", flush=True)
        start = time.perf_counter()  # det-lint: allow (display only)
        surface = build_surface(cycles=args.cycles, workers=args.workers,
                                cache=store.cache)
        elapsed = time.perf_counter() - start  # det-lint: allow
        print(f"surface ready: {len(surface)} samples ({elapsed:.1f}s)",
              flush=True)
    run_server(args.host, args.port, store=store, surface=surface,
               workers=args.queue_workers, default_cycles=args.cycles,
               task_timeout=args.task_timeout, isolate=args.isolate)
    return 0


def _cmd_profile(args) -> str:
    # Lazy import: the profiler pulls in the telemetry and traffic layers,
    # which the other subcommands never need.
    from ..telemetry.profile import profile_experiment
    result = profile_experiment(
        args.key,
        cycles=args.cycles,
        interval=args.interval,
        seed=args.seed,
        trace_out=args.trace_out,
        manifest_out=args.manifest_out,
    )
    lines = [result.summary]
    if args.trace_out:
        lines.append(f"wrote Perfetto trace to {args.trace_out} "
                     f"(load at ui.perfetto.dev or chrome://tracing)")
    if args.manifest_out:
        lines.append(f"wrote provenance manifest to {args.manifest_out}")
    return "\n".join(lines)


def _cmd_check(args) -> tuple:
    """Static analyzer / lint front end; returns (text, exit code)."""
    from ..check import lint as lint_mod
    from ..check import static as static_mod
    from ..check.findings import render, render_json
    chunks: List[str] = []
    json_findings: List = []
    ok = True
    if args.keys or args.all:
        keys = sorted(EXPERIMENTS) if args.all else args.keys
        results = {k: static_mod.check_experiment(k, args.cycles)
                   for k in keys}
        text, exp_ok = static_mod.render_experiment_report(results)
        chunks.append(text)
        json_findings.extend(f for fs in results.values() for f in fs)
        ok = ok and exp_ok
    elif not (args.lint or args.state):
        # Ad-hoc config check: one fabric kind under the given knobs.
        from ..sim import SimConfig
        cfg = SimConfig(cycles=args.cycles or 12_000,
                        outstanding=args.outstanding)
        findings = static_mod.check_fabric_kind(
            FabricKind(args.fabric), cfg, location=args.fabric)
        chunks.append(render(findings) if findings
                      else f"{args.fabric}: no findings")
        json_findings.extend(findings)
        ok = ok and not any(f.severity == "error" for f in findings)
    if args.lint:
        root = lint_mod.default_src_root()
        findings = lint_mod.lint_tree(root)
        if findings:
            chunks.append(render(findings))
            ok = False
        json_findings.extend(findings)
        chunks.append(f"determinism lint: {len(findings)} finding(s)")
    if args.state or args.all:
        from ..check import statecheck as state_mod
        findings = state_mod.check_state()
        chunks.append(state_mod.render_state_report(
            findings, state_mod.state_stats()))
        json_findings.extend(findings)
        ok = ok and not any(f.severity == "error" for f in findings)
    if args.json:
        chunks = [render_json(json_findings)]
    return "\n".join(chunks), 0 if ok else 1


def _fuzz_resume_hint(args, journal_path: str) -> str:
    """The exact command that finishes an interrupted campaign."""
    bits = ["repro-hbm fuzz", f"--budget {args.budget}",
            f"--seed {args.seed}"]
    if args.no_minimize:
        bits.append("--no-minimize")
    if args.no_corpus:
        bits.append("--no-corpus")
    if args.corpus_dir:
        bits.append(f"--corpus-dir {args.corpus_dir}")
    bits.append(f"--resume {journal_path}")
    return " ".join(bits)


def _cmd_fuzz(args) -> tuple:
    """Conformance fuzz front end; returns (text, exit code, notes).

    ``text`` is the campaign report (what ``--out`` captures — byte
    identical between a clean run and an interrupted-then-resumed one);
    ``notes`` carry journaling/resume status for stdout only.
    """
    from ..conformance import corpus as corpus_mod
    from ..conformance.driver import run_campaign
    from ..runtime import GracefulShutdown
    corpus_dir = args.corpus_dir or str(corpus_mod.default_corpus_dir())
    if args.replay_corpus:
        entries = corpus_mod.list_entries(corpus_dir)
        lines = corpus_mod.replay(corpus_dir)
        text = "\n".join(
            [f"corpus replay: {len(entries)} entr(ies) from {corpus_dir}"]
            + [f"  FAIL {line}" for line in lines]
            + ([f"  all {len(entries)} entr(ies) pass"] if not lines else []))
        return text, 0 if not lines else 1, []
    journal_path = None if args.no_journal else (args.resume or args.journal)
    with GracefulShutdown() as stop:
        report = run_campaign(
            budget=args.budget, seed=args.seed,
            minimize=not args.no_minimize,
            corpus_dir=corpus_dir if not args.no_corpus else None,
            journal_path=None if args.resume else journal_path,
            resume_from=args.resume,
            max_minutes=args.max_minutes,
            should_stop=stop)
    rc = 0 if report.ok else 1
    notes = []
    if report.resumed:
        notes.append(f"resumed {report.resumed} completed case(s) from "
                     f"journal {args.resume}")
    if report.interrupted or report.deadline_reached:
        why = ("interrupted" if report.interrupted
               else f"wall-clock deadline ({args.max_minutes} min) reached")
        notes.append(
            f"{why}: checkpointed after {len(report.results)} of "
            f"{report.budget} case(s); {report.remaining} remaining")
        if report.journal_path:
            notes.append("resume with: "
                         + _fuzz_resume_hint(args, report.journal_path))
        rc = 130 if report.interrupted else 0
    elif report.journal_path and not args.resume:
        notes.append(f"run journal: {report.journal_path}")
    return report.summary(), rc, notes


def _cmd_list() -> str:
    lines = ["available experiments:"]
    for key in sorted(EXPERIMENTS):
        spec = EXPERIMENTS[key]
        lines.append(f"  {key:<8} {spec.title}")
    return "\n".join(lines)


def _cmd_run(keys: List[str], cycles: Optional[int]) -> str:
    # Pre-validate before spending simulation time: an error-severity
    # static finding (broken address map, impossible fault plan) aborts
    # the whole run-set up front.
    from ..check import static as static_mod
    from ..check import statecheck as state_mod
    from ..check.findings import render
    from ..errors import ConfigError
    errors = [f for key in keys
              for f in static_mod.check_experiment(key, cycles)
              if f.severity == "error"]
    # The state analyzer gates too: an uncovered sim-state field or a
    # waker bypass means the engine tiers can silently diverge, which
    # would poison every number the run produces.
    errors.extend(f for f in state_mod.check_state()
                  if f.severity == "error")
    if errors:
        raise ConfigError(
            "static pre-validation failed:\n" + render(errors))
    chunks = []
    for key in keys:
        spec = get_experiment(key)
        kwargs = {}
        if cycles is not None and spec.uses_simulation:
            kwargs["cycles"] = cycles
        start = time.perf_counter()  # det-lint: allow (display only)
        table = spec.execute(**kwargs)
        elapsed = time.perf_counter() - start  # det-lint: allow
        chunks.append(f"=== {key}: {spec.title} ({elapsed:.1f}s) ===\n{table}")
    return "\n\n".join(chunks)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-hbm",
        description="Regenerate the tables and figures of 'Fast HBM Access "
                    "with FPGAs' (IPDPSW 2021)")
    # Options shared by every simulation-running subcommand.
    sim_opts = argparse.ArgumentParser(add_help=False)
    sim_opts.add_argument("--no-cache", action="store_true",
                          help="disable the sweep-point result cache")
    sim_opts.add_argument("--legacy-engine", action="store_true",
                          help="use the reference cycle loop instead of the "
                               "fast path (bit-identical results, slower)")
    sim_opts.add_argument("--engine", choices=list(ENGINE_TIERS),
                          default=None,
                          help="main-loop tier for every simulation: fast "
                               "(default), legacy (reference per-cycle "
                               "loop), or vector (struct-of-arrays tier); "
                               "all bit-identical")
    sim_opts.add_argument("--sanitize", action="store_true",
                          help="attach the runtime invariant sanitizer to "
                               "every simulation (bit-identical results, "
                               "slower; see repro.check)")
    sim_opts.add_argument("--telemetry", action="store_true",
                          help="attach the telemetry sampler to every "
                               "simulation (bit-identical results; see "
                               "repro.telemetry and the profile subcommand)")
    sim_opts.add_argument("--journal", type=str, default=None,
                          help="record sweep progress durably to this "
                               "JSONL journal (each finished point is "
                               "checkpointed the moment it completes)")
    sim_opts.add_argument("--resume", type=str, default=None,
                          metavar="JOURNAL",
                          help="resume from a sweep journal: points it "
                               "records as finished are restored, not "
                               "re-simulated")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments")
    p_run = sub.add_parser("run", help="run selected experiments",
                           parents=[sim_opts])
    p_run.add_argument("keys", nargs="+", choices=sorted(EXPERIMENTS))
    p_run.add_argument("--cycles", type=int, default=None,
                       help="simulation horizon in fabric cycles")
    p_run.add_argument("--out", type=str, default=None)
    p_all = sub.add_parser("all", help="run every experiment",
                           parents=[sim_opts])
    p_all.add_argument("--cycles", type=int, default=None)
    p_all.add_argument("--out", type=str, default=None)
    p_rep = sub.add_parser("report", help="write a markdown results report",
                           parents=[sim_opts])
    p_rep.add_argument("keys", nargs="*", metavar="KEY",
                       help=f"experiments to include (default: all of "
                            f"{', '.join(sorted(EXPERIMENTS))})")
    p_rep.add_argument("--cycles", type=int, default=None)
    p_rep.add_argument("--out", type=str, default="results_report.md")
    from ..faults.chaos import SCENARIOS
    p_chaos = sub.add_parser(
        "chaos", help="fault-injection resilience report", parents=[sim_opts])
    p_chaos.add_argument("--scenario", default="all",
                         choices=["all"] + sorted(SCENARIOS),
                         help="fault scenario to run (default: the whole "
                              "suite)")
    p_chaos.add_argument("--fabric", choices=[f.value for f in FabricKind],
                         default="xlnx")
    p_chaos.add_argument("--pattern", choices=[p_.name for p_ in Pattern],
                         default="SCS")
    p_chaos.add_argument("--cycles", type=int, default=6000,
                         help="simulation horizon in fabric cycles")
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="traffic and fault-plan seed")
    p_chaos.add_argument("--workers", type=int, default=1,
                         help="scenarios to run in parallel on the "
                              "supervised pool (default: serial)")
    p_chaos.add_argument("--out", type=str, default=None)
    p_prof = sub.add_parser(
        "profile", help="run one experiment's representative point under "
                        "full telemetry; bottleneck report + Perfetto trace",
        parents=[sim_opts])
    p_prof.add_argument("key", choices=sorted(EXPERIMENTS),
                        help="experiment whose representative point to "
                             "profile")
    p_prof.add_argument("--cycles", type=int, default=6000,
                        help="simulation horizon in fabric cycles")
    p_prof.add_argument("--interval", type=int, default=None,
                        help="telemetry sampling interval in fabric cycles "
                             "(default: ~64 samples per run)")
    p_prof.add_argument("--seed", type=int, default=0,
                        help="traffic (and fault-plan) seed")
    p_prof.add_argument("--trace-out", type=str, default=None,
                        help="write a Chrome trace-event / Perfetto JSON "
                             "timeline here")
    p_prof.add_argument("--manifest-out", type=str, default=None,
                        help="write the per-run provenance manifest here")
    p_prof.add_argument("--out", type=str, default=None)
    p_check = sub.add_parser(
        "check", help="static config/topology analyzer and determinism lint")
    p_check.add_argument("keys", nargs="*", metavar="KEY",
                         choices=[[]] + sorted(EXPERIMENTS),
                         help="experiments to validate statically")
    p_check.add_argument("--all", action="store_true",
                         help="validate every registry experiment")
    p_check.add_argument("--lint", action="store_true",
                         help="run the determinism lint over the sources")
    p_check.add_argument("--state", action="store_true",
                         help="run the state-coverage / observer-purity / "
                              "waker-audit analyzer over the sources "
                              "(also included in --all)")
    p_check.add_argument("--json", action="store_true",
                         help="emit findings as JSON instead of text")
    p_check.add_argument("--cycles", type=int, default=None,
                         help="horizon used for fault-plan liveness checks")
    p_check.add_argument("--fabric", choices=[f.value for f in FabricKind],
                         default="xlnx",
                         help="fabric kind for an ad-hoc config check "
                              "(when no experiment keys are given)")
    p_check.add_argument("--outstanding", type=int, default=32)
    p_fuzz = sub.add_parser(
        "fuzz", help="model-based conformance fuzzing over the timing / "
                     "fault / fabric space (see repro.conformance)")
    p_fuzz.add_argument("--budget", type=int, default=200,
                        help="number of sampled configurations to run")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign seed (space sampling + traffic)")
    p_fuzz.add_argument("--replay-corpus", action="store_true",
                        help="re-run every committed tests/corpus entry "
                             "instead of fuzzing")
    p_fuzz.add_argument("--corpus-dir", type=str, default=None,
                        help="corpus directory (default: tests/corpus)")
    p_fuzz.add_argument("--no-minimize", action="store_true",
                        help="skip greedy shrinking of failing configs")
    p_fuzz.add_argument("--no-corpus", action="store_true",
                        help="do not write minimized failures to the corpus")
    p_fuzz.add_argument("--journal", type=str, default="fuzz-journal.jsonl",
                        help="durable run journal recording every case as "
                             "it completes (resume an interrupted campaign "
                             "with --resume)")
    p_fuzz.add_argument("--no-journal", action="store_true",
                        help="disable the run journal")
    p_fuzz.add_argument("--resume", type=str, default=None, metavar="JOURNAL",
                        help="resume an interrupted campaign from its "
                             "journal: completed cases are restored "
                             "bit-identically, only the remainder is "
                             "re-simulated")
    p_fuzz.add_argument("--max-minutes", type=float, default=None,
                        help="wall-clock deadline: checkpoint cleanly to "
                             "the journal and exit with a resume hint")
    p_fuzz.add_argument("--out", type=str, default=None)
    p_cache = sub.add_parser(
        "cache", help="sim-result cache maintenance (footprint stats, "
                      "size/age-bounded pruning)")
    p_cache.add_argument("--dir", type=str, default=None,
                         help="cache directory (default: "
                              "REPRO_SIM_CACHE_DIR)")
    p_cache.add_argument("--stats", action="store_true",
                         help="report entry count and byte footprint "
                              "(the default action)")
    p_cache.add_argument("--prune", action="store_true",
                         help="delete entries to fit --max-bytes / "
                              "--max-age-days")
    p_cache.add_argument("--max-bytes", type=int, default=None,
                         help="prune oldest entries until the directory "
                              "fits this many bytes")
    p_cache.add_argument("--max-age-days", type=float, default=None,
                         help="prune entries older than this many days")
    p_serve = sub.add_parser(
        "serve", help="HTTP sweep service: estimate/advise served "
                      "analytically, measured bandwidth from the shared "
                      "result store, the precomputed surface, or an async "
                      "dedup'ing simulation queue (see repro.service)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8321,
                         help="TCP port (0 picks a free one)")
    p_serve.add_argument("--cycles", type=int, default=3000,
                         help="simulation horizon for served sweep points "
                              "and the precomputed surface")
    p_serve.add_argument("--store-dir", type=str, default=None,
                         help="shared result-store directory (default: "
                              "REPRO_SIM_CACHE_DIR)")
    p_serve.add_argument("--mem-entries", type=int, default=4096,
                         help="LRU bound of the in-memory store table — a "
                              "long-lived server must not grow without "
                              "limit (0 = unbounded)")
    p_serve.add_argument("--no-surface", action="store_true",
                         help="skip the start-up surface precompute; every "
                              "cold query simulates")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="process workers for the surface precompute")
    p_serve.add_argument("--queue-workers", type=int, default=1,
                         help="concurrent simulation jobs in the serving "
                              "queue")
    p_serve.add_argument("--task-timeout", type=float, default=None,
                         help="per-job timeout in seconds")
    p_serve.add_argument("--isolate", action="store_true",
                         help="run each queued simulation in a supervised "
                              "worker process (crash isolation + "
                              "preemptive timeouts)")
    for name, helptext in (("estimate", "analytical bandwidth estimate"),
                           ("advise", "check a design against the guidelines")):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--pattern", choices=[p_.name for p_ in Pattern],
                       default="CCS")
        p.add_argument("--fabric", choices=[f.value for f in FabricKind],
                       default="xlnx")
        p.add_argument("--rw", type=_parse_rw, default=RWRatio(2, 1),
                       help="read:write ratio, e.g. 2:1")
        p.add_argument("--burst", type=int, default=16)
        p.add_argument("--outstanding", type=int, default=32)

    args = parser.parse_args(argv)
    if getattr(args, "no_cache", False):
        os.environ["REPRO_SIM_CACHE"] = "0"
    if getattr(args, "legacy_engine", False):
        os.environ["REPRO_FAST_PATH"] = "0"
    if getattr(args, "engine", None):
        if getattr(args, "legacy_engine", False) \
                and args.engine != "legacy":
            parser.error("--legacy-engine conflicts with "
                         f"--engine {args.engine}")
        os.environ["REPRO_ENGINE"] = args.engine
    if getattr(args, "sanitize", False):
        os.environ["REPRO_SANITIZE"] = "1"
    if getattr(args, "telemetry", False):
        os.environ["REPRO_TELEMETRY"] = "1"
    if args.command == "fuzz":
        text, rc, notes = _cmd_fuzz(args)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
        print(text)
        for note in notes:
            print(note)
        return rc
    sweep_resume = getattr(args, "resume", None)
    sweep_journal_path = sweep_resume or getattr(args, "journal", None)
    if sweep_journal_path is None:
        return _dispatch(args)
    # Sweep journaling: install the process-wide journal (and a graceful
    # SIGINT/SIGTERM flag) so every nested parallel_sweep inherits
    # point-level checkpointing and exact resume.
    from ..errors import SweepError
    from ..runtime import (GracefulShutdown, RunJournal, clear_active_journal,
                           load_journal, set_active_journal,
                           set_active_shutdown)
    state = load_journal(sweep_resume) if sweep_resume else None
    journal = RunJournal(sweep_journal_path, meta={"kind": "sweep"},
                         resume=bool(sweep_resume))
    try:
        with GracefulShutdown() as stop:
            set_active_journal(journal, state)
            set_active_shutdown(stop)
            return _dispatch(args)
    except SweepError as exc:
        outcome = exc.outcome
        print(exc)
        print(f"progress is journaled in {sweep_journal_path}; resume by "
              f"re-running this command with --resume {sweep_journal_path}")
        return 130 if outcome is not None and outcome.interrupted else 1
    finally:
        set_active_shutdown(None)
        clear_active_journal()
        journal.close()


def _dispatch(args) -> int:
    if args.command == "serve":
        if args.mem_entries == 0:
            args.mem_entries = None
        return _cmd_serve(args)
    if args.command == "profile":
        text = _cmd_profile(args)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.out}")
        else:
            print(text)
        return 0
    if args.command == "check":
        text, rc = _cmd_check(args)
        print(text)
        return rc
    if args.command == "cache":
        text, rc = _cmd_cache(args)
        print(text)
        return rc
    if args.command == "list":
        print(_cmd_list())
        return 0
    if args.command == "estimate":
        print(_cmd_estimate(args))
        return 0
    if args.command == "advise":
        print(_cmd_advise(args))
        return 0
    if args.command == "chaos":
        text = _cmd_chaos(args)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.out}")
        else:
            print(text)
        return 0
    if args.command == "report":
        from .report import generate_report
        text = generate_report(args.keys or None, args.cycles)
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
        return 0
    keys = sorted(EXPERIMENTS) if args.command == "all" else args.keys
    text = _cmd_run(keys, args.cycles)
    if getattr(args, "out", None):
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
