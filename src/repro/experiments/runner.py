"""Command-line runner: regenerate paper artifacts and query the models.

Usage::

    repro-hbm list
    repro-hbm run fig4 [--cycles 12000]
    repro-hbm all [--cycles 8000] [--out results.txt]
    repro-hbm estimate --pattern CCS --fabric mao --rw 2:1 --burst 16
    repro-hbm advise --pattern CCRA --fabric xlnx --outstanding 4
    repro-hbm chaos --scenario pch-offline [--fabric xlnx] [--seed 0]
    repro-hbm profile fig2 [--trace-out trace.json] [--manifest-out m.json]
    repro-hbm check --all          # statically validate every experiment
    repro-hbm check fig6 --lint    # one experiment + determinism lint
    repro-hbm fuzz --budget 200 --seed 0   # model-based conformance fuzzing
    repro-hbm fuzz --replay-corpus         # re-run committed fuzz findings
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from ..types import FabricKind, Pattern, RWRatio
from .registry import EXPERIMENTS, get_experiment


def _parse_rw(text: str) -> RWRatio:
    try:
        r, w = text.split(":")
        return RWRatio(int(r), int(w))
    except (ValueError, TypeError) as exc:
        raise argparse.ArgumentTypeError(
            f"expected READS:WRITES (e.g. 2:1), got {text!r}") from exc


def _cmd_estimate(args) -> str:
    from ..core.estimator import BandwidthEstimator, EstimateInputs
    est = BandwidthEstimator()
    inputs = EstimateInputs(
        fabric=FabricKind(args.fabric),
        pattern=Pattern[args.pattern],
        rw=args.rw,
        burst_len=args.burst,
        outstanding=args.outstanding,
    )
    e = est.estimate(inputs)
    lines = [
        f"pattern {args.pattern} on {args.fabric}, {args.rw} R:W, BL{args.burst}:",
        f"  estimated bandwidth : {e.total_gbps:8.1f} GB/s "
        f"(RD {e.read_gbps:.1f} / WR {e.write_gbps:.1f})",
        f"  binding constraint  : {e.bottleneck}",
        f"  effective channels  : {e.nch_eff}",
    ]
    for note in e.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def _cmd_advise(args) -> str:
    from ..core.guidelines import DesignDescription, evaluate_guidelines
    design = DesignDescription(
        rw=args.rw,
        burst_len=args.burst,
        outstanding=args.outstanding,
        pattern=Pattern[args.pattern],
        fabric=FabricKind(args.fabric),
    )
    findings = evaluate_guidelines(design)
    return "\n".join(str(f) for f in findings)


def _cmd_chaos(args) -> str:
    from ..faults.chaos import format_report, run_suite
    scenarios = None if args.scenario == "all" else [args.scenario]
    results = run_suite(
        scenarios,
        fabric=FabricKind(args.fabric),
        pattern=Pattern[args.pattern],
        cycles=args.cycles,
        seed=args.seed,
    )
    return format_report(results)


def _cmd_profile(args) -> str:
    # Lazy import: the profiler pulls in the telemetry and traffic layers,
    # which the other subcommands never need.
    from ..telemetry.profile import profile_experiment
    result = profile_experiment(
        args.key,
        cycles=args.cycles,
        interval=args.interval,
        seed=args.seed,
        trace_out=args.trace_out,
        manifest_out=args.manifest_out,
    )
    lines = [result.summary]
    if args.trace_out:
        lines.append(f"wrote Perfetto trace to {args.trace_out} "
                     f"(load at ui.perfetto.dev or chrome://tracing)")
    if args.manifest_out:
        lines.append(f"wrote provenance manifest to {args.manifest_out}")
    return "\n".join(lines)


def _cmd_check(args) -> tuple:
    """Static analyzer / lint front end; returns (text, exit code)."""
    from ..check import lint as lint_mod
    from ..check import static as static_mod
    from ..check.findings import render
    chunks: List[str] = []
    ok = True
    if args.keys or args.all:
        keys = sorted(EXPERIMENTS) if args.all else args.keys
        results = {k: static_mod.check_experiment(k, args.cycles)
                   for k in keys}
        text, exp_ok = static_mod.render_experiment_report(results)
        chunks.append(text)
        ok = ok and exp_ok
    elif not args.lint:
        # Ad-hoc config check: one fabric kind under the given knobs.
        from ..sim import SimConfig
        cfg = SimConfig(cycles=args.cycles or 12_000,
                        outstanding=args.outstanding)
        findings = static_mod.check_fabric_kind(
            FabricKind(args.fabric), cfg, location=args.fabric)
        chunks.append(render(findings) if findings
                      else f"{args.fabric}: no findings")
        ok = ok and not any(f.severity == "error" for f in findings)
    if args.lint:
        root = lint_mod.default_src_root()
        findings = lint_mod.lint_tree(root)
        if findings:
            chunks.append(render(findings))
            ok = False
        chunks.append(f"determinism lint: {len(findings)} finding(s)")
    return "\n".join(chunks), 0 if ok else 1


def _cmd_fuzz(args) -> tuple:
    """Conformance fuzz front end; returns (text, exit code)."""
    from ..conformance import corpus as corpus_mod
    from ..conformance.driver import run_campaign
    corpus_dir = args.corpus_dir or str(corpus_mod.default_corpus_dir())
    if args.replay_corpus:
        entries = corpus_mod.list_entries(corpus_dir)
        lines = corpus_mod.replay(corpus_dir)
        text = "\n".join(
            [f"corpus replay: {len(entries)} entr(ies) from {corpus_dir}"]
            + [f"  FAIL {line}" for line in lines]
            + ([f"  all {len(entries)} entr(ies) pass"] if not lines else []))
        return text, 0 if not lines else 1
    report = run_campaign(
        budget=args.budget, seed=args.seed,
        minimize=not args.no_minimize,
        corpus_dir=corpus_dir if not args.no_corpus else None)
    return report.summary(), 0 if report.ok else 1


def _cmd_list() -> str:
    lines = ["available experiments:"]
    for key in sorted(EXPERIMENTS):
        spec = EXPERIMENTS[key]
        lines.append(f"  {key:<8} {spec.title}")
    return "\n".join(lines)


def _cmd_run(keys: List[str], cycles: Optional[int]) -> str:
    # Pre-validate before spending simulation time: an error-severity
    # static finding (broken address map, impossible fault plan) aborts
    # the whole run-set up front.
    from ..check import static as static_mod
    from ..check.findings import render
    from ..errors import ConfigError
    errors = [f for key in keys
              for f in static_mod.check_experiment(key, cycles)
              if f.severity == "error"]
    if errors:
        raise ConfigError(
            "static pre-validation failed:\n" + render(errors))
    chunks = []
    for key in keys:
        spec = get_experiment(key)
        kwargs = {}
        if cycles is not None and spec.uses_simulation:
            kwargs["cycles"] = cycles
        start = time.perf_counter()  # det-lint: allow (display only)
        table = spec.execute(**kwargs)
        elapsed = time.perf_counter() - start  # det-lint: allow
        chunks.append(f"=== {key}: {spec.title} ({elapsed:.1f}s) ===\n{table}")
    return "\n\n".join(chunks)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-hbm",
        description="Regenerate the tables and figures of 'Fast HBM Access "
                    "with FPGAs' (IPDPSW 2021)")
    # Options shared by every simulation-running subcommand.
    sim_opts = argparse.ArgumentParser(add_help=False)
    sim_opts.add_argument("--no-cache", action="store_true",
                          help="disable the sweep-point result cache")
    sim_opts.add_argument("--legacy-engine", action="store_true",
                          help="use the reference cycle loop instead of the "
                               "fast path (bit-identical results, slower)")
    sim_opts.add_argument("--sanitize", action="store_true",
                          help="attach the runtime invariant sanitizer to "
                               "every simulation (bit-identical results, "
                               "slower; see repro.check)")
    sim_opts.add_argument("--telemetry", action="store_true",
                          help="attach the telemetry sampler to every "
                               "simulation (bit-identical results; see "
                               "repro.telemetry and the profile subcommand)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments")
    p_run = sub.add_parser("run", help="run selected experiments",
                           parents=[sim_opts])
    p_run.add_argument("keys", nargs="+", choices=sorted(EXPERIMENTS))
    p_run.add_argument("--cycles", type=int, default=None,
                       help="simulation horizon in fabric cycles")
    p_run.add_argument("--out", type=str, default=None)
    p_all = sub.add_parser("all", help="run every experiment",
                           parents=[sim_opts])
    p_all.add_argument("--cycles", type=int, default=None)
    p_all.add_argument("--out", type=str, default=None)
    p_rep = sub.add_parser("report", help="write a markdown results report",
                           parents=[sim_opts])
    p_rep.add_argument("keys", nargs="*", metavar="KEY",
                       help=f"experiments to include (default: all of "
                            f"{', '.join(sorted(EXPERIMENTS))})")
    p_rep.add_argument("--cycles", type=int, default=None)
    p_rep.add_argument("--out", type=str, default="results_report.md")
    from ..faults.chaos import SCENARIOS
    p_chaos = sub.add_parser(
        "chaos", help="fault-injection resilience report", parents=[sim_opts])
    p_chaos.add_argument("--scenario", default="all",
                         choices=["all"] + sorted(SCENARIOS),
                         help="fault scenario to run (default: the whole "
                              "suite)")
    p_chaos.add_argument("--fabric", choices=[f.value for f in FabricKind],
                         default="xlnx")
    p_chaos.add_argument("--pattern", choices=[p_.name for p_ in Pattern],
                         default="SCS")
    p_chaos.add_argument("--cycles", type=int, default=6000,
                         help="simulation horizon in fabric cycles")
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="traffic and fault-plan seed")
    p_chaos.add_argument("--out", type=str, default=None)
    p_prof = sub.add_parser(
        "profile", help="run one experiment's representative point under "
                        "full telemetry; bottleneck report + Perfetto trace",
        parents=[sim_opts])
    p_prof.add_argument("key", choices=sorted(EXPERIMENTS),
                        help="experiment whose representative point to "
                             "profile")
    p_prof.add_argument("--cycles", type=int, default=6000,
                        help="simulation horizon in fabric cycles")
    p_prof.add_argument("--interval", type=int, default=None,
                        help="telemetry sampling interval in fabric cycles "
                             "(default: ~64 samples per run)")
    p_prof.add_argument("--seed", type=int, default=0,
                        help="traffic (and fault-plan) seed")
    p_prof.add_argument("--trace-out", type=str, default=None,
                        help="write a Chrome trace-event / Perfetto JSON "
                             "timeline here")
    p_prof.add_argument("--manifest-out", type=str, default=None,
                        help="write the per-run provenance manifest here")
    p_prof.add_argument("--out", type=str, default=None)
    p_check = sub.add_parser(
        "check", help="static config/topology analyzer and determinism lint")
    p_check.add_argument("keys", nargs="*", metavar="KEY",
                         choices=[[]] + sorted(EXPERIMENTS),
                         help="experiments to validate statically")
    p_check.add_argument("--all", action="store_true",
                         help="validate every registry experiment")
    p_check.add_argument("--lint", action="store_true",
                         help="run the determinism lint over the sources")
    p_check.add_argument("--cycles", type=int, default=None,
                         help="horizon used for fault-plan liveness checks")
    p_check.add_argument("--fabric", choices=[f.value for f in FabricKind],
                         default="xlnx",
                         help="fabric kind for an ad-hoc config check "
                              "(when no experiment keys are given)")
    p_check.add_argument("--outstanding", type=int, default=32)
    p_fuzz = sub.add_parser(
        "fuzz", help="model-based conformance fuzzing over the timing / "
                     "fault / fabric space (see repro.conformance)")
    p_fuzz.add_argument("--budget", type=int, default=200,
                        help="number of sampled configurations to run")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign seed (space sampling + traffic)")
    p_fuzz.add_argument("--replay-corpus", action="store_true",
                        help="re-run every committed tests/corpus entry "
                             "instead of fuzzing")
    p_fuzz.add_argument("--corpus-dir", type=str, default=None,
                        help="corpus directory (default: tests/corpus)")
    p_fuzz.add_argument("--no-minimize", action="store_true",
                        help="skip greedy shrinking of failing configs")
    p_fuzz.add_argument("--no-corpus", action="store_true",
                        help="do not write minimized failures to the corpus")
    p_fuzz.add_argument("--out", type=str, default=None)
    for name, helptext in (("estimate", "analytical bandwidth estimate"),
                           ("advise", "check a design against the guidelines")):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--pattern", choices=[p_.name for p_ in Pattern],
                       default="CCS")
        p.add_argument("--fabric", choices=[f.value for f in FabricKind],
                       default="xlnx")
        p.add_argument("--rw", type=_parse_rw, default=RWRatio(2, 1),
                       help="read:write ratio, e.g. 2:1")
        p.add_argument("--burst", type=int, default=16)
        p.add_argument("--outstanding", type=int, default=32)

    args = parser.parse_args(argv)
    if getattr(args, "no_cache", False):
        os.environ["REPRO_SIM_CACHE"] = "0"
    if getattr(args, "legacy_engine", False):
        os.environ["REPRO_FAST_PATH"] = "0"
    if getattr(args, "sanitize", False):
        os.environ["REPRO_SANITIZE"] = "1"
    if getattr(args, "telemetry", False):
        os.environ["REPRO_TELEMETRY"] = "1"
    if args.command == "profile":
        text = _cmd_profile(args)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.out}")
        else:
            print(text)
        return 0
    if args.command == "check":
        text, rc = _cmd_check(args)
        print(text)
        return rc
    if args.command == "fuzz":
        text, rc = _cmd_fuzz(args)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
        print(text)
        return rc
    if args.command == "list":
        print(_cmd_list())
        return 0
    if args.command == "estimate":
        print(_cmd_estimate(args))
        return 0
    if args.command == "advise":
        print(_cmd_advise(args))
        return 0
    if args.command == "chaos":
        text = _cmd_chaos(args)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.out}")
        else:
            print(text)
        return 0
    if args.command == "report":
        from .report import generate_report
        text = generate_report(args.keys or None, args.cycles)
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
        return 0
    keys = sorted(EXPERIMENTS) if args.command == "all" else args.keys
    text = _cmd_run(keys, args.cycles)
    if getattr(args, "out", None):
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
