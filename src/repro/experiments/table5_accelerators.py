"""Table V — matrix-multiplication accelerator overview.

Combines the analytical accelerator models (OpI, Ccomp, Util) with
*measured* effective bandwidths: each accelerator's real memory traffic
(CCS at its read/write ratio from its P ports) is run through the cycle
simulator on both interconnects, exactly the paper's methodology
("Then we measured the actual throughput to see if our estimation holds
up").

Paper anchors: accelerator A measures 12.55 GB/s without and
403.75 GB/s with the MAO (estimates 13 / 416, ~3 % off); accelerator B
measures 9.59 / 273 GB/s.  The resulting speedups over the P=4-no-MAO
baseline are 4.6/18.4/73.8/248.2x (A) and 3.6/7.1/14.3/28.5x (B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..accelerators import (AcceleratorA, AcceleratorB, TableVRow,
                            build_table_v, make_accelerator_sources)
from ..accelerators.base import AcceleratorConfig
from ..core.estimator import BandwidthEstimator, EstimateInputs
from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..types import FabricKind, Pattern
from .. import make_fabric
from ._common import DEFAULT_CYCLES, measure

PAPER_REFERENCE = {
    "bw_a": (12.55, 403.75),
    "bw_b": (9.59, 273.0),
    "su_a_mao": {4: 4.6, 8: 18.4, 16: 73.8, 32: 248.2},
    "su_b_mao": {4: 3.6, 8: 7.1, 16: 14.3, 32: 28.5},
    "best_a": 8,   # best feasible configuration of accelerator A
    "best_b": 32,  # accelerator B's near-ceiling configuration
}


@dataclass(frozen=True)
class MeasuredBandwidths:
    """The four measured effective bandwidths feeding Table V."""

    a_xlnx_gbps: float
    a_mao_gbps: float
    b_xlnx_gbps: float
    b_mao_gbps: float


def measure_bandwidths(
    cycles: int = DEFAULT_CYCLES,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    p: int = 32,
) -> MeasuredBandwidths:
    """Run both accelerators' traffic on both fabrics."""
    values = {}
    for name, cls in (("a", AcceleratorA), ("b", AcceleratorB)):
        model = cls(AcceleratorConfig(p=p))
        for kind in (FabricKind.XLNX, FabricKind.MAO):
            fab = make_fabric(kind, platform)
            sources = make_accelerator_sources(model, platform)
            rep = measure(kind, sources, cycles=cycles, platform=platform,
                          fabric=fab)
            values[(name, kind)] = rep.total_gbps
    return MeasuredBandwidths(
        a_xlnx_gbps=values[("a", FabricKind.XLNX)],
        a_mao_gbps=values[("a", FabricKind.MAO)],
        b_xlnx_gbps=values[("b", FabricKind.XLNX)],
        b_mao_gbps=values[("b", FabricKind.MAO)],
    )


def estimate_bandwidths(platform: HbmPlatform = DEFAULT_PLATFORM
                        ) -> MeasuredBandwidths:
    """The paper's *a-priori* estimates from the analytical model."""
    est = BandwidthEstimator(platform)
    a = AcceleratorA(AcceleratorConfig(p=32))
    b = AcceleratorB(AcceleratorConfig(p=32))
    def one(model, kind):
        return est.estimate(EstimateInputs(
            fabric=kind, pattern=Pattern.CCS, rw=model.rw_ratio)).total_gbps
    return MeasuredBandwidths(
        a_xlnx_gbps=one(a, FabricKind.XLNX),
        a_mao_gbps=one(a, FabricKind.MAO),
        b_xlnx_gbps=one(b, FabricKind.XLNX),
        b_mao_gbps=one(b, FabricKind.MAO),
    )


def run(
    cycles: int = DEFAULT_CYCLES,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    bandwidths: MeasuredBandwidths | None = None,
) -> Tuple[List[TableVRow], MeasuredBandwidths]:
    bw = bandwidths or measure_bandwidths(cycles, platform)
    rows = build_table_v(bw.a_xlnx_gbps, bw.a_mao_gbps,
                         bw.b_xlnx_gbps, bw.b_mao_gbps)
    return rows, bw


def format_table(result: Tuple[List[TableVRow], MeasuredBandwidths]) -> str:
    rows, bw = result
    out = ["Table V — accelerator overview",
           f"measured BW: A {bw.a_xlnx_gbps:.2f} -> {bw.a_mao_gbps:.2f} GB/s, "
           f"B {bw.b_xlnx_gbps:.2f} -> {bw.b_mao_gbps:.2f} GB/s "
           f"(paper: A 12.55 -> 403.75, B 9.59 -> 273)"]
    for r in rows:
        out.append(r.formatted())
    return "\n".join(out)
