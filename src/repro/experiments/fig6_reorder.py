"""Fig. 6 — effect of reordering on CCRA throughput with the MAO.

Sweeps the number of independent AXI IDs (= reorder-buffer depth): "a
higher number allowed the memory controller to more efficiently schedule
requests" and the BM-side reorder buffers "effectively freed the fabric
from outstanding [transactions]".  The curve rises from a serialized
depth-1 floor and saturates around depth 16-32.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.mao import MaoConfig, MaoVariant
from ..fabric import MaoFabric
from ..params import HbmPlatform, DEFAULT_PLATFORM
from ..traffic import make_pattern_sources
from ..types import FabricKind, Pattern, RWRatio, TWO_TO_ONE
from ._common import DEFAULT_CYCLES, measure, pct_of_peak, sweep_key

DEPTHS = (1, 2, 4, 8, 16, 32)

PAPER_REFERENCE = {
    "saturated_gbps": 266.0,
    "rising": True,
}


@dataclass(frozen=True)
class Fig6Row:
    reorder_depth: int
    total_gbps: float
    fraction_of_peak: float


def run(
    cycles: int = DEFAULT_CYCLES,
    burst_len: int = 16,
    rw: RWRatio = TWO_TO_ONE,
    platform: HbmPlatform = DEFAULT_PLATFORM,
    depths=DEPTHS,
    seed: int = 0,
) -> List[Fig6Row]:
    rows: List[Fig6Row] = []
    for depth in depths:
        config = MaoConfig(variant=MaoVariant.PARTIAL, stages=2,
                           reorder_depth=depth)
        fab = MaoFabric(platform, config=config)
        sources = make_pattern_sources(
            Pattern.CCRA, platform, burst_len=burst_len, rw=rw, seed=seed)
        # The non-default MaoConfig must discriminate the key, or these
        # points would collide with default-config MAO runs elsewhere.
        rep = measure(FabricKind.MAO, sources, cycles=cycles,
                      platform=platform, fabric=fab,
                      cache_key=sweep_key(
                          "pattern-sim", platform, fabric=FabricKind.MAO,
                          pattern=Pattern.CCRA, burst_len=burst_len, rw=rw,
                          seed=seed, mao=config))
        rows.append(Fig6Row(
            reorder_depth=depth,
            total_gbps=rep.total_gbps,
            fraction_of_peak=pct_of_peak(rep.total_gbps, platform),
        ))
    return rows


def format_table(rows: List[Fig6Row]) -> str:
    out = ["Fig. 6 — reorder depth vs. CCRA throughput with MAO",
           f"{'depth':>6} {'GB/s':>10} {'of peak':>9}"]
    for r in rows:
        out.append(f"{r.reorder_depth:>6} {r.total_gbps:>10.1f} "
                   f"{r.fraction_of_peak:>9.1%}")
    out.append(f"paper: saturates at ~{PAPER_REFERENCE['saturated_gbps']} GB/s")
    return "\n".join(out)
