"""FPGA device capacities and resource vectors.

The paper's platform is the Xilinx Virtex UltraScale+ XCVU37P.  Its
capacities are recovered from the paper's own Table III percentages
(285,327 LUTs = 21.89 % -> ~1,303,680 LUTs, etc.), matching the public
device specifications.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ResourceError


@dataclass(frozen=True)
class ResourceVector:
    """A bundle of FPGA resources (absolute counts)."""

    luts: int = 0
    ffs: int = 0
    bram36: int = 0
    dsp: int = 0
    uram: int = 0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.luts + other.luts,
            self.ffs + other.ffs,
            self.bram36 + other.bram36,
            self.dsp + other.dsp,
            self.uram + other.uram,
        )

    def scaled(self, factor: float) -> "ResourceVector":
        return ResourceVector(
            int(round(self.luts * factor)),
            int(round(self.ffs * factor)),
            int(round(self.bram36 * factor)),
            int(round(self.dsp * factor)),
            int(round(self.uram * factor)),
        )

    def __le__(self, other: "ResourceVector") -> bool:
        return (self.luts <= other.luts and self.ffs <= other.ffs
                and self.bram36 <= other.bram36 and self.dsp <= other.dsp
                and self.uram <= other.uram)


@dataclass(frozen=True)
class FpgaDevice:
    """One FPGA part with its resource capacity."""

    name: str
    capacity: ResourceVector

    def utilization(self, used: ResourceVector) -> dict:
        """Per-resource utilization fractions."""
        cap = self.capacity
        out = {}
        for field in ("luts", "ffs", "bram36", "dsp", "uram"):
            c = getattr(cap, field)
            u = getattr(used, field)
            out[field] = u / c if c else 0.0
        return out

    def fits(self, used: ResourceVector) -> bool:
        return used <= self.capacity

    def require_fits(self, used: ResourceVector, what: str = "design") -> None:
        if not self.fits(used):
            util = self.utilization(used)
            worst = max(util, key=util.get)
            raise ResourceError(
                f"{what} does not fit {self.name}: {worst} at "
                f"{util[worst]:.0%} of capacity")


#: The paper's device: Virtex UltraScale+ XCVU37P (HBM, two 4-Hi stacks).
XCVU37P = FpgaDevice(
    name="XCVU37P",
    capacity=ResourceVector(
        luts=1_303_680,
        ffs=2_607_360,
        bram36=2_016,
        dsp=9_024,
        uram=960,
    ),
)
