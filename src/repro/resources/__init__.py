"""FPGA resource models: device capacity, MAO cost (Table III), and
accelerator utilization (Table V).

Synthesis cannot run here, so resource counts come from a parametric
model calibrated once against the paper's reported numbers; the scaling
laws (crossbar area with port count, PE array area with P², adder trees
with P) are what the paper's feasibility argument rests on, and those are
preserved exactly.
"""

from .fpga import FpgaDevice, XCVU37P, ResourceVector
from .mao_resources import MaoResourceModel, MaoResourceReport
from .utilization import UtilizationReport, check_fits

__all__ = [
    "FpgaDevice",
    "XCVU37P",
    "ResourceVector",
    "MaoResourceModel",
    "MaoResourceReport",
    "UtilizationReport",
    "check_fits",
]
