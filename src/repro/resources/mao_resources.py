"""Resource and fmax model of the MAO IP core (Table III).

Synthesis cannot run in this environment, so the four 32-port build
points of the paper's Table III are stored as calibrated anchors and
other configurations are extrapolated with the structural scaling laws of
on-chip interconnects:

* mux/routing logic (LUTs, FFs) grows **quadratically** with the port
  count (an NxN crossbar has N² crosspoints) with a port-linear adaptation
  share,
* reorder-buffer BRAM grows **linearly** with the port count,
* fmax is wire-length-dominated: the *Partial* variant (reusing the local
  4x4 crossbars, no device-spanning wires) clocks ~2.5x higher, and a
  second pipeline stage buys a further 10-20 MHz.

The overall size matches the ~250k LUTs Xilinx states for its own fabric
(Sec. IV-B), which is the paper's comparability argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.mao import MaoConfig, MaoVariant
from ..errors import ConfigError
from .fpga import FpgaDevice, ResourceVector, XCVU37P

#: Calibrated 32-port anchors: (variant, stages) -> (LUTs, FFs, BRAM, fmax).
_ANCHORS = {
    (MaoVariant.FULL, 1): (285_327, 274_879, 260, 130),
    (MaoVariant.FULL, 2): (278_800, 255_122, 260, 150),
    (MaoVariant.PARTIAL, 1): (152_771, 197_831, 132, 350),
    (MaoVariant.PARTIAL, 2): (147_798, 251_676, 260, 360),
}

#: Share of the logic that scales with ports (adapters/reorder control)
#: rather than with the quadratic crossbar core.
_LINEAR_SHARE = 0.2


@dataclass(frozen=True)
class MaoResourceReport:
    """Resources and achievable clock of one MAO configuration."""

    config: MaoConfig
    resources: ResourceVector
    fmax_mhz: int

    def utilization(self, device: FpgaDevice = XCVU37P) -> dict:
        return device.utilization(self.resources)

    def row(self, device: FpgaDevice = XCVU37P) -> str:
        u = self.utilization(device)
        r = self.resources
        v = "Full" if self.config.variant is MaoVariant.FULL else "Partial"
        return (f"{v:<8} {self.fmax_mhz:>5} MHz  RD {self.config.read_latency_cycles:>2} "
                f"WR {self.config.write_latency_cycles:>2}  "
                f"LUT {r.luts:>7,} ({u['luts']:.2%})  "
                f"FF {r.ffs:>7,} ({u['ffs']:.2%})  "
                f"BRAM {r.bram36:>4} ({u['bram36']:.2%})")


class MaoResourceModel:
    """Parametric resource/fmax estimator for MAO builds."""

    def __init__(self, device: FpgaDevice = XCVU37P) -> None:
        self.device = device

    def estimate(self, config: MaoConfig) -> MaoResourceReport:
        n = config.num_ports
        if n < 2:
            raise ConfigError("MAO needs at least 2 ports")
        luts0, ffs0, bram0, fmax = _ANCHORS[(config.variant, config.stages)]
        linear = n / 32
        quad = linear * linear
        logic_scale = _LINEAR_SHARE * linear + (1.0 - _LINEAR_SHARE) * quad
        return MaoResourceReport(
            config=config,
            resources=ResourceVector(
                luts=int(round(luts0 * logic_scale)),
                ffs=int(round(ffs0 * logic_scale)),
                bram36=int(round((bram0 - 4) * linear)) + 4,
            ),
            fmax_mhz=fmax,
        )

    # -- convenience -----------------------------------------------------------

    def table_iii(self) -> list:
        """The four configurations of the paper's Table III."""
        rows = []
        for variant in (MaoVariant.FULL, MaoVariant.PARTIAL):
            for stages in (1, 2):
                rows.append(self.estimate(MaoConfig(variant=variant,
                                                    stages=stages)))
        return rows
