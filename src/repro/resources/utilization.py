"""Utilization reporting for complete designs (accelerator + MAO).

This is the ``Util`` row of the paper's Table V: a design is the sum of
its core resources and (optionally) the MAO's; the report says whether it
fits the device — the argument by which the paper rules out accelerator
A's P=16/P=32 configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .fpga import FpgaDevice, ResourceVector, XCVU37P


@dataclass
class UtilizationReport:
    """Resource usage of a complete design."""

    name: str
    components: Dict[str, ResourceVector] = field(default_factory=dict)
    device: FpgaDevice = XCVU37P

    def add(self, label: str, res: ResourceVector) -> "UtilizationReport":
        self.components[label] = res
        return self

    @property
    def total(self) -> ResourceVector:
        total = ResourceVector()
        for res in self.components.values():
            total = total + res
        return total

    @property
    def fits(self) -> bool:
        return self.device.fits(self.total)

    def utilization(self) -> dict:
        return self.device.utilization(self.total)

    @property
    def lut_fraction(self) -> float:
        """The headline utilization number of Table V (LUT-based)."""
        return self.utilization()["luts"]

    def summary(self) -> str:
        u = self.utilization()
        verdict = "fits" if self.fits else "DOES NOT FIT"
        parts = ", ".join(f"{k} {v:.1%}" for k, v in u.items() if v > 0)
        return f"{self.name}: {parts} -> {verdict} on {self.device.name}"


def check_fits(*reports: UtilizationReport) -> List[UtilizationReport]:
    """Filter to the reports whose designs fit their device."""
    return [r for r in reports if r.fits]
