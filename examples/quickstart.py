#!/usr/bin/env python3
"""Quickstart: measure HBM access patterns and get design guidance.

Reproduces the paper's core observation in under a minute: the same
globally-contiguous access pattern (CCS) runs at ~13 GB/s through the
vendor switch fabric — no better than plain DDR4 — and at ~414 GB/s
through the Memory Access Optimizer, because the MAO interleaves
addresses over all 32 pseudo-channels and removes the lateral-bus
bottlenecks.

Run:  python examples/quickstart.py [--cycles 8000]
"""

import argparse

from repro import gbps, quick_measure, DEFAULT_PLATFORM
from repro.core.estimator import BandwidthEstimator, EstimateInputs
from repro.core.guidelines import DesignDescription, evaluate_guidelines
from repro.types import FabricKind, Pattern, TWO_TO_ONE


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=8_000,
                        help="simulation horizon in 450 MHz fabric cycles")
    args = parser.parse_args()

    peak = gbps(DEFAULT_PLATFORM.device_peak_bytes_per_s)
    print(f"Platform: 32 HBM pseudo-channels, theoretical peak {peak:.1f} GB/s")
    print(f"Accelerator clock 300 MHz, AXI3 bursts of 16 x 32 B\n")

    # 1. Estimate before building anything (the paper's methodology).
    est = BandwidthEstimator()
    print("Step 1 — analytical estimates for contiguous (CCS) data:")
    for fabric in (FabricKind.XLNX, FabricKind.MAO):
        e = est.estimate(EstimateInputs(fabric=fabric, pattern=Pattern.CCS,
                                        rw=TWO_TO_ONE))
        print(f"  {fabric.value:>5}: {e.total_gbps:7.1f} GB/s "
              f"(bottleneck: {e.bottleneck}, {e.nch_eff} channels used)")

    # 2. Measure with the cycle simulator.
    print("\nStep 2 — cycle-level measurement of the same pattern:")
    for fabric in (FabricKind.XLNX, FabricKind.MAO):
        rep = quick_measure(Pattern.CCS, fabric, cycles=args.cycles)
        print(f"  {fabric.value:>5}: {rep.total_gbps:7.1f} GB/s   "
              f"read latency {rep.read_latency.mean:7.1f} ± "
              f"{rep.read_latency.std:.1f} cycles   "
              f"({rep.active_pchs()} channels active)")

    # 3. Ask the guideline advisor why.
    print("\nStep 3 — the design guidelines derived from the analysis:")
    design = DesignDescription(pattern=Pattern.CCS, fabric=FabricKind.XLNX)
    for finding in evaluate_guidelines(design):
        print(f"  {finding}")

    print("\nConclusion: interleave your data (or drop in the MAO) before "
          "scaling compute.")


if __name__ == "__main__":
    main()
