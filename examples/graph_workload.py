#!/usr/bin/env python3
"""Graph analytics on HBM: the paper's motivating random-access case.

Sec. II motivates global addressing with "graph algorithms where data
anywhere in the memory might be accessed".  This example builds a real
graph workload end to end:

1. store a synthetic power-law graph (CSR adjacency) in the functional
   HBM model, once under the vendor's contiguous map and once under the
   MAO's interleaved map — same logical data, different physical layout,
2. run a breadth-first search against both memories and verify identical
   results (the remap is transparent to software),
3. replay the BFS's *memory access trace* shape (random ≤512 B reads over
   the whole device = the paper's CCRA pattern) through the cycle
   simulator on both interconnects and report the speedup.

Run:  python examples/graph_workload.py [--nodes 20000] [--cycles 6000]
"""

import argparse
from collections import deque

import numpy as np

from repro import make_fabric
from repro.core.address_map import ContiguousMap, InterleavedMap
from repro.memory import HbmMemory
from repro.sim import Engine, SimConfig
from repro.traffic import make_pattern_sources
from repro.types import FabricKind, Pattern, RWRatio


def build_graph(nodes: int, seed: int = 0):
    """A synthetic scale-free-ish directed graph in CSR form."""
    rng = np.random.default_rng(seed)
    # Preferential-attachment flavoured degree distribution.
    degrees = np.minimum(rng.zipf(2.0, size=nodes), 64)
    indptr = np.zeros(nodes + 1, dtype=np.int64)
    indptr[1:] = np.cumsum(degrees)
    targets = rng.integers(0, nodes, size=int(indptr[-1]), dtype=np.int64)
    return indptr, targets


def bfs_on_hbm(mem: HbmMemory, nodes: int, indptr_addr: int,
               targets_addr: int, root: int = 0) -> np.ndarray:
    """Breadth-first search reading the CSR arrays from HBM."""
    dist = np.full(nodes, -1, dtype=np.int64)
    dist[root] = 0
    frontier = deque([root])
    while frontier:
        u = frontier.popleft()
        lo, hi = mem.read_array(indptr_addr + 8 * u, (2,), np.int64)
        if hi > lo:
            neigh = mem.read_array(targets_addr + 8 * lo, (hi - lo,),
                                   np.int64)
            for v in neigh:
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    frontier.append(v)
    return dist


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=20_000)
    parser.add_argument("--cycles", type=int, default=6_000)
    args = parser.parse_args()

    indptr, targets = build_graph(args.nodes)
    print(f"Graph: {args.nodes} nodes, {len(targets)} edges (CSR)")

    # --- functional layer: same software view on both physical layouts ---
    results = {}
    for name, amap in (("contiguous", ContiguousMap()),
                       ("interleaved", InterleavedMap())):
        mem = HbmMemory(amap)
        indptr_addr, targets_addr = 0, 8 * len(indptr)
        mem.write_array(indptr_addr, indptr)
        mem.write_array(targets_addr, targets)
        dist = bfs_on_hbm(mem, args.nodes, indptr_addr, targets_addr)
        results[name] = dist
        reached = int((dist >= 0).sum())
        print(f"  BFS over {name:>11} layout: {reached} nodes reached, "
              f"{len(mem.touched_pchs())} pseudo-channels hold data")
    assert np.array_equal(results["contiguous"], results["interleaved"]), \
        "the address remap must be transparent to software"
    print("  -> identical BFS results: the MAO remap is software-invisible\n")

    # --- performance layer: the access pattern is CCRA ---
    print("Replaying the random-access pattern through the cycle simulator:")
    measured = {}
    for fabric in (FabricKind.XLNX, FabricKind.MAO):
        fab = make_fabric(fabric)
        src = make_pattern_sources(Pattern.CCRA, burst_len=16,
                                   rw=RWRatio(8, 1), seed=1)
        rep = Engine(fab, src, SimConfig(cycles=args.cycles,
                                         warmup=args.cycles // 4)).run()
        measured[fabric] = rep.total_gbps
        print(f"  {fabric.value:>5}: {rep.total_gbps:7.1f} GB/s  "
              f"(read latency {rep.read_latency.mean:7.1f} ± "
              f"{rep.read_latency.std:.1f} cycles)")
    speedup = measured[FabricKind.MAO] / measured[FabricKind.XLNX]
    print(f"\n  -> the MAO speeds up the graph traversal's memory system "
          f"{speedup:.1f}x (paper's CCRA speedup: 3.78x)")


if __name__ == "__main__":
    main()
