#!/usr/bin/env python3
"""Weather-model stencil on HBM — the NERO-style application study.

The paper's related work motivates HBM FPGAs with NERO, a near-HBM
stencil accelerator for weather prediction.  This example applies the
full methodology to that workload class:

1. run a 5-point horizontal-diffusion sweep functionally (validated
   against numpy) with the grid stored in interleaved HBM,
2. measure the stencil's 1:1 read/write stream on both interconnects,
3. place the design on the Roofline and predict the sweep time — then
   check the prediction against the measured bandwidth.

Stencils have OpI = 1.25 OPS/B, far below any matmul, so *nothing* but
effective memory bandwidth matters: the MAO speeds the whole application
up by the full bandwidth ratio.

Run:  python examples/stencil_weather.py [--grid 512] [--cycles 5000]
"""

import argparse

import numpy as np

from repro import make_fabric
from repro.accelerators import (StencilAccelerator, make_accelerator_sources,
                                stencil_reference, stencil_sweep)
from repro.accelerators.base import AcceleratorConfig
from repro.core.address_map import InterleavedMap
from repro.memory import HbmMemory
from repro.sim import Engine, SimConfig
from repro.types import FabricKind


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--grid", type=int, default=512)
    parser.add_argument("--cycles", type=int, default=5_000)
    args = parser.parse_args()
    n = args.grid

    # 1. Functional sweep with the grid living in HBM.
    rng = np.random.default_rng(0)
    grid = rng.normal(15.0, 8.0, size=(n, n)).astype(np.float32)  # °C field
    mem = HbmMemory(InterleavedMap())
    mem.write_array(0, grid)
    loaded = mem.read_array(0, (n, n), np.float32)
    coeffs = (0.6, 0.1, 0.1, 0.1, 0.1)
    out, stats = stencil_sweep(loaded, coeffs, iterations=2)
    ref = stencil_reference(stencil_reference(grid, coeffs), coeffs)
    assert np.allclose(out, ref, rtol=1e-5)
    mem.write_array(0, out)
    print(f"2 diffusion sweeps over a {n}x{n} float32 field: OK "
          f"(counted OpI {stats.operational_intensity:.2f} OPS/B, "
          f"{len(mem.touched_pchs())} channels hold the grid)\n")

    # 2. Measure the 1:1 stream on both interconnects.
    model = StencilAccelerator(AcceleratorConfig(p=32, matrix_n=n))
    print(f"stencil core: {model.num_pipes} pipelines, "
          f"Ccomp {model.compute_ceiling_gops:.0f} GFLOPS, OpI "
          f"{model.operational_intensity:.2f}")
    measured = {}
    for kind in (FabricKind.XLNX, FabricKind.MAO):
        fab = make_fabric(kind)
        src = make_accelerator_sources(model)
        rep = Engine(fab, src, SimConfig(cycles=args.cycles,
                                         warmup=args.cycles // 4)).run()
        measured[kind] = rep.total_gbps
        perf = model.attainable_gops(rep.total_gbps)
        sweep_ms = (model.cycle_estimate(rep.total_gbps)
                    / model.config.accel_clock_hz * 1e3)
        bound = "memory" if model.is_memory_bound(rep.total_gbps) else "compute"
        print(f"  {kind.value:>5}: {rep.total_gbps:6.1f} GB/s -> "
              f"{perf:6.1f} GFLOPS ({bound}-bound), "
              f"{sweep_ms:.3f} ms per sweep")

    ratio = measured[FabricKind.MAO] / measured[FabricKind.XLNX]
    print(f"\n-> the whole application speeds up {ratio:.1f}x with the MAO — "
          "for OpI this low,\n   effective bandwidth IS application "
          "performance, which is the paper's thesis.")


if __name__ == "__main__":
    main()
