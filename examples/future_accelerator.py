#!/usr/bin/env python3
"""The paper's future-work accelerator: linear PE-array scaling.

Sec. V's closing suggestion for accelerator A: "applying a local buffer
structure to redistribute values and scale the PE array linearly".  This
example builds that variant and answers the question the paper leaves
open — *does it beat the P=8 design the paper had to settle for?*

1. validate the broadcast dataflow functionally,
2. sweep P for both variants, with the MAO's resources included,
3. report attainable GOPS of the best configuration that fits the
   XCVU37P.

Run:  python examples/future_accelerator.py [--cycles 5000]
"""

import argparse

import numpy as np

from repro.accelerators import (AcceleratorA, AcceleratorALinear,
                                broadcast_systolic_matmul,
                                make_accelerator_sources)
from repro.accelerators.base import AcceleratorConfig
from repro.core.mao import MaoConfig, MaoVariant
from repro.resources import MaoResourceModel, XCVU37P
from repro.sim import Engine, SimConfig
from repro.types import FabricKind
from repro import make_fabric


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=5_000)
    args = parser.parse_args()

    # 1. Functional check of the broadcast dataflow.
    rng = np.random.default_rng(7)
    a = rng.integers(-128, 127, size=(256, 64), dtype=np.int8)
    b = rng.integers(-128, 127, size=(64, 128), dtype=np.int8)
    c, stats = broadcast_systolic_matmul(a, b, slice_dim=16, slices=4)
    assert np.array_equal(c, a.astype(np.int32) @ b.astype(np.int32))
    print(f"broadcast dataflow validated "
          f"(counted OpI {stats.operational_intensity:.1f} OPS/B)\n")

    # 2. Measure the memory ceiling once (both variants stream 2:1 CCS).
    model32 = AcceleratorA(AcceleratorConfig(p=32))
    fab = make_fabric(FabricKind.MAO)
    rep = Engine(fab, make_accelerator_sources(model32),
                 SimConfig(cycles=args.cycles, warmup=args.cycles // 4)).run()
    bw = rep.total_gbps
    print(f"measured MAO bandwidth: {bw:.1f} GB/s\n")

    # 3. Sweep both variants under the full resource budget.
    mao_res = MaoResourceModel().estimate(
        MaoConfig(variant=MaoVariant.PARTIAL, stages=2)).resources
    print(f"{'design':<22} {'Ccomp':>10} {'OpI':>7} {'util+MAO':>9} "
          f"{'fits':>5} {'attainable':>11}")
    best = {}
    for cls, ps in ((AcceleratorA, (4, 8, 16)),
                    (AcceleratorALinear, (4, 8, 16, 24, 32))):
        for p in ps:
            m = cls(AcceleratorConfig(p=p))
            total = m.core_resources + mao_res
            fits = XCVU37P.fits(total)
            util = XCVU37P.utilization(total)["luts"]
            perf = m.attainable_gops(bw)
            print(f"{m.name + f' P={p}':<22} {m.compute_ceiling_gops:>10,.0f} "
                  f"{m.operational_intensity:>7.1f} {util:>9.1%} "
                  f"{'yes' if fits else 'NO':>5} {perf:>9,.0f} G")
            if fits and perf > best.get("perf", 0):
                best = {"name": f"{m.name} P={p}", "perf": perf}

    print(f"\n-> best implementable design: {best['name']} at "
          f"{best['perf']:,.0f} GOPS")
    print("   The linear variant converts the quadratic area wall into a "
          "linear one and\n   overtakes the paper's P=8 pick — exactly what "
          "the future-work note predicted.")


if __name__ == "__main__":
    main()
