#!/usr/bin/env python3
"""Design-space exploration for matrix-multiplication accelerators.

Walks the full Sec. V methodology of the paper:

1. functionally validate both accelerator dataflows on real int8 data,
2. measure each accelerator's achievable memory bandwidth on both
   interconnects (its actual traffic through the cycle simulator),
3. place every (accelerator, P) configuration in a Roofline model,
4. pick the best configuration that fits the XCVU37P.

Run:  python examples/matmul_design_space.py [--cycles 6000] [--n 256]
"""

import argparse

import numpy as np

from repro.accelerators import (AcceleratorA, AcceleratorB,
                                adder_tree_matmul, build_table_v,
                                make_accelerator_sources, systolic_matmul)
from repro.accelerators.base import AcceleratorConfig
from repro.accelerators.scaling import best_feasible
from repro.roofline import Ceiling, CeilingKind, RooflineModel, render_roofline
from repro.sim import Engine, SimConfig
from repro.types import FabricKind
from repro import make_fabric


def validate_dataflows(n: int) -> None:
    print(f"Step 1 — functional validation on {n}x{n} int8 matrices:")
    rng = np.random.default_rng(42)
    a = rng.integers(-128, 127, size=(n, n), dtype=np.int8)
    b = rng.integers(-128, 127, size=(n, n), dtype=np.int8)
    reference = a.astype(np.int32) @ b.astype(np.int32)

    c_sys, stats_a = systolic_matmul(a, b, tile=64)
    assert np.array_equal(c_sys, reference)
    print(f"  systolic array : OK  (counted OpI "
          f"{stats_a.operational_intensity:.1f} OPS/B)")

    c_tree, stats_b = adder_tree_matmul(a, b)
    assert np.array_equal(c_tree, reference)
    print(f"  adder tree     : OK  (counted OpI "
          f"{stats_b.operational_intensity:.2f} OPS/B)")


def measure_bandwidths(cycles: int) -> dict:
    print("\nStep 2 — measured effective bandwidth of each dataflow:")
    measured = {}
    for name, cls in (("A", AcceleratorA), ("B", AcceleratorB)):
        model = cls(AcceleratorConfig(p=32))
        for fabric in (FabricKind.XLNX, FabricKind.MAO):
            fab = make_fabric(fabric)
            src = make_accelerator_sources(model)
            rep = Engine(fab, src,
                         SimConfig(cycles=cycles, warmup=cycles // 4)).run()
            measured[(name, fabric)] = rep.total_gbps
            print(f"  accelerator {name} on {fabric.value:>4}: "
                  f"{rep.total_gbps:7.2f} GB/s")
    return measured


def explore(measured: dict) -> None:
    print("\nStep 3 — Roofline placement (accelerator A):")
    ceilings = [
        Ceiling("Memory BW XLNX", CeilingKind.MEMORY,
                measured[("A", FabricKind.XLNX)]),
        Ceiling("Memory BW MAO", CeilingKind.MEMORY,
                measured[("A", FabricKind.MAO)]),
    ]
    points = []
    for p in (4, 8, 16, 32):
        model = AcceleratorA(AcceleratorConfig(p=p))
        ceilings.append(Ceiling(f"P{p}", CeilingKind.COMPUTE,
                                model.compute_ceiling_gops))
    roof = RooflineModel(ceilings)
    for p in (4, 8, 16, 32):
        model = AcceleratorA(AcceleratorConfig(p=p))
        points.append(roof.place(f"P{p} (MAO)",
                                 model.operational_intensity,
                                 compute=f"P{p}", memory="Memory BW MAO"))
    print(render_roofline(roof, points))

    print("\nStep 4 — the full Table V and the design choice:")
    rows = build_table_v(
        measured[("A", FabricKind.XLNX)], measured[("A", FabricKind.MAO)],
        measured[("B", FabricKind.XLNX)], measured[("B", FabricKind.MAO)])
    for r in rows:
        print("  " + r.formatted())
    best = best_feasible(rows)
    print(f"\n  -> best implementable design: {best.accelerator} with "
          f"P={best.p} ({best.su_mao:.1f}x over the P=4 baseline), exactly "
          "the paper's conclusion.")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=6_000)
    parser.add_argument("--n", type=int, default=256,
                        help="matrix size for the functional validation")
    args = parser.parse_args()
    validate_dataflows(args.n)
    measured = measure_bandwidths(args.cycles)
    explore(measured)


if __name__ == "__main__":
    main()
