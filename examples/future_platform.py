#!/usr/bin/env python3
"""What-if study: future HBM FPGAs and custom interconnect tuning.

The paper's conclusion points forward: "future FPGAs with more HBM
stacks and therefore a higher memory throughput would make it possible
to increase Ccomp even further".  Because every platform parameter here
is data, that future device is one constructor call away:

1. scale the platform to 64 pseudo-channels (four stacks) and re-run the
   adder-tree accelerator's Roofline,
2. sweep the MAO's interleave granularity (an ablation of design choice
   #2) to show why 512 B — one maximal AXI burst — is the sweet spot,
3. sweep the accelerator clock to reproduce the frequency/ratio trade-off
   of Sec. IV-A at a what-if 450 MHz.

Run:  python examples/future_platform.py [--cycles 5000]
"""

import argparse

from repro import make_fabric, gbps
from repro.accelerators import AcceleratorB
from repro.accelerators.base import AcceleratorConfig
from repro.core.mao import MaoConfig
from repro.fabric import MaoFabric
from repro.params import HbmPlatform
from repro.sim import Engine, SimConfig
from repro.traffic import make_pattern_sources
from repro.types import FabricKind, Pattern, RWRatio


def run_ccs(platform, fabric, cycles):
    src = make_pattern_sources(Pattern.CCS, platform,
                               address_map=fabric.address_map)
    cfg = SimConfig(cycles=cycles, warmup=cycles // 4)
    return Engine(fabric, src, cfg).run()


def future_device(cycles: int) -> None:
    print("Step 1 — a four-stack, 64-channel future device:")
    future = HbmPlatform(num_pch=64, pch_capacity=256 * 1024 * 1024)
    for platform, label in ((HbmPlatform(), "today (2 stacks)"),
                            (future, "future (4 stacks)")):
        fab = MaoFabric(platform)
        rep = run_ccs(platform, fab, cycles)
        peak = gbps(platform.device_peak_bytes_per_s)
        model = AcceleratorB(AcceleratorConfig(p=32))
        attainable = model.attainable_gops(rep.total_gbps)
        print(f"  {label:<18}: peak {peak:6.1f} GB/s, measured "
              f"{rep.total_gbps:6.1f} GB/s -> accelerator B @P=32 "
              f"attains {attainable:5.0f} GOPS")
    print("  -> more stacks raise the memory ceiling; B's adder trees can "
          "scale with them.\n")


def interleave_ablation(cycles: int) -> None:
    print("Step 2 — MAO interleave-granularity ablation (CCS, BL16):")
    platform = HbmPlatform()
    for gran in (512, 4096, 65536, 1 << 20):
        fab = MaoFabric(platform, config=MaoConfig(interleave_granularity=gran))
        rep = run_ccs(platform, fab, cycles)
        print(f"  granularity {gran:>8} B: {rep.total_gbps:7.1f} GB/s "
              f"({rep.active_pchs()} channels active)")
    fab = MaoFabric(platform, config=MaoConfig(interleave_enabled=False))
    rep = run_ccs(platform, fab, cycles)
    print(f"  no interleaving     : {rep.total_gbps:7.1f} GB/s "
          f"({rep.active_pchs()} channel) — the hot-spot returns")
    print("  -> coarse interleaving localizes small working sets onto few "
          "channels; disabling it reintroduces the hot-spot.\n")


def clock_sweep(cycles: int) -> None:
    print("Step 3 — frequency vs. read/write-ratio compensation (SCS):")
    for hz, rw in ((300_000_000, RWRatio(1, 0)),
                   (300_000_000, RWRatio(2, 1)),
                   (450_000_000, RWRatio(1, 0))):
        platform = HbmPlatform(accel_clock_hz=hz)
        fab = make_fabric(FabricKind.XLNX, platform)
        src = make_pattern_sources(Pattern.SCS, platform, rw=rw,
                                   address_map=fab.address_map)
        rep = Engine(fab, src,
                     SimConfig(cycles=cycles, warmup=cycles // 4)).run()
        print(f"  {hz / 1e6:3.0f} MHz @ {str(rw):>4}: "
              f"{rep.total_gbps:7.1f} GB/s")
    print("  -> a 2:1 ratio at 300 MHz matches the bandwidth of a "
          "hard-to-close 450 MHz unidirectional design (Sec. IV-A).")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=5_000)
    args = parser.parse_args()
    future_device(args.cycles)
    interleave_ablation(args.cycles)
    clock_sweep(args.cycles)


if __name__ == "__main__":
    main()
