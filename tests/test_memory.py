"""Tests for the functional HBM contents model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.address_map import ContiguousMap, InterleavedMap
from repro.errors import AddressError
from repro.memory import HbmMemory
from repro.params import DEFAULT_PLATFORM


class TestBasicReadWrite:
    def test_roundtrip_contiguous(self):
        mem = HbmMemory(ContiguousMap(DEFAULT_PLATFORM))
        data = bytes(range(256))
        mem.write(1000 * 32, data)
        assert bytes(mem.read(1000 * 32, 256)) == data

    def test_roundtrip_interleaved(self):
        mem = HbmMemory(InterleavedMap(DEFAULT_PLATFORM))
        data = bytes((i * 7) % 256 for i in range(4096))
        mem.write(12345 * 32, data)
        assert bytes(mem.read(12345 * 32, 4096)) == data

    def test_write_spanning_interleave_chunks(self):
        """A write across chunk boundaries scatters but reads back whole."""
        mem = HbmMemory(InterleavedMap(DEFAULT_PLATFORM))
        data = bytes(range(200)) * 10  # 2000 B spans 4+ chunks
        mem.write(300, data)
        assert bytes(mem.read(300, len(data))) == data
        assert len(mem.touched_pchs()) >= 4

    def test_unwritten_reads_fill(self):
        mem = HbmMemory(fill=0xAB)
        assert set(mem.read(0, 64).tolist()) == {0xAB}

    def test_out_of_range(self):
        mem = HbmMemory()
        with pytest.raises(AddressError):
            mem.read(mem.address_map.capacity - 10, 20)
        with pytest.raises(AddressError):
            mem.write(-1, b"x")
        with pytest.raises(AddressError):
            mem.read(0, -1)

    def test_lazy_allocation(self):
        mem = HbmMemory()
        assert mem.resident_bytes == 0
        mem.write(0, b"hello")
        assert mem.resident_bytes == 1 << 20

    def test_counters(self):
        mem = HbmMemory()
        mem.write(0, b"abc")
        mem.read(0, 3)
        assert mem.bytes_written == 3
        assert mem.bytes_read == 3

    def test_empty_write(self):
        mem = HbmMemory()
        mem.write(0, b"")
        assert mem.resident_bytes == 0


class TestScattering:
    def test_interleaved_spreads_large_buffer(self):
        """The MAO map physically scatters a contiguous buffer over all
        channels; the contiguous map keeps it on one."""
        imem = HbmMemory(InterleavedMap(DEFAULT_PLATFORM))
        cmem = HbmMemory(ContiguousMap(DEFAULT_PLATFORM))
        buf = np.arange(64 * 1024, dtype=np.uint8)
        imem.write(0, buf)
        cmem.write(0, buf)
        assert len(imem.touched_pchs()) == 32
        assert len(cmem.touched_pchs()) == 1

    def test_maps_same_logical_content(self):
        """Logical contents are identical regardless of physical map."""
        a = HbmMemory(InterleavedMap(DEFAULT_PLATFORM))
        b = HbmMemory(ContiguousMap(DEFAULT_PLATFORM))
        data = bytes((i * 31) % 256 for i in range(10_000))
        a.write(7777, data)
        b.write(7777, data)
        assert bytes(a.read(7777, 10_000)) == bytes(b.read(7777, 10_000))


class TestArrays:
    def test_array_roundtrip(self):
        mem = HbmMemory(InterleavedMap(DEFAULT_PLATFORM))
        m = np.arange(64 * 48, dtype=np.int32).reshape(64, 48)
        mem.write_array(4096, m)
        back = mem.read_array(4096, (64, 48), np.int32)
        np.testing.assert_array_equal(m, back)

    def test_int8_matrix(self):
        mem = HbmMemory(InterleavedMap(DEFAULT_PLATFORM))
        rng = np.random.default_rng(0)
        m = rng.integers(-128, 127, size=(32, 32), dtype=np.int8)
        mem.write_array(0, m)
        np.testing.assert_array_equal(mem.read_array(0, (32, 32), np.int8), m)


@given(st.integers(min_value=0, max_value=2 ** 20),
       st.binary(min_size=1, max_size=3000))
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(offset, data):
    """Anything written through the interleaved map reads back intact."""
    mem = HbmMemory(InterleavedMap(DEFAULT_PLATFORM))
    mem.write(offset, data)
    assert bytes(mem.read(offset, len(data))) == data


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=100_000),
                          st.binary(min_size=1, max_size=200)),
                min_size=1, max_size=10))
@settings(max_examples=40, deadline=None)
def test_overlapping_writes_match_reference(writes):
    """A sequence of (possibly overlapping) writes behaves like a flat
    byte array."""
    mem = HbmMemory(InterleavedMap(DEFAULT_PLATFORM))
    reference = bytearray(101_000)
    for offset, data in writes:
        mem.write(offset, data)
        reference[offset:offset + len(data)] = data
    assert bytes(mem.read(0, len(reference))) == bytes(reference)
