"""Quantitative reproduction of the paper's headline numbers.

Every assertion here corresponds to a number printed in the paper (see
DESIGN.md §4 for the index).  Tolerances are deliberately explicit: tight
where the model is calibrated (CCS/SCS anchors within a few percent),
loose where the substrate differs (CCRA unidirectional — the known
deviations are documented in EXPERIMENTS.md).

The simulations run once per module (session fixtures) at a 8k-cycle
horizon; the figures regenerated for EXPERIMENTS.md use longer runs.
"""

import pytest

import repro
from repro.sim import Engine, SimConfig
from repro.traffic import make_rotation_sources
from repro.types import FabricKind, Pattern, RWRatio, TWO_TO_ONE
from repro import make_fabric

CYCLES = 8_000


def _measure(pattern, fabric, rw=TWO_TO_ONE, outstanding=32, burst_len=16):
    return repro.quick_measure(pattern, fabric, cycles=CYCLES, rw=rw,
                               outstanding=outstanding, burst_len=burst_len)


# --- Sec. IV-A: single-channel and ratio behaviour --------------------------


class TestSectionIVAnchors:
    def test_scs_full_throughput(self):
        """Perfect SCS subdivision yields 416.7 GB/s (90.6 %)."""
        rep = _measure(Pattern.SCS, FabricKind.XLNX)
        assert rep.total_gbps == pytest.approx(416.7, rel=0.02)

    def test_scs_read_only_port_limited(self):
        """Unidirectional at 300 MHz: 32 x 9.6 GB/s."""
        rep = _measure(Pattern.SCS, FabricKind.XLNX, rw=RWRatio(1, 0))
        assert rep.total_gbps == pytest.approx(307.2, rel=0.02)

    def test_two_to_one_within_2pct_of_450mhz_reference(self):
        """Fig. 2: concurrent 2:1 reads/writes at 300 MHz lose only ~2 %
        against the 450 MHz unidirectional reference (~424 GB/s)."""
        rep = _measure(Pattern.SCS, FabricKind.XLNX)
        reference = 460.8 * (1 - 125 / 1755)  # refresh-only ceiling
        assert rep.total_gbps / reference == pytest.approx(0.98, abs=0.02)

    def test_hotspot_both_directions(self):
        """Fig. 3b: CCS hot-spot saturates at ~13 GB/s (2.8 %)."""
        rep = _measure(Pattern.CCS, FabricKind.XLNX)
        assert rep.total_gbps == pytest.approx(13.0, rel=0.05)

    def test_hotspot_unidirectional(self):
        """Reads-only or writes-only hot-spot drops to 9.6 GB/s (2.1 %)."""
        rd = _measure(Pattern.CCS, FabricKind.XLNX, rw=RWRatio(1, 0))
        wr = _measure(Pattern.CCS, FabricKind.XLNX, rw=RWRatio(0, 1))
        # The token-bucket port gate admits a start-up transient that a
        # short horizon does not fully amortize; longer runs converge.
        assert rd.total_gbps == pytest.approx(9.6, rel=0.06)
        assert wr.total_gbps == pytest.approx(9.6, rel=0.06)

    def test_burst_length_one_penalty(self):
        """Fig. 3: BL1 performs significantly worse; BL2 recovers ~50 %
        for unidirectional single-channel streams (measured with enough
        outstanding transactions to cover the round trip)."""
        bl1 = _measure(Pattern.SCS, FabricKind.XLNX, rw=RWRatio(1, 0),
                       burst_len=1, outstanding=64)
        bl2 = _measure(Pattern.SCS, FabricKind.XLNX, rw=RWRatio(1, 0),
                       burst_len=2, outstanding=64)
        gain = bl2.total_gbps / bl1.total_gbps - 1.0
        assert 0.3 <= gain <= 0.8

    def test_burst_length_two_almost_maximizes_strided(self):
        """Fig. 3a: BL2 almost maximizes unidirectional strided access."""
        bl2 = _measure(Pattern.SCS, FabricKind.XLNX, rw=RWRatio(1, 0),
                       burst_len=2, outstanding=64)
        bl16 = _measure(Pattern.SCS, FabricKind.XLNX, rw=RWRatio(1, 0),
                        burst_len=16, outstanding=64)
        assert bl2.total_gbps > 0.85 * bl16.total_gbps

    def test_ccra_exceeds_single_channel_by_5x(self):
        """Fig. 3d: random cross-channel traffic still reaches >5x one
        channel's maximum thanks to memory-level parallelism."""
        rep = _measure(Pattern.CCRA, FabricKind.XLNX)
        assert rep.total_gbps > 5.0 * 13.0


# --- Fig. 4: rotation / lateral buses ----------------------------------------


@pytest.fixture(scope="module")
def rotation_curve():
    results = {}
    for offset in (0, 1, 2, 4, 8):
        fab = make_fabric(FabricKind.XLNX)
        src = make_rotation_sources(offset, address_map=fab.address_map)
        rep = Engine(fab, src, SimConfig(cycles=CYCLES, warmup=2000)).run()
        results[offset] = rep.total_gbps
    return results


class TestRotation:
    def test_rot0_full(self, rotation_curve):
        assert rotation_curve[0] == pytest.approx(416.7, rel=0.02)

    def test_rot1_still_ideal(self, rotation_curve):
        assert rotation_curve[1] == pytest.approx(rotation_curve[0], rel=0.02)

    def test_rot2_paper_749(self, rotation_curve):
        rel = rotation_curve[2] / rotation_curve[0]
        assert rel == pytest.approx(0.749, abs=0.05)

    def test_rot4_paper_498(self, rotation_curve):
        rel = rotation_curve[4] / rotation_curve[0]
        assert rel == pytest.approx(0.498, abs=0.06)

    def test_rot8_saturates_at_125(self, rotation_curve):
        """4/32 = 12.5 % of the device bandwidth."""
        frac = rotation_curve[8] / 460.8
        assert frac == pytest.approx(0.125, abs=0.03)


# --- Table IV: XLNX vs MAO ----------------------------------------------------


@pytest.fixture(scope="module")
def table4():
    out = {}
    for pattern in (Pattern.CCS, Pattern.CCRA):
        for name, rw in (("RD", RWRatio(1, 0)), ("WR", RWRatio(0, 1)),
                         ("Both", TWO_TO_ONE)):
            for fabric in (FabricKind.XLNX, FabricKind.MAO):
                rep = _measure(pattern, fabric, rw=rw)
                out[(pattern.name, name, fabric.value)] = rep.total_gbps
    return out


class TestTableIV:
    def test_mao_ccs_read(self, table4):
        assert table4[("CCS", "RD", "mao")] == pytest.approx(307, rel=0.03)

    def test_mao_ccs_write(self, table4):
        assert table4[("CCS", "WR", "mao")] == pytest.approx(307, rel=0.03)

    def test_mao_ccs_both(self, table4):
        assert table4[("CCS", "Both", "mao")] == pytest.approx(414, rel=0.03)

    def test_ccs_speedup_order_30x(self, table4):
        su = table4[("CCS", "Both", "mao")] / table4[("CCS", "Both", "xlnx")]
        assert su > 25  # paper's own numbers give 414/13.0 = 31.8x

    def test_mao_ccra_both(self, table4):
        """266 GB/s (57.8 %) in the paper; the model lands within 10 %."""
        assert table4[("CCRA", "Both", "mao")] == pytest.approx(266, rel=0.10)

    def test_ccra_speedup_order_3x(self, table4):
        su = table4[("CCRA", "Both", "mao")] / table4[("CCRA", "Both", "xlnx")]
        assert 2.5 <= su <= 4.5  # paper: 3.78x

    def test_xlnx_ccra_between_hotspot_and_mao(self, table4):
        x = table4[("CCRA", "Both", "xlnx")]
        assert table4[("CCS", "Both", "xlnx")] < x < table4[("CCRA", "Both", "mao")]


# --- Table II: latency shapes ---------------------------------------------------


class TestLatencyShapes:
    def test_single_read_latency_anchor(self):
        """XLNX single CCS read ~72 accel cycles, mean over distances."""
        rep = _measure(Pattern.CCS, FabricKind.XLNX, outstanding=1,
                       burst_len=1)
        assert 45 <= rep.read_latency.mean <= 115

    def test_mao_single_write_deterministic(self):
        """MAO single write: σ ≈ 0 (paper: 32.0 ± 0.1)."""
        rep = _measure(Pattern.CCS, FabricKind.MAO, outstanding=1,
                       burst_len=1)
        assert rep.write_latency.std < 3.0

    def test_xlnx_burst_congestion_blows_up_latency(self):
        """XLNX CCS burst read latency is far above the MAO's (paper:
        3021 vs 265 cycles; our buffering model yields a ~3x contrast in
        the means and >10x in the variance)."""
        x = _measure(Pattern.CCS, FabricKind.XLNX)
        m = _measure(Pattern.CCS, FabricKind.MAO)
        assert x.read_latency.mean > 2 * m.read_latency.mean
        assert x.read_latency.std > 5 * m.read_latency.std

    def test_mao_lower_variance(self):
        x = _measure(Pattern.CCS, FabricKind.XLNX)
        m = _measure(Pattern.CCS, FabricKind.MAO)
        assert m.read_latency.std < x.read_latency.std


# --- Sec. V: accelerators --------------------------------------------------------


class TestAcceleratorMeasurements:
    def test_accelerator_a_bandwidths(self):
        """A measures ~12.55 GB/s without and ~403.75 GB/s with MAO."""
        from repro.accelerators import AcceleratorA, make_accelerator_sources
        from repro.accelerators.base import AcceleratorConfig
        model = AcceleratorA(AcceleratorConfig(p=32))
        for fabric, target, rel in ((FabricKind.XLNX, 12.55, 0.08),
                                    (FabricKind.MAO, 403.75, 0.05)):
            fab = make_fabric(fabric)
            src = make_accelerator_sources(model)
            rep = Engine(fab, src, SimConfig(cycles=CYCLES, warmup=2000)).run()
            assert rep.total_gbps == pytest.approx(target, rel=rel)

    def test_accelerator_b_bandwidths(self):
        """B measures ~9.59 GB/s without MAO; with MAO the paper reports
        273 GB/s (facc-limited) — our port model yields ~300 (documented
        deviation, same bound classification)."""
        from repro.accelerators import AcceleratorB, make_accelerator_sources
        from repro.accelerators.base import AcceleratorConfig
        model = AcceleratorB(AcceleratorConfig(p=32))
        fab = make_fabric(FabricKind.XLNX)
        rep = Engine(fab, make_accelerator_sources(model),
                     SimConfig(cycles=CYCLES, warmup=2000)).run()
        assert rep.total_gbps == pytest.approx(9.59, rel=0.10)
        fab = make_fabric(FabricKind.MAO)
        rep = Engine(fab, make_accelerator_sources(model),
                     SimConfig(cycles=CYCLES, warmup=2000)).run()
        assert 260 <= rep.total_gbps <= 320

    def test_estimates_within_paper_accuracy(self):
        """Sec. V: estimates within ~3-4 % of measured for accelerator A."""
        from repro.accelerators import AcceleratorA, make_accelerator_sources
        from repro.accelerators.base import AcceleratorConfig
        from repro.core.estimator import BandwidthEstimator, EstimateInputs
        est = BandwidthEstimator()
        model = AcceleratorA(AcceleratorConfig(p=32))
        for fabric in (FabricKind.XLNX, FabricKind.MAO):
            predicted = est.estimate(EstimateInputs(
                fabric=fabric, pattern=Pattern.CCS,
                rw=model.rw_ratio)).total_gbps
            fab = make_fabric(fabric)
            rep = Engine(fab, make_accelerator_sources(model),
                         SimConfig(cycles=CYCLES, warmup=2000)).run()
            assert rep.total_gbps == pytest.approx(predicted, rel=0.06)

    def test_p8_bandwidth_116(self):
        """Paper: the P=8 configuration reaches ~116 GB/s with MAO."""
        from repro.accelerators import AcceleratorA, make_accelerator_sources
        from repro.accelerators.base import AcceleratorConfig
        model = AcceleratorA(AcceleratorConfig(p=8))
        fab = make_fabric(FabricKind.MAO)
        rep = Engine(fab, make_accelerator_sources(model),
                     SimConfig(cycles=CYCLES, warmup=2000)).run()
        assert rep.total_gbps == pytest.approx(116, rel=0.06)
