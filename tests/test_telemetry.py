"""Tests for the telemetry subsystem: probes, sampler, exporters,
bottleneck analysis, provenance manifests, and the profile harness.

The load-bearing property is the differential one: attaching the
sampler — on either engine loop — must leave the simulation report
bit-identical to an unobserved run.  Telemetry is a pure observer.
"""

from __future__ import annotations

import json

import pytest

from repro.fabric import IdealFabric, MaoFabric, SegmentedFabric
from repro.params import DEFAULT_PLATFORM
from repro.sim import Engine, SimConfig, TraceRecorder
from repro.telemetry import (
    COUNTER, GAUGE, Log2Histogram, Probe, ProbeSet, Telemetry,
    build_manifest, chrome_trace, validate_chrome_trace, write_manifest,
    analyze, bottleneck_report, format_report, MANIFEST_SCHEMA,
)
from repro.traffic import make_pattern_sources
from repro.types import Pattern, READ_ONLY, TWO_TO_ONE

FABRICS = {
    "xlnx": SegmentedFabric,
    "mao": MaoFabric,
    "ideal": IdealFabric,
}

#: fabric x pattern grid for the pure-observer differential tests.
GRID = [
    ("xlnx", Pattern.SCS, TWO_TO_ONE),
    ("xlnx", Pattern.CCS, TWO_TO_ONE),
    ("mao", Pattern.CCRA, TWO_TO_ONE),
    ("mao", Pattern.CCS, READ_ONLY),
    ("ideal", Pattern.SCS, TWO_TO_ONE),
]


def _run(small_platform, fabric_key, pattern, rw, *, telemetry,
         fast_path=True, cycles=1200, interval=64, outstanding=32,
         engine=None):
    fabric = FABRICS[fabric_key](small_platform)
    sources = make_pattern_sources(pattern, small_platform, burst_len=8,
                                   rw=rw, address_map=fabric.address_map)
    cfg = SimConfig(cycles=cycles, warmup=300, fast_path=fast_path,
                    outstanding=outstanding, engine=engine or "",
                    telemetry=telemetry, telemetry_interval=interval)
    engine_ = Engine(fabric, sources, cfg)
    return engine_, engine_.run()


# -- metrics primitives ------------------------------------------------------


class TestLog2Histogram:
    def test_bucketing(self):
        h = Log2Histogram()
        for v in (0, 1, 2, 3, 4, 1000):
            h.add(v)
        assert h.total == 6
        buckets = {lo: c for lo, _hi, c in h.nonzero()}
        assert buckets[0] == 1          # value 0
        assert buckets[1] == 1          # value 1
        assert buckets[2] == 2          # values 2, 3
        assert buckets[4] == 1          # value 4
        assert sum(buckets.values()) == 6

    def test_as_dict_round_trips_json(self):
        h = Log2Histogram()
        h.add(5)
        json.dumps(h.as_dict(), allow_nan=False)

    def test_empty(self):
        h = Log2Histogram()
        assert h.total == 0
        assert h.nonzero() == []


class TestProbeSet:
    def test_duplicate_names_rejected(self):
        ps = ProbeSet()
        ps.add(Probe("a.x", COUNTER, lambda: 0, "dram"))
        with pytest.raises(ValueError, match="a.x"):
            ps.add(Probe("a.x", GAUGE, lambda: 0, "dram"))

    def test_order_preserved(self):
        ps = ProbeSet()
        ps.extend([Probe("b", COUNTER, lambda: 0, "x"),
                   Probe("a", GAUGE, lambda: 0, "x")])
        assert [p.name for p in ps] == ["b", "a"]
        assert len(ps) == 2


# -- sampler -----------------------------------------------------------------


class TestSampler:
    def test_attach_twice_raises(self, small_platform):
        engine, _ = _run(small_platform, "ideal", Pattern.SCS, TWO_TO_ONE,
                         telemetry=True, cycles=400)
        tele = engine.telemetry
        assert tele is not None
        other_engine, _ = _run(small_platform, "ideal", Pattern.SCS,
                               TWO_TO_ONE, telemetry=False, cycles=400)
        with pytest.raises(RuntimeError):
            tele.attach(other_engine)

    def test_series_and_finals(self, small_platform):
        engine, report = _run(small_platform, "xlnx", Pattern.SCS,
                              TWO_TO_ONE, telemetry=True)
        tele = engine.telemetry
        assert tele.num_samples > 2
        # Counters are monotone; the final sample matches the finals() map.
        for p in range(small_platform.num_pch):
            values = [v for _c, v in tele.series(f"dram.pch{p}.beats")]
            assert all(b >= a for a, b in zip(values, values[1:]))
            assert values[-1] == tele.finals()[f"dram.pch{p}.beats"]
        # The DRAM beat totals agree with the report's byte counters.
        beats = sum(tele.final_value(f"dram.pch{p}.beats")
                    for p in range(small_platform.num_pch))
        assert beats * small_platform.bytes_per_beat >= (
            report.read_bytes + report.write_bytes)

    def test_gauges_have_histograms_counters_do_not(self, small_platform):
        engine, _ = _run(small_platform, "xlnx", Pattern.SCS, TWO_TO_ONE,
                         telemetry=True)
        tele = engine.telemetry
        hist = tele.histogram("master[0].credits_in_use")
        assert hist.total == tele.num_samples
        with pytest.raises(KeyError):
            tele.histogram("dram.pch0.beats")  # counter: no distribution

    def test_fast_path_jumps_recorded(self, small_platform):
        # outstanding=1: each master waits out a full round trip between
        # issues, leaving quiescent stretches the fast path jumps over.
        engine, _ = _run(small_platform, "ideal", Pattern.SCRA, READ_ONLY,
                         telemetry=True, outstanding=1)
        tele = engine.telemetry
        assert tele.jumps
        assert tele.skipped_cycles() == sum(
            t - c - 1 for c, t in tele.jumps)
        assert tele.skipped_cycles() > 0

    def test_sample_idempotent_per_cycle(self, small_platform):
        engine, _ = _run(small_platform, "ideal", Pattern.SCS, TWO_TO_ONE,
                         telemetry=True, cycles=400)
        tele = engine.telemetry
        n = tele.num_samples
        tele.sample(tele.sample_cycles[-1])  # same cycle: no-op
        assert tele.num_samples == n


# -- the pure-observer guarantee ---------------------------------------------


@pytest.mark.parametrize("fabric_key,pattern,rw", GRID,
                         ids=[f"{f}-{p.name}-{r.reads}to{r.writes}"
                              for f, p, r in GRID])
def test_telemetry_is_a_pure_observer(small_platform, fabric_key, pattern,
                                      rw):
    """Reports are bit-identical with telemetry on vs. off, on the fast
    path — sampling must never perturb the simulation."""
    _, plain = _run(small_platform, fabric_key, pattern, rw, telemetry=False)
    _, observed = _run(small_platform, fabric_key, pattern, rw,
                       telemetry=True)
    assert plain == observed


def test_pure_observer_on_jumpy_workload(small_platform):
    """The event-horizon hook runs inside the fast path's jump branch —
    it too must not perturb the simulation."""
    _, plain = _run(small_platform, "ideal", Pattern.SCRA, READ_ONLY,
                    telemetry=False, outstanding=1)
    engine, observed = _run(small_platform, "ideal", Pattern.SCRA,
                            READ_ONLY, telemetry=True, outstanding=1)
    assert engine.telemetry.jumps
    assert plain == observed


def test_telemetry_identical_across_engine_loops(small_platform):
    """When the fast path never jumps, both loops drive the sampler
    through the same cycle schedule, so the full sampled series agree.
    (With jumps, the fast path's extra event-horizon snapshots shift the
    schedule — only the final counter totals are loop-invariant; see the
    saturated-pattern precondition below.)"""
    e_fast, r_fast = _run(small_platform, "xlnx", Pattern.CCS, TWO_TO_ONE,
                          telemetry=True, fast_path=True)
    e_legacy, r_legacy = _run(small_platform, "xlnx", Pattern.CCS,
                              TWO_TO_ONE, telemetry=True, fast_path=False)
    assert r_fast == r_legacy
    tf, tl = e_fast.telemetry, e_legacy.telemetry
    assert tf.jumps == []  # saturated crossing pattern: never quiescent
    assert tf.sample_cycles == tl.sample_cycles
    assert tf.finals() == tl.finals()
    for probe in tf.probes:
        assert tf.series(probe.name) == tl.series(probe.name), probe.name


def test_telemetry_finals_loop_invariant_despite_jumps(small_platform):
    """On a workload where the fast path does jump, the sampling
    schedules differ but every final counter total must still agree —
    the totals are simulation state, not sampling artifacts."""
    e_fast, r_fast = _run(small_platform, "ideal", Pattern.SCRA, READ_ONLY,
                          telemetry=True, outstanding=1)
    e_legacy, r_legacy = _run(small_platform, "ideal", Pattern.SCRA,
                              READ_ONLY, telemetry=True, fast_path=False,
                              outstanding=1)
    assert r_fast == r_legacy
    tf, tl = e_fast.telemetry, e_legacy.telemetry
    assert tf.jumps and not tl.jumps
    finals_f, finals_l = tf.finals(), tl.finals()
    for probe in tf.probes:
        if probe.kind == COUNTER:
            assert finals_f[probe.name] == finals_l[probe.name], probe.name


@pytest.mark.parametrize("engine", ["legacy", "fast", "vector"])
def test_non_dividing_interval_is_still_pure(small_platform, engine):
    """Latent gap: with a sampling interval that does *not* divide the
    engines' jump lengths (97 is prime), the next scheduled sample falls
    mid-jump and must be realigned, not simulated — telemetry stays a
    pure observer on every tier, and the report is bit-identical to the
    telemetry-off run of the same tier."""
    _, plain = _run(small_platform, "ideal", Pattern.SCRA, READ_ONLY,
                    telemetry=False, outstanding=1, interval=97,
                    engine=engine)
    eng, observed = _run(small_platform, "ideal", Pattern.SCRA, READ_ONLY,
                         telemetry=True, outstanding=1, interval=97,
                         engine=engine)
    assert plain == observed
    if engine != "legacy":
        assert eng.telemetry.jumps  # the interval was actually exercised
        assert any(c % 97 != 0 for c in eng.telemetry.sample_cycles)


@pytest.mark.parametrize("engine", ["legacy", "fast", "vector"])
def test_non_dividing_interval_reports_identical_across_engines(
        small_platform, engine):
    """And across tiers: the non-dividing interval must not open a gap
    between any engine's report and the legacy oracle's."""
    _, report = _run(small_platform, "ideal", Pattern.SCRA, READ_ONLY,
                     telemetry=True, outstanding=1, interval=97,
                     engine=engine)
    _, oracle = _run(small_platform, "ideal", Pattern.SCRA, READ_ONLY,
                     telemetry=True, outstanding=1, interval=97,
                     engine="legacy")
    assert report == oracle


# -- exporters ---------------------------------------------------------------


class TestChromeTrace:
    def _trace(self, small_platform):
        fabric = SegmentedFabric(small_platform)
        sources = make_pattern_sources(Pattern.SCS, small_platform,
                                       burst_len=8,
                                       address_map=fabric.address_map)
        cfg = SimConfig(cycles=1200, warmup=300, telemetry=True,
                        telemetry_interval=64)
        rec = TraceRecorder(small_platform)
        engine = Engine(fabric, sources, cfg, observers=[rec])
        engine.run()
        engine.drain()
        return chrome_trace(recorder=rec, telemetry=engine.telemetry,
                            platform=small_platform)

    def test_schema_valid_and_json_serializable(self, small_platform):
        trace = self._trace(small_platform)
        assert validate_chrome_trace(trace) == []
        text = json.dumps(trace, allow_nan=False)
        assert json.loads(text)["traceEvents"]

    def test_contains_slices_counters_metadata(self, small_platform):
        events = self._trace(small_platform)["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"X", "C", "M"} <= phases
        xs = [e for e in events if e["ph"] == "X"]
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in xs)

    def test_validator_catches_garbage(self):
        assert validate_chrome_trace({"nope": 1})
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "Z", "name": "x", "pid": 1}]})


# -- bottleneck analysis -----------------------------------------------------


class TestBottleneck:
    def test_requires_samples(self):
        tele = Telemetry(interval=64)
        with pytest.raises(ValueError):
            analyze(tele, DEFAULT_PLATFORM, 1000, 100.0)

    def test_analysis_on_real_run(self, small_platform):
        engine, report = _run(small_platform, "xlnx", Pattern.SCS,
                              TWO_TO_ONE, telemetry=True, cycles=2000)
        analysis = analyze(engine.telemetry, small_platform, report.cycles,
                           report.total_gbps)
        assert analysis.components  # something was active
        assert analysis.components == sorted(
            analysis.components, key=lambda c: (-c.utilization, c.name))
        if analysis.attribution:
            assert sum(analysis.attribution.values()) == pytest.approx(1.0)
        text = format_report(analysis)
        assert "verdict" in text and "GB/s" in text

    def test_report_convenience_wrapper(self, small_platform):
        engine, report = _run(small_platform, "mao", Pattern.CCRA,
                              TWO_TO_ONE, telemetry=True, cycles=2000)
        text = bottleneck_report(engine.telemetry, report)
        assert "achieved" in text


# -- provenance manifest -----------------------------------------------------


class TestManifest:
    def test_deterministic_bytes(self, tmp_path, small_platform):
        cfg = SimConfig(cycles=500, warmup=100, telemetry=True)
        m1 = build_manifest("fig2", small_platform, cfg, seed=3,
                            cache_hits=1, cache_misses=2)
        m2 = build_manifest("fig2", small_platform, cfg, seed=3,
                            cache_hits=1, cache_misses=2)
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        write_manifest(str(p1), m1)
        write_manifest(str(p2), m2)
        assert p1.read_bytes() == p2.read_bytes()

    def test_no_wall_clock_and_schema(self, small_platform):
        cfg = SimConfig(cycles=500, warmup=100)
        m = build_manifest("fig3", small_platform, cfg)
        assert m["schema"] == MANIFEST_SCHEMA
        assert not any("time" in k or "date" in k for k in m)
        assert m["engine_path"] in ("fast", "legacy")
        json.dumps(m, allow_nan=False)


# -- profile harness ---------------------------------------------------------


class TestProfileExperiment:
    def test_profile_fig2_end_to_end(self, tmp_path):
        from repro.telemetry.profile import profile_experiment

        trace_path = tmp_path / "trace.json"
        manifest_path = tmp_path / "manifest.json"
        result = profile_experiment("fig2", cycles=1500,
                                    trace_out=str(trace_path),
                                    manifest_out=str(manifest_path))
        assert "verdict" in result.summary
        # The written trace is loadable, schema-valid Perfetto JSON.
        trace = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace) == []
        manifest = json.loads(manifest_path.read_text())
        assert manifest["experiment"] == "fig2"
        assert manifest["samples"] == result.telemetry.num_samples

    def test_unknown_experiment_rejected(self):
        from repro.errors import ConfigError
        from repro.telemetry.profile import profile_experiment

        with pytest.raises(ConfigError):
            profile_experiment("table3")
