"""Tests for the fault-injection, watchdog, and degradation subsystem.

Covers the four layers of :mod:`repro.faults` — plans, injection, the
detection watchdogs, and recovery (retry + degradation) — plus the chaos
harness, at both unit level and through full engine runs on the small
8-PCH platform.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import (ConfigError, DeadlockError, ObserverError,
                          TransactionTimeout)
from repro.faults import (FaultEvent, FaultKind, FaultPlan, ProgressWatchdog,
                          SecdedModel, TransactionWatchdog, build_remap,
                          BEAT_CLEAN, BEAT_CORRECTED, BEAT_UNCORRECTABLE,
                          DegradedMap)
from repro.faults.chaos import SCENARIOS, format_report, run_scenario
from repro.fabric import IdealFabric, MaoFabric, SegmentedFabric
from repro.params import HbmPlatform
from repro.sim import Engine, SimConfig, TraceRecorder
from repro.traffic import make_pattern_sources
from repro.types import FabricKind, Pattern

SMALL = HbmPlatform(num_pch=8, pch_capacity=64 * 1024 * 1024)

FABRICS = {"xlnx": SegmentedFabric, "mao": MaoFabric, "ideal": IdealFabric}


def _engine(fabric_key="xlnx", pattern=Pattern.SCS, faults=None,
            cycles=1500, warmup=300, **cfg_kw):
    fabric = FABRICS[fabric_key](SMALL)
    sources = make_pattern_sources(pattern, SMALL, burst_len=8,
                                   address_map=fabric.address_map)
    cfg = SimConfig(cycles=cycles, warmup=warmup, **cfg_kw)
    return Engine(fabric, sources, cfg, faults=faults)


def _offline_plan(at=500, pch=2, degrade=True):
    return FaultPlan([FaultEvent(FaultKind.PCH_OFFLINE, at=at, pch=pch)],
                     degrade=degrade)


# -- plans -------------------------------------------------------------------


class TestFaultPlan:
    def test_event_validation(self):
        with pytest.raises(ConfigError):
            FaultEvent(FaultKind.PCH_OFFLINE, at=-1, pch=0)
        with pytest.raises(ConfigError):
            FaultEvent(FaultKind.PCH_OFFLINE, at=10)  # no target pch
        with pytest.raises(ConfigError):
            FaultEvent(FaultKind.PCH_SLOW, at=10, pch=0, duration=0)
        with pytest.raises(ConfigError):
            FaultEvent(FaultKind.PCH_SLOW, at=10, pch=0, duration=5,
                       factor=1.0)
        with pytest.raises(ConfigError):
            FaultEvent(FaultKind.DATA_CORRUPT, at=10, duration=5, rate=0.0)
        with pytest.raises(ConfigError):
            FaultEvent(FaultKind.DATA_CORRUPT, at=10, duration=5, rate=1.5)

    def test_plan_sorts_events_and_is_hashable(self):
        late = FaultEvent(FaultKind.PCH_OFFLINE, at=900, pch=1)
        early = FaultEvent(FaultKind.LINK_STALL, at=100, duration=50)
        plan = FaultPlan([late, early])
        assert [e.at for e in plan.events] == [100, 900]
        assert hash(plan) == hash(FaultPlan([early, late]))

    def test_bool_and_offline_pchs(self):
        assert not FaultPlan()
        plan = _offline_plan(pch=3)
        assert plan
        assert plan.offline_pchs == [3]

    def test_describe(self):
        text = _offline_plan().describe()
        assert "pch-offline" in text and "@500" in text
        assert FaultPlan().describe() == "(no faults)"

    def test_dbit_fraction_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan(dbit_fraction=1.5)


# -- SECDED model ------------------------------------------------------------


class TestSecded:
    def test_deterministic_and_seed_sensitive(self):
        a = SecdedModel(seed=1)
        b = SecdedModel(seed=1)
        seq = [a.classify_beat(2, i, 0.5) for i in range(200)]
        assert seq == [b.classify_beat(2, i, 0.5) for i in range(200)]
        c = SecdedModel(seed=2)
        assert seq != [c.classify_beat(2, i, 0.5) for i in range(200)]

    def test_rate_extremes(self):
        m = SecdedModel(seed=0, dbit_fraction=0.0)
        assert all(m.classify_beat(0, i, 1.0) == BEAT_CORRECTED
                   for i in range(50))
        everything = SecdedModel(seed=0, dbit_fraction=1.0)
        assert all(everything.classify_beat(0, i, 1.0) == BEAT_UNCORRECTABLE
                   for i in range(50))

    def test_low_rate_mostly_clean(self):
        m = SecdedModel(seed=3)
        outcomes = [m.classify_beat(1, i, 0.01) for i in range(2000)]
        assert outcomes.count(BEAT_CLEAN) > 1900

    def test_classify_burst_counts(self):
        m = SecdedModel(seed=5, dbit_fraction=0.5)
        corrected, uncorrectable = m.classify_burst(0, 0, 256, 1.0)
        assert corrected + uncorrectable == 256
        assert corrected > 0 and uncorrectable > 0


# -- degradation remap -------------------------------------------------------


class TestDegrade:
    def test_remap_spreads_round_robin(self):
        table = build_remap(8, [2, 5])
        survivors = [p for p in range(8) if p not in (2, 5)]
        assert [table[p] for p in survivors] == survivors
        assert table[2] in survivors and table[5] in survivors
        assert table[2] != table[5]  # round-robin, not pile-up

    def test_remap_validation(self):
        with pytest.raises(ConfigError):
            build_remap(8, [9])
        with pytest.raises(ConfigError):
            build_remap(2, [0, 1])  # nobody left

    def test_degraded_map_wraps_base(self):
        from repro.core.address_map import ContiguousMap
        base = ContiguousMap(SMALL)
        dmap = DegradedMap(base, dead=[0])
        addr = 10  # lives on pch 0 under the contiguous map
        assert base.pch_of(addr) == 0
        assert dmap.pch_of(addr) != 0
        assert dmap.local_of(addr) == base.local_of(addr)
        with pytest.raises(ConfigError):
            dmap.global_of(0, 0)


# -- watchdogs (unit) --------------------------------------------------------


class _FakeTxn:
    def __init__(self, uid):
        self.uid = uid
        self.issue_cycle = 0
        self.pch = 0

    def __repr__(self):
        return f"txn#{self.uid}"


class TestWatchdogs:
    def test_txn_watchdog_trips_after_timeout(self):
        dog = TransactionWatchdog(100)
        txn = _FakeTxn(1)
        dog.note_issue(txn, 10)
        dog.check(109)  # one short of the deadline
        with pytest.raises(TransactionTimeout):
            dog.check(110)

    def test_txn_watchdog_disarms_on_done(self):
        dog = TransactionWatchdog(100)
        txn = _FakeTxn(1)
        dog.note_issue(txn, 10)
        dog.note_done(txn)
        dog.check(10_000)  # nothing armed, nothing raised
        assert dog.next_deadline() == math.inf
        assert dog.watched == 0

    def test_txn_watchdog_rearms_on_retry(self):
        dog = TransactionWatchdog(100)
        txn = _FakeTxn(1)
        dog.note_issue(txn, 10)
        dog.note_done(txn)           # NACK path disarms ...
        dog.note_issue(txn, 500)     # ... resubmit re-arms
        assert dog.next_deadline() == 600
        with pytest.raises(TransactionTimeout):
            dog.check(600)

    def test_progress_watchdog_distinguishes_quiescence(self):
        dog = ProgressWatchdog(200)
        dog.note_progress(50)
        dog.check(1_000, in_flight=0)  # quiescent: fine forever
        with pytest.raises(DeadlockError):
            dog.check(250, in_flight=3)


# -- engine integration ------------------------------------------------------


class TestFaultRuns:
    def test_offline_with_degradation_recovers(self):
        engine = _engine(faults=_offline_plan(), txn_timeout_cycles=3000,
                         progress_timeout_cycles=3000)
        report = engine.run()
        engine.drain()
        assert report.dead_pchs == [2]
        assert report.unrecoverable == 0
        assert report.retries > 0 and report.nacks > 0
        assert report.total_gbps > 0
        assert report.completed <= report.issued
        # Quiescent after drain: every NACKed transaction was re-served.
        assert all(mp.outstanding == 0 for mp in engine.masters)
        assert all(mp.unrecoverable == 0 for mp in engine.masters)

    def test_offline_without_degradation_times_out(self):
        engine = _engine(faults=_offline_plan(degrade=False),
                         txn_timeout_cycles=600, retry_backoff_cap=256)
        with pytest.raises(TransactionTimeout):
            engine.run()
            engine.drain()

    @pytest.mark.parametrize("fabric_key", sorted(FABRICS))
    def test_offline_recovers_on_every_fabric(self, fabric_key):
        engine = _engine(fabric_key, faults=_offline_plan(),
                         txn_timeout_cycles=3000)
        report = engine.run()
        engine.drain()
        assert report.dead_pchs == [2]
        assert report.unrecoverable == 0
        assert all(mp.outstanding == 0 for mp in engine.masters)

    def test_slow_channel_costs_bandwidth(self):
        plan = FaultPlan([FaultEvent(FaultKind.PCH_SLOW, at=400, pch=1,
                                     duration=800, factor=8.0)])
        healthy = _engine().run()
        faulted = _engine(faults=plan).run()
        assert faulted.total_gbps < healthy.total_gbps

    def test_data_corruption_counted_and_retried(self):
        plan = FaultPlan([FaultEvent(FaultKind.DATA_CORRUPT, at=400,
                                     duration=600, rate=0.05)],
                         seed=11, dbit_fraction=0.3)
        engine = _engine(faults=plan)
        report = engine.run()
        engine.drain()
        assert report.ecc_corrected > 0
        assert report.ecc_uncorrectable > 0
        # Every poisoned read was retried and eventually served cleanly.
        # (Counted on the masters: drain-time retries postdate the report
        # snapshot.  Beats-vs-transactions: a burst may carry several
        # uncorrectable beats but bounces as one NACK, so the retry count
        # is positive but bounded by the beat count, not equal to it.)
        retries = sum(mp.retries for mp in engine.masters)
        assert 0 < retries <= report.ecc_uncorrectable
        assert sum(mp.nacks for mp in engine.masters) == retries
        assert report.unrecoverable == 0
        assert all(mp.unrecoverable == 0 for mp in engine.masters)
        assert all(mp.outstanding == 0 for mp in engine.masters)

    def test_link_stall_cut_validated(self):
        # SMALL has 2 switches -> exactly one lateral cut (index 0).
        plan = FaultPlan([FaultEvent(FaultKind.LINK_STALL, at=100, cut=5,
                                     duration=50)])
        with pytest.raises(ConfigError):
            _engine("xlnx", faults=plan).run()

    def test_fault_runs_deterministic(self):
        plan = FaultPlan([
            FaultEvent(FaultKind.PCH_OFFLINE, at=600, pch=4),
            FaultEvent(FaultKind.DATA_CORRUPT, at=350, duration=400,
                       rate=0.03),
        ], seed=9)
        a = _engine("mao", faults=plan, txn_timeout_cycles=3000).run()
        b = _engine("mao", faults=plan, txn_timeout_cycles=3000).run()
        assert a == b  # full dataclass equality, floats included

    def test_trace_shows_each_attempt_exactly_once(self):
        rec = TraceRecorder(SMALL)
        engine = _engine(faults=_offline_plan(), txn_timeout_cycles=3000)
        engine.observers.append(rec)
        engine.run()
        engine.drain()
        uid_i, status_i, attempt_i = 0, 10, 11
        rows = [tuple(r) for r in rec.as_array().tolist()]
        # (uid, attempt) pairs are unique: no attempt recorded twice.
        pairs = [(r[uid_i], r[attempt_i]) for r in rows]
        assert len(pairs) == len(set(pairs))
        retried = {r[uid_i] for r in rows if r[attempt_i] > 0}
        assert retried, "scenario produced no retries"
        for uid in list(retried)[:20]:
            attempts = sorted(r[attempt_i] for r in rows if r[uid_i] == uid)
            # Contiguous attempt ordinals starting at 0 ...
            assert attempts == list(range(len(attempts)))
            final = [r for r in rows if r[uid_i] == uid
                     and r[attempt_i] == attempts[-1]]
            # ... and only the last attempt completed cleanly.
            assert final[0][status_i] == 0
            assert all(r[status_i] != 0 for r in rows if r[uid_i] == uid
                       and r[attempt_i] < attempts[-1])


# -- observer error surfacing ------------------------------------------------


class _ExplodingObserver:
    def __init__(self, after=5):
        self.seen = 0
        self.after = after

    def on_complete(self, txn, cycle):
        self.seen += 1
        if self.seen >= self.after:
            raise ValueError("boom")


class TestObserverErrors:
    @pytest.mark.parametrize("fast", [True, False], ids=["fast", "legacy"])
    def test_raising_observer_surfaces_typed_error(self, fast):
        engine = _engine(cycles=800, warmup=100, fast_path=fast)
        engine.observers.append(_ExplodingObserver())
        with pytest.raises(ObserverError, match="boom"):
            engine.run()
        # Accounting survived: the engine counted the batch before
        # observers ran, so conservation still holds.
        issued = sum(mp.issued for mp in engine.masters)
        completed = sum(mp.completed for mp in engine.masters)
        outstanding = sum(mp.outstanding for mp in engine.masters)
        assert completed <= issued
        assert outstanding == issued - completed


# -- chaos harness -----------------------------------------------------------


class TestChaos:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError, match="unknown chaos scenario"):
            run_scenario("meteor-strike", platform=SMALL, cycles=600)

    def test_pch_offline_scenario_recovers(self):
        r = run_scenario("pch-offline", fabric=FabricKind.MAO,
                         cycles=1200, platform=SMALL)
        assert r.completed
        assert r.dead_pchs == (2,)
        assert r.unrecoverable == 0
        assert r.retries > 0
        assert 0.5 < r.retained <= 1.01

    def test_strict_scenario_trips_watchdog(self):
        r = run_scenario("pch-offline-strict", fabric=FabricKind.MAO,
                         cycles=1200, platform=SMALL)
        assert not r.completed
        assert r.outcome == "TransactionTimeout"

    def test_format_report_renders_all_scenarios(self):
        results = [run_scenario(k, fabric=FabricKind.MAO, cycles=600,
                                platform=SMALL)
                   for k in sorted(SCENARIOS)]
        text = format_report(results)
        for key in SCENARIOS:
            assert f"'{key}'" in text
        assert "retained" in text


# -- config plumbing ---------------------------------------------------------


class TestResilienceConfig:
    def test_timeout_validation(self):
        with pytest.raises(ConfigError):
            SimConfig(txn_timeout_cycles=0)
        with pytest.raises(ConfigError):
            SimConfig(progress_timeout_cycles=-5)
        with pytest.raises(ConfigError):
            SimConfig(max_retries=-1)
        with pytest.raises(ConfigError):
            SimConfig(retry_backoff_cycles=0)
        with pytest.raises(ConfigError):
            SimConfig(retry_backoff_cycles=64, retry_backoff_cap=32)

    def test_backoff_cap_must_fit_watchdog_window(self):
        """A retry parked past the watchdog deadline is a silent hang
        disguised as a timeout; the config rejects the combination."""
        with pytest.raises(ConfigError, match="retry_backoff_cap"):
            SimConfig(txn_timeout_cycles=600)  # default cap is 1024
        with pytest.raises(ConfigError, match="retry_backoff_cap"):
            SimConfig(txn_timeout_cycles=1024, retry_backoff_cap=1024)
        # Equal-or-below cap with headroom is fine.
        cfg = SimConfig(txn_timeout_cycles=2048, retry_backoff_cap=1024)
        assert cfg.retry_backoff_cap < cfg.txn_timeout_cycles

    def test_retry_knobs_reach_masters(self):
        engine = _engine(max_retries=3, retry_backoff_cycles=32,
                         retry_backoff_cap=256)
        for mp in engine.masters:
            assert mp.max_retries == 3
            assert mp.backoff_base == 32
            assert mp.backoff_cap == 256

    def test_healthy_run_with_watchdogs_is_unchanged(self):
        plain = _engine().run()
        guarded = _engine(txn_timeout_cycles=5000,
                          progress_timeout_cycles=5000).run()
        assert plain == guarded
