"""Interrupted-then-resumed fuzz campaigns must be bit-identical.

The contract under test (the PR's acceptance criterion): a campaign
stopped mid-run — operator interrupt or wall-clock deadline — and then
resumed from its journal produces a :class:`CampaignReport` equal to an
uninterrupted run's, re-simulating only the unfinished cases.
"""

from __future__ import annotations

import json

import pytest

from repro.conformance.driver import (CampaignReport, campaign_cases,
                                      case_digest, run_campaign)
from repro.errors import ConfigError

BUDGET = 10


def _fingerprint(report: CampaignReport):
    """Everything observable about a campaign, in comparable form."""
    return (
        report.seed, report.budget, report.summary(),
        [(r.skipped, r.total_gbps, [(f.kind, f.detail) for f in r.failures])
         for r in report.results],
    )


def _interrupted_campaign(journal_path: str, stop_after: int):
    completed = []

    def should_stop():
        return len(completed) >= stop_after

    return run_campaign(
        BUDGET, seed=0, minimize=False, journal_path=journal_path,
        progress=completed.append, should_stop=should_stop)


class TestResume:
    def test_resumed_report_bit_identical_to_clean_run(self, tmp_path):
        journal = str(tmp_path / "fuzz.jsonl")
        clean = run_campaign(BUDGET, seed=0, minimize=False)

        partial = _interrupted_campaign(journal, stop_after=4)
        assert partial.interrupted
        assert len(partial.results) == 4
        assert partial.remaining == BUDGET - 4

        resumed = run_campaign(BUDGET, seed=0, minimize=False,
                               resume_from=journal)
        assert resumed.resumed == 4  # restored, not re-simulated
        assert not resumed.interrupted and resumed.remaining == 0
        assert _fingerprint(resumed) == _fingerprint(clean)

    def test_double_interruption_still_converges(self, tmp_path):
        journal = str(tmp_path / "fuzz.jsonl")
        clean = run_campaign(BUDGET, seed=0, minimize=False)
        _interrupted_campaign(journal, stop_after=3)

        completed = []
        second = run_campaign(
            BUDGET, seed=0, minimize=False, resume_from=journal,
            progress=completed.append,
            should_stop=lambda: len(completed) >= 2)
        assert second.interrupted and second.resumed == 3

        final = run_campaign(BUDGET, seed=0, minimize=False,
                             resume_from=journal)
        assert final.resumed == 5
        assert _fingerprint(final) == _fingerprint(clean)

    def test_deadline_zero_checkpoints_immediately(self, tmp_path):
        journal = str(tmp_path / "fuzz.jsonl")
        report = run_campaign(BUDGET, seed=0, minimize=False,
                              journal_path=journal, max_minutes=0.0)
        assert report.deadline_reached
        assert not report.results and report.remaining == BUDGET

        clean = run_campaign(BUDGET, seed=0, minimize=False)
        resumed = run_campaign(BUDGET, seed=0, minimize=False,
                               resume_from=journal)
        assert resumed.resumed == 0  # nothing had finished yet
        assert _fingerprint(resumed) == _fingerprint(clean)


class TestResumeSafety:
    def test_seed_mismatch_refused(self, tmp_path):
        journal = str(tmp_path / "fuzz.jsonl")
        _interrupted_campaign(journal, stop_after=2)
        with pytest.raises(ConfigError, match="seed"):
            run_campaign(BUDGET, seed=1, minimize=False, resume_from=journal)

    def test_conflicting_journal_and_resume_paths_refused(self, tmp_path):
        with pytest.raises(ConfigError, match="either journal_path"):
            run_campaign(BUDGET, seed=0,
                         journal_path=str(tmp_path / "a.jsonl"),
                         resume_from=str(tmp_path / "b.jsonl"))

    def test_unrestorable_entry_refused_not_silently_skipped(self, tmp_path):
        journal = str(tmp_path / "fuzz.jsonl")
        _interrupted_campaign(journal, stop_after=2)
        # Simulate a journal written by a drifted build: a finish record
        # whose payload no longer matches the restore schema.  The later
        # record wins on load, so appending suffices.
        digest = case_digest(next(iter(campaign_cases(BUDGET, 0))))
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"type": "finish", "task": digest,
                                 "payload": {"bogus": 1}}) + "\n")
        with pytest.raises(ConfigError, match="cannot be restored"):
            run_campaign(BUDGET, seed=0, minimize=False, resume_from=journal)


class TestCaseDigest:
    def test_digest_is_stable_and_content_addressed(self):
        cases = campaign_cases(BUDGET, 0)
        digests = [case_digest(c) for c in cases]
        assert digests == [case_digest(c) for c in campaign_cases(BUDGET, 0)]
        assert len(set(digests)) == len(digests)  # no two cases collide

    def test_digest_differs_across_seeds(self):
        a = {case_digest(c) for c in campaign_cases(4, 0)}
        b = {case_digest(c) for c in campaign_cases(4, 1)}
        assert a.isdisjoint(b)
