"""Cross-model integration tests.

The repository contains three independent performance models — the cycle
simulator, the closed-form estimator, and the max-min flow model.  They
share parameters but not code paths, so agreement between them is a
strong correctness signal.  This module also runs a functional
end-to-end scenario through the byte-level memory model.
"""

import numpy as np
import pytest

from repro import make_fabric
from repro.accelerators import systolic_matmul
from repro.core.address_map import InterleavedMap
from repro.core.estimator import BandwidthEstimator, EstimateInputs
from repro.fabric.flow import rotation_throughput_gbps
from repro.memory import HbmMemory
from repro.params import DEFAULT_PLATFORM
from repro.sim import Engine, SimConfig
from repro.traffic import make_pattern_sources, make_rotation_sources
from repro.types import FabricKind, Pattern, RWRatio, TWO_TO_ONE

CYCLES = 6_000


def _simulate(fabric_kind, pattern, rw=TWO_TO_ONE, burst_len=16):
    fab = make_fabric(fabric_kind)
    src = make_pattern_sources(pattern, DEFAULT_PLATFORM, burst_len=burst_len,
                               rw=rw, address_map=fab.address_map, seed=11)
    return Engine(fab, src, SimConfig(cycles=CYCLES, warmup=1500)).run()


class TestEstimatorVsSimulator:
    """The estimator must predict the simulator within its error bars for
    the regimes where its constraints are exact."""

    CASES = [
        # (fabric, pattern, rw, tolerance)
        (FabricKind.XLNX, Pattern.SCS, TWO_TO_ONE, 0.05),
        (FabricKind.XLNX, Pattern.SCS, RWRatio(1, 0), 0.05),
        (FabricKind.XLNX, Pattern.CCS, TWO_TO_ONE, 0.08),
        (FabricKind.XLNX, Pattern.CCS, RWRatio(1, 0), 0.08),
        (FabricKind.MAO, Pattern.CCS, TWO_TO_ONE, 0.05),
        (FabricKind.MAO, Pattern.CCS, RWRatio(1, 0), 0.05),
        (FabricKind.MAO, Pattern.CCS, RWRatio(0, 1), 0.05),
    ]

    @pytest.mark.parametrize("fabric,pattern,rw,tol", CASES)
    def test_agreement(self, fabric, pattern, rw, tol):
        est = BandwidthEstimator().estimate(
            EstimateInputs(fabric=fabric, pattern=pattern, rw=rw))
        sim = _simulate(fabric, pattern, rw)
        assert sim.total_gbps == pytest.approx(est.total_gbps, rel=tol)


class TestFlowVsSimulator:
    """The flow model upper-bounds the cycle simulation (it ignores
    head-of-line blocking and dead cycles) and tracks it closely where
    those effects are small."""

    @pytest.mark.parametrize("offset", [0, 1, 2, 4])
    def test_flow_upper_bounds_sim(self, offset):
        fab = make_fabric(FabricKind.XLNX)
        src = make_rotation_sources(offset, address_map=fab.address_map)
        sim = Engine(fab, src, SimConfig(cycles=CYCLES, warmup=1500)).run()
        flow = rotation_throughput_gbps(offset)
        assert sim.total_gbps <= flow * 1.05
        if offset <= 2:
            # Single-hop regimes: within 10 %.
            assert sim.total_gbps >= flow * 0.90


class TestFunctionalEndToEnd:
    def test_matmul_through_hbm_memory(self):
        """Full data path: matrices stored in interleaved HBM, read back,
        multiplied with the systolic dataflow, result written back."""
        mem = HbmMemory(InterleavedMap(DEFAULT_PLATFORM))
        rng = np.random.default_rng(5)
        n = 64
        a = rng.integers(-128, 127, size=(n, n), dtype=np.int8)
        b = rng.integers(-128, 127, size=(n, n), dtype=np.int8)
        a_addr, b_addr, c_addr = 0, n * n, 2 * n * n
        mem.write_array(a_addr, a)
        mem.write_array(b_addr, b)
        a_back = mem.read_array(a_addr, (n, n), np.int8)
        b_back = mem.read_array(b_addr, (n, n), np.int8)
        c, stats = systolic_matmul(a_back, b_back, tile=16)
        mem.write_array(c_addr, c)
        np.testing.assert_array_equal(
            mem.read_array(c_addr, (n, n), np.int32),
            a.astype(np.int32) @ b.astype(np.int32))
        # The matrices really are scattered over all 32 channels.
        assert len(mem.touched_pchs()) == 32

    def test_measured_bandwidth_feeds_cycle_estimate(self):
        """Close the methodology loop: measure BW, predict runtime."""
        from repro.accelerators import AcceleratorA, make_accelerator_sources
        from repro.accelerators.base import AcceleratorConfig
        model = AcceleratorA(AcceleratorConfig(p=8, matrix_n=1024))
        fab = make_fabric(FabricKind.MAO)
        rep = Engine(fab, make_accelerator_sources(model),
                     SimConfig(cycles=CYCLES, warmup=1500)).run()
        cycles = model.cycle_estimate(rep.total_gbps)
        # P=8 with MAO sits right at its ridge point for N=1024, so the
        # estimate lands within a few percent of the pure compute time
        # (N cycles per tile pass).
        passes = (1024 / model.array_dim) ** 2
        assert cycles == pytest.approx(passes * 1024, rel=0.08)


class TestPlatformScaling:
    """The whole stack works on non-default geometries."""

    def test_future_64_channel_device(self):
        from repro.params import HbmPlatform
        platform = HbmPlatform(num_pch=64, pch_capacity=128 * 1024 * 1024)
        from repro.fabric import MaoFabric
        fab = MaoFabric(platform)
        src = make_pattern_sources(Pattern.CCS, platform)
        rep = Engine(fab, src, SimConfig(cycles=3000, warmup=800)).run()
        # Twice the channels, about twice the strided bandwidth.
        assert rep.total_gbps > 700
        assert rep.active_pchs() == 64

    def test_single_switch_device(self):
        from repro.params import HbmPlatform
        from repro.fabric import SegmentedFabric
        platform = HbmPlatform(num_pch=4, pch_capacity=64 * 1024 * 1024)
        fab = SegmentedFabric(platform)
        src = make_pattern_sources(Pattern.SCS, platform,
                                   address_map=fab.address_map)
        rep = Engine(fab, src, SimConfig(cycles=3000, warmup=800)).run()
        assert rep.total_gbps > 0.8 * 4 * 13.0
