"""Tests for the fabric topology/utilization rendering."""

import pytest

from repro.fabric import SegmentedFabric, render_topology, render_utilization
from repro.params import DEFAULT_PLATFORM, HbmPlatform
from repro.sim import Engine, SimConfig
from repro.traffic import make_rotation_sources


class TestTopologyRendering:
    def test_contains_all_switches(self):
        text = render_topology(DEFAULT_PLATFORM)
        for s in range(8):
            assert f"SW{s}" in text
        assert "BM00" in text and "PCH28-31" in text

    def test_small_platform(self):
        p = HbmPlatform(num_pch=8, pch_capacity=64 * 1024 * 1024)
        text = render_topology(p)
        assert "SW1" in text and "SW2" not in text


class TestUtilizationRendering:
    def _run(self, offset, cycles=3000):
        fab = SegmentedFabric(DEFAULT_PLATFORM)
        src = make_rotation_sources(offset, address_map=fab.address_map)
        Engine(fab, src, SimConfig(cycles=cycles, warmup=500)).run()
        return fab, cycles

    def test_rotation0_laterals_idle(self):
        fab, cycles = self._run(0)
        text = render_utilization(fab, cycles)
        # No lateral traffic at all: bus rows are blank.
        for line in text.splitlines():
            if line.strip().startswith(("right[", "left [")):
                assert set(line.split("]", 1)[1].strip()) <= {" ", "."}

    def test_rotation2_loads_one_parity(self):
        fab, cycles = self._run(2)
        text = render_utilization(fab, cycles)
        rows = {line.strip()[:8]: line for line in text.splitlines()
                if line.strip().startswith(("right[", "left ["))}
        # Parity-0 buses carry the traffic; parity-1 buses stay idle.
        assert "#" in rows["right[0]"] or "%" in rows["right[0]"]
        assert set(rows["right[1]"].split("]", 1)[1].strip()) <= {" ", "."}

    def test_rotation8_loads_everything(self):
        fab, cycles = self._run(8)
        text = render_utilization(fab, cycles)
        busy_rows = [line for line in text.splitlines()
                     if line.strip().startswith(("right[", "left ["))]
        for line in busy_rows:
            body = line.split("]", 1)[1]
            assert any(c not in " ." for c in body)

    def test_zero_cycles_defined(self):
        fab = SegmentedFabric(DEFAULT_PLATFORM)
        text = render_utilization(fab, 0)
        assert "utilization" in text
