"""Unit tests for the durable run journal (repro.runtime.journal)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.runtime import (JOURNAL_VERSION, JournalState, RunJournal,
                           load_journal)


def test_round_trip(tmp_path):
    path = str(tmp_path / "run.jsonl")
    with RunJournal(path, meta={"kind": "unit", "seed": 7}) as journal:
        journal.start("a")
        journal.finish("a", {"value": 1})
        journal.start("b")
        journal.failure("b", {"kind": "crash", "detail": "boom"})
        journal.start("c")  # in flight at "crash" time — no terminal record
    state = load_journal(path)
    assert state.version == JOURNAL_VERSION
    assert state.meta == {"kind": "unit", "seed": 7}
    assert state.is_finished("a") and state.payload("a") == {"value": 1}
    assert state.failed["b"] == {"kind": "crash", "detail": "boom"}
    assert state.started == {"c"}
    assert state.resumes == 0


def test_records_are_durable_line_at_a_time(tmp_path):
    """Every record is a complete fsync'd line the moment it returns —
    a reader sees it without waiting for close()."""
    path = str(tmp_path / "run.jsonl")
    journal = RunJournal(path, meta={})
    journal.finish("t", {"n": 1})
    state = load_journal(path)  # journal still open for writing
    assert state.is_finished("t")
    journal.close()


def test_torn_trailing_line_is_dropped_with_warning(tmp_path):
    path = str(tmp_path / "run.jsonl")
    with RunJournal(path, meta={}) as journal:
        journal.finish("done", {"v": 1})
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"type": "finish", "task": "torn", "payl')  # crash mid-append
    with pytest.warns(RuntimeWarning, match="torn record"):
        state = load_journal(path)
    assert state.is_finished("done")
    assert not state.is_finished("torn")  # the torn task will simply re-run


def test_mid_file_corruption_raises(tmp_path):
    path = str(tmp_path / "run.jsonl")
    with RunJournal(path, meta={}) as journal:
        journal.finish("a")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("not json at all\n")
        fh.write(json.dumps({"type": "finish", "task": "b"}) + "\n")
    with pytest.raises(ConfigError, match="corrupt beyond a torn tail"):
        load_journal(path)


def test_version_mismatch_refuses_resume(tmp_path):
    path = str(tmp_path / "run.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"type": "journal",
                             "version": JOURNAL_VERSION + 1,
                             "meta": {}}) + "\n")
    with pytest.raises(ConfigError, match="version"):
        load_journal(path)


def test_empty_and_headerless_journals_raise(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ConfigError, match="empty"):
        load_journal(str(empty))
    headerless = tmp_path / "headerless.jsonl"
    headerless.write_text(
        json.dumps({"type": "finish", "task": "a"}) + "\n")
    with pytest.raises(ConfigError, match="no header"):
        load_journal(str(headerless))


def test_unknown_record_type_raises(tmp_path):
    path = str(tmp_path / "run.jsonl")
    with RunJournal(path, meta={}):
        pass
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps({"type": "telemetry", "x": 1}) + "\n")
    with pytest.raises(ConfigError, match="unknown record type"):
        load_journal(path)


def test_resume_appends_marker_and_preserves_history(tmp_path):
    path = str(tmp_path / "run.jsonl")
    with RunJournal(path, meta={"seed": 0}) as journal:
        journal.finish("a", {"v": 1})
    with RunJournal(path, resume=True) as journal:
        journal.finish("b", {"v": 2})
    state = load_journal(path)
    assert state.resumes == 1
    assert state.is_finished("a") and state.is_finished("b")
    assert state.meta == {"seed": 0}  # header from the original run


def test_resume_of_missing_journal_raises(tmp_path):
    with pytest.raises(ConfigError, match="does not exist"):
        RunJournal(str(tmp_path / "nope.jsonl"), resume=True)


def test_finish_supersedes_failure_on_retry(tmp_path):
    """A task that failed in run 1 but succeeded in run 2 is finished."""
    path = str(tmp_path / "run.jsonl")
    with RunJournal(path, meta={}) as journal:
        journal.start("t")
        journal.failure("t", {"kind": "crash", "detail": "x"})
    with RunJournal(path, resume=True) as journal:
        journal.start("t")
        journal.finish("t", {"v": 42})
    state = load_journal(path)
    assert state.is_finished("t") and state.payload("t") == {"v": 42}
    assert "t" not in state.failed and "t" not in state.started


def test_closed_journal_refuses_writes(tmp_path):
    journal = RunJournal(str(tmp_path / "run.jsonl"), meta={})
    journal.close()
    with pytest.raises(ConfigError, match="closed"):
        journal.finish("a")


def test_journal_state_defaults():
    state = JournalState(path="x")
    assert not state.is_finished("a")
    assert state.payload("a") is None
