"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.params import HbmPlatform, DEFAULT_PLATFORM


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the expected CLI outputs under tests/golden/ "
             "instead of comparing against them")


@pytest.fixture
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session")
def platform() -> HbmPlatform:
    """The paper's full 32-PCH platform."""
    return DEFAULT_PLATFORM


@pytest.fixture(scope="session")
def small_platform() -> HbmPlatform:
    """A 2-switch / 8-PCH / 8-master platform for fast fabric tests."""
    return HbmPlatform(num_pch=8, pch_capacity=64 * 1024 * 1024)


def run_pattern(fabric, sources, cycles=4000, warmup=1000, outstanding=32):
    """Convenience one-shot simulation used across test modules."""
    from repro.sim import Engine, SimConfig
    cfg = SimConfig(cycles=cycles, warmup=warmup, outstanding=outstanding)
    return Engine(fabric, sources, cfg).run()
